//! Vendored, dependency-free subset of the `rand` 0.8 API.
//!
//! The workspace builds in sandboxes with no network access, so the real
//! crates.io `rand` cannot be fetched. This crate implements exactly the
//! surface the workspace uses — [`RngCore`], [`Rng`] (`gen`, `gen_range`,
//! `gen_bool`), [`SeedableRng`], and [`rngs::StdRng`] — on top of an
//! xoshiro256++ generator seeded with SplitMix64.
//!
//! Streams are deterministic per seed but are **not** bit-compatible with
//! the crates.io `StdRng` (ChaCha12); code in this workspace only relies on
//! determinism, never on specific stream values.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// The core of a random number generator: a source of uniform `u32`/`u64`.
pub trait RngCore {
    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator that can be created from a seed.
pub trait SeedableRng: Sized {
    /// The seed byte array type.
    type Seed: AsMut<[u8]> + Default;

    /// Creates a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64` seed (expanded via SplitMix64).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng, SplitMix64};

    /// The standard seedable generator: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        #[inline]
        fn step(&mut self) -> u64 {
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.step() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.step()
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // An all-zero state is a fixed point of xoshiro; reseed it.
            if s == [0; 4] {
                let mut sm = SplitMix64 { state: 0xDEAD_BEEF };
                for slot in &mut s {
                    *slot = sm.next();
                }
            }
            StdRng { s }
        }
    }
}

/// A type that can be uniformly sampled from the generator's raw bits
/// (the `Standard` distribution of crates.io `rand`).
pub trait StandardSample: Sized {
    /// Draws one uniform value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A type with uniform sampling over user-supplied ranges.
pub trait SampleUniform: Sized {
    /// Uniform draw from `[lo, hi)`. Panics when the range is empty.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform draw from `[lo, hi]`. Panics when `lo > hi`.
    fn sample_range_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as $u).wrapping_sub(lo as $u);
                lo.wrapping_add(uniform_below(rng, span as u64) as $t)
            }
            fn sample_range_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as $u).wrapping_sub(lo as $u);
                if span as u64 == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_below(rng, span as u64 + 1) as $t)
            }
        }
    )*};
}

impl_uniform_int!(
    u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize,
    i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize
);

/// Unbiased uniform draw from `[0, n)` (`n > 0`) by rejection sampling.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    if n.is_power_of_two() {
        return rng.next_u64() & (n - 1);
    }
    let zone = u64::MAX - (u64::MAX % n);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % n;
        }
    }
}

macro_rules! impl_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let f = <$t as StandardSample>::sample_standard(rng);
                let v = lo + (hi - lo) * f;
                // Rounding can land exactly on `hi`; fold that sliver onto `lo`
                // to keep the half-open contract.
                if v < hi { v } else { lo }
            }
            fn sample_range_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "gen_range: empty range");
                let f = <$t as StandardSample>::sample_standard(rng);
                lo + (hi - lo) * f
            }
        }
    )*};
}

impl_uniform_float!(f32, f64);

/// A range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one uniform value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, self.start, self.end)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range_inclusive(rng, *self.start(), *self.end())
    }
}

/// User-facing convenience methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniform value of type `T` (the `Standard` distribution).
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a uniform value from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics when `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Mirrors `rand::prelude`.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.gen::<f64>().to_bits(), b.gen::<f64>().to_bits());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<f64>().to_bits(), c.gen::<f64>().to_bits());
    }

    #[test]
    fn unit_interval() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_hit_bounds_and_stay_inside() {
        let mut r = StdRng::seed_from_u64(2);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            let v = r.gen_range(0usize..5);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..1000 {
            let v = r.gen_range(-2.5..1.5f64);
            assert!((-2.5..1.5).contains(&v));
            let w = r.gen_range(3u32..=5);
            assert!((3..=5).contains(&w));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(3);
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }

    #[test]
    fn rng_usable_through_mut_ref() {
        fn draw<R: super::RngCore + ?Sized>(rng: &mut R) -> f64 {
            rng.gen()
        }
        let mut r = StdRng::seed_from_u64(4);
        let _ = draw(&mut r);
        let rr: &mut StdRng = &mut r;
        let _ = draw(rr);
    }
}
