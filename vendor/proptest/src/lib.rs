//! Vendored, dependency-free subset of the `proptest` API.
//!
//! The workspace builds in sandboxes with no network access, so the real
//! crates.io `proptest` cannot be fetched. This crate implements the
//! surface the workspace's property tests use:
//!
//! * the [`proptest!`] macro (with `#![proptest_config(...)]`),
//! * [`Strategy`](strategy::Strategy) with `prop_map` / `prop_flat_map`,
//! * range, tuple, and [`collection::vec`] strategies,
//! * [`arbitrary::any`] and `prop::bool::ANY`,
//! * [`prop_assert!`] / [`prop_assert_eq!`].
//!
//! There is **no shrinking**: a failing case panics with the generating
//! seed and case index so it can be replayed deterministically.

#![warn(missing_docs)]

/// Test-runner plumbing: the deterministic RNG and per-test configuration.
pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// The RNG handed to strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng(pub(crate) StdRng);

    impl TestRng {
        /// A deterministic RNG for the given seed.
        pub fn deterministic(seed: u64) -> Self {
            TestRng(StdRng::seed_from_u64(seed))
        }

        /// Raw access for strategies that need the underlying generator.
        pub fn rng(&mut self) -> &mut StdRng {
            &mut self.0
        }
    }

    /// Per-test configuration (subset of the real `ProptestConfig`).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config with an explicit case count.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// FNV-1a of the test name: a stable per-test seed.
    pub fn seed_for(name: &str) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }
}

/// Value-generation strategies.
pub mod strategy {
    use crate::test_runner::TestRng;
    use rand::{Rng, SampleUniform};
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating random values of `Self::Value`.
    pub trait Strategy {
        /// The generated value type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Builds a dependent strategy from each generated value.
        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Debug, Clone)]
    pub struct FlatMap<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
        type Value = T::Value;
        fn generate(&self, rng: &mut TestRng) -> T::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    impl<T: SampleUniform + Copy> Strategy for Range<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            rng.rng().gen_range(self.clone())
        }
    }

    impl<T: SampleUniform + Copy> Strategy for RangeInclusive<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            rng.rng().gen_range(self.clone())
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
}

/// `any::<T>()` support.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::{Rng, StandardSample};
    use std::marker::PhantomData;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: StandardSample {}
    impl<T: StandardSample> Arbitrary for T {}

    /// The strategy returned by [`any`].
    #[derive(Debug)]
    pub struct Any<T>(pub(crate) PhantomData<T>);

    impl<T> Clone for Any<T> {
        fn clone(&self) -> Self {
            Any(PhantomData)
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            rng.rng().gen()
        }
    }

    /// A uniform strategy over every value of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Allowed lengths for a generated collection.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty vec size range");
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// The strategy returned by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.rng().gen_range(self.size.lo..=self.size.hi_inclusive);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Vectors of values from `element` with lengths in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// `bool` strategies (`prop::bool::ANY`).
pub mod bool {
    use crate::arbitrary::Any;
    use std::marker::PhantomData;

    /// A uniform coin flip.
    pub const ANY: Any<bool> = Any(PhantomData);
}

/// Everything tests import: `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// The `prop::` namespace (`prop::collection::vec`, `prop::bool::ANY`).
    pub mod prop {
        pub use crate::bool;
        pub use crate::collection;
    }
}

/// Defines property tests. Mirrors the real macro's surface:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///     #[test]
///     fn holds(x in 0..10u32, y in any::<bool>()) { prop_assert!(x < 10); }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            @cfg ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Internal expansion helper for [`proptest!`]. Not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg ($cfg:expr)
     $($(#[$meta:meta])*
       fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                use $crate::strategy::Strategy as _;
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let seed = $crate::test_runner::seed_for(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                let mut rng = $crate::test_runner::TestRng::deterministic(seed);
                for case in 0..config.cases {
                    $(let $arg = ($strat).generate(&mut rng);)+
                    let run = || -> () { $body };
                    let guard = $crate::__CaseContext { name: stringify!($name), seed, case };
                    run();
                    std::mem::forget(guard);
                }
            }
        )*
    };
}

/// Prints replay coordinates when a property-test case panics. Not public API.
#[doc(hidden)]
#[derive(Debug)]
pub struct __CaseContext {
    #[doc(hidden)]
    pub name: &'static str,
    #[doc(hidden)]
    pub seed: u64,
    #[doc(hidden)]
    pub case: u32,
}

impl Drop for __CaseContext {
    fn drop(&mut self) {
        if std::thread::panicking() {
            eprintln!(
                "proptest: `{}` failed at case {} (seed {:#x}); cases are deterministic per test",
                self.name, self.case, self.seed
            );
        }
    }
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pair() -> impl Strategy<Value = (f64, f64)> {
        (0.0..1.0f64, 2.0..3.0f64).prop_map(|(a, b)| (a, b))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_maps(p in pair(), k in 1u32..5) {
            prop_assert!((0.0..1.0).contains(&p.0));
            prop_assert!((2.0..3.0).contains(&p.1));
            prop_assert!((1..5).contains(&k));
        }

        #[test]
        fn vec_lengths(v in prop::collection::vec(any::<bool>(), 0..7), w in prop::collection::vec(0u32..3, 4usize)) {
            prop_assert!(v.len() < 7);
            prop_assert_eq!(w.len(), 4);
            prop_assert!(w.iter().all(|&x| x < 3));
        }

        #[test]
        fn flat_map_dependent(v in (1usize..5).prop_flat_map(|n| prop::collection::vec(prop::bool::ANY, n))) {
            prop_assert!(!v.is_empty() && v.len() < 5);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy as _;
        use crate::test_runner::TestRng;
        let s = (0.0..1.0f64).prop_map(|x| x * 2.0);
        let mut a = TestRng::deterministic(9);
        let mut b = TestRng::deterministic(9);
        for _ in 0..16 {
            assert_eq!(s.generate(&mut a).to_bits(), s.generate(&mut b).to_bits());
        }
    }
}
