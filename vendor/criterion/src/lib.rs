//! Vendored, dependency-free subset of the `criterion` API.
//!
//! The workspace builds in sandboxes with no network access, so the real
//! crates.io `criterion` cannot be fetched. This shim keeps `cargo bench`
//! working with the same bench sources: it runs each benchmark for a fixed
//! time budget and prints mean ns/iter. It performs no statistical
//! analysis, warm-up calibration, or HTML reporting.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How per-iteration inputs are batched in [`Bencher::iter_batched`].
/// The shim runs one input per iteration regardless of the hint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration state.
    SmallInput,
    /// Large per-iteration state.
    LargeInput,
    /// One batch per iteration.
    PerIteration,
}

/// Drives timed iterations of one benchmark routine.
#[derive(Debug)]
pub struct Bencher {
    budget: Duration,
    /// Measured iterations and total time, filled by `iter*`.
    result: Option<(u64, Duration)>,
}

impl Bencher {
    /// Times `routine` repeatedly until the time budget is spent.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        let mut iters = 0u64;
        while start.elapsed() < self.budget {
            black_box(routine());
            iters += 1;
        }
        self.result = Some((iters, start.elapsed()));
    }

    /// Times `routine` over fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        let mut iters = 0u64;
        let mut spent = Duration::ZERO;
        while spent < self.budget {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            spent += t.elapsed();
            iters += 1;
        }
        self.result = Some((iters, spent));
    }
}

fn run_one(label: &str, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        budget: Duration::from_millis(200),
        result: None,
    };
    f(&mut b);
    match b.result {
        Some((iters, total)) if iters > 0 => {
            let ns = total.as_nanos() as f64 / iters as f64;
            println!("{label:<40} {ns:>14.1} ns/iter ({iters} iters)");
        }
        _ => println!("{label:<40} (no measurement)"),
    }
}

/// A named group of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), &mut f);
        self
    }

    /// Ends the group (no-op in the shim).
    pub fn finish(self) {}
}

/// The benchmark harness entry point.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            _parent: self,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_one(id, &mut f);
        self
    }

    /// Configuration hook kept for API compatibility (no-op).
    pub fn configure_from_args(self) -> Self {
        self
    }
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
    (name = $group:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $cfg;
            $($target(&mut c);)+
        }
    };
}

/// Declares the bench `main` that runs every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(c: &mut Criterion) {
        let mut g = c.benchmark_group("g");
        g.bench_function("add", |b| b.iter(|| black_box(1u64) + black_box(2)));
        g.finish();
        c.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
    }

    criterion_group!(benches, tiny);

    #[test]
    fn harness_runs() {
        benches();
    }
}
