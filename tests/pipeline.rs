//! End-to-end integration tests spanning all crates: planner → trace →
//! replay → predictor → accelerator.

use copred::accel::{AccelConfig, AccelSim};
use copred::collision::{run_schedule, Environment, Schedule};
use copred::core::{ChtParams, CoordHash, Predictor};
use copred::envgen::{narrow_passage_environment, sample_free_config};
use copred::geometry::{Aabb, Vec3};
use copred::kinematics::{presets, Config, Motion, Robot};
use copred::planners::{BitStar, GnnmpEmulator, MpnetEmulator, PlanContext, Planner, Rrt, Stage};
use copred::trace::QueryTrace;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn planar_world() -> (Robot, Environment) {
    let robot: Robot = presets::planar_2d().into();
    let env = narrow_passage_environment(&robot, 0.25, 3);
    (robot, env)
}

/// Runs a planner, captures the trace, and cross-checks every layer's view
/// of the workload.
fn full_pipeline(planner: &dyn Planner, seed: u64) -> (Robot, QueryTrace) {
    let (robot, env) = planar_world();
    let mut rng = StdRng::seed_from_u64(seed);
    let start = sample_free_config(&robot, &env, 200, &mut rng).expect("free start");
    let goal = sample_free_config(&robot, &env, 200, &mut rng).expect("free goal");
    let mut ctx = PlanContext::new(&robot, &env, 0.05);
    let _ = planner.plan(&mut ctx, &start, &goal, &mut rng);
    let log = ctx.into_log();
    assert!(!log.is_empty(), "{} produced no workload", planner.name());
    let trace = QueryTrace::from_log(&robot, &env, &log);
    (robot, trace)
}

#[test]
fn every_planner_feeds_the_full_pipeline() {
    let planners: Vec<Box<dyn Planner>> = vec![
        Box::new(Rrt::default()),
        Box::new(MpnetEmulator::default()),
        Box::new(GnnmpEmulator::default()),
        Box::new(BitStar::default()),
    ];
    for planner in planners {
        let (robot, trace) = full_pipeline(planner.as_ref(), 17);
        // 1. Trace serialization roundtrips exactly.
        let text = trace.to_text();
        assert_eq!(QueryTrace::from_text(&text).unwrap(), trace);
        // 2. Replay agrees with ground truth under every schedule.
        for m in &trace.motions {
            let infos = m.to_cdq_infos();
            for s in [Schedule::Naive, Schedule::csp_default(), Schedule::Oracle] {
                assert_eq!(
                    run_schedule(&infos, m.poses.len(), s).colliding,
                    m.colliding()
                );
            }
        }
        // 3. The accelerator simulator reproduces the same outcomes.
        let mut sim = AccelSim::new(
            AccelConfig::copu(3, ChtParams::paper_2d()),
            CoordHash::paper_default(&robot),
        );
        for m in &trace.motions {
            assert_eq!(
                sim.run_motion(m).colliding,
                m.colliding(),
                "{}",
                planner.name()
            );
        }
    }
}

#[test]
fn accelerator_never_executes_more_than_the_decomposition() {
    let (robot, trace) = full_pipeline(&MpnetEmulator::default(), 5);
    for cfg in [
        AccelConfig::baseline(4),
        AccelConfig::copu(4, ChtParams::paper_2d()),
        AccelConfig::oracle(4),
    ] {
        let mut sim = AccelSim::new(cfg, CoordHash::paper_default(&robot));
        for m in &trace.motions {
            let r = sim.run_motion(m);
            assert!(r.events.cdqs <= m.cdq_count() as u64);
            if !m.colliding() {
                assert_eq!(
                    r.events.cdqs,
                    m.cdq_count() as u64,
                    "free motions run everything"
                );
            }
        }
    }
}

#[test]
fn oracle_bounds_every_other_scheme_per_workload() {
    let (robot, trace) = full_pipeline(&GnnmpEmulator::default(), 23);
    let mut oracle = AccelSim::new(AccelConfig::oracle(4), CoordHash::paper_default(&robot));
    let mut copu = AccelSim::new(
        AccelConfig::copu(4, ChtParams::paper_2d()),
        CoordHash::paper_default(&robot),
    );
    let mut base = AccelSim::new(AccelConfig::baseline(4), CoordHash::paper_default(&robot));
    let ro = oracle.run_query(&trace.motions);
    let rc = copu.run_query(&trace.motions);
    let rb = base.run_query(&trace.motions);
    assert!(ro.cdqs_executed() <= rc.cdqs_executed() + rc.motions * 3);
    assert!(rc.cdqs_executed() <= rb.cdqs_executed() + rb.motions);
    assert_eq!(ro.colliding_motions, rb.colliding_motions);
}

#[test]
fn software_predictor_matches_trace_ground_truth() {
    let (robot, env) = planar_world();
    let mut rng = StdRng::seed_from_u64(2);
    let mut predictor = Predictor::coord_default(&robot, 1);
    for _ in 0..30 {
        let m = Motion::new(
            robot.sample_uniform(&mut rng),
            robot.sample_uniform(&mut rng),
        );
        let poses = m.discretize(15);
        let out = predictor.check_motion(&robot, &env, &poses);
        let truth = copred::collision::motion_collides(&robot, &env, &poses);
        assert_eq!(out.colliding, truth);
    }
}

#[test]
fn stage_structure_survives_the_pipeline() {
    let (_, trace) = full_pipeline(&MpnetEmulator::default(), 77);
    let s1: Vec<_> = trace.stage_motions(Stage::Explore).collect();
    let s2: Vec<_> = trace.stage_motions(Stage::Validate).collect();
    assert!(!s1.is_empty());
    if !s2.is_empty() {
        // The validated trajectory is collision-free by construction.
        assert!(s2.iter().all(|m| !m.colliding()));
    }
}

#[test]
fn cpu_software_execution_agrees_with_reference() {
    let (robot, env) = planar_world();
    let mut rng = StdRng::seed_from_u64(4);
    let motions: Vec<Vec<Config>> = (0..40)
        .map(|_| {
            Motion::new(
                robot.sample_uniform(&mut rng),
                robot.sample_uniform(&mut rng),
            )
            .discretize(12)
        })
        .collect();
    let expected = motions
        .iter()
        .filter(|poses| copred::collision::motion_collides(&robot, &env, poses))
        .count() as u64;
    for with_prediction in [false, true] {
        let r = copred::swexec::run_cpu(
            &robot,
            &env,
            &motions,
            &copred::swexec::CpuExecConfig {
                n_threads: 4,
                with_prediction,
                cht_params: ChtParams::paper_2d(),
                seed: 9,
            },
        );
        assert_eq!(
            r.colliding_motions, expected,
            "prediction={with_prediction}"
        );
    }
}

#[test]
fn dadup_substrate_integrates_with_planner_roadmaps() {
    use copred::accel::{precompute_motion, DadupConfig, DadupMode, DadupSim};
    let (robot, env) = planar_world();
    let mut ctx = PlanContext::new(&robot, &env, 0.05);
    let mut rng = StdRng::seed_from_u64(6);
    let roadmap = copred::planners::Prm {
        n_samples: 30,
        k_neighbors: 4,
    }
    .build_roadmap(&mut ctx, &[], &mut rng);
    let cfg = DadupConfig::default();
    let motions: Vec<_> = roadmap
        .roadmap_motions()
        .iter()
        .map(|m| precompute_motion(&robot, &m.discretize(8), &cfg))
        .collect();
    assert!(!motions.is_empty());
    let mut sim = DadupSim::new(&env, cfg);
    let (results, _) = sim.run_workload(&motions, DadupMode::CspCopu);
    // Roadmap edges were validated as collision-free against the exact
    // geometry; the voxel/octree substrate is conservative, so it may flag
    // some, but it must terminate and report a result per motion.
    assert_eq!(results.len(), motions.len());
}

#[test]
fn gpu_model_runs_on_pipeline_traces() {
    let (_, trace) = full_pipeline(&MpnetEmulator::default(), 91);
    let rows = copred::swexec::gpu_sweep(
        &trace.motions,
        &[64, 512],
        &copred::swexec::GpuModelParams::default(),
        ChtParams::paper_2d(),
        1,
    );
    assert_eq!(rows.len(), 2);
    assert!(rows[1].cdqs_base >= rows[0].cdqs_base);
}

#[test]
fn service_serves_planner_traces_over_loopback() {
    use copred::service::protocol::SchedMode;
    use copred::service::{Server, ServerConfig, ServiceClient};

    let (_, trace) = full_pipeline(&Rrt::default(), 17);
    let server = Server::start(ServerConfig::default()).expect("start server");
    let mut c = ServiceClient::connect(server.local_addr()).expect("connect");

    // Serve the same captured workload under prediction and naively; the
    // wire results must match ground truth either way, and the session
    // stats must show prediction doing no more work.
    let mut issued = [0u64; 2];
    for (i, mode) in [SchedMode::Coord, SchedMode::Naive].into_iter().enumerate() {
        let session = c
            .open(&trace.robot_name, trace.link_count, mode, 7)
            .expect("open");
        let (results, _) = c.check_motions(session, &trace.motions, 32).expect("check");
        assert_eq!(results.len(), trace.motions.len());
        for (r, m) in results.iter().zip(&trace.motions) {
            assert_eq!(
                r.colliding,
                m.colliding(),
                "wire outcome matches ground truth"
            );
            assert_eq!(r.cdqs_total as usize, m.cdq_count());
        }
        let kv = c.stats(Some(session)).expect("session stats");
        issued[i] = copred::service::client::stat_u64(&kv, "cdqs_issued").expect("cdqs_issued");
        c.close(session).expect("close");
    }
    assert!(
        issued[0] <= issued[1],
        "prediction never issues more CDQs than naive"
    );
}

#[test]
fn predictor_warm_history_beats_cold_on_repeated_queries() {
    // The end-to-end effect the quickstart demonstrates, asserted.
    let robot: Robot = presets::planar_2d().into();
    let env = Environment::new(
        robot.workspace(),
        vec![Aabb::new(
            Vec3::new(0.2, -1.0, -0.1),
            Vec3::new(0.6, 1.0, 0.1),
        )],
    );
    let mut predictor = Predictor::coord_default(&robot, 42);
    let motion =
        |y: f64| Motion::new(Config::new(vec![-0.8, y]), Config::new(vec![0.8, y])).discretize(33);
    let cold = predictor.check_motion(&robot, &env, &motion(0.0));
    let warm = predictor.check_motion(&robot, &env, &motion(0.01));
    assert!(cold.colliding && warm.colliding);
    assert!(warm.cdqs_executed < cold.cdqs_executed);
    assert!(
        warm.cdqs_executed <= 2,
        "warm check should be near the oracle limit"
    );
}
