//! Narrow-passage 2D planning with BIT*: the paper's observation that
//! collision prediction helps *more* as queries get harder. Sweeps the
//! passage width and reports the COORD CDQ reduction per difficulty.
//!
//! ```sh
//! cargo run --release --example narrow_passage_2d
//! ```

use copred::collision::{run_schedule, Schedule};
use copred::core::hash::CollisionHash;
use copred::core::{Cht, ChtParams, CoordHash, HashInput};
use copred::envgen::{ascii_scene, narrow_passage_environment, sample_free_config};
use copred::kinematics::{csp_order, presets, Config, Robot};
use copred::planners::{BitStar, PlanContext, Planner};
use copred::trace::QueryTrace;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let robot: Robot = presets::planar_2d().into();
    let hash = CoordHash::paper_default(&robot);

    // Show one narrow-passage scene with a found path.
    {
        let env = narrow_passage_environment(&robot, 0.12, 0);
        let mut rng = StdRng::seed_from_u64(1);
        if let (Some(start), Some(goal)) = (
            sample_free_config(&robot, &env, 200, &mut rng),
            sample_free_config(&robot, &env, 200, &mut rng),
        ) {
            let mut ctx = PlanContext::new(&robot, &env, 0.05);
            let planner = BitStar {
                batch_size: 48,
                max_batches: 6,
                radius: 0.6,
                ..BitStar::default()
            };
            if let Some(path) = planner.plan(&mut ctx, &start, &goal, &mut rng).path {
                let pts: Vec<copred::geometry::Vec3> = path
                    .iter()
                    .map(|q| copred::geometry::Vec3::new(q[0], q[1], 0.0))
                    .collect();
                println!("scene (S=start, G=goal, *=waypoints, #=walls):");
                println!("{}", ascii_scene(&env, &pts, 48, 18));
            }
        }
    }

    println!("gap width | queries | CSP CDQs | COORD CDQs | reduction");
    println!("----------+---------+----------+------------+----------");
    for (gi, gap) in [0.30, 0.20, 0.12, 0.07].iter().enumerate() {
        let (mut csp_total, mut coord_total) = (0u64, 0u64);
        let mut solved = 0usize;
        for q in 0..6 {
            let env = narrow_passage_environment(&robot, *gap, (gi * 100 + q) as u64);
            let mut rng = StdRng::seed_from_u64((gi * 31 + q) as u64);
            let (Some(start), Some(goal)) = (
                sample_free_config(&robot, &env, 200, &mut rng),
                sample_free_config(&robot, &env, 200, &mut rng),
            ) else {
                continue;
            };
            let mut ctx = PlanContext::new(&robot, &env, 0.05);
            let planner = BitStar {
                batch_size: 48,
                max_batches: 6,
                radius: 0.6,
                ..BitStar::default()
            };
            let result = planner.plan(&mut ctx, &start, &goal, &mut rng);
            solved += usize::from(result.solved());
            let trace = QueryTrace::from_log(&robot, &env, &ctx.into_log());

            // CSP replay.
            csp_total += trace
                .motions
                .iter()
                .map(|m| {
                    run_schedule(&m.to_cdq_infos(), m.poses.len(), Schedule::csp_default())
                        .cdqs_executed as u64
                })
                .sum::<u64>();
            // COORD replay (Algorithm 1 over CSP order, fresh table per query).
            coord_total += replay_coord(&trace, &hash);
        }
        let red = 1.0 - coord_total as f64 / csp_total.max(1) as f64;
        println!(
            "   {gap:.2}   |   {solved}/6   | {csp_total:8} | {coord_total:10} | {:+7.1}%",
            red * 100.0
        );
    }
    println!();
    println!("Narrower passages force the planner to probe the walls repeatedly,");
    println!("which is exactly the history the COORD predictor exploits.");
}

fn replay_coord(trace: &QueryTrace, hash: &CoordHash) -> u64 {
    let mut cht = Cht::new(ChtParams::paper_2d(), 1);
    let dummy = Config::zeros(0);
    let mut executed = 0u64;
    for m in &trace.motions {
        let n_poses = m.poses.len();
        let mut queue = Vec::new();
        let mut hit = false;
        'outer: for p in csp_order(n_poses, Schedule::DEFAULT_CSP_STEP) {
            for c in m.cdqs.iter().filter(|c| c.pose_idx as usize == p) {
                let code = hash.code(&HashInput {
                    config: &dummy,
                    center: c.center,
                });
                if cht.predict(code) {
                    executed += 1;
                    cht.observe(code, c.colliding);
                    if c.colliding {
                        hit = true;
                        break 'outer;
                    }
                } else {
                    queue.push(c);
                }
            }
        }
        if !hit {
            for c in queue {
                let code = hash.code(&HashInput {
                    config: &dummy,
                    center: c.center,
                });
                executed += 1;
                cht.observe(code, c.colliding);
                if c.colliding {
                    break;
                }
            }
        }
    }
    executed
}
