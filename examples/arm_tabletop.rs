//! A 7-DOF Baxter arm planning over a cluttered tabletop: plan with the
//! MPNet-style sampler, record the CDQ trace, and replay it through the
//! cycle-level accelerator simulator with and without the Collision
//! Prediction Unit.
//!
//! ```sh
//! cargo run --release --example arm_tabletop
//! ```

use copred::accel::{perf_report, AccelConfig, AccelSim, AreaModel, EnergyModel};
use copred::collision::motion_collides;
use copred::core::{ChtParams, CoordHash};
use copred::envgen::{sample_free_config, tabletop_environment};
use copred::kinematics::{presets, Motion, Robot};
use copred::planners::{MpnetEmulator, PlanContext, Planner};
use copred::trace::QueryTrace;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let robot: Robot = presets::baxter_arm().into();
    let mut rng = StdRng::seed_from_u64(7);
    let em = EnergyModel::default();
    let am = AreaModel::default();

    let hash = CoordHash::paper_default(&robot);
    let mut baseline = AccelSim::new(AccelConfig::baseline(4), hash.clone());
    let mut copu = AccelSim::new(AccelConfig::copu(4, ChtParams::paper_1bit()), hash);
    let mut base_agg = copred::accel::AccelRunResult::default();
    let mut copu_agg = copred::accel::AccelRunResult::default();

    let mut planned = 0;
    let mut scene = 0usize;
    while planned < 6 {
        scene += 1;
        let env = tabletop_environment(&robot, 12, scene as u64);
        let Some(start) = sample_free_config(&robot, &env, 300, &mut rng) else {
            continue;
        };
        // Find a nontrivial goal: the straight-line motion must collide.
        let goal = (0..40).find_map(|_| {
            let g = sample_free_config(&robot, &env, 300, &mut rng)?;
            let direct = Motion::new(start.clone(), g.clone()).discretize_by_step(0.18);
            motion_collides(&robot, &env, &direct).then_some(g)
        });
        let Some(goal) = goal else { continue };

        let mut ctx = PlanContext::new(&robot, &env, 0.18);
        let result = MpnetEmulator::default().plan(&mut ctx, &start, &goal, &mut rng);
        let log = ctx.into_log();
        println!(
            "query {planned}: {} after {} checks ({} motions recorded, {:.0}% colliding)",
            if result.solved() { "solved" } else { "failed" },
            result.iterations,
            log.len(),
            log.colliding_fraction() * 100.0,
        );
        let trace = QueryTrace::from_log(&robot, &env, &log);

        // One planning query per environment: the CHT resets in between.
        baseline.reset_query();
        copu.reset_query();
        let b = baseline.run_query(&trace.motions);
        let c = copu.run_query(&trace.motions);
        merge(&mut base_agg, &b);
        merge(&mut copu_agg, &c);
        planned += 1;
    }

    let pb = perf_report(&baseline, &base_agg, &em, &am);
    let pc = perf_report(&copu, &copu_agg, &em, &am);
    println!();
    println!("accelerator (4 CDUs, CHT 4096x1, S=0):");
    println!(
        "  CDQs executed : baseline {} vs COPU {} ({:+.1}%)",
        base_agg.cdqs_executed(),
        copu_agg.cdqs_executed(),
        (copu_agg.cdqs_executed() as f64 / base_agg.cdqs_executed() as f64 - 1.0) * 100.0,
    );
    println!(
        "  mean latency  : baseline {:.0} vs COPU {:.0} cycles (speedup {:.2}x)",
        pb.mean_latency_cycles,
        pc.mean_latency_cycles,
        pb.mean_latency_cycles / pc.mean_latency_cycles,
    );
    println!(
        "  perf/watt     : {:.2}x   perf/mm2: {:.2}x",
        pc.perf_per_watt / pb.perf_per_watt,
        pc.perf_per_mm2 / pb.perf_per_mm2,
    );
}

fn merge(agg: &mut copred::accel::AccelRunResult, r: &copred::accel::AccelRunResult) {
    agg.motions += r.motions;
    agg.colliding_motions += r.colliding_motions;
    agg.total_cycles += r.total_cycles;
    agg.events.merge(&r.events);
}
