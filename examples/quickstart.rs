//! Quickstart: predict collisions for a planar robot crossing a wall.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use copred::collision::{check_motion_scheduled, Environment, Schedule};
use copred::core::Predictor;
use copred::geometry::{Aabb, Vec3};
use copred::kinematics::{presets, Config, Motion, Robot};

fn main() {
    // A 2D disc robot in a ±1 m workspace with a wall on the right half.
    let robot: Robot = presets::planar_2d().into();
    let env = Environment::new(
        robot.workspace(),
        vec![Aabb::new(
            Vec3::new(0.2, -1.0, -0.1),
            Vec3::new(0.6, 1.0, 0.1),
        )],
    );

    // The paper's COORD predictor with its default table (1024 entries for
    // 2D planning, S = 1, U = 0.125).
    let mut predictor = Predictor::coord_default(&robot, 42);

    println!("motion                         | outcome   | CSP CDQs | COORD CDQs");
    println!("-------------------------------+-----------+----------+-----------");
    // Physically nearby motions (the paper's key insight: spatial locality
    // of CDQ outcomes) — each crossing shifted by 1 cm.
    for (i, y) in [0.00, 0.01, 0.02, 0.03, 0.04].iter().enumerate() {
        let motion = Motion::new(Config::new(vec![-0.8, *y]), Config::new(vec![0.8, *y]));
        let poses = motion.discretize(33);
        // Reference: the coarse-step scheduling baseline.
        let csp = check_motion_scheduled(&robot, &env, &poses, Schedule::csp_default());
        // COORD: Algorithm 1 (history persists across motions of a query).
        let coord = predictor.check_motion(&robot, &env, &poses);
        assert_eq!(
            csp.colliding, coord.colliding,
            "prediction never changes answers"
        );
        println!(
            "#{} crossing at y = {:+.2}       | {} | {:8} | {:9}{}",
            i,
            y,
            if coord.colliding {
                "colliding"
            } else {
                "free     "
            },
            csp.cdqs_executed,
            coord.cdqs_executed,
            if i == 0 { "  (cold table)" } else { "" },
        );
    }
    println!();
    println!(
        "After the first (cold) motion the history table knows where the wall \
         is; later colliding motions need only ~1 CDQ instead of walking the \
         CSP schedule."
    );
}
