//! Accelerator design-space exploration: sweep CDU count, QNONCOLL size,
//! and the prediction strategy S on one workload, printing the CDQ
//! reduction and speedup grid — the knobs DESIGN.md calls out as ablations.
//!
//! ```sh
//! cargo run --release --example accel_design_space
//! ```

use copred::accel::{AccelConfig, AccelSim};
use copred::collision::motion_collides;
use copred::core::{ChtParams, CoordHash, Strategy};
use copred::geometry::{Aabb, Vec3};
use copred::kinematics::{presets, Motion, Robot};
use copred::planners::{MotionRecord, PlanLog, Stage};
use copred::trace::QueryTrace;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // A cluttered KUKA scene with a batch of nontrivial motions.
    let robot: Robot = presets::kuka_iiwa().into();
    let env = copred::collision::Environment::new(
        robot.workspace(),
        vec![
            Aabb::from_center_half_extents(Vec3::new(0.45, 0.1, 0.45), Vec3::splat(0.22)),
            Aabb::from_center_half_extents(Vec3::new(-0.35, -0.35, 0.55), Vec3::splat(0.18)),
            Aabb::from_center_half_extents(Vec3::new(0.0, 0.5, 0.3), Vec3::splat(0.16)),
        ],
    );
    let mut rng = StdRng::seed_from_u64(11);
    let records: Vec<MotionRecord> = (0..150)
        .map(|_| {
            let poses = Motion::new(
                robot.sample_uniform(&mut rng),
                robot.sample_uniform(&mut rng),
            )
            .discretize(20);
            let colliding = motion_collides(&robot, &env, &poses);
            MotionRecord {
                poses,
                stage: Stage::Explore,
                colliding,
            }
        })
        .collect();
    let trace = QueryTrace::from_log(&robot, &env, &PlanLog { records });
    let hash = CoordHash::paper_default(&robot);

    let run = |cfg: AccelConfig| {
        let mut sim = AccelSim::new(cfg, hash.clone());
        sim.run_query(&trace.motions)
    };

    println!("== CDU count sweep (CHT 4096x1, S=0) ==");
    println!("CDUs | base CDQs | COPU CDQs | reduction | speedup");
    for x in [1usize, 2, 4, 6, 8] {
        let b = run(AccelConfig::baseline(x));
        let c = run(AccelConfig::copu(x, ChtParams::paper_1bit()));
        println!(
            "  {x}  | {:9} | {:9} | {:+8.1}% | {:.2}x",
            b.cdqs_executed(),
            c.cdqs_executed(),
            (1.0 - c.cdqs_executed() as f64 / b.cdqs_executed() as f64) * 100.0,
            b.mean_latency() / c.mean_latency(),
        );
    }

    println!();
    println!("== QNONCOLL size sweep (4 CDUs) ==");
    let b4 = run(AccelConfig::baseline(4));
    println!("queue | COPU CDQs | reduction");
    for q in [2usize, 8, 24, 56, 128] {
        let c = run(AccelConfig {
            qnoncoll_len: q,
            ..AccelConfig::copu(4, ChtParams::paper_1bit())
        });
        println!(
            "  {q:3} | {:9} | {:+8.1}%",
            c.cdqs_executed(),
            (1.0 - c.cdqs_executed() as f64 / b4.cdqs_executed() as f64) * 100.0,
        );
    }

    println!();
    println!("== strategy S sweep (4 CDUs, 4096x8 CHT) ==");
    println!("  S   | COPU CDQs | reduction");
    for s in [0.0, 0.25, 0.5, 1.0, 2.0] {
        let c = run(AccelConfig::copu(
            4,
            ChtParams {
                strategy: Strategy::new(s),
                ..ChtParams::paper_arm()
            },
        ));
        println!(
            " {s:4} | {:9} | {:+8.1}%",
            c.cdqs_executed(),
            (1.0 - c.cdqs_executed() as f64 / b4.cdqs_executed() as f64) * 100.0,
        );
    }
}
