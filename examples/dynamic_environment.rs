//! Dynamic environments and history lifetime.
//!
//! The paper's Fig. 8a observes that "depending upon the speed of obstacles
//! ... temporal-spatial locality exists ... the collision history of a time
//! frame can be used for the next time frame", while the hardware (§IV)
//! conservatively resets the CHT after every planning query "as obstacle
//! positions might change".
//!
//! This example sweeps an obstacle at two speeds and compares
//! reset-per-frame against kept history. Two things to notice: (1) outcomes
//! are identical either way — prediction only reorders checks, so stale
//! history is *safe*; (2) on these crossing workloads kept history wins at
//! both speeds (stale entries cost at most a few false-positive checks on
//! colliding motions and nothing on free ones), quantifying the Fig. 8a
//! headroom the hardware's conservative reset leaves on the table.
//!
//! ```sh
//! cargo run --release --example dynamic_environment
//! ```

use copred::collision::{check_motion_scheduled, Environment, Schedule};
use copred::core::Predictor;
use copred::geometry::{Aabb, Vec3};
use copred::kinematics::{presets, Config, Motion, Robot};

fn frame_env(robot: &Robot, t: usize, step: f64) -> Environment {
    // A block sweeping from left to right by `step` per frame (wrapping).
    let x = -0.7 + (step * t as f64) % 1.4;
    Environment::new(
        robot.workspace(),
        vec![Aabb::from_center_half_extents(
            Vec3::new(x, 0.0, 0.0),
            Vec3::new(0.12, 0.35, 0.1),
        )],
    )
}

/// Checks a batch of crossing motions; returns CDQs executed.
fn run_frame(robot: &Robot, env: &Environment, predictor: &mut Predictor) -> usize {
    let mut cdqs = 0;
    for i in 0..8 {
        let y = -0.3 + 0.08 * i as f64;
        let poses =
            Motion::new(Config::new(vec![-0.9, y]), Config::new(vec![0.9, y])).discretize(37);
        let out = predictor.check_motion(robot, env, &poses);
        // Soundness: stale or fresh, the outcome matches ground truth.
        let truth = check_motion_scheduled(robot, env, &poses, Schedule::Naive).colliding;
        assert_eq!(out.colliding, truth);
        cdqs += out.cdqs_executed;
    }
    cdqs
}

fn sweep(robot: &Robot, step: f64, frames: usize) -> (usize, usize) {
    let mut fresh = Predictor::coord_default(robot, 1);
    let mut stale = Predictor::coord_default(robot, 1);
    let (mut total_fresh, mut total_stale) = (0, 0);
    for t in 0..frames {
        let env = frame_env(robot, t, step);
        fresh.reset(); // the paper's per-query reset
        total_fresh += run_frame(robot, &env, &mut fresh);
        total_stale += run_frame(robot, &env, &mut stale); // never reset
    }
    (total_fresh, total_stale)
}

fn main() {
    let robot: Robot = presets::planar_2d().into();
    println!("obstacle speed | CDQs reset/frame | CDQs kept history | keeping history is");
    println!("---------------+------------------+-------------------+-------------------");
    for (label, step) in [("slow (6 cm/frame)", 0.06), ("fast (47 cm/frame)", 0.47)] {
        let (fresh, stale) = sweep(&robot, step, 12);
        let delta = stale as f64 / fresh as f64 - 1.0;
        println!(
            "{label:>14} | {fresh:16} | {stale:17} | {:+.1}% ({})",
            delta * 100.0,
            if delta < 0.0 { "better" } else { "worse" },
        );
    }
    println!();
    println!(
        "Keeping history across frames is safe (outcomes never change) and on \
         these workloads even profitable — the Fig. 8a temporal locality. The \
         hardware still clears the CHT per planning query: stale entries can \
         only waste checks, and the reset bounds that waste under arbitrary \
         obstacle dynamics without tracking obstacle speed."
    );
}
