//! # copred-trace
//!
//! Trace capture and replay: converts recorded planner workloads
//! ([`copred_planners::PlanLog`]) into self-contained CDQ traces with
//! precomputed ground truth — the equivalent of the paper artifact's "trace
//! files" that drive the predictor studies and the COPU+CDU
//! microarchitectural simulator without re-running forward kinematics or
//! narrow-phase collision detection.
//!
//! Traces serialize to a line-oriented text format (dependency-free) so
//! suites can be generated once and replayed by many harnesses.
//!
//! ## Example
//!
//! ```
//! use copred_trace::QueryTrace;
//! use copred_collision::Environment;
//! use copred_geometry::{Aabb, Vec3};
//! use copred_kinematics::{presets, Config, Robot};
//! use copred_planners::{PlanContext, Planner, Rrt};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let robot: Robot = presets::planar_2d().into();
//! let env = Environment::new(
//!     robot.workspace(),
//!     vec![Aabb::new(Vec3::new(-0.05, -1.0, -0.1), Vec3::new(0.05, 0.5, 0.1))],
//! );
//! let mut ctx = PlanContext::new(&robot, &env, 0.05);
//! let mut rng = StdRng::seed_from_u64(3);
//! Rrt::default().plan(&mut ctx, &Config::new(vec![-0.6, 0.0]), &Config::new(vec![0.6, 0.0]), &mut rng);
//! let log = ctx.into_log();
//! let trace = QueryTrace::from_log(&robot, &env, &log);
//! let text = trace.to_text();
//! let back = QueryTrace::from_text(&text).unwrap();
//! assert_eq!(trace.motions.len(), back.motions.len());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use copred_collision::{enumerate_motion_cdqs, CdqInfo, Environment};
use copred_geometry::Vec3;
use copred_kinematics::{Config, Robot};
use copred_planners::PlanLog;
use std::fmt::Write as _;

pub use copred_planners::Stage;

pub mod frame;

/// Hard cap applied to *declared* counts (`motion <stage> <poses> <cdqs>`)
/// before any allocation, so a malformed or hostile header cannot request
/// an absurd reservation. Actual content is still parsed line by line and
/// may legitimately exceed typical sizes up to this bound.
pub const MAX_DECLARED: usize = 1 << 20;

/// One CDQ in a trace: which sample pose and link it belongs to, the hash
/// input (link center), the ground-truth outcome, and its CDU cost.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceCdq {
    /// Sample-pose index within the motion.
    pub pose_idx: u32,
    /// Link index within the pose.
    pub link_idx: u32,
    /// Link center in world coordinates (COORD hash input).
    pub center: Vec3,
    /// Ground truth: does the CDQ collide?
    pub colliding: bool,
    /// Obstacle-pair tests an early-exit CDU evaluates for this CDQ.
    pub obstacle_tests: u32,
}

/// One recorded motion check: the sample poses, its stage, and every CDQ
/// with ground truth.
#[derive(Debug, Clone, PartialEq)]
pub struct MotionTrace {
    /// The issuing stage (S1 exploration / S2 validation).
    pub stage: Stage,
    /// Discretized sample poses.
    pub poses: Vec<Config>,
    /// All CDQs in pose-major order.
    pub cdqs: Vec<TraceCdq>,
}

impl MotionTrace {
    /// Whether any CDQ collides.
    pub fn colliding(&self) -> bool {
        self.cdqs.iter().any(|c| c.colliding)
    }

    /// Total CDQ count.
    pub fn cdq_count(&self) -> usize {
        self.cdqs.len()
    }

    /// Serializes this motion as a standalone `motion` block — the payload
    /// unit of the `copred-service` wire protocol (CHECK_MOTION /
    /// CHECK_POSE frames carry one block each).
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        self.write_text(&mut out);
        out
    }

    /// Appends this motion's `motion` block to `out`.
    pub fn write_text(&self, out: &mut String) {
        writeln!(
            out,
            "motion {} {} {}",
            self.stage.label(),
            self.poses.len(),
            self.cdqs.len()
        )
        .expect("string write");
        for p in &self.poses {
            write!(out, "pose").expect("string write");
            for v in p.values() {
                write!(out, " {v:.17e}").expect("string write");
            }
            writeln!(out).expect("string write");
        }
        for c in &self.cdqs {
            writeln!(
                out,
                "cdq {} {} {:.17e} {:.17e} {:.17e} {} {}",
                c.pose_idx,
                c.link_idx,
                c.center.x,
                c.center.y,
                c.center.z,
                u8::from(c.colliding),
                c.obstacle_tests
            )
            .expect("string write");
        }
    }

    /// Parses one standalone `motion` block produced by [`Self::to_text`].
    /// Rejects trailing content after the block.
    ///
    /// # Errors
    ///
    /// Returns a [`TraceParseError`] describing the first malformed line.
    pub fn from_text(text: &str) -> Result<Self, TraceParseError> {
        let mut lines = text.lines().enumerate();
        let (ln, header) = lines
            .next()
            .ok_or_else(|| TraceParseError::at(0, "empty motion block"))?;
        let motion = parse_motion_block(ln, header, &mut lines)?;
        if let Some((ln, _)) = lines.next() {
            return Err(TraceParseError::at(
                ln,
                "trailing content after motion block",
            ));
        }
        Ok(motion)
    }

    /// Converts to the collision crate's [`CdqInfo`] list so the reference
    /// schedulers can replay the motion. The OBB is reconstructed as a
    /// degenerate point box at the center (schedulers never re-execute
    /// geometry; only `colliding` / `obstacle_tests` matter).
    pub fn to_cdq_infos(&self) -> Vec<CdqInfo> {
        self.cdqs
            .iter()
            .map(|c| CdqInfo {
                pose_idx: c.pose_idx as usize,
                link_idx: c.link_idx as usize,
                center: c.center,
                obb: copred_geometry::Obb::axis_aligned(c.center, Vec3::ZERO),
                colliding: c.colliding,
                obstacle_tests: c.obstacle_tests as usize,
            })
            .collect()
    }
}

/// A full planning query's trace: every motion check in issue order.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryTrace {
    /// Robot identifier.
    pub robot_name: String,
    /// Links per pose (CDQs per pose check).
    pub link_count: u32,
    /// Motion checks in the order the planner issued them.
    pub motions: Vec<MotionTrace>,
}

impl QueryTrace {
    /// Builds a trace from a recorded plan log by enumerating all CDQs with
    /// ground truth against `env`.
    pub fn from_log(robot: &Robot, env: &Environment, log: &PlanLog) -> Self {
        let motions = log
            .records
            .iter()
            .map(|rec| {
                let cdqs = enumerate_motion_cdqs(robot, env, &rec.poses)
                    .into_iter()
                    .map(|c| TraceCdq {
                        pose_idx: c.pose_idx as u32,
                        link_idx: c.link_idx as u32,
                        center: c.center,
                        colliding: c.colliding,
                        obstacle_tests: c.obstacle_tests as u32,
                    })
                    .collect();
                MotionTrace {
                    stage: rec.stage,
                    poses: rec.poses.clone(),
                    cdqs,
                }
            })
            .collect();
        QueryTrace {
            robot_name: robot.name().to_string(),
            link_count: robot.link_count() as u32,
            motions,
        }
    }

    /// Total CDQs across all motions — the paper's difficulty proxy for a
    /// query.
    pub fn total_cdqs(&self) -> usize {
        self.motions.iter().map(MotionTrace::cdq_count).sum()
    }

    /// Fraction of motions that collide.
    pub fn colliding_fraction(&self) -> f64 {
        if self.motions.is_empty() {
            return 0.0;
        }
        self.motions.iter().filter(|m| m.colliding()).count() as f64 / self.motions.len() as f64
    }

    /// Motions issued by one stage.
    pub fn stage_motions(&self, stage: Stage) -> impl Iterator<Item = &MotionTrace> {
        self.motions.iter().filter(move |m| m.stage == stage)
    }

    /// Serializes to the line-oriented text format.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        writeln!(out, "query {} {}", self.robot_name, self.link_count).expect("string write");
        for m in &self.motions {
            m.write_text(&mut out);
        }
        out
    }

    /// Writes the trace to a file in the text format.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from creating or writing the file.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        std::fs::write(path, self.to_text())
    }

    /// Loads a trace from a file written by [`Self::save`].
    ///
    /// # Errors
    ///
    /// Returns an I/O error for unreadable files, or a parse error (wrapped
    /// as [`std::io::ErrorKind::InvalidData`]) for malformed contents.
    pub fn load(path: impl AsRef<std::path::Path>) -> std::io::Result<Self> {
        let text = std::fs::read_to_string(path)?;
        Self::from_text(&text).map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }

    /// Parses the text format produced by [`Self::to_text`].
    ///
    /// Every malformed input — truncated blocks, bad numbers, counts that
    /// overflow their integer type, out-of-range CDQ pose indices, or
    /// absurd declared sizes (see [`MAX_DECLARED`]) — returns `Err`; no
    /// input panics or over-allocates.
    ///
    /// # Errors
    ///
    /// Returns a [`TraceParseError`] describing the first malformed line.
    pub fn from_text(text: &str) -> Result<Self, TraceParseError> {
        let mut lines = text.lines().enumerate();
        let (ln, header) = lines
            .next()
            .ok_or_else(|| TraceParseError::at(0, "empty trace"))?;
        let mut h = header.split_whitespace();
        if h.next() != Some("query") {
            return Err(TraceParseError::at(ln, "expected 'query' header"));
        }
        let robot_name = h
            .next()
            .ok_or_else(|| TraceParseError::at(ln, "missing robot name"))?
            .to_string();
        let link_count: u32 = parse_field(h.next(), ln, "link count")?;
        if h.next().is_some() {
            return Err(TraceParseError::at(ln, "trailing fields on 'query' header"));
        }
        let mut motions = Vec::new();
        while let Some((ln, line)) = lines.next() {
            motions.push(parse_motion_block(ln, line, &mut lines)?);
        }
        Ok(QueryTrace {
            robot_name,
            link_count,
            motions,
        })
    }
}

/// Parses one `motion` block whose header line is already in hand;
/// consumes exactly the declared pose and cdq lines from `lines`.
///
/// Public so protocol layers that embed motion blocks inside larger
/// line-oriented payloads (e.g. `copred-service` batches) can reuse the
/// hardened parser instead of re-implementing it. `lines` must yield
/// `(line_number, line)` pairs, typically from `text.lines().enumerate()`.
///
/// # Errors
///
/// Returns a located [`TraceParseError`] for any malformed block.
pub fn parse_motion_block<'a>(
    header_ln: usize,
    header: &str,
    lines: &mut impl Iterator<Item = (usize, &'a str)>,
) -> Result<MotionTrace, TraceParseError> {
    let ln = header_ln;
    let mut f = header.split_whitespace();
    if f.next() != Some("motion") {
        return Err(TraceParseError::at(ln, "expected 'motion' line"));
    }
    let stage = match f.next() {
        Some("S1") => Stage::Explore,
        Some("S2") => Stage::Validate,
        _ => return Err(TraceParseError::at(ln, "bad stage label")),
    };
    let n_poses: usize = parse_field(f.next(), ln, "pose count")?;
    let n_cdqs: usize = parse_field(f.next(), ln, "cdq count")?;
    if f.next().is_some() {
        return Err(TraceParseError::at(ln, "trailing fields on 'motion' line"));
    }
    if n_poses > MAX_DECLARED || n_cdqs > MAX_DECLARED {
        return Err(TraceParseError::at(
            ln,
            "declared count exceeds MAX_DECLARED",
        ));
    }
    let mut poses = Vec::with_capacity(n_poses);
    for _ in 0..n_poses {
        let (ln, line) = lines
            .next()
            .ok_or_else(|| TraceParseError::at(ln, "truncated pose block"))?;
        let mut f = line.split_whitespace();
        if f.next() != Some("pose") {
            return Err(TraceParseError::at(ln, "expected 'pose' line"));
        }
        let vals: Result<Vec<f64>, _> = f.map(str::parse).collect();
        let vals = vals.map_err(|_| TraceParseError::at(ln, "bad pose value"))?;
        poses.push(Config::new(vals));
    }
    let mut cdqs = Vec::with_capacity(n_cdqs);
    for _ in 0..n_cdqs {
        let (ln, line) = lines
            .next()
            .ok_or_else(|| TraceParseError::at(ln, "truncated cdq block"))?;
        let mut f = line.split_whitespace();
        if f.next() != Some("cdq") {
            return Err(TraceParseError::at(ln, "expected 'cdq' line"));
        }
        let pose_idx: u32 = parse_field(f.next(), ln, "pose idx")?;
        let link_idx: u32 = parse_field(f.next(), ln, "link idx")?;
        let x: f64 = parse_field(f.next(), ln, "center x")?;
        let y: f64 = parse_field(f.next(), ln, "center y")?;
        let z: f64 = parse_field(f.next(), ln, "center z")?;
        let colliding: u8 = parse_field(f.next(), ln, "colliding flag")?;
        let obstacle_tests: u32 = parse_field(f.next(), ln, "obstacle tests")?;
        if f.next().is_some() {
            return Err(TraceParseError::at(ln, "trailing fields on 'cdq' line"));
        }
        if pose_idx as usize >= n_poses {
            // Out-of-range indices would panic downstream in the
            // schedulers' pose-block bucketing; reject them at the parse
            // boundary instead.
            return Err(TraceParseError::at(ln, "cdq pose idx out of range"));
        }
        cdqs.push(TraceCdq {
            pose_idx,
            link_idx,
            center: Vec3::new(x, y, z),
            colliding: colliding != 0,
            obstacle_tests,
        });
    }
    Ok(MotionTrace { stage, poses, cdqs })
}

fn parse_field<T: std::str::FromStr>(
    field: Option<&str>,
    line: usize,
    what: &str,
) -> Result<T, TraceParseError> {
    field
        .ok_or_else(|| TraceParseError::at(line, format!("missing {what}")))?
        .parse()
        .map_err(|_| TraceParseError::at(line, format!("bad {what}")))
}

/// Error describing a malformed trace file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceParseError {
    /// Zero-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl TraceParseError {
    fn at(line: usize, message: impl Into<String>) -> Self {
        TraceParseError {
            line,
            message: message.into(),
        }
    }
}

impl std::fmt::Display for TraceParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "trace parse error at line {}: {}",
            self.line + 1,
            self.message
        )
    }
}

impl std::error::Error for TraceParseError {}

#[cfg(test)]
mod tests {
    use super::*;
    use copred_geometry::Aabb;
    use copred_kinematics::{presets, Motion};
    use copred_planners::{PlanContext, Planner, Rrt};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_trace() -> (Robot, Environment, QueryTrace) {
        let robot: Robot = presets::planar_2d().into();
        let env = Environment::new(
            robot.workspace(),
            vec![Aabb::new(
                Vec3::new(-0.05, -1.0, -0.1),
                Vec3::new(0.05, 0.5, 0.1),
            )],
        );
        let mut ctx = PlanContext::new(&robot, &env, 0.05);
        let mut rng = StdRng::seed_from_u64(1);
        let _ = Rrt::default().plan(
            &mut ctx,
            &Config::new(vec![-0.6, 0.0]),
            &Config::new(vec![0.6, 0.0]),
            &mut rng,
        );
        let log = ctx.into_log();
        let trace = QueryTrace::from_log(&robot, &env, &log);
        (robot, env, trace)
    }

    #[test]
    fn trace_matches_log_shape() {
        let (robot, _, trace) = sample_trace();
        assert_eq!(trace.robot_name, robot.name());
        assert_eq!(trace.link_count, 1);
        assert!(!trace.motions.is_empty());
        for m in &trace.motions {
            assert_eq!(m.cdqs.len(), m.poses.len() * trace.link_count as usize);
        }
    }

    #[test]
    fn ground_truth_is_consistent() {
        let (robot, env, trace) = sample_trace();
        // Re-derive ground truth for a few motions and compare.
        for m in trace.motions.iter().take(10) {
            let colliding = copred_collision::motion_collides(&robot, &env, &m.poses);
            assert_eq!(m.colliding(), colliding);
        }
    }

    #[test]
    fn text_roundtrip_is_exact() {
        let (_, _, trace) = sample_trace();
        let text = trace.to_text();
        let back = QueryTrace::from_text(&text).expect("parse");
        assert_eq!(trace, back);
    }

    #[test]
    fn replay_through_schedulers() {
        let (_, _, trace) = sample_trace();
        use copred_collision::{run_schedule, Schedule};
        for m in &trace.motions {
            let infos = m.to_cdq_infos();
            let naive = run_schedule(&infos, m.poses.len(), Schedule::Naive);
            let oracle = run_schedule(&infos, m.poses.len(), Schedule::Oracle);
            assert_eq!(naive.colliding, m.colliding());
            if m.colliding() {
                assert_eq!(oracle.cdqs_executed, 1);
                assert!(naive.cdqs_executed >= 1);
            } else {
                assert_eq!(naive.cdqs_executed, m.cdq_count());
            }
        }
    }

    #[test]
    fn parse_errors_are_located() {
        assert!(QueryTrace::from_text("").is_err());
        assert!(QueryTrace::from_text("nonsense").is_err());
        let err = QueryTrace::from_text("query r 1\nmotion S3 1 1").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.to_string().contains("stage"));
        // Truncated cdq block.
        let err =
            QueryTrace::from_text("query r 1\nmotion S1 1 2\npose 0.0 0.0\ncdq 0 0 0 0 0 1 1")
                .unwrap_err();
        assert!(err.message.contains("truncated"));
    }

    #[test]
    fn parser_rejects_hostile_headers() {
        // A CDQ pointing at a pose that does not exist would panic in the
        // schedulers' pose bucketing; the parser must reject it.
        let err = QueryTrace::from_text("query r 1\nmotion S1 0 1\ncdq 0 0 0 0 0 1 1").unwrap_err();
        assert!(err.message.contains("out of range"), "{err}");
        let err = QueryTrace::from_text(
            "query r 1\nmotion S1 2 1\npose 0.0\npose 0.0\ncdq 5 0 0 0 0 1 1",
        )
        .unwrap_err();
        assert!(err.message.contains("out of range"), "{err}");
        // Declared counts that overflow or exceed the allocation cap.
        assert!(QueryTrace::from_text("query r 1\nmotion S1 99999999999999999999 0").is_err());
        let huge = format!("query r 1\nmotion S1 {} 0", usize::MAX);
        assert!(QueryTrace::from_text(&huge).is_err());
        let big = format!("query r 1\nmotion S1 {} 0", crate::MAX_DECLARED + 1);
        let err = QueryTrace::from_text(&big).unwrap_err();
        assert!(err.message.contains("MAX_DECLARED"), "{err}");
    }

    #[test]
    fn motion_block_roundtrip_standalone() {
        let (_, _, trace) = sample_trace();
        let m = &trace.motions[0];
        let text = m.to_text();
        let back = MotionTrace::from_text(&text).expect("parse motion block");
        assert_eq!(&back, m);
        // Trailing garbage after a standalone block is rejected.
        let mut with_junk = text.clone();
        with_junk.push_str("junk line\n");
        assert!(MotionTrace::from_text(&with_junk).is_err());
        assert!(MotionTrace::from_text("").is_err());
    }

    #[test]
    fn difficulty_proxy_counts_all_cdqs() {
        let (_, _, trace) = sample_trace();
        let total: usize = trace.motions.iter().map(|m| m.cdqs.len()).sum();
        assert_eq!(trace.total_cdqs(), total);
        assert!(trace.colliding_fraction() > 0.0);
    }

    #[test]
    fn stage_filter() {
        let (_, _, trace) = sample_trace();
        let s1 = trace.stage_motions(Stage::Explore).count();
        let s2 = trace.stage_motions(Stage::Validate).count();
        assert_eq!(s1 + s2, trace.motions.len());
        assert!(s2 > 0, "validated path missing from trace");
    }

    #[test]
    fn empty_trace_roundtrip() {
        let robot: Robot = presets::planar_2d().into();
        let env = Environment::empty(robot.workspace());
        let trace = QueryTrace::from_log(&robot, &env, &PlanLog::default());
        let back = QueryTrace::from_text(&trace.to_text()).unwrap();
        assert_eq!(trace, back);
        assert_eq!(back.total_cdqs(), 0);
        assert_eq!(back.colliding_fraction(), 0.0);
    }

    #[test]
    fn save_load_roundtrip() {
        let (_, _, trace) = sample_trace();
        let path = std::env::temp_dir().join("copred_trace_roundtrip.trace");
        trace.save(&path).expect("save");
        let back = QueryTrace::load(&path).expect("load");
        std::fs::remove_file(&path).ok();
        assert_eq!(back, trace);
    }

    #[test]
    fn load_rejects_garbage_file() {
        let path = std::env::temp_dir().join("copred_trace_garbage.trace");
        std::fs::write(&path, "not a trace").unwrap();
        let err = QueryTrace::load(&path).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }

    #[test]
    fn trace_from_manual_motion() {
        // Traces can also be built directly from a hand-rolled log.
        let robot: Robot = presets::planar_2d().into();
        let env = Environment::new(
            robot.workspace(),
            vec![Aabb::new(
                Vec3::new(-0.05, -1.0, -0.1),
                Vec3::new(0.05, 1.0, 0.1),
            )],
        );
        let poses =
            Motion::new(Config::new(vec![-0.5, 0.0]), Config::new(vec![0.5, 0.0])).discretize(11);
        let log = PlanLog {
            records: vec![copred_planners::MotionRecord {
                poses: poses.clone(),
                stage: Stage::Explore,
                colliding: true,
            }],
        };
        let trace = QueryTrace::from_log(&robot, &env, &log);
        assert_eq!(trace.motions.len(), 1);
        assert!(trace.motions[0].colliding());
        assert_eq!(trace.motions[0].cdqs.len(), 11);
    }
}
