//! Length-prefixed framing for trace-format payloads on byte streams.
//!
//! The `copred-service` wire protocol sends text payloads (the same
//! line-oriented encoding as [`crate::QueryTrace::to_text`]) as frames of
//! `u32` big-endian length followed by that many bytes. Framing lives here
//! so the client, the server, and offline tools share one implementation
//! and one maximum-size policy.

use std::io::{self, Read, Write};

/// Largest accepted frame payload (16 MiB). A length prefix above this is
/// treated as a protocol error rather than an allocation request.
pub const MAX_FRAME_LEN: usize = 16 << 20;

/// Granularity of payload reads in [`read_frame`]. The buffer grows by at
/// most this much ahead of the bytes actually received, so a peer that
/// declares a huge frame and then stalls (or disconnects) costs one chunk
/// of memory, not the declared length.
const READ_CHUNK: usize = 64 << 10;

/// Writes one length-prefixed frame.
///
/// # Errors
///
/// Returns any underlying I/O error, or [`io::ErrorKind::InvalidInput`]
/// when `payload` exceeds [`MAX_FRAME_LEN`].
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    if payload.len() > MAX_FRAME_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("frame of {} bytes exceeds MAX_FRAME_LEN", payload.len()),
        ));
    }
    let len = payload.len() as u32;
    w.write_all(&len.to_be_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one length-prefixed frame.
///
/// Returns `Ok(None)` on a clean end of stream (EOF before any header
/// byte). EOF in the middle of a header or payload is an
/// [`io::ErrorKind::UnexpectedEof`] error.
///
/// # Errors
///
/// Returns any underlying I/O error, or [`io::ErrorKind::InvalidData`]
/// when the length prefix exceeds [`MAX_FRAME_LEN`].
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    let mut header = [0u8; 4];
    let mut got = 0;
    while got < header.len() {
        match r.read(&mut header[got..]) {
            Ok(0) if got == 0 => return Ok(None),
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "stream ended inside a frame header",
                ))
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    let len = u32::from_be_bytes(header) as usize;
    if len > MAX_FRAME_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds MAX_FRAME_LEN"),
        ));
    }
    // Read incrementally instead of trusting the prefix with a single
    // up-front `vec![0; len]`: allocation tracks bytes received, so a
    // lying or slow client can't make us commit MAX_FRAME_LEN per
    // connection before sending a byte.
    let mut payload = Vec::with_capacity(len.min(READ_CHUNK));
    while payload.len() < len {
        let target = (payload.len() + READ_CHUNK).min(len);
        let filled = payload.len();
        payload.resize(target, 0);
        let mut got = filled;
        while got < target {
            match r.read(&mut payload[got..target]) {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "stream ended inside a frame payload",
                    ))
                }
                Ok(n) => got += n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    }
    Ok(Some(payload))
}

/// Convenience for text payloads: frames `text` as UTF-8.
///
/// # Errors
///
/// Same as [`write_frame`].
pub fn write_text_frame(w: &mut impl Write, text: &str) -> io::Result<()> {
    write_frame(w, text.as_bytes())
}

/// Convenience for text payloads: reads one frame and decodes UTF-8.
///
/// # Errors
///
/// Same as [`read_frame`], plus [`io::ErrorKind::InvalidData`] for
/// non-UTF-8 payloads.
pub fn read_text_frame(r: &mut impl Read) -> io::Result<Option<String>> {
    match read_frame(r)? {
        None => Ok(None),
        Some(bytes) => String::from_utf8(bytes)
            .map(Some)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "frame is not UTF-8")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn roundtrip_several_frames() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        write_text_frame(&mut buf, "motion S1 0 0\n").unwrap();
        let mut r = Cursor::new(buf);
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some(&b"hello"[..]));
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some(&b""[..]));
        assert_eq!(
            read_text_frame(&mut r).unwrap().as_deref(),
            Some("motion S1 0 0\n")
        );
        assert!(read_frame(&mut r).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn truncated_header_and_payload_are_errors() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"abcdef").unwrap();
        // Cut inside the payload.
        let cut = &buf[..buf.len() - 2];
        let err = read_frame(&mut Cursor::new(cut)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
        // Cut inside the header.
        let err = read_frame(&mut Cursor::new(&buf[..2])).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn oversized_length_prefix_rejected_without_allocation() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(u32::MAX).to_be_bytes());
        let err = read_frame(&mut Cursor::new(buf)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn oversized_payload_rejected_on_write() {
        struct NullWriter;
        impl std::io::Write for NullWriter {
            fn write(&mut self, b: &[u8]) -> std::io::Result<usize> {
                Ok(b.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        // A zero-filled huge slice would be slow to build; use a fake
        // length via the public contract instead: MAX_FRAME_LEN is the
        // boundary, so MAX_FRAME_LEN bytes must be accepted.
        let ok = vec![0u8; 1024];
        assert!(write_frame(&mut NullWriter, &ok).is_ok());
    }

    #[test]
    fn non_utf8_text_frame_is_invalid_data() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &[0xFF, 0xFE, 0x00]).unwrap();
        let err = read_text_frame(&mut Cursor::new(buf)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }
}
