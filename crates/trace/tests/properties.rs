//! Property-based tests for trace serialization and replay.

use copred_collision::{run_schedule, Schedule};
use copred_geometry::Vec3;
use copred_kinematics::Config;
use copred_planners::Stage;
use copred_trace::{MotionTrace, QueryTrace, TraceCdq};
use proptest::prelude::*;

fn arbitrary_trace() -> impl Strategy<Value = QueryTrace> {
    let motion = (1usize..6, 1usize..4).prop_flat_map(|(n_poses, links)| {
        let n = n_poses * links;
        (
            prop::collection::vec(any::<bool>(), n),
            prop::collection::vec(0u32..20, n),
            prop::collection::vec(-10.0..10.0f64, n * 3),
            prop::collection::vec(-3.0..3.0f64, n_poses * 2),
            prop::bool::ANY,
        )
            .prop_map(
                move |(outcomes, costs, coords, dofs, validate)| MotionTrace {
                    stage: if validate {
                        Stage::Validate
                    } else {
                        Stage::Explore
                    },
                    poses: dofs.chunks(2).map(|c| Config::new(c.to_vec())).collect(),
                    cdqs: (0..n)
                        .map(|i| TraceCdq {
                            pose_idx: (i / links) as u32,
                            link_idx: (i % links) as u32,
                            center: Vec3::new(coords[3 * i], coords[3 * i + 1], coords[3 * i + 2]),
                            colliding: outcomes[i],
                            obstacle_tests: costs[i],
                        })
                        .collect(),
                },
            )
    });
    (prop::collection::vec(motion, 0..6), 1u32..8).prop_map(|(motions, link_count)| QueryTrace {
        robot_name: "prop-robot".to_string(),
        link_count,
        motions,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn text_roundtrip_is_lossless(trace in arbitrary_trace()) {
        let text = trace.to_text();
        let back = QueryTrace::from_text(&text).expect("parse back");
        prop_assert_eq!(back, trace);
    }

    #[test]
    fn schedules_preserve_outcome_and_bounds(trace in arbitrary_trace()) {
        for m in &trace.motions {
            let infos = m.to_cdq_infos();
            for s in [Schedule::Naive, Schedule::Csp { step: 3 }, Schedule::Oracle] {
                let out = run_schedule(&infos, m.poses.len(), s);
                prop_assert_eq!(out.colliding, m.colliding());
                prop_assert!(out.cdqs_executed <= m.cdq_count());
                if !m.colliding() {
                    prop_assert_eq!(out.cdqs_executed, m.cdq_count());
                }
            }
        }
    }

    #[test]
    fn totals_are_sums(trace in arbitrary_trace()) {
        let n: usize = trace.motions.iter().map(MotionTrace::cdq_count).sum();
        prop_assert_eq!(trace.total_cdqs(), n);
        let f = trace.colliding_fraction();
        prop_assert!((0.0..=1.0).contains(&f));
    }
}

/// One mutation applied to a valid trace text: the fuzz moves that have
/// historically broken hand-rolled parsers (truncation, line churn, token
/// corruption, numeric overflow).
fn mutate(text: &str, kind: u8, pos: usize) -> String {
    let lines: Vec<&str> = text.lines().collect();
    match kind % 6 {
        // Truncate mid-character-stream.
        0 => text.chars().take(pos % (text.len() + 1)).collect(),
        // Drop a line.
        1 if !lines.is_empty() => {
            let drop = pos % lines.len();
            lines
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != drop)
                .map(|(_, l)| *l)
                .collect::<Vec<_>>()
                .join("\n")
        }
        // Duplicate a line.
        2 if !lines.is_empty() => {
            let dup = pos % lines.len();
            let mut out: Vec<&str> = Vec::with_capacity(lines.len() + 1);
            for (i, l) in lines.iter().enumerate() {
                out.push(l);
                if i == dup {
                    out.push(l);
                }
            }
            out.join("\n")
        }
        // Replace one whitespace-separated token with garbage.
        3 | 4 => {
            let garbage = ["999999999999999999999", "-1", "NaN", "", "cdq", "motion"];
            let g = garbage[pos % garbage.len()];
            let tokens: Vec<&str> = text.split(' ').collect();
            if tokens.is_empty() {
                return g.to_string();
            }
            let target = pos % tokens.len();
            tokens
                .iter()
                .enumerate()
                .map(|(i, t)| if i == target { g } else { *t })
                .collect::<Vec<_>>()
                .join(" ")
        }
        // Splice random bytes into the middle.
        _ => {
            let at = pos % (text.len() + 1);
            let mut out = String::with_capacity(text.len() + 8);
            out.push_str(&text[..floor_char_boundary(text, at)]);
            out.push_str("\u{0}\u{7f}garbage 42");
            out.push_str(&text[floor_char_boundary(text, at)..]);
            out
        }
    }
}

fn floor_char_boundary(s: &str, mut i: usize) -> usize {
    i = i.min(s.len());
    while i > 0 && !s.is_char_boundary(i) {
        i -= 1;
    }
    i
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The hardening property (fuzz-style): feeding arbitrarily mutated
    /// valid traces to the parser never panics — every malformed input
    /// surfaces as `Err`, and anything accepted re-serializes cleanly.
    #[test]
    fn parser_never_panics_on_mutations(
        trace in arbitrary_trace(),
        kinds in prop::collection::vec((0u8..6, 0usize..10_000), 1..4),
    ) {
        let mut text = trace.to_text();
        for (kind, pos) in kinds {
            text = mutate(&text, kind, pos);
        }
        if let Ok(parsed) = QueryTrace::from_text(&text) {
            // Whatever the parser accepts must be safely replayable: the
            // roundtrip must succeed and every CDQ index must be in range.
            let again = QueryTrace::from_text(&parsed.to_text()).expect("accepted traces roundtrip");
            prop_assert_eq!(again.total_cdqs(), parsed.total_cdqs());
            for m in &parsed.motions {
                for c in &m.cdqs {
                    prop_assert!((c.pose_idx as usize) < m.poses.len());
                }
            }
        }
    }
}
