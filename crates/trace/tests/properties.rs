//! Property-based tests for trace serialization and replay.

use copred_collision::{run_schedule, Schedule};
use copred_geometry::Vec3;
use copred_kinematics::Config;
use copred_planners::Stage;
use copred_trace::{MotionTrace, QueryTrace, TraceCdq};
use proptest::prelude::*;

fn arbitrary_trace() -> impl Strategy<Value = QueryTrace> {
    let motion = (1usize..6, 1usize..4).prop_flat_map(|(n_poses, links)| {
        let n = n_poses * links;
        (
            prop::collection::vec(any::<bool>(), n),
            prop::collection::vec(0u32..20, n),
            prop::collection::vec(-10.0..10.0f64, n * 3),
            prop::collection::vec(-3.0..3.0f64, n_poses * 2),
            prop::bool::ANY,
        )
            .prop_map(move |(outcomes, costs, coords, dofs, validate)| MotionTrace {
                stage: if validate { Stage::Validate } else { Stage::Explore },
                poses: dofs.chunks(2).map(|c| Config::new(c.to_vec())).collect(),
                cdqs: (0..n)
                    .map(|i| TraceCdq {
                        pose_idx: (i / links) as u32,
                        link_idx: (i % links) as u32,
                        center: Vec3::new(coords[3 * i], coords[3 * i + 1], coords[3 * i + 2]),
                        colliding: outcomes[i],
                        obstacle_tests: costs[i],
                    })
                    .collect(),
            })
    });
    (prop::collection::vec(motion, 0..6), 1u32..8).prop_map(|(motions, link_count)| QueryTrace {
        robot_name: "prop-robot".to_string(),
        link_count,
        motions,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn text_roundtrip_is_lossless(trace in arbitrary_trace()) {
        let text = trace.to_text();
        let back = QueryTrace::from_text(&text).expect("parse back");
        prop_assert_eq!(back, trace);
    }

    #[test]
    fn schedules_preserve_outcome_and_bounds(trace in arbitrary_trace()) {
        for m in &trace.motions {
            let infos = m.to_cdq_infos();
            for s in [Schedule::Naive, Schedule::Csp { step: 3 }, Schedule::Oracle] {
                let out = run_schedule(&infos, m.poses.len(), s);
                prop_assert_eq!(out.colliding, m.colliding());
                prop_assert!(out.cdqs_executed <= m.cdq_count());
                if !m.colliding() {
                    prop_assert_eq!(out.cdqs_executed, m.cdq_count());
                }
            }
        }
    }

    #[test]
    fn totals_are_sums(trace in arbitrary_trace()) {
        let n: usize = trace.motions.iter().map(MotionTrace::cdq_count).sum();
        prop_assert_eq!(trace.total_cdqs(), n);
        let f = trace.colliding_fraction();
        prop_assert!((0.0..=1.0).contains(&f));
    }
}
