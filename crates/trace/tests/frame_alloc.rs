//! Regression test: `read_frame` must not allocate the declared frame
//! length up front. A peer that sends a 16 MiB length prefix and then
//! stalls or disconnects used to cost a 16 MiB `vec!` before any payload
//! byte arrived; reads are now chunked so allocation tracks bytes
//! actually received.
//!
//! This lives in its own integration binary (one test) because it uses a
//! counting global allocator, and peak-allocation measurements from
//! concurrently running tests would pollute each other.

use std::alloc::{GlobalAlloc, Layout, System};
use std::io::{self, Read};
use std::sync::atomic::{AtomicUsize, Ordering};

use copred_trace::frame::{read_frame, MAX_FRAME_LEN};

/// System allocator that tracks the largest single allocation since the
/// last reset.
struct MaxAlloc {
    peak_single: AtomicUsize,
}

static ALLOC: MaxAlloc = MaxAlloc {
    peak_single: AtomicUsize::new(0),
};

#[global_allocator]
static GLOBAL: &MaxAlloc = &ALLOC;

unsafe impl GlobalAlloc for &'static MaxAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        self.peak_single.fetch_max(layout.size(), Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        self.peak_single.fetch_max(new_size, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

/// A reader that presents a frame header claiming `declared` payload bytes
/// and then hangs up after `sent` actual payload bytes.
struct LyingPeer {
    bytes: Vec<u8>,
    pos: usize,
}

impl LyingPeer {
    fn new(declared: u32, sent: usize) -> Self {
        let mut bytes = declared.to_be_bytes().to_vec();
        bytes.extend(std::iter::repeat_n(0xAB, sent));
        LyingPeer { bytes, pos: 0 }
    }
}

impl Read for LyingPeer {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let n = buf.len().min(self.bytes.len() - self.pos);
        buf[..n].copy_from_slice(&self.bytes[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

#[test]
fn lying_length_prefix_does_not_amplify_allocation() {
    // A peer declaring the full 16 MiB but sending nothing must not cost
    // anything near 16 MiB. Budget: one read chunk plus slack for the
    // test harness's own allocations.
    const BUDGET: usize = 256 << 10;

    ALLOC.peak_single.store(0, Ordering::Relaxed);
    let err = read_frame(&mut LyingPeer::new(MAX_FRAME_LEN as u32, 0)).unwrap_err();
    assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    let peak = ALLOC.peak_single.load(Ordering::Relaxed);
    assert!(
        peak <= BUDGET,
        "read_frame allocated {peak} bytes for a 16 MiB claim with no payload"
    );

    // Same claim, a few KiB actually delivered: allocation tracks delivery.
    ALLOC.peak_single.store(0, Ordering::Relaxed);
    let err = read_frame(&mut LyingPeer::new(MAX_FRAME_LEN as u32, 8 << 10)).unwrap_err();
    assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    let peak = ALLOC.peak_single.load(Ordering::Relaxed);
    assert!(
        peak <= BUDGET,
        "read_frame allocated {peak} bytes after only 8 KiB of payload"
    );

    // An honest large frame still round-trips.
    let payload = vec![0x5Au8; 300 << 10];
    let mut wire = Vec::new();
    copred_trace::frame::write_frame(&mut wire, &payload).unwrap();
    let got = read_frame(&mut io::Cursor::new(wire)).unwrap().unwrap();
    assert_eq!(got, payload);
}
