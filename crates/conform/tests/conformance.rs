//! Integration tests for the conformance harness, including regression
//! tests for the divergences the harness flushed out (fixed in the same
//! change that introduced it):
//!
//! * the confusion ledger `tp + fp + tn + fn == cdqs_issued` used to break
//!   under early exit (predictions were classified at predict time, and a
//!   schedule predicts more CDQs than it executes);
//! * 1-bit `ConcurrentCht` tables used to record NONCOLL outcomes that the
//!   reference `Cht` never stores, flipping predictions.

use copred_conform::{replay_batch_in_process, run_all, ConformConfig, ScenarioGen};
use copred_core::{Cht, ChtParams, Strategy};
use copred_service::{SchedMode, SessionRegistry};
use copred_swexec::ConcurrentCht;
use std::sync::atomic::Ordering;

#[test]
fn default_scale_run_counts_enough_iterations() {
    // The CI gate demands >= 200 differential iterations; verify the
    // default configuration clears the floor (with a reduced fault stage
    // to keep test wall-time sane — the bin defaults are larger).
    let cfg = ConformConfig::default();
    assert!(
        cfg.schedule_iters + cfg.service_traces + cfg.fault_cases >= 200,
        "default config must clear the 200-iteration CI floor"
    );
}

#[test]
fn confusion_ledger_balances_under_early_exit() {
    // Regression: run a coord session over workloads with plenty of
    // colliding motions (early exit leaves predicted-but-never-executed
    // CDQs) and check every executed CDQ is classified exactly once.
    let registry = SessionRegistry::new(ChtParams::paper_2d(), 4);
    let (session, _) = registry.open("planar-2d", SchedMode::Coord, 321).unwrap();
    let gen = ScenarioGen::new(77);
    for i in 0..12 {
        let trace = gen.query_trace(i);
        replay_batch_in_process(&session, &trace.motions, 5);
    }
    let m = &session.metrics;
    let confusion = m.true_pos.load(Ordering::Relaxed)
        + m.false_pos.load(Ordering::Relaxed)
        + m.true_neg.load(Ordering::Relaxed)
        + m.false_neg.load(Ordering::Relaxed);
    let issued = m.cdqs_issued.load(Ordering::Relaxed);
    assert!(issued > 0, "workload executed no CDQs");
    assert_eq!(
        confusion, issued,
        "every executed CDQ must be classified exactly once \
         (tp+fp+tn+fn = {confusion}, cdqs_issued = {issued})"
    );
    // With early exit the schedule must have *predicted* more CDQs than it
    // executed at least once across this workload; the old predict-time
    // counting would then have overshot. Check the workload actually
    // exercised early exit, so this regression test has teeth.
    let total = m.cdqs_total.load(Ordering::Relaxed);
    assert!(
        issued < total,
        "workload never early-exited ({issued} of {total})"
    );
}

#[test]
fn concurrent_cht_matches_reference_cht_across_counter_widths() {
    // Differential parity: the same (code, outcome) stream through the
    // single-threaded reference Cht and the shared ConcurrentCht must
    // leave identical predictions for every touched code. U = 1.0 removes
    // the RNG so the comparison is exact. counter_bits = 1 is the
    // regression case: the shared table used to store NONCOLL where the
    // reference never does.
    for counter_bits in [1u32, 2, 4] {
        let params = ChtParams {
            bits: 8,
            counter_bits,
            strategy: Strategy::new(1.0),
            update_fraction: 1.0,
        };
        let mut reference = Cht::new(params, 9);
        let shared = ConcurrentCht::new(params);
        // A deterministic mixed stream over a handful of codes.
        let mut z = 0x1234_5678u64;
        for _ in 0..400 {
            z ^= z << 13;
            z ^= z >> 7;
            z ^= z << 17;
            let code = z % 16;
            let colliding = z & 2 == 0;
            reference.observe(code, colliding);
            shared.observe(code, colliding, 0.0);
        }
        for code in 0..16u64 {
            assert_eq!(
                reference.predict(code),
                shared.predict(code),
                "counter_bits={counter_bits} code={code}: shared CHT diverged from reference"
            );
        }
    }
}

#[test]
fn full_harness_finds_nothing_at_moderate_scale() {
    let report = run_all(&ConformConfig {
        seed: 0xBEEF,
        schedule_iters: 40,
        service_traces: 8,
        fault_cases: 24,
        store_cases: 2,
        replay_cases: 2,
        trace_cases: 1,
        profile_cases: 1,
        fleet_cases: 1,
    });
    assert!(report.is_clean(), "{:?}", report.failures);
    assert!(report.service_checks > 0);
    assert!(report.fault_cases > 24, "live scenarios must run too");
    assert!(
        report.store_cases >= 4,
        "persistence scenarios must run too"
    );
    assert!(
        report.replay_cases == 2 && report.replay_ops > 0,
        "record→replay scenarios must run too"
    );
    assert!(
        report.profile_cases == 1 && report.profile_ops > 0,
        "profiling-invisibility scenarios must run too"
    );
    assert!(
        report.fleet_cases == 1 && report.fleet_ops > 0,
        "fleet scenarios must run too"
    );
}
