//! Fault injection: adversarial bytes against the frame codec and live
//! fault scenarios against a running server.
//!
//! The harness speaks raw TCP through a [`FaultyStream`] wrapper that can
//! split writes into tiny chunks, truncate mid-frame, or corrupt the
//! length prefix — the torn-input shapes a real deployment sees from
//! crashing or hostile peers. After every scenario a healthy client must
//! still complete a full open/check/close round trip and the session pool
//! must drain back to empty: a malformed peer may lose its own
//! connection, never the server.

use crate::generate::ScenarioGen;
use copred_geometry::Vec3;
use copred_kinematics::Config;
use copred_service::client::stat_u64;
use copred_service::{SchedMode, ServiceClient};
use copred_trace::frame::{read_frame, read_text_frame, write_frame, MAX_FRAME_LEN};
use copred_trace::{MotionTrace, Stage, TraceCdq};
use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// How a [`FaultyStream`] distorts outgoing bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WritePlan {
    /// Pass writes through unchanged.
    Clean,
    /// Split every write into chunks of at most `chunk` bytes (with a
    /// flush between chunks), simulating a peer trickling a frame.
    SplitWrites {
        /// Maximum bytes per underlying write.
        chunk: usize,
    },
    /// Silently drop everything after the first `bytes` bytes — the shape
    /// of a peer crashing mid-frame.
    TruncateAfter {
        /// Bytes actually delivered before the "crash".
        bytes: usize,
    },
    /// Replace the first four bytes written (the frame length prefix) with
    /// this big-endian value.
    CorruptLenPrefix {
        /// The lying length.
        value: u32,
    },
}

/// A `Read + Write` wrapper injecting transport faults.
#[derive(Debug)]
pub struct FaultyStream<S> {
    inner: S,
    plan: WritePlan,
    written: usize,
    /// Cap on bytes returned per `read` call (`None` = passthrough),
    /// modeling an adversarially slow peer on the receive side.
    pub max_read: Option<usize>,
}

impl<S> FaultyStream<S> {
    /// Wraps `inner` under `plan`.
    pub fn new(inner: S, plan: WritePlan) -> Self {
        FaultyStream {
            inner,
            plan,
            written: 0,
            max_read: None,
        }
    }

    /// The wrapped stream.
    pub fn get_ref(&self) -> &S {
        &self.inner
    }
}

impl<S: Read> Read for FaultyStream<S> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let cap = self.max_read.unwrap_or(buf.len()).max(1).min(buf.len());
        self.inner.read(&mut buf[..cap])
    }
}

impl<S: Write> Write for FaultyStream<S> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self.plan {
            WritePlan::Clean => self.inner.write(buf),
            WritePlan::SplitWrites { chunk } => {
                let n = buf.len().min(chunk.max(1));
                let written = self.inner.write(&buf[..n])?;
                self.inner.flush()?;
                Ok(written)
            }
            WritePlan::TruncateAfter { bytes } => {
                if self.written >= bytes {
                    // Pretend delivery: the peer "crashed", the caller
                    // keeps writing into the void.
                    self.written += buf.len();
                    return Ok(buf.len());
                }
                let n = buf.len().min(bytes - self.written);
                let written = self.inner.write(&buf[..n])?;
                self.written += written;
                // Report full success so the caller finishes its frame.
                Ok(if written == n { buf.len() } else { written })
            }
            WritePlan::CorruptLenPrefix { value } => {
                if self.written < 4 {
                    let prefix = value.to_be_bytes();
                    let n = buf.len().min(4 - self.written);
                    self.inner
                        .write_all(&prefix[self.written..self.written + n])?;
                    self.written += n;
                    return Ok(n);
                }
                self.written += buf.len();
                self.inner.write(buf)
            }
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

/// Feeds one adversarial byte buffer to the frame codec. The codec must
/// return a structured `Ok`/`Err` — any panic is a conformance failure.
pub fn fuzz_codec_case(bytes: &[u8], max_read: Option<usize>) -> Result<(), String> {
    let result = catch_unwind(AssertUnwindSafe(|| {
        let mut stream = FaultyStream::new(io::Cursor::new(bytes.to_vec()), WritePlan::Clean);
        stream.max_read = max_read;
        // Drain the stream frame by frame until EOF or error; both are
        // acceptable structured outcomes.
        loop {
            match read_frame(&mut stream) {
                Ok(Some(payload)) => {
                    if payload.len() > MAX_FRAME_LEN {
                        return Err("accepted an oversize frame".to_string());
                    }
                }
                Ok(None) => return Ok(()),
                Err(_) => return Ok(()),
            }
        }
    }));
    match result {
        Ok(inner) => inner,
        Err(_) => Err(format!(
            "frame codec panicked on {} adversarial bytes",
            bytes.len()
        )),
    }
}

/// Round-trips a frame through a [`FaultyStream`] with split writes and
/// capped reads: torn delivery of a *valid* frame must still decode.
pub fn split_delivery_roundtrip(payload: &[u8], chunk: usize) -> Result<(), String> {
    let mut wire = Vec::new();
    {
        let mut faulty = FaultyStream::new(&mut wire, WritePlan::SplitWrites { chunk });
        write_frame(&mut faulty, payload).map_err(|e| format!("split write failed: {e}"))?;
    }
    let mut reader = FaultyStream::new(io::Cursor::new(wire), WritePlan::Clean);
    reader.max_read = Some(chunk.max(1));
    match read_frame(&mut reader) {
        Ok(Some(got)) if got == payload => Ok(()),
        Ok(Some(_)) => Err("split delivery corrupted the payload".to_string()),
        other => Err(format!("split delivery failed to decode: {other:?}")),
    }
}

/// A one-pose motion block for fault-scenario checks.
fn tiny_motion(colliding: bool) -> MotionTrace {
    MotionTrace {
        stage: Stage::Explore,
        poses: vec![Config::new(vec![0.1, 0.2])],
        cdqs: vec![TraceCdq {
            pose_idx: 0,
            link_idx: 0,
            center: Vec3::new(0.1, 0.2, 0.0),
            colliding,
            obstacle_tests: 1,
        }],
    }
}

/// A full healthy round trip: open, check, stats, close. Any failure means
/// the server stopped serving.
fn healthy_roundtrip(addr: SocketAddr, label: &str) -> Result<(), String> {
    let mut client = ServiceClient::connect(addr)
        .map_err(|e| format!("{label}: healthy connect failed: {e}"))?;
    let id = client
        .open("planar-2d", 1, SchedMode::Coord, 77)
        .map_err(|e| format!("{label}: healthy open failed: {e}"))?;
    let (results, _) = client
        .check_motions(id, &[tiny_motion(false), tiny_motion(true)], 10)
        .map_err(|e| format!("{label}: healthy check failed: {e}"))?;
    if results.len() != 2 || !results[1].colliding || results[0].colliding {
        return Err(format!("{label}: healthy check returned {results:?}"));
    }
    client
        .stats(None)
        .map_err(|e| format!("{label}: healthy stats failed: {e}"))?;
    client
        .close(id)
        .map_err(|e| format!("{label}: healthy close failed: {e}"))?;
    Ok(())
}

fn expect_err_frame(stream: &mut TcpStream, label: &str) -> Result<(), String> {
    match read_text_frame(stream) {
        Ok(Some(text)) if text.starts_with("err") => Ok(()),
        Ok(Some(text)) => Err(format!("{label}: expected an err frame, got {text:?}")),
        Ok(None) => Err(format!("{label}: connection closed without an err frame")),
        Err(e) => Err(format!("{label}: read failed: {e}")),
    }
}

/// Runs the live fault scenarios against a server at `addr`. Returns
/// failure descriptions (empty = server survived everything) and the
/// number of scenarios executed.
pub fn run_fault_scenarios(addr: SocketAddr) -> (u64, Vec<String>) {
    let mut failures = Vec::new();
    let mut scenarios = 0u64;
    let mut run = |name: &str, f: &mut dyn FnMut() -> Result<(), String>| {
        scenarios += 1;
        if let Err(e) = f() {
            failures.push(format!("scenario {name}: {e}"));
        }
        if let Err(e) = healthy_roundtrip(addr, name) {
            failures.push(e);
        }
    };

    run("truncated-header", &mut || {
        let mut s = TcpStream::connect(addr).map_err(|e| e.to_string())?;
        s.write_all(&[0x00, 0x01]).map_err(|e| e.to_string())?;
        s.shutdown(Shutdown::Write).map_err(|e| e.to_string())?;
        // The server replies with a structured error (or just closes);
        // either way the stream must end rather than hang.
        let _ = read_text_frame(&mut s);
        Ok(())
    });

    run("oversize-length-prefix", &mut || {
        let mut s = TcpStream::connect(addr).map_err(|e| e.to_string())?;
        let mut faulty = FaultyStream::new(
            s.try_clone().map_err(|e| e.to_string())?,
            WritePlan::CorruptLenPrefix { value: u32::MAX },
        );
        write_frame(&mut faulty, b"open planar-2d 1 coord 1\n").map_err(|e| e.to_string())?;
        expect_err_frame(&mut s, "oversize prefix")
    });

    run("split-writes-still-parse", &mut || {
        let s = TcpStream::connect(addr).map_err(|e| e.to_string())?;
        let mut read_half = s.try_clone().map_err(|e| e.to_string())?;
        let mut faulty = FaultyStream::new(s, WritePlan::SplitWrites { chunk: 1 });
        write_frame(&mut faulty, b"open planar-2d 1 naive 5\n").map_err(|e| e.to_string())?;
        match read_text_frame(&mut read_half) {
            Ok(Some(text)) if text.starts_with("ok session") => {
                // Clean up the session through the same connection.
                let id: u64 = text
                    .split_whitespace()
                    .nth(2)
                    .and_then(|t| t.parse().ok())
                    .ok_or("unparseable session id")?;
                write_frame(&mut faulty, format!("close {id}\n").as_bytes())
                    .map_err(|e| e.to_string())?;
                match read_text_frame(&mut read_half) {
                    Ok(Some(t)) if t.starts_with("ok closed") => Ok(()),
                    other => Err(format!("close after split open failed: {other:?}")),
                }
            }
            other => Err(format!("split-written open rejected: {other:?}")),
        }
    });

    run("mid-batch-disconnect", &mut || {
        // Open a session, then tear the connection mid-payload of a check
        // batch. The session must remain closable from another connection
        // and the worker pool must not wedge.
        let mut client = ServiceClient::connect(addr).map_err(|e| e.to_string())?;
        let id = client
            .open("planar-2d", 1, SchedMode::Coord, 13)
            .map_err(|e| e.to_string())?;
        drop(client);
        let s = TcpStream::connect(addr).map_err(|e| e.to_string())?;
        let payload = format!("check_motion {id} 1\n{}", tiny_motion(true).to_text());
        let mut faulty = FaultyStream::new(
            s.try_clone().map_err(|e| e.to_string())?,
            WritePlan::TruncateAfter { bytes: 12 },
        );
        write_frame(&mut faulty, payload.as_bytes()).map_err(|e| e.to_string())?;
        drop(faulty);
        s.shutdown(Shutdown::Both).map_err(|e| e.to_string())?;
        drop(s);
        let mut cleanup = ServiceClient::connect(addr).map_err(|e| e.to_string())?;
        cleanup
            .close(id)
            .map_err(|e| format!("session unclosable after torn batch: {e}"))
    });

    run("garbage-verb-keeps-connection", &mut || {
        let mut s = TcpStream::connect(addr).map_err(|e| e.to_string())?;
        write_frame(&mut s, b"frobnicate 12 bananas\n").map_err(|e| e.to_string())?;
        expect_err_frame(&mut s, "garbage verb")?;
        // The framing survived, so the connection must still work.
        write_frame(&mut s, b"open planar-2d 1 csp 3\n").map_err(|e| e.to_string())?;
        match read_text_frame(&mut s) {
            Ok(Some(text)) if text.starts_with("ok session") => {
                let id: u64 = text
                    .split_whitespace()
                    .nth(2)
                    .and_then(|t| t.parse().ok())
                    .ok_or("unparseable session id")?;
                write_frame(&mut s, format!("close {id}\n").as_bytes())
                    .map_err(|e| e.to_string())?;
                let _ = read_text_frame(&mut s);
                Ok(())
            }
            other => Err(format!("open after garbage verb failed: {other:?}")),
        }
    });

    run("non-utf8-payload", &mut || {
        let mut s = TcpStream::connect(addr).map_err(|e| e.to_string())?;
        write_frame(&mut s, &[0xFF, 0xFE, 0xC0, 0x00]).map_err(|e| e.to_string())?;
        expect_err_frame(&mut s, "non-UTF-8 payload")
    });

    // After every scenario the pool must be empty: faults never leak
    // sessions past their cleanup.
    scenarios += 1;
    match ServiceClient::connect(addr)
        .and_then(|mut c| c.stats(None))
        .map(|kv| stat_u64(&kv, "sessions_open"))
    {
        Ok(Some(0)) => {}
        Ok(n) => failures.push(format!("sessions leaked after fault suite: {n:?}")),
        Err(e) => failures.push(format!("final stats failed: {e}")),
    }

    (scenarios, failures)
}

/// Runs `n_cases` seeded codec-fuzz cases plus the split-delivery
/// round-trips. Returns (cases run, failures).
pub fn run_codec_fuzz(gen: &ScenarioGen, n_cases: u64) -> (u64, Vec<String>) {
    let mut failures = Vec::new();
    let mut cases = 0u64;
    for i in 0..n_cases {
        cases += 1;
        let bytes = gen.fuzz_bytes(i);
        let max_read = match i % 3 {
            0 => None,
            1 => Some(1),
            _ => Some(7),
        };
        if let Err(e) = fuzz_codec_case(&bytes, max_read) {
            failures.push(format!("fuzz case {i}: {e}"));
        }
    }
    for chunk in [1usize, 3, 64] {
        cases += 1;
        if let Err(e) = split_delivery_roundtrip(b"open planar-2d 1 coord 9\n", chunk) {
            failures.push(format!("split delivery (chunk {chunk}): {e}"));
        }
    }
    (cases, failures)
}

#[cfg(test)]
mod tests {
    use super::*;
    use copred_service::{Server, ServerConfig};

    #[test]
    fn codec_fuzz_never_panics() {
        let g = ScenarioGen::new(21);
        let (cases, failures) = run_codec_fuzz(&g, 48);
        assert!(failures.is_empty(), "{failures:?}");
        assert!(cases >= 48);
    }

    #[test]
    fn fault_scenarios_leave_server_serving() {
        let server = Server::start(ServerConfig::default()).expect("server");
        let (scenarios, failures) = run_fault_scenarios(server.local_addr());
        assert!(failures.is_empty(), "{failures:?}");
        assert!(scenarios >= 6);
    }
}
