//! Stage 7: profiling invisibility.
//!
//! The continuous profiler samples worker stage stacks from a dedicated
//! thread; the worker path only publishes frames through seqlocked
//! atomics. That design claims the sampler is *semantically invisible*:
//! turning it on must not change a single byte the service computes or
//! says on the wire, and must not perturb the scheduler's call sequence.
//! This stage proves it differentially.
//!
//! Per case:
//!
//! * **Live A/B** — the same seeded workload runs twice over loopback
//!   TCP against fresh servers, once with `profile_sampler` off and once
//!   on. Session ids are a deterministic counter and the connection is
//!   single, so the two op streams must match *byte for byte* — no
//!   token stripping, the sampler adds nothing to the protocol — and
//!   the scheduler-facing aggregates (checks, collisions, CDQs issued
//!   and declared) must be identical, proving the predictor saw the
//!   same call sequence either way.
//! * **Profile sanity** — the sampled arm's profile must be internally
//!   consistent: per-thread stage fractions sum to at most 1.0 (idle is
//!   in the denominator) and every folded frame carries a known stage
//!   label. Sample *counts* are wall-clock dependent and deliberately
//!   not asserted — a fast host may finish a case between ticks.
//! * **Off means off** — the unsampled arm's server must report an
//!   empty profile: zero samples, zero threads.

use crate::generate::ScenarioGen;
use copred_service::{run_loadgen, LoadgenConfig, LoadgenReport, SchedMode, Server, ServerConfig};

/// Outcome of the profiling-invisibility stage.
#[derive(Debug, Default)]
pub struct ProfileCheckOutcome {
    /// Cases run (one sampler-off/sampler-on pair each).
    pub cases_run: u64,
    /// Wire ops compared byte-for-byte across the two arms.
    pub ops_compared: u64,
    /// Human-readable divergence reports (empty = conformant).
    pub failures: Vec<String>,
}

fn mode_for(case: u64) -> SchedMode {
    [SchedMode::Coord, SchedMode::Naive, SchedMode::Csp][(case % 3) as usize]
}

fn live_run(
    gen: &ScenarioGen,
    case: u64,
    seed: u64,
    sampler_on: bool,
) -> Result<(LoadgenReport, copred_obs::Profile), String> {
    // Trace indices offset far from the other stages' so workloads differ.
    let traces: Vec<_> = (0..3)
        .map(|i| gen.query_trace(30_000 + case * 10 + i))
        .collect();
    let server = Server::start(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        profile_sampler: sampler_on,
        ..ServerConfig::default()
    })
    .map_err(|e| format!("server failed to start: {e}"))?;
    let lg = LoadgenConfig {
        addr: server.local_addr().to_string(),
        connections: 1,
        mode: mode_for(case),
        seed,
        batch: 1 + (case % 3) as usize,
        ..LoadgenConfig::default()
    };
    let report = run_loadgen(&lg, &traces).map_err(|e| format!("loadgen run failed: {e}"))?;
    Ok((report, server.profile()))
}

/// Runs `cases` profiling-invisibility checks, each deriving
/// deterministically from `base_seed` and the case index.
pub fn run_profile_checks(gen: &ScenarioGen, cases: u64, base_seed: u64) -> ProfileCheckOutcome {
    let mut outcome = ProfileCheckOutcome::default();
    for case in 0..cases {
        check_case(gen, case, base_seed, &mut outcome);
        outcome.cases_run += 1;
    }
    outcome
}

fn check_case(gen: &ScenarioGen, case: u64, base_seed: u64, outcome: &mut ProfileCheckOutcome) {
    let fail = |failures: &mut Vec<String>, msg: String| {
        failures.push(format!("profile case {case}: {msg}"));
    };
    let seed = base_seed.wrapping_mul(53).wrapping_add(case);

    // --- Live A/B: identical workload, sampler off vs on.
    let (plain, off_profile) = match live_run(gen, case, seed, false) {
        Ok(r) => r,
        Err(e) => {
            fail(&mut outcome.failures, format!("unsampled run: {e}"));
            return;
        }
    };
    let (sampled, on_profile) = match live_run(gen, case, seed, true) {
        Ok(r) => r,
        Err(e) => {
            fail(&mut outcome.failures, format!("sampled run: {e}"));
            return;
        }
    };

    if plain.checks != sampled.checks
        || plain.collisions != sampled.collisions
        || plain.cdqs_issued != sampled.cdqs_issued
        || plain.cdqs_total != sampled.cdqs_total
    {
        fail(
            &mut outcome.failures,
            format!(
                "aggregates diverged: unsampled (checks {}, collisions {}, cdqs {}/{}) vs sampled ({}, {}, {}/{})",
                plain.checks,
                plain.collisions,
                plain.cdqs_issued,
                plain.cdqs_total,
                sampled.checks,
                sampled.collisions,
                sampled.cdqs_issued,
                sampled.cdqs_total
            ),
        );
    }
    if plain.ops.len() != sampled.ops.len() {
        fail(
            &mut outcome.failures,
            format!(
                "op counts diverged: {} unsampled vs {} sampled",
                plain.ops.len(),
                sampled.ops.len()
            ),
        );
        return;
    }
    for (i, (p, s)) in plain.ops.iter().zip(&sampled.ops).enumerate() {
        outcome.ops_compared += 1;
        if p.verb != s.verb || p.tag != s.tag || p.session != s.session {
            fail(
                &mut outcome.failures,
                format!(
                    "op {i} shape diverged: {}/{}/{} vs {}/{}/{}",
                    p.verb, p.tag, p.session, s.verb, s.tag, s.session
                ),
            );
            continue;
        }
        if p.request != s.request {
            fail(
                &mut outcome.failures,
                format!(
                    "op {i} ({}) request bytes diverged under sampling: {:?} vs {:?}",
                    p.verb, p.request, s.request
                ),
            );
        }
        if p.response != s.response {
            fail(
                &mut outcome.failures,
                format!(
                    "op {i} ({}) response bytes diverged under sampling: {:?} vs {:?}",
                    p.verb, p.response, s.response
                ),
            );
        }
    }

    // --- Off means off: the unsampled server reports an empty profile.
    if off_profile.samples() != 0 || off_profile.threads() != 0 {
        fail(
            &mut outcome.failures,
            format!(
                "sampler-off server still profiled: {} samples on {} threads",
                off_profile.samples(),
                off_profile.threads()
            ),
        );
    }

    // --- Profile sanity on the sampled arm (counts are wall-dependent
    // and not asserted; shape invariants always hold).
    let stage_labels: Vec<&str> = copred_obs::Stage::ALL.iter().map(|s| s.label()).collect();
    for (tid, _weight, fractions) in on_profile.thread_fractions() {
        let total: f64 = fractions.iter().map(|(_, f)| f).sum();
        if total > 1.0 + 1e-9 {
            fail(
                &mut outcome.failures,
                format!("thread {tid} stage fractions sum to {total} > 1.0"),
            );
        }
    }
    for line in on_profile.folded().lines() {
        let path = line.split(' ').next().unwrap_or("");
        for frame in path.split(';') {
            if !stage_labels.contains(&frame) {
                fail(
                    &mut outcome.failures,
                    format!("folded output carries unknown stage label {frame:?} in {line:?}"),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_case_is_clean() {
        let gen = ScenarioGen::new(47);
        let out = run_profile_checks(&gen, 1, 4700);
        assert!(out.failures.is_empty(), "{:?}", out.failures);
        assert_eq!(out.cases_run, 1);
        assert!(out.ops_compared > 0);
    }
}
