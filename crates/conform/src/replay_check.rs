//! Stage 5: record → replay bit-identity.
//!
//! A live single-connection loadgen run against a default server is
//! recorded into a CPRDLOG, pushed through the serialized byte format,
//! and replayed — against the in-process registry and against a fresh
//! loopback server. Conformance requires:
//!
//! * every replayed response (hence every [`CheckResult`] in it) is
//!   byte-identical to the recording, on both backends;
//! * the replay's per-session metrics ledger (checks, CDQs issued and
//!   declared, collisions) equals the sums recoverable from the recorded
//!   responses, session for session;
//! * two replays of the same log are identical down to the response
//!   stream (determinism).
//!
//! Single connection keeps the recorded op order total, so the log is a
//! complete serialization of the live run and bit-identity is decidable.
//!
//! [`CheckResult`]: copred_service::CheckResult

use crate::generate::ScenarioGen;
use copred_replay::format::{read_log, write_log};
use copred_replay::{
    run_replay, InProcessBackend, LogMeta, LogRecord, LoopbackBackend, ReplayOptions,
};
use copred_service::protocol::Response;
use copred_service::{run_loadgen, LoadgenConfig, SchedMode, Server, ServerConfig};
use std::collections::BTreeMap;
use std::sync::atomic::Ordering;

/// Outcome of the record→replay stage.
#[derive(Debug, Default)]
pub struct ReplayCheckOutcome {
    /// Cases run (one recorded workload each).
    pub cases_run: u64,
    /// Ops replayed across all cases and backends.
    pub ops_replayed: u64,
    /// Human-readable divergence reports (empty = conformant).
    pub failures: Vec<String>,
}

fn mode_for(case: u64) -> SchedMode {
    [SchedMode::Coord, SchedMode::Naive, SchedMode::Csp][(case % 3) as usize]
}

/// Per-session sums recoverable from the recorded responses: the ledger
/// the replay must reproduce.
#[derive(Debug, Default, PartialEq, Eq)]
struct LedgerEntry {
    checks: u64,
    cdqs_issued: u64,
    cdqs_total: u64,
    collisions: u64,
}

fn recorded_ledger(records: &[LogRecord]) -> BTreeMap<u64, LedgerEntry> {
    let mut ledger: BTreeMap<u64, LedgerEntry> = BTreeMap::new();
    for rec in records {
        if rec.verb != "check_motion" {
            continue;
        }
        if let Ok(Response::Results { results: rs, .. }) = Response::from_text(&rec.response) {
            let e = ledger.entry(rec.session).or_default();
            for r in rs {
                e.checks += 1;
                e.cdqs_issued += r.cdqs_executed;
                e.cdqs_total += r.cdqs_total;
                e.collisions += u64::from(r.colliding);
            }
        }
    }
    ledger
}

/// Runs `cases` record→replay checks. Each case derives deterministically
/// from `base_seed` and the case index.
pub fn run_replay_checks(gen: &ScenarioGen, cases: u64, base_seed: u64) -> ReplayCheckOutcome {
    let mut outcome = ReplayCheckOutcome::default();
    for case in 0..cases {
        check_case(gen, case, base_seed, &mut outcome);
        outcome.cases_run += 1;
    }
    outcome
}

#[allow(clippy::too_many_lines)]
fn check_case(gen: &ScenarioGen, case: u64, base_seed: u64, outcome: &mut ReplayCheckOutcome) {
    let fail = |failures: &mut Vec<String>, msg: String| {
        failures.push(format!("replay case {case}: {msg}"));
    };
    let seed = base_seed.wrapping_mul(31).wrapping_add(case);
    // Trace indices offset far from stage 2's so the workloads differ.
    let traces: Vec<_> = (0..3)
        .map(|i| gen.query_trace(10_000 + case * 10 + i))
        .collect();

    // --- Record: a live run over TCP against a default-config server.
    // connections=1 keeps the recorded op order total (deterministic log).
    let server = match Server::start(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        ..ServerConfig::default()
    }) {
        Ok(s) => s,
        Err(e) => {
            fail(
                &mut outcome.failures,
                format!("recording server failed to start: {e}"),
            );
            return;
        }
    };
    let lg = LoadgenConfig {
        addr: server.local_addr().to_string(),
        connections: 1,
        mode: mode_for(case),
        seed,
        batch: 1 + (case % 3) as usize,
        ..LoadgenConfig::default()
    };
    let report = match run_loadgen(&lg, &traces) {
        Ok(r) => r,
        Err(e) => {
            fail(&mut outcome.failures, format!("recording run failed: {e}"));
            return;
        }
    };
    drop(server);

    // --- Serialize: the replay must work from the byte artifact, not the
    // in-memory records.
    let meta = LogMeta {
        seed,
        fingerprint: 0,
        robot: traces[0].robot_name.clone(),
        workload: "conform".to_string(),
        scale: format!("traces={}", traces.len()),
    };
    let records: Vec<LogRecord> = report.ops.iter().map(LogRecord::from_op_record).collect();
    let bytes = write_log(&meta, &records);
    let log = match read_log(&bytes) {
        Ok(l) => l,
        Err(e) => {
            fail(
                &mut outcome.failures,
                format!("own recording failed to parse: {e}"),
            );
            return;
        }
    };
    if !log.complete || log.records.len() != report.ops.len() {
        fail(
            &mut outcome.failures,
            format!(
                "log round-trip lost records: {} of {} (complete: {})",
                log.records.len(),
                report.ops.len(),
                log.complete
            ),
        );
        return;
    }
    let expected_ledger = recorded_ledger(&log.records);
    let opts = ReplayOptions::default(); // sequential, compare on

    // --- Replay 1: in-process, bit-identity + ledger audit.
    let mut inproc = InProcessBackend::with_server_defaults();
    let first = match run_replay(&log, &mut inproc, &opts) {
        Ok(o) => o,
        Err(e) => {
            fail(&mut outcome.failures, format!("in-process replay: {e}"));
            return;
        }
    };
    outcome.ops_replayed += first.ops;
    for d in &first.mismatches {
        fail(
            &mut outcome.failures,
            format!(
                "in-process replay diverged at op {} ({} {}): recorded {:?}, replayed {:?}",
                d.idx, d.verb, d.tag, d.expected, d.actual
            ),
        );
    }
    if first.backend_errors > 0 {
        fail(
            &mut outcome.failures,
            format!(
                "in-process replay hit {} protocol errors the recording did not have",
                first.backend_errors
            ),
        );
    }
    if first.checks != report.checks
        || first.collisions != report.collisions
        || first.cdqs_issued != report.cdqs_issued
        || first.cdqs_total != report.cdqs_total
    {
        fail(
            &mut outcome.failures,
            format!(
                "replay aggregates (checks {}, collisions {}, cdqs {}/{}) != live run ({}, {}, {}/{})",
                first.checks,
                first.collisions,
                first.cdqs_issued,
                first.cdqs_total,
                report.checks,
                report.collisions,
                report.cdqs_issued,
                report.cdqs_total
            ),
        );
    }

    // Ledger audit: replayed sessions (in open order) against the sums
    // recorded per session token (open order = token order per recorder).
    let open_tokens: Vec<u64> = log
        .records
        .iter()
        .filter(|r| r.verb == "open")
        .map(|r| r.session)
        .collect();
    if inproc.opened().len() != open_tokens.len() {
        fail(
            &mut outcome.failures,
            format!(
                "replay opened {} sessions, recording has {} opens",
                inproc.opened().len(),
                open_tokens.len()
            ),
        );
    }
    for (token, session) in open_tokens.iter().zip(inproc.opened()) {
        let expect = expected_ledger.get(token);
        let m = &session.metrics;
        let got = LedgerEntry {
            checks: m.checks.load(Ordering::Relaxed),
            cdqs_issued: m.cdqs_issued.load(Ordering::Relaxed),
            cdqs_total: m.cdqs_total.load(Ordering::Relaxed),
            collisions: m.collisions.load(Ordering::Relaxed),
        };
        match expect {
            Some(e) if *e == got => {}
            _ => fail(
                &mut outcome.failures,
                format!("session {token}: replayed ledger {got:?} != recorded {expect:?}"),
            ),
        }
    }

    // --- Replay 2: determinism — a second fresh in-process pass answers
    // identically, op for op.
    let mut inproc2 = InProcessBackend::with_server_defaults();
    match run_replay(&log, &mut inproc2, &opts) {
        Ok(second) => {
            outcome.ops_replayed += second.ops;
            if second.responses != first.responses {
                fail(
                    &mut outcome.failures,
                    "two replays of the same log diverged".to_string(),
                );
            }
        }
        Err(e) => fail(&mut outcome.failures, format!("determinism replay: {e}")),
    }

    // --- Replay 3: over the wire against a fresh loopback server.
    let loopback_cfg = ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        ..ServerConfig::default()
    };
    match LoopbackBackend::start(loopback_cfg) {
        Ok(mut loopback) => match run_replay(&log, &mut loopback, &opts) {
            Ok(wire) => {
                outcome.ops_replayed += wire.ops;
                for d in wire.mismatches.iter().take(3) {
                    fail(
                        &mut outcome.failures,
                        format!(
                            "loopback replay diverged at op {} ({}): recorded {:?}, replayed {:?}",
                            d.idx, d.verb, d.expected, d.actual
                        ),
                    );
                }
                if wire.responses != first.responses {
                    fail(
                        &mut outcome.failures,
                        "loopback and in-process replays diverged".to_string(),
                    );
                }
            }
            Err(e) => fail(&mut outcome.failures, format!("loopback replay: {e}")),
        },
        Err(e) => fail(
            &mut outcome.failures,
            format!("loopback server failed to start: {e}"),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_case_is_clean() {
        let gen = ScenarioGen::new(41);
        let out = run_replay_checks(&gen, 1, 4100);
        assert!(out.failures.is_empty(), "{:?}", out.failures);
        assert_eq!(out.cases_run, 1);
        assert!(out.ops_replayed > 0);
    }
}
