//! Brute-force reference executor and the schedule-semantics invariants.
//!
//! The reference verdict for a motion is `cdqs.iter().any(|c| c.colliding)`
//! — no ordering, no prediction, no early exit. Every scheduling policy
//! must agree with it: prediction may only *reorder* work, never change a
//! verdict (the property that separates COORD from approximate proxy
//! checkers). The checks here run each generated case through every
//! schedule plus [`run_predicted_schedule`] under cold, adversarial, and
//! perfect predictors, asserting:
//!
//! * the colliding verdict equals the brute-force reference;
//! * `cdqs_executed <= cdqs_total` and a colliding check executes >= 1;
//! * a collision-free check executes every CDQ exactly once;
//! * no CDQ is ever executed twice (observed via a recording predictor);
//! * a cold (never-predicting) predictor is bit-identical to plain CSP;
//! * Speculative redundancy is bounded by one batch over naive.

use crate::generate::ScheduleCase;
use copred_collision::{
    run_predicted_schedule, run_schedule, CdqInfo, CdqPredictor, MotionCheckOutcome, Schedule,
};
use std::collections::HashSet;

/// The reference executor: order-free ground truth.
pub fn brute_force_verdict(cdqs: &[CdqInfo]) -> bool {
    cdqs.iter().any(|c| c.colliding)
}

/// A predictor that records every executed CDQ, asserting none repeats, and
/// answers lookups from a fixed closure. Used to check `run_predicted_schedule`
/// under arbitrary (even adversarial) prediction behavior.
pub struct RecordingPredictor<F: FnMut(&CdqInfo) -> bool> {
    decide: F,
    /// `(pose_idx, link_idx)` of every observed (executed) CDQ, in order.
    pub observed: Vec<(usize, usize)>,
    /// Set to a message when a CDQ was observed twice.
    pub duplicate: Option<String>,
}

impl<F: FnMut(&CdqInfo) -> bool> std::fmt::Debug for RecordingPredictor<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RecordingPredictor")
            .field("observed", &self.observed)
            .field("duplicate", &self.duplicate)
            .finish_non_exhaustive()
    }
}

impl<F: FnMut(&CdqInfo) -> bool> RecordingPredictor<F> {
    /// Wraps a decision closure.
    pub fn new(decide: F) -> Self {
        RecordingPredictor {
            decide,
            observed: Vec::new(),
            duplicate: None,
        }
    }
}

impl<F: FnMut(&CdqInfo) -> bool> CdqPredictor for RecordingPredictor<F> {
    fn predict(&mut self, cdq: &CdqInfo) -> bool {
        (self.decide)(cdq)
    }

    fn observe(&mut self, cdq: &CdqInfo, _colliding: bool) {
        let key = (cdq.pose_idx, cdq.link_idx);
        if self.observed.contains(&key) && self.duplicate.is_none() {
            self.duplicate = Some(format!("CDQ {key:?} executed twice"));
        }
        self.observed.push(key);
    }
}

/// Pseudo-random but deterministic prediction keyed on the CDQ identity —
/// an adversarial stand-in for a badly trained CHT.
fn chaotic_prediction(seed: u64, cdq: &CdqInfo) -> bool {
    let mut z = seed
        .wrapping_add((cdq.pose_idx as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add((cdq.link_idx as u64).wrapping_mul(0x2545_F491_4F6C_DD1D));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    (z ^ (z >> 31)) & 1 == 1
}

/// Runs every schedule-semantics invariant on one case. Returns a list of
/// violation descriptions (empty = conformant).
pub fn check_schedule_case(case: &ScheduleCase, seed: u64) -> Vec<String> {
    let mut failures = Vec::new();
    let cdqs = &case.cdqs;
    let n_poses = case.n_poses;
    let total = cdqs.len();
    let truth = brute_force_verdict(cdqs);
    let mut fail = |msg: String| failures.push(format!("{}: {msg}", case.label));

    // Uniqueness of (pose, link) pairs is a precondition for the
    // double-execution check below; the generator guarantees it.
    let keys: HashSet<(usize, usize)> = cdqs.iter().map(|c| (c.pose_idx, c.link_idx)).collect();
    assert_eq!(keys.len(), total, "generator produced duplicate CDQ keys");

    let naive = run_schedule(cdqs, n_poses, Schedule::Naive);
    let schedules = [
        ("naive", Schedule::Naive),
        ("csp-0", Schedule::Csp { step: 0 }),
        ("csp-1", Schedule::Csp { step: 1 }),
        ("csp-2", Schedule::Csp { step: 2 }),
        ("csp-5", Schedule::Csp { step: 5 }),
        ("csp-huge", Schedule::Csp { step: total + 7 }),
        ("oracle", Schedule::Oracle),
        ("spec-1", Schedule::Speculative { depth: 1 }),
        ("spec-2", Schedule::Speculative { depth: 2 }),
        ("spec-4", Schedule::Speculative { depth: 4 }),
    ];
    for (name, sched) in schedules {
        let out = run_schedule(cdqs, n_poses, sched);
        check_outcome_common(name, &out, truth, total, &mut fail);
        if let Schedule::Speculative { depth } = sched {
            let depth = depth.max(1);
            if out.cdqs_executed < naive.cdqs_executed {
                fail(format!(
                    "{name}: speculation executed {} < naive {}",
                    out.cdqs_executed, naive.cdqs_executed
                ));
            }
            if out.cdqs_executed >= naive.cdqs_executed + depth {
                fail(format!(
                    "{name}: redundancy {} not bounded by one batch over naive {}",
                    out.cdqs_executed, naive.cdqs_executed
                ));
            }
        }
    }

    // Oracle executes exactly one CDQ on a colliding check.
    let oracle = run_schedule(cdqs, n_poses, Schedule::Oracle);
    if truth && oracle.cdqs_executed != 1 {
        fail(format!(
            "oracle executed {} CDQs on a colliding check",
            oracle.cdqs_executed
        ));
    }

    // Cold predictor degrades exactly to CSP, for several strides.
    for step in [0usize, 1, 3, 5] {
        let mut cold = RecordingPredictor::new(|_| false);
        let predicted = run_predicted_schedule(cdqs, n_poses, step, &mut cold);
        let csp = run_schedule(cdqs, n_poses, Schedule::Csp { step });
        if predicted != csp {
            fail(format!(
                "cold predictor (step {step}) diverged from CSP: {predicted:?} vs {csp:?}"
            ));
        }
        finish_predictor_checks(&format!("cold step-{step}"), &cold, &predicted, &mut fail);
        check_outcome_common(
            &format!("predicted-cold step-{step}"),
            &predicted,
            truth,
            total,
            &mut fail,
        );
    }

    // Adversarial predictor: verdict and accounting must survive arbitrary
    // prediction patterns.
    for salt in 0..3u64 {
        let s = seed.wrapping_add(salt);
        let mut chaotic = RecordingPredictor::new(move |c| chaotic_prediction(s, c));
        let out = run_predicted_schedule(cdqs, n_poses, 5, &mut chaotic);
        check_outcome_common(
            &format!("predicted-chaotic-{salt}"),
            &out,
            truth,
            total,
            &mut fail,
        );
        finish_predictor_checks(&format!("chaotic-{salt}"), &chaotic, &out, &mut fail);
    }

    // Perfect predictor: a colliding check costs exactly one CDQ, matching
    // the oracle limit.
    let mut perfect = RecordingPredictor::new(|c: &CdqInfo| c.colliding);
    let out = run_predicted_schedule(cdqs, n_poses, 5, &mut perfect);
    check_outcome_common("predicted-perfect", &out, truth, total, &mut fail);
    finish_predictor_checks("perfect", &perfect, &out, &mut fail);
    if truth && out.cdqs_executed != 1 {
        fail(format!(
            "perfect predictor executed {} CDQs on a colliding check",
            out.cdqs_executed
        ));
    }

    failures
}

fn check_outcome_common(
    name: &str,
    out: &MotionCheckOutcome,
    truth: bool,
    total: usize,
    fail: &mut impl FnMut(String),
) {
    if out.colliding != truth {
        fail(format!(
            "{name}: verdict {} != brute-force {truth}",
            out.colliding
        ));
    }
    if out.cdqs_total != total {
        fail(format!("{name}: cdqs_total {} != {total}", out.cdqs_total));
    }
    if out.cdqs_executed > total {
        fail(format!(
            "{name}: executed {} > total {total}",
            out.cdqs_executed
        ));
    }
    if truth && out.cdqs_executed == 0 {
        fail(format!("{name}: colliding check executed no CDQs"));
    }
    if !truth && out.cdqs_executed != total {
        fail(format!(
            "{name}: free check executed {} of {total} CDQs",
            out.cdqs_executed
        ));
    }
}

fn finish_predictor_checks<F: FnMut(&CdqInfo) -> bool>(
    name: &str,
    pred: &RecordingPredictor<F>,
    out: &MotionCheckOutcome,
    fail: &mut impl FnMut(String),
) {
    if let Some(d) = &pred.duplicate {
        fail(format!("{name}: {d}"));
    }
    if pred.observed.len() != out.cdqs_executed {
        fail(format!(
            "{name}: observed {} executions but outcome reports {}",
            pred.observed.len(),
            out.cdqs_executed
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::ScenarioGen;

    #[test]
    fn generated_cases_are_conformant() {
        let g = ScenarioGen::new(42);
        for i in 0..40 {
            let case = g.schedule_case(i);
            let failures = check_schedule_case(&case, 42 + i);
            assert!(failures.is_empty(), "{failures:?}");
        }
    }

    #[test]
    fn recording_predictor_flags_double_execution() {
        let g = ScenarioGen::new(1);
        let case = g.schedule_case(0);
        let mut p = RecordingPredictor::new(|_| false);
        p.observe(&case.cdqs[0], false);
        p.observe(&case.cdqs[0], false);
        assert!(p.duplicate.is_some());
    }
}
