//! Seeded scenario generation for the differential harness.
//!
//! Two families of inputs:
//!
//! * **Schedule cases** — pre-enumerated [`CdqInfo`] lists with varied
//!   shapes (single-pose motions, uneven links per pose, all-free,
//!   all-colliding, real-robot enumerations) that feed the schedule
//!   invariant checks of [`crate::reference`].
//! * **Query traces** — full [`QueryTrace`] workloads in the service wire
//!   encoding, replayed both in-process and over a loopback TCP session by
//!   [`crate::service_diff`].
//!
//! Everything is a pure function of the seed: a reported divergence is
//! reproducible from its case number alone.

use copred_collision::{enumerate_motion_cdqs, CdqInfo};
use copred_envgen::{random_scene, Density};
use copred_geometry::Vec3;
use copred_kinematics::{presets, Config, Motion, Robot};
use copred_trace::{MotionTrace, QueryTrace, Stage, TraceCdq};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One pre-enumerated schedule input: the CDQ list plus its pose count.
#[derive(Debug, Clone)]
pub struct ScheduleCase {
    /// Human-readable provenance for failure reports.
    pub label: String,
    /// CDQs in pose-major order.
    pub cdqs: Vec<CdqInfo>,
    /// Number of sample poses.
    pub n_poses: usize,
}

/// Deterministic generator for all harness inputs.
#[derive(Debug)]
pub struct ScenarioGen {
    seed: u64,
}

impl ScenarioGen {
    /// Creates a generator rooted at `seed`.
    pub fn new(seed: u64) -> Self {
        ScenarioGen { seed }
    }

    fn rng_for(&self, stream: u64, case: u64) -> StdRng {
        // Distinct, collision-free streams per (kind, case) pair.
        StdRng::seed_from_u64(
            self.seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(stream.wrapping_mul(0x2545_F491_4F6C_DD1D))
                .wrapping_add(case),
        )
    }

    /// Builds the `i`-th schedule case. Cycles through synthetic shapes and
    /// real-robot enumerations so both the ordering logic and the CDQ
    /// decomposition are exercised.
    pub fn schedule_case(&self, i: u64) -> ScheduleCase {
        let mut rng = self.rng_for(1, i);
        match i % 5 {
            0 => self.synthetic_case(&mut rng, i, /*force_single_pose=*/ false),
            1 => self.synthetic_case(&mut rng, i, /*force_single_pose=*/ true),
            2 => self.extreme_case(&mut rng, i),
            3 => self.robot_case(&mut rng, i),
            _ => self.synthetic_case(&mut rng, i, false),
        }
    }

    /// Synthetic planar sweep: CDQ centers equal the poses, a disc obstacle
    /// decides ground truth, link counts vary per pose.
    fn synthetic_case(&self, rng: &mut StdRng, i: u64, force_single_pose: bool) -> ScheduleCase {
        let n_poses = if force_single_pose {
            1
        } else {
            rng.gen_range(1usize..14)
        };
        let radius = rng.gen_range(0.1..0.6f64);
        let (ax, ay) = (rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0));
        let (bx, by) = (rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0));
        let mut cdqs = Vec::new();
        for p in 0..n_poses {
            let t = if n_poses == 1 {
                0.0
            } else {
                p as f64 / (n_poses - 1) as f64
            };
            let (x, y) = (ax + t * (bx - ax), ay + t * (by - ay));
            let links = rng.gen_range(1usize..4);
            for l in 0..links {
                let off = l as f64 * 0.05;
                let c = Vec3::new(x + off, y, 0.0);
                cdqs.push(synth_cdq_info(p, l, c, c.x.hypot(c.y) < radius));
            }
        }
        ScheduleCase {
            label: format!(
                "synthetic sweep #{i} ({n_poses} poses, {} cdqs)",
                cdqs.len()
            ),
            cdqs,
            n_poses,
        }
    }

    /// Degenerate shapes: all-free, all-colliding, or collision only in the
    /// very last CDQ (worst case for early exit accounting).
    fn extreme_case(&self, rng: &mut StdRng, i: u64) -> ScheduleCase {
        let n_poses = rng.gen_range(1usize..10);
        let kind = i % 3;
        let mut cdqs = Vec::new();
        for p in 0..n_poses {
            let colliding = match kind {
                0 => false,
                1 => true,
                _ => p == n_poses - 1,
            };
            let c = Vec3::new(p as f64 * 0.1, 0.0, 0.0);
            cdqs.push(synth_cdq_info(p, 0, c, colliding));
        }
        let name = ["all-free", "all-colliding", "last-cdq-collides"][kind as usize];
        ScheduleCase {
            label: format!("extreme {name} #{i} ({n_poses} poses)"),
            cdqs,
            n_poses,
        }
    }

    /// Real-robot enumeration: a calibrated random scene and a random
    /// motion, decomposed by [`enumerate_motion_cdqs`] exactly as the
    /// benchmarks do.
    fn robot_case(&self, rng: &mut StdRng, i: u64) -> ScheduleCase {
        let robot: Robot = presets::planar_arm_2dof().into();
        let density = [Density::Low, Density::Medium, Density::High][(i % 3) as usize];
        let scene = random_scene(&robot, density, 2, self.seed.wrapping_add(i));
        let from = scene.poses[0].clone();
        let to = scene.poses[1].clone();
        let n = rng.gen_range(1usize..12);
        let poses = Motion::new(from, to).discretize(n);
        let cdqs = enumerate_motion_cdqs(&robot, &scene.env, &poses);
        ScheduleCase {
            label: format!(
                "robot motion #{i} ({density:?}, {n} poses, {} cdqs)",
                cdqs.len()
            ),
            cdqs,
            n_poses: n,
        }
    }

    /// Builds the `i`-th service workload: a planar [`QueryTrace`] whose
    /// motions mix lengths (including single-pose checks), link counts,
    /// and collision densities.
    pub fn query_trace(&self, i: u64) -> QueryTrace {
        let mut rng = self.rng_for(2, i);
        let n_motions = rng.gen_range(3usize..9);
        let radius = rng.gen_range(0.15..0.5f64);
        let motions = (0..n_motions)
            .map(|m| {
                let n_poses = if m == 0 { 1 } else { rng.gen_range(1usize..10) };
                let links = rng.gen_range(1usize..3);
                let (ax, ay) = (rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0));
                let (bx, by) = (rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0));
                let poses: Vec<Config> = (0..n_poses)
                    .map(|p| {
                        let t = if n_poses == 1 {
                            0.0
                        } else {
                            p as f64 / (n_poses - 1) as f64
                        };
                        Config::new(vec![ax + t * (bx - ax), ay + t * (by - ay)])
                    })
                    .collect();
                let cdqs = poses
                    .iter()
                    .enumerate()
                    .flat_map(|(p, q)| {
                        (0..links).map(move |l| {
                            let c = Vec3::new(q[0] + l as f64 * 0.04, q[1], 0.0);
                            TraceCdq {
                                pose_idx: p as u32,
                                link_idx: l as u32,
                                center: c,
                                colliding: c.x.hypot(c.y) < radius,
                                obstacle_tests: 1 + (l as u32),
                            }
                        })
                    })
                    .collect();
                MotionTrace {
                    stage: if m % 2 == 0 {
                        Stage::Explore
                    } else {
                        Stage::Validate
                    },
                    poses,
                    cdqs,
                }
            })
            .collect();
        QueryTrace {
            robot_name: "planar-2d".to_string(),
            link_count: 1,
            motions,
        }
    }

    /// Generates an adversarial byte buffer for the codec fuzz stage:
    /// random bytes, truncated valid frames, or frames with corrupted
    /// length prefixes.
    pub fn fuzz_bytes(&self, i: u64) -> Vec<u8> {
        let mut rng = self.rng_for(3, i);
        match i % 4 {
            // Pure noise.
            0 => {
                let n = rng.gen_range(0usize..64);
                (0..n).map(|_| rng.gen_range(0u32..256) as u8).collect()
            }
            // A valid frame cut mid-payload.
            1 => {
                let payload: Vec<u8> = (0..rng.gen_range(1usize..40))
                    .map(|_| rng.gen_range(0u32..256) as u8)
                    .collect();
                let mut buf = Vec::new();
                copred_trace::frame::write_frame(&mut buf, &payload).expect("frame");
                let cut = rng.gen_range(1usize..buf.len());
                buf.truncate(cut);
                buf
            }
            // A hostile length prefix with junk behind it.
            2 => {
                let len: u32 = if rng.gen_bool(0.5) {
                    u32::MAX
                } else {
                    rng.gen_range((copred_trace::frame::MAX_FRAME_LEN as u32 + 1)..u32::MAX)
                };
                let mut buf = len.to_be_bytes().to_vec();
                for _ in 0..rng.gen_range(0usize..16) {
                    buf.push(rng.gen_range(0u32..256) as u8);
                }
                buf
            }
            // A well-formed frame (the fuzzer must also accept good input).
            _ => {
                let payload: Vec<u8> = (0..rng.gen_range(0usize..40))
                    .map(|_| rng.gen_range(0u32..256) as u8)
                    .collect();
                let mut buf = Vec::new();
                copred_trace::frame::write_frame(&mut buf, &payload).expect("frame");
                buf
            }
        }
    }
}

fn synth_cdq_info(pose_idx: usize, link_idx: usize, center: Vec3, colliding: bool) -> CdqInfo {
    CdqInfo {
        pose_idx,
        link_idx,
        center,
        obb: copred_geometry::Obb::axis_aligned(center, Vec3::ZERO),
        colliding,
        obstacle_tests: 1 + link_idx,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = ScenarioGen::new(11);
        let b = ScenarioGen::new(11);
        for i in 0..10 {
            assert_eq!(a.schedule_case(i).cdqs, b.schedule_case(i).cdqs);
            assert_eq!(a.query_trace(i), b.query_trace(i));
            assert_eq!(a.fuzz_bytes(i), b.fuzz_bytes(i));
        }
        let c = ScenarioGen::new(12);
        assert_ne!(a.query_trace(0), c.query_trace(0));
    }

    #[test]
    fn schedule_cases_are_pose_major_and_in_range() {
        let g = ScenarioGen::new(3);
        for i in 0..25 {
            let case = g.schedule_case(i);
            assert!(!case.cdqs.is_empty(), "{}", case.label);
            let mut prev = 0;
            for c in &case.cdqs {
                assert!(c.pose_idx < case.n_poses, "{}", case.label);
                assert!(c.pose_idx >= prev, "pose-major order in {}", case.label);
                prev = c.pose_idx;
            }
        }
    }

    #[test]
    fn query_traces_roundtrip_the_wire_encoding() {
        let g = ScenarioGen::new(5);
        for i in 0..8 {
            let t = g.query_trace(i);
            let back = QueryTrace::from_text(&t.to_text()).expect("parse");
            assert_eq!(t, back);
        }
    }
}
