//! `copred_conform` — the conformance gate run by CI.
//!
//! ```text
//! copred_conform [--seed N] [--iters N] [--service-traces N]
//!                [--fault-cases N] [--store-cases N] [--replay-cases N]
//!                [--trace-cases N] [--profile-cases N] [--skip-service]
//!                [--skip-fault] [--skip-store] [--skip-replay]
//!                [--skip-trace] [--skip-profile]
//! ```
//!
//! Runs the seeded differential harness (schedule semantics, service
//! replay, fault injection) and exits nonzero on any divergence,
//! accounting mismatch, or panic. Defaults run well over 200 differential
//! iterations; every case is a pure function of `--seed`, so a red CI run
//! reproduces locally with the same flags.

use copred_conform::{run_all, ConformConfig};
use std::process::ExitCode;

fn usage() -> ! {
    eprintln!(
        "usage: copred_conform [--seed N] [--iters N] [--service-traces N] \
         [--fault-cases N] [--store-cases N] [--replay-cases N] \
         [--trace-cases N] [--profile-cases N] [--skip-service] \
         [--skip-fault] [--skip-store] [--skip-replay] [--skip-trace] \
         [--skip-profile]"
    );
    std::process::exit(2);
}

fn parse_u64(args: &mut std::env::Args, flag: &str) -> u64 {
    match args.next().map(|v| v.parse()) {
        Some(Ok(v)) => v,
        _ => {
            eprintln!("{flag} needs an unsigned integer argument");
            usage();
        }
    }
}

fn main() -> ExitCode {
    let mut cfg = ConformConfig::default();
    let mut args = std::env::args();
    let _argv0 = args.next();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seed" => cfg.seed = parse_u64(&mut args, "--seed"),
            "--iters" => cfg.schedule_iters = parse_u64(&mut args, "--iters"),
            "--service-traces" => cfg.service_traces = parse_u64(&mut args, "--service-traces"),
            "--fault-cases" => cfg.fault_cases = parse_u64(&mut args, "--fault-cases"),
            "--store-cases" => cfg.store_cases = parse_u64(&mut args, "--store-cases"),
            "--replay-cases" => cfg.replay_cases = parse_u64(&mut args, "--replay-cases"),
            "--trace-cases" => cfg.trace_cases = parse_u64(&mut args, "--trace-cases"),
            "--profile-cases" => cfg.profile_cases = parse_u64(&mut args, "--profile-cases"),
            "--skip-service" => cfg.service_traces = 0,
            "--skip-fault" => cfg.fault_cases = 0,
            "--skip-store" => cfg.store_cases = 0,
            "--skip-replay" => cfg.replay_cases = 0,
            "--skip-trace" => cfg.trace_cases = 0,
            "--skip-profile" => cfg.profile_cases = 0,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag: {other}");
                usage();
            }
        }
    }

    println!(
        "copred_conform: seed {} | {} schedule cases, {} service traces, {} fault cases, {} store cases, {} replay cases, {} trace cases, {} profile cases",
        cfg.seed, cfg.schedule_iters, cfg.service_traces, cfg.fault_cases, cfg.store_cases, cfg.replay_cases, cfg.trace_cases, cfg.profile_cases
    );
    let report = run_all(&cfg);
    println!("{}", report.summary());
    if report.is_clean() {
        println!("conformance: PASS");
        ExitCode::SUCCESS
    } else {
        for f in &report.failures {
            eprintln!("FAIL: {f}");
        }
        eprintln!("conformance: {} failure(s)", report.failures.len());
        ExitCode::FAILURE
    }
}
