//! `copred_conform` — the conformance gate run by CI.
//!
//! ```text
//! copred_conform [--seed N] [--iters N] [--service-traces N]
//!                [--fault-cases N] [--store-cases N] [--replay-cases N]
//!                [--trace-cases N] [--profile-cases N] [--fleet-cases N]
//!                [--skip-service] [--skip-fault] [--skip-store]
//!                [--skip-replay] [--skip-trace] [--skip-profile]
//!                [--skip-fleet]
//! ```
//!
//! Runs the seeded differential harness (schedule semantics, service
//! replay, fault injection, persistence, record→replay, tracing and
//! profiling invisibility, fleet) and exits nonzero on any divergence,
//! accounting mismatch, or panic. Defaults run well over 200 differential
//! iterations; every case is a pure function of `--seed`, so a red CI run
//! reproduces locally with the same flags. Unknown flags fail fast with
//! the full flag list — a typo never silently skips a stage.

use copred_conform::{run_all, ConformConfig};
use std::process::ExitCode;

/// Every flag `copred_conform` accepts; unknown flags are rejected with
/// this list so a typo never silently no-ops.
const VALID_FLAGS: &[&str] = &[
    "--seed",
    "--iters",
    "--service-traces",
    "--fault-cases",
    "--store-cases",
    "--replay-cases",
    "--trace-cases",
    "--profile-cases",
    "--fleet-cases",
    "--skip-service",
    "--skip-fault",
    "--skip-store",
    "--skip-replay",
    "--skip-trace",
    "--skip-profile",
    "--skip-fleet",
    "--help",
];

/// Parses the argument list (without argv[0]) into a config. `Ok(None)`
/// means `--help` was asked for.
fn parse_config(args: &[String]) -> Result<Option<ConformConfig>, String> {
    let mut cfg = ConformConfig::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut num = |flag: &str| -> Result<u64, String> {
            match it.next().map(|v| v.parse()) {
                Some(Ok(v)) => Ok(v),
                _ => Err(format!("{flag} needs an unsigned integer argument")),
            }
        };
        match arg.as_str() {
            "--seed" => cfg.seed = num("--seed")?,
            "--iters" => cfg.schedule_iters = num("--iters")?,
            "--service-traces" => cfg.service_traces = num("--service-traces")?,
            "--fault-cases" => cfg.fault_cases = num("--fault-cases")?,
            "--store-cases" => cfg.store_cases = num("--store-cases")?,
            "--replay-cases" => cfg.replay_cases = num("--replay-cases")?,
            "--trace-cases" => cfg.trace_cases = num("--trace-cases")?,
            "--profile-cases" => cfg.profile_cases = num("--profile-cases")?,
            "--fleet-cases" => cfg.fleet_cases = num("--fleet-cases")?,
            "--skip-service" => cfg.service_traces = 0,
            "--skip-fault" => cfg.fault_cases = 0,
            "--skip-store" => cfg.store_cases = 0,
            "--skip-replay" => cfg.replay_cases = 0,
            "--skip-trace" => cfg.trace_cases = 0,
            "--skip-profile" => cfg.profile_cases = 0,
            "--skip-fleet" => cfg.fleet_cases = 0,
            "--help" | "-h" => return Ok(None),
            other => {
                return Err(format!(
                    "unknown flag '{other}' (valid flags: {})",
                    VALID_FLAGS.join(", ")
                ))
            }
        }
    }
    Ok(Some(cfg))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cfg = match parse_config(&args) {
        Ok(Some(cfg)) => cfg,
        Ok(None) => {
            eprintln!("usage: copred_conform [{}]", VALID_FLAGS.join("] ["));
            return ExitCode::from(2);
        }
        Err(e) => {
            eprintln!("copred_conform: {e}");
            return ExitCode::from(2);
        }
    };

    println!(
        "copred_conform: seed {} | {} schedule cases, {} service traces, {} fault cases, {} store cases, {} replay cases, {} trace cases, {} profile cases, {} fleet cases",
        cfg.seed, cfg.schedule_iters, cfg.service_traces, cfg.fault_cases, cfg.store_cases, cfg.replay_cases, cfg.trace_cases, cfg.profile_cases, cfg.fleet_cases
    );
    let report = run_all(&cfg);
    println!("{}", report.summary());
    if report.is_clean() {
        println!("conformance: PASS");
        ExitCode::SUCCESS
    } else {
        for f in &report.failures {
            eprintln!("FAIL: {f}");
        }
        eprintln!("conformance: {} failure(s)", report.failures.len());
        ExitCode::FAILURE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(argv: &[&str]) -> Vec<String> {
        argv.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn unknown_flag_fails_fast_and_lists_valid_flags() {
        let err = parse_config(&strs(&["--seed", "7", "--flete-cases", "1"])).unwrap_err();
        assert!(err.contains("unknown flag '--flete-cases'"), "{err}");
        for flag in VALID_FLAGS {
            assert!(err.contains(flag), "error should list {flag}: {err}");
        }
    }

    #[test]
    fn numeric_flags_and_skips_apply() {
        let cfg = parse_config(&strs(&[
            "--seed",
            "9",
            "--fleet-cases",
            "5",
            "--skip-store",
        ]))
        .unwrap()
        .expect("not help");
        assert_eq!(cfg.seed, 9);
        assert_eq!(cfg.fleet_cases, 5);
        assert_eq!(cfg.store_cases, 0);
        let skipped = parse_config(&strs(&["--skip-fleet"])).unwrap().unwrap();
        assert_eq!(skipped.fleet_cases, 0);
    }

    #[test]
    fn missing_numeric_argument_is_an_error() {
        let err = parse_config(&strs(&["--fleet-cases"])).unwrap_err();
        assert!(err.contains("--fleet-cases needs"), "{err}");
    }
}
