//! Persistence conformance: the store may change *when* learned state is
//! available, never *what* the predictor computes.
//!
//! Three differentials per case, all pure functions of the seed:
//!
//! 1. **Warm-start equivalence** — a session that runs the first half of a
//!    trace, closes (persisting a snapshot), and warm-reopens must produce
//!    bit-identical results on the second half as a session that simply
//!    kept its table. Checked twice: in-process against a continuous
//!    baseline, and over a loopback TCP server with `store_dir` enabled —
//!    the wire `warm` flags are asserted along the way.
//! 2. **Crash recovery** — the first half runs against a store-enabled
//!    loopback server that is then dropped *without* closing the session
//!    (the WAL is the only survivor). A second server on the same
//!    directory must recover: same warm verdict and bit-identical
//!    second-half results as an in-process registry put through the
//!    identical crash, with no leaked sessions afterwards.
//! 3. **Torn tail** — the crashed directory's last WAL segment is
//!    truncated at several byte offsets; every truncation must still load
//!    (or degrade to cold) without a panic.

use crate::generate::ScenarioGen;
use copred_service::{
    CheckResult, SchedMode, Server, ServerConfig, ServiceClient, SessionRegistry,
};
use copred_store::{StoreRegistry, TableImage};
use copred_trace::{MotionTrace, QueryTrace};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// CSP stride shared by every path in this stage.
const CSP_STEP: usize = 5;
/// Motions per check batch, shared by every path.
const BATCH: usize = 2;

/// Outcome of the persistence stage.
#[derive(Debug, Default)]
pub struct StoreCheckOutcome {
    /// Differential cases executed (scenarios × traces).
    pub cases_run: u64,
    /// Human-readable divergence reports (empty = conformant).
    pub failures: Vec<String>,
}

/// Runs `cases` seeded persistence cases.
pub fn run_store_checks(gen: &ScenarioGen, cases: u64, base_seed: u64) -> StoreCheckOutcome {
    let mut outcome = StoreCheckOutcome::default();
    for i in 0..cases {
        let trace = gen.query_trace(1000 + i);
        if trace.motions.len() < 2 {
            continue;
        }
        let seed = base_seed.wrapping_add(i.wrapping_mul(0x9E37_79B9));
        let fp = seed | 1; // fingerprints are opaque u64 keys on the wire
        let root = scratch_dir(&format!("conform-{base_seed}-{i}"));
        warm_equivalence_case(&trace, seed, fp, &root, i, &mut outcome);
        crash_recovery_case(&trace, seed, fp, &root, i, &mut outcome);
        let _ = std::fs::remove_dir_all(&root);
    }
    outcome
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("copred-store-check-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn halves(trace: &QueryTrace) -> (&[MotionTrace], &[MotionTrace]) {
    trace.motions.split_at(trace.motions.len() / 2)
}

/// Replays `motions` batch-by-batch against an in-process coord session.
fn replay_local(
    session: &copred_service::SessionState,
    motions: &[MotionTrace],
) -> Vec<CheckResult> {
    let mut results = Vec::new();
    for batch in motions.chunks(BATCH) {
        results.extend(crate::service_diff::replay_batch_in_process(
            session, batch, CSP_STEP,
        ));
    }
    results
}

/// Replays `motions` batch-by-batch over the wire.
fn replay_tcp(
    client: &mut ServiceClient,
    id: u64,
    motions: &[MotionTrace],
) -> std::io::Result<Vec<CheckResult>> {
    let mut results = Vec::new();
    for batch in motions.chunks(BATCH) {
        let (rs, _retries) = client.check_motions(id, batch, 20)?;
        results.extend(rs);
    }
    Ok(results)
}

fn store_server(root: &Path) -> std::io::Result<Server> {
    Server::start(ServerConfig {
        workers: 2,
        max_sessions: 16,
        cht_params: copred_core::ChtParams::paper_2d(),
        csp_step: CSP_STEP,
        store_dir: Some(root.to_string_lossy().into_owned()),
        ..ServerConfig::default()
    })
}

/// Scenario 1: close-then-reopen warm start reproduces a continuous
/// session bit-for-bit, in-process and over the wire.
fn warm_equivalence_case(
    trace: &QueryTrace,
    seed: u64,
    fp: u64,
    root: &Path,
    case: u64,
    outcome: &mut StoreCheckOutcome,
) {
    outcome.cases_run += 1;
    let fail = |failures: &mut Vec<String>, msg: String| {
        failures.push(format!("store case {case} (warm equivalence): {msg}"));
    };
    let params = copred_core::ChtParams::paper_2d();
    let (first, second) = halves(trace);

    // Continuous baseline: one session runs both halves, no store.
    let baseline = SessionRegistry::new(params, 16);
    let (cont, _) = match baseline.open(&trace.robot_name, SchedMode::Coord, seed) {
        Ok(s) => s,
        Err(e) => return fail(&mut outcome.failures, format!("baseline open: {e}")),
    };
    let _ = replay_local(&cont, first);
    let cont_second = replay_local(&cont, second);

    // In-process store path: run, close (persist), warm-reopen, run again.
    let store_a = match StoreRegistry::open(root.join("inproc")) {
        Ok(s) => Arc::new(s),
        Err(e) => return fail(&mut outcome.failures, format!("store open: {e}")),
    };
    let registry = SessionRegistry::new_with_store(params, 16, Some(store_a));
    match registry.open_full(&trace.robot_name, SchedMode::Coord, seed, Some(fp)) {
        Ok(o) => {
            if o.warm {
                fail(
                    &mut outcome.failures,
                    "first in-process open reported warm".into(),
                );
            }
            let _ = replay_local(&o.session, first);
            let id = o.session.id;
            drop(o);
            if let Err(e) = registry.close(id) {
                fail(&mut outcome.failures, format!("in-process close: {e}"));
            }
        }
        Err(e) => return fail(&mut outcome.failures, format!("in-process open: {e}")),
    }
    let local_second = match registry.open_full(&trace.robot_name, SchedMode::Coord, seed, Some(fp))
    {
        Ok(o) => {
            if !o.warm {
                fail(
                    &mut outcome.failures,
                    "in-process reopen did not warm-start".into(),
                );
            }
            replay_local(&o.session, second)
        }
        Err(e) => return fail(&mut outcome.failures, format!("in-process reopen: {e}")),
    };
    if local_second != cont_second {
        fail(
            &mut outcome.failures,
            "warm in-process second half diverged from continuous session".into(),
        );
    }

    // Loopback store path: same sequence over the wire.
    let server = match store_server(&root.join("tcp")) {
        Ok(s) => s,
        Err(e) => return fail(&mut outcome.failures, format!("server start: {e}")),
    };
    let mut client = match ServiceClient::connect(server.local_addr()) {
        Ok(c) => c,
        Err(e) => return fail(&mut outcome.failures, format!("connect: {e}")),
    };
    let tcp_second = (|| -> std::io::Result<Vec<CheckResult>> {
        let (id, warm) = client.open_with_fp(
            &trace.robot_name,
            trace.link_count,
            SchedMode::Coord,
            seed,
            Some(fp),
        )?;
        if warm {
            fail(
                &mut outcome.failures,
                "first wire open reported warm".into(),
            );
        }
        let _ = replay_tcp(&mut client, id, first)?;
        client.close(id)?;
        let (id, warm) = client.open_with_fp(
            &trace.robot_name,
            trace.link_count,
            SchedMode::Coord,
            seed,
            Some(fp),
        )?;
        if !warm {
            fail(
                &mut outcome.failures,
                "wire reopen did not warm-start".into(),
            );
        }
        let out = replay_tcp(&mut client, id, second)?;
        client.close(id)?;
        Ok(out)
    })();
    match tcp_second {
        Ok(rs) if rs != cont_second => fail(
            &mut outcome.failures,
            "warm wire second half diverged from continuous session".into(),
        ),
        Ok(_) => {}
        Err(e) => fail(&mut outcome.failures, format!("wire warm replay: {e}")),
    }
}

/// Scenarios 2 and 3: crash (drop without close), recover from the WAL,
/// and survive a torn tail.
fn crash_recovery_case(
    trace: &QueryTrace,
    seed: u64,
    fp: u64,
    root: &Path,
    case: u64,
    outcome: &mut StoreCheckOutcome,
) {
    outcome.cases_run += 1;
    let fail = |failures: &mut Vec<String>, msg: String| {
        failures.push(format!("store case {case} (crash recovery): {msg}"));
    };
    let params = copred_core::ChtParams::paper_2d();
    let (first, second) = halves(trace);

    // In-process mirror of the crash: same trace, own store directory,
    // session dropped (never closed) so only the WAL survives.
    let crash_a = root.join("crash-inproc");
    let expected_cells: Vec<(u8, u8)>;
    {
        let store = match StoreRegistry::open(&crash_a) {
            Ok(s) => Arc::new(s),
            Err(e) => return fail(&mut outcome.failures, format!("store open: {e}")),
        };
        let registry = SessionRegistry::new_with_store(params, 16, Some(store));
        match registry.open_full(&trace.robot_name, SchedMode::Coord, seed, Some(fp)) {
            Ok(o) => {
                let _ = replay_local(&o.session, first);
                expected_cells = o.session.shard.export_cells();
            }
            Err(e) => return fail(&mut outcome.failures, format!("in-process open: {e}")),
        }
        // Registry (and the session's WAL handle) dropped here: the crash.
    }

    // Recovery must reconstruct the table bit-exactly from the WAL alone.
    let recovered = match StoreRegistry::open(&crash_a) {
        Ok(s) => s,
        Err(e) => return fail(&mut outcome.failures, format!("store reopen: {e}")),
    };
    let image = recovered.load(fp, &params);
    let expected_warm = expected_cells.iter().any(|&(c, n)| c != 0 || n != 0);
    match image {
        Some(img) => {
            if !expected_warm {
                fail(
                    &mut outcome.failures,
                    "recovery produced an image from an empty table".into(),
                );
            } else if img.cells != expected_cells {
                fail(
                    &mut outcome.failures,
                    "WAL recovery diverged from the live table at crash time".into(),
                );
            }
        }
        None if expected_warm => fail(
            &mut outcome.failures,
            "recovery lost a non-empty table".into(),
        ),
        None => {}
    }

    // Post-recovery, the service differential must still bit-match: a warm
    // in-process session and a warm wire session (crashed the same way)
    // replay the second half identically.
    let registry = SessionRegistry::new_with_store(params, 16, Some(Arc::new(recovered)));
    let (local_warm, local_second) =
        match registry.open_full(&trace.robot_name, SchedMode::Coord, seed, Some(fp)) {
            Ok(o) => (o.warm, replay_local(&o.session, second)),
            Err(e) => return fail(&mut outcome.failures, format!("recovered open: {e}")),
        };
    if local_warm != expected_warm {
        fail(
            &mut outcome.failures,
            format!("recovered warm {local_warm} != expected {expected_warm}"),
        );
    }

    let crash_b = root.join("crash-tcp");
    {
        let server = match store_server(&crash_b) {
            Ok(s) => s,
            Err(e) => return fail(&mut outcome.failures, format!("server start: {e}")),
        };
        let crashed = (|| -> std::io::Result<()> {
            let mut client = ServiceClient::connect(server.local_addr())?;
            let (id, _) = client.open_with_fp(
                &trace.robot_name,
                trace.link_count,
                SchedMode::Coord,
                seed,
                Some(fp),
            )?;
            let _ = replay_tcp(&mut client, id, first)?;
            Ok(()) // session deliberately left open: the crash
        })();
        if let Err(e) = crashed {
            return fail(&mut outcome.failures, format!("pre-crash wire run: {e}"));
        }
        // Server dropped here without the session ever closing.
    }
    let server = match store_server(&crash_b) {
        Ok(s) => s,
        Err(e) => return fail(&mut outcome.failures, format!("server restart: {e}")),
    };
    let wire = (|| -> std::io::Result<(bool, Vec<CheckResult>, Option<u64>)> {
        let mut client = ServiceClient::connect(server.local_addr())?;
        let (id, warm) = client.open_with_fp(
            &trace.robot_name,
            trace.link_count,
            SchedMode::Coord,
            seed,
            Some(fp),
        )?;
        let out = replay_tcp(&mut client, id, second)?;
        client.close(id)?;
        let open = copred_service::client::stat_u64(&client.stats(None)?, "sessions_open");
        Ok((warm, out, open))
    })();
    match wire {
        Ok((warm, tcp_second, open)) => {
            if warm != expected_warm {
                fail(
                    &mut outcome.failures,
                    format!("wire recovered warm {warm} != expected {expected_warm}"),
                );
            }
            if tcp_second != local_second {
                fail(
                    &mut outcome.failures,
                    "post-crash wire replay diverged from in-process replay".into(),
                );
            }
            if open != Some(0) {
                fail(
                    &mut outcome.failures,
                    format!("sessions leaked after recovery: {open:?}"),
                );
            }
        }
        Err(e) => fail(&mut outcome.failures, format!("post-crash wire run: {e}")),
    }

    // Torn tail: truncating the last surviving WAL segment anywhere must
    // never panic a later load.
    outcome.cases_run += 1;
    let segs = copred_store::wal::segments(&crash_a);
    if let Some((_, last)) = segs.last() {
        let full = match std::fs::read(last) {
            Ok(b) => b,
            Err(e) => return fail(&mut outcome.failures, format!("read segment: {e}")),
        };
        for frac in [1, 2, 3, 5] {
            let cut = full.len() * frac / 6;
            if std::fs::write(last, &full[..cut]).is_err() {
                continue;
            }
            let reopened = match StoreRegistry::open(&crash_a) {
                Ok(s) => s,
                Err(e) => {
                    fail(
                        &mut outcome.failures,
                        format!("torn-tail store open (cut {cut}): {e}"),
                    );
                    continue;
                }
            };
            // Any outcome but a panic is acceptable; a produced image must
            // at least have the right geometry.
            if let Some(img) = reopened.load(fp, &params) {
                if img.cells.len() != TableImage::empty(params).cells.len() {
                    fail(
                        &mut outcome.failures,
                        format!("torn-tail image has wrong geometry (cut {cut})"),
                    );
                }
            }
        }
        let _ = std::fs::write(last, &full);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn store_checks_are_clean() {
        let gen = ScenarioGen::new(31);
        let out = run_store_checks(&gen, 2, 3100);
        assert!(out.failures.is_empty(), "{:?}", out.failures);
        assert!(out.cases_run >= 4);
    }
}
