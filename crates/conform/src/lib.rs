//! # copred-conform
//!
//! Differential conformance and fault-injection harness for the COORD
//! reproduction. The paper's headline claim — prediction reduces CDQs
//! executed per colliding check — is only meaningful if every execution
//! path computes the *same* collision verdicts with consistent CDQ
//! accounting. Learned proxy checkers accept approximate answers; COORD
//! does not: prediction may only reorder work, never change a verdict.
//! This crate enforces that mechanically, in three stages:
//!
//! 1. **Schedule semantics** ([`reference`]) — seeded random and
//!    edge-case CDQ workloads through `Naive`/`Csp`/`Oracle`/`Speculative`
//!    and `run_predicted_schedule` under cold, adversarial, and perfect
//!    predictors, all diffed against a brute-force reference.
//! 2. **Service replay** ([`service_diff`]) — identical [`copred_trace::QueryTrace`]
//!    workloads through the in-process scheduler and a loopback
//!    `copred-service` TCP session, diffing every `CheckResult` and the
//!    metrics ledger, plus a swexec CPU-path verdict cross-check.
//! 3. **Fault injection** ([`fault`]) — adversarial bytes against the
//!    frame codec and torn-input scenarios against a live server through
//!    a [`fault::FaultyStream`] wrapper.
//! 4. **Persistence** ([`store_check`]) — warm-start equivalence (a
//!    close/reopen session must bit-match one that kept its table), crash
//!    recovery from the WAL alone, and torn-tail robustness, in-process
//!    and over loopback TCP.
//! 5. **Record → replay** ([`replay_check`]) — a live loadgen run is
//!    recorded into a CPRDLOG (`copred-replay`), round-tripped through
//!    bytes, and replayed against the in-process registry and a fresh
//!    loopback server: every response must be bit-identical to the
//!    recording, the replayed per-session metrics ledger must equal the
//!    recorded one, and double replay must be deterministic.
//! 6. **Tracing invisibility** ([`trace_check`]) — the same seeded
//!    workload runs with wire trace ids off and on; the op streams must
//!    match byte-for-byte modulo the `trace` token, the scheduler
//!    aggregates must be identical, and injecting fresh trace ids into
//!    an untraced CPRDLOG replay must stay mismatch-free.
//! 7. **Profiling invisibility** ([`profile_check`]) — the same seeded
//!    workload runs with the continuous stage sampler off and on; the op
//!    streams must match byte-for-byte (the sampler touches no wire
//!    bytes), the scheduler aggregates must be identical, the sampled
//!    arm's profile must satisfy its shape invariants (per-thread
//!    fractions ≤ 1.0, known stage labels only), and the unsampled
//!    server must report an empty profile.
//! 8. **Fleet** ([`fleet_check`]) — a recorded workload replays
//!    bit-identically through a 2-backend fleet and a single node; a
//!    session migrated mid-stream by a backend kill answers
//!    byte-for-byte like an unmigrated one with an equal metrics
//!    ledger; and torn/version-skewed/corrupt snapshot pushes degrade
//!    to cold start — never a panic, never a session leak.
//!
//! The `copred_conform` binary wires all eight into CI; every run is a
//! pure function of `--seed`, so a red build is reproducible locally with
//! the same flags.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod fault;
pub mod fleet_check;
pub mod generate;
pub mod profile_check;
pub mod reference;
pub mod replay_check;
pub mod service_diff;
pub mod store_check;
pub mod trace_check;

pub use fleet_check::{run_fleet_checks, FleetCheckOutcome};
pub use generate::{ScenarioGen, ScheduleCase};
pub use profile_check::{run_profile_checks, ProfileCheckOutcome};
pub use reference::{brute_force_verdict, check_schedule_case, RecordingPredictor};
pub use replay_check::{run_replay_checks, ReplayCheckOutcome};
pub use service_diff::{replay_batch_in_process, run_cpu_diff, run_service_diff};
pub use store_check::{run_store_checks, StoreCheckOutcome};
pub use trace_check::{run_trace_checks, TraceCheckOutcome};

use copred_service::{Server, ServerConfig};

/// Harness configuration: how many cases each stage runs.
#[derive(Debug, Clone)]
pub struct ConformConfig {
    /// Root seed; every case derives deterministically from it.
    pub seed: u64,
    /// Schedule-semantics cases.
    pub schedule_iters: u64,
    /// Query traces replayed through the service diff (0 skips the stage).
    pub service_traces: u64,
    /// Codec-fuzz cases (0 skips codec fuzz and the live fault scenarios).
    pub fault_cases: u64,
    /// Persistence traces put through warm-start/crash-recovery checks
    /// (0 skips the stage).
    pub store_cases: u64,
    /// Record→replay bit-identity cases (0 skips the stage).
    pub replay_cases: u64,
    /// Tracing-invisibility cases (0 skips the stage).
    pub trace_cases: u64,
    /// Profiling-invisibility cases (0 skips the stage).
    pub profile_cases: u64,
    /// Fleet replay/migration/replication cases (0 skips the stage).
    pub fleet_cases: u64,
}

impl Default for ConformConfig {
    fn default() -> Self {
        ConformConfig {
            seed: 0xC0_11_1D,
            schedule_iters: 120,
            service_traces: 24,
            fault_cases: 64,
            store_cases: 4,
            replay_cases: 3,
            trace_cases: 3,
            profile_cases: 3,
            fleet_cases: 2,
        }
    }
}

/// Aggregated result of a harness run.
#[derive(Debug, Default)]
pub struct ConformReport {
    /// Schedule cases checked.
    pub schedule_iters: u64,
    /// Motion checks diffed between the service paths.
    pub service_checks: u64,
    /// Service traces replayed.
    pub service_traces: u64,
    /// CPU-path diff runs.
    pub cpu_diffs: u64,
    /// Codec-fuzz cases plus live fault scenarios.
    pub fault_cases: u64,
    /// Persistence differential cases (warm start, crash, torn tail).
    pub store_cases: u64,
    /// Record→replay bit-identity cases.
    pub replay_cases: u64,
    /// Ops replayed across all record→replay backends.
    pub replay_ops: u64,
    /// Tracing-invisibility cases.
    pub trace_cases: u64,
    /// Wire ops compared byte-for-byte across traced/untraced runs.
    pub trace_ops: u64,
    /// Profiling-invisibility cases.
    pub profile_cases: u64,
    /// Wire ops compared byte-for-byte across sampled/unsampled runs.
    pub profile_ops: u64,
    /// Fleet replay/migration/replication cases.
    pub fleet_cases: u64,
    /// Ops replayed across fleet and single-node arms.
    pub fleet_ops: u64,
    /// Every divergence, mismatch, or panic found.
    pub failures: Vec<String>,
}

impl ConformReport {
    /// Whether the run found no divergence of any kind.
    pub fn is_clean(&self) -> bool {
        self.failures.is_empty()
    }

    /// Total differential iterations across all stages (the CI gate
    /// requires this to clear a floor).
    pub fn total_iterations(&self) -> u64 {
        self.schedule_iters
            + self.service_traces
            + self.cpu_diffs
            + self.fault_cases
            + self.store_cases
            + self.replay_cases
            + self.trace_cases
            + self.profile_cases
            + self.fleet_cases
    }

    /// One-line-per-stage human summary.
    pub fn summary(&self) -> String {
        format!(
            "schedule cases: {}\nservice traces: {} ({} checks diffed)\ncpu diffs: {}\nfault cases: {}\nstore cases: {}\nreplay cases: {} ({} ops replayed)\ntrace cases: {} ({} ops compared)\nprofile cases: {} ({} ops compared)\nfleet cases: {} ({} ops replayed)\ntotal iterations: {}\nfailures: {}",
            self.schedule_iters,
            self.service_traces,
            self.service_checks,
            self.cpu_diffs,
            self.fault_cases,
            self.store_cases,
            self.replay_cases,
            self.replay_ops,
            self.trace_cases,
            self.trace_ops,
            self.profile_cases,
            self.profile_ops,
            self.fleet_cases,
            self.fleet_ops,
            self.total_iterations(),
            self.failures.len()
        )
    }
}

/// Runs every stage and aggregates the report.
pub fn run_all(cfg: &ConformConfig) -> ConformReport {
    let mut report = ConformReport::default();
    let gen = ScenarioGen::new(cfg.seed);

    // Stage 1: schedule semantics vs brute force.
    for i in 0..cfg.schedule_iters {
        let case = gen.schedule_case(i);
        report
            .failures
            .extend(check_schedule_case(&case, cfg.seed.wrapping_add(i)));
        report.schedule_iters += 1;
    }

    // Stage 2: in-process vs loopback service replay + ledger audit.
    if cfg.service_traces > 0 {
        let traces: Vec<_> = (0..cfg.service_traces)
            .map(|i| gen.query_trace(i))
            .collect();
        let out = run_service_diff(&traces, cfg.seed);
        report.service_traces = cfg.service_traces;
        report.service_checks = out.checks_diffed;
        report.failures.extend(out.failures);
        // swexec CPU path: verdicts must survive threading and prediction.
        for i in 0..3 {
            report
                .failures
                .extend(run_cpu_diff(cfg.seed.wrapping_add(i)));
            report.cpu_diffs += 1;
        }
    }

    // Stage 3: codec fuzz + live fault scenarios.
    if cfg.fault_cases > 0 {
        let (cases, failures) = fault::run_codec_fuzz(&gen, cfg.fault_cases);
        report.fault_cases += cases;
        report.failures.extend(failures);
        match Server::start(ServerConfig::default()) {
            Ok(server) => {
                let (scenarios, failures) = fault::run_fault_scenarios(server.local_addr());
                report.fault_cases += scenarios;
                report.failures.extend(failures);
            }
            Err(e) => report
                .failures
                .push(format!("fault stage: server failed to start: {e}")),
        }
    }

    // Stage 4: persistence — warm-start equivalence, crash recovery, torn
    // WAL tails.
    if cfg.store_cases > 0 {
        let out = run_store_checks(&gen, cfg.store_cases, cfg.seed);
        report.store_cases = out.cases_run;
        report.failures.extend(out.failures);
    }

    // Stage 5: record→replay bit-identity, ledger equality, determinism.
    if cfg.replay_cases > 0 {
        let out = run_replay_checks(&gen, cfg.replay_cases, cfg.seed);
        report.replay_cases = out.cases_run;
        report.replay_ops = out.ops_replayed;
        report.failures.extend(out.failures);
    }

    // Stage 6: tracing invisibility — identical bytes and scheduler
    // aggregates with wire trace ids off vs on.
    if cfg.trace_cases > 0 {
        let out = run_trace_checks(&gen, cfg.trace_cases, cfg.seed);
        report.trace_cases = out.cases_run;
        report.trace_ops = out.ops_compared;
        report.failures.extend(out.failures);
    }

    // Stage 7: profiling invisibility — identical bytes and scheduler
    // aggregates with the continuous stage sampler off vs on.
    if cfg.profile_cases > 0 {
        let out = run_profile_checks(&gen, cfg.profile_cases, cfg.seed);
        report.profile_cases = out.cases_run;
        report.profile_ops = out.ops_compared;
        report.failures.extend(out.failures);
    }

    // Stage 8: fleet — sharded replay identity, mid-stream migration
    // identity, and hostile replication degrading to cold start.
    if cfg.fleet_cases > 0 {
        let out = run_fleet_checks(&gen, cfg.fleet_cases, cfg.seed);
        report.fleet_cases = out.cases_run;
        report.fleet_ops = out.ops_replayed;
        report.failures.extend(out.failures);
    }

    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_run_is_clean_and_counts_iterations() {
        let cfg = ConformConfig {
            seed: 5,
            schedule_iters: 10,
            service_traces: 3,
            fault_cases: 8,
            store_cases: 1,
            replay_cases: 1,
            trace_cases: 1,
            profile_cases: 1,
            fleet_cases: 1,
        };
        let report = run_all(&cfg);
        assert!(report.is_clean(), "{:?}", report.failures);
        // 10 schedule + 3 service + 8 fault + 1 store + 1 replay + 1
        // trace + 1 profile + 1 fleet.
        assert!(report.total_iterations() >= 26);
        assert!(report.replay_ops > 0, "replay stage must run ops");
        assert!(report.trace_ops > 0, "trace stage must compare ops");
        assert!(report.profile_ops > 0, "profile stage must compare ops");
        assert!(report.fleet_ops > 0, "fleet stage must replay ops");
        assert!(report.summary().contains("failures: 0"));
    }
}
