//! Differential replay: the same [`QueryTrace`] workload executed through
//! the in-process scheduler machinery and through a loopback
//! `copred-service` TCP session must produce byte-identical results.
//!
//! The in-process path reuses the service's own public building blocks —
//! [`SessionRegistry`], [`ChtPredictor`], [`run_predicted_schedule`] — so
//! the diff isolates the *transport and dispatch* layers (framing,
//! protocol, queueing, worker pool) rather than re-deriving scheduler
//! semantics from scratch. On top of the per-check diff it audits the
//! metrics ledger:
//!
//! * per coord session: `true_pos + false_pos + true_neg + false_neg ==
//!   cdqs_issued` (every executed CDQ classified exactly once);
//! * per naive/CSP session: all confusion counters stay zero;
//! * globally: `checks` / `cdqs_issued` / `cdqs_total` equal the sums over
//!   open sessions;
//! * replaying a session with the same seed is deterministic.
//!
//! The same ledger is audited a third way: each chunk's server exposes a
//! `/metrics` endpoint, and the scraped Prometheus page must agree with
//! both the wire stats and the in-process results (metric names are a
//! conformance contract — see ROADMAP.md).

use copred_core::ChtParams;
use copred_envgen::{random_scene, Density};
use copred_kinematics::{presets, Motion, Robot};
use copred_service::client::stat_u64;
use copred_service::{
    CheckResult, SchedMode, Server, ServerConfig, ServiceClient, SessionRegistry,
};
use copred_swexec::{run_cpu, CpuExecConfig};
use copred_trace::{MotionTrace, QueryTrace};
use std::sync::atomic::Ordering;

/// Sessions per server instance; kept below the pool cap so the LRU can
/// never evict a session mid-diff.
const CHUNK: usize = 8;

/// CSP stride shared by both paths.
const CSP_STEP: usize = 5;

/// Executes one batch exactly as the server's worker does, against an
/// in-process session, returning the wire-visible results and updating the
/// session's metrics the same way. Delegates to the service's own
/// [`copred_service::execute_batch`] — the single definition of batch
/// semantics shared by the TCP worker, this harness, and the replay
/// engine.
pub fn replay_batch_in_process(
    session: &copred_service::SessionState,
    motions: &[MotionTrace],
    csp_step: usize,
) -> Vec<CheckResult> {
    copred_service::execute_batch(session, motions, csp_step)
}

fn mode_for(i: usize) -> SchedMode {
    [SchedMode::Coord, SchedMode::Naive, SchedMode::Csp][i % 3]
}

fn batch_size_for(i: usize) -> usize {
    1 + i % 3
}

/// Outcome of a service differential run.
#[derive(Debug, Default)]
pub struct ServiceDiffOutcome {
    /// Motion checks compared between the two paths.
    pub checks_diffed: u64,
    /// Human-readable divergence reports (empty = conformant).
    pub failures: Vec<String>,
}

/// Replays `traces` through both paths and diffs results and ledgers.
/// `base_seed` parameterizes the per-session U-policy streams.
pub fn run_service_diff(traces: &[QueryTrace], base_seed: u64) -> ServiceDiffOutcome {
    let mut outcome = ServiceDiffOutcome::default();
    for (chunk_idx, chunk) in traces.chunks(CHUNK).enumerate() {
        diff_chunk(chunk, chunk_idx, base_seed, &mut outcome);
    }
    outcome
}

struct SessionRun {
    id: u64,
    mode: SchedMode,
    tcp_results: Vec<CheckResult>,
}

#[allow(clippy::too_many_lines)]
fn diff_chunk(
    chunk: &[QueryTrace],
    chunk_idx: usize,
    base_seed: u64,
    outcome: &mut ServiceDiffOutcome,
) {
    let params = ChtParams::paper_2d();
    let server = match Server::start(ServerConfig {
        workers: 2,
        queue_capacity: 64,
        session_queue_cap: 32,
        max_sessions: 16,
        cht_params: params,
        csp_step: CSP_STEP,
        retry_after_ms: 2,
        metrics_addr: Some("127.0.0.1:0".to_string()),
        ..ServerConfig::default()
    }) {
        Ok(s) => s,
        Err(e) => {
            outcome
                .failures
                .push(format!("chunk {chunk_idx}: server failed to start: {e}"));
            return;
        }
    };
    let registry = SessionRegistry::new(params, 16);
    let mut client = match ServiceClient::connect(server.local_addr()) {
        Ok(c) => c,
        Err(e) => {
            outcome
                .failures
                .push(format!("chunk {chunk_idx}: connect failed: {e}"));
            return;
        }
    };
    let fail = |failures: &mut Vec<String>, msg: String| {
        failures.push(format!("chunk {chunk_idx}: {msg}"));
    };

    let mut runs: Vec<SessionRun> = Vec::new();
    for (i, trace) in chunk.iter().enumerate() {
        let mode = mode_for(i);
        let seed = base_seed
            .wrapping_add(chunk_idx as u64 * 1000)
            .wrapping_add(i as u64);
        // --- TCP path ---
        let tcp_id = match client.open(&trace.robot_name, trace.link_count, mode, seed) {
            Ok(id) => id,
            Err(e) => {
                fail(
                    &mut outcome.failures,
                    format!("trace {i}: open failed: {e}"),
                );
                continue;
            }
        };
        let mut tcp_results = Vec::new();
        for batch in trace.motions.chunks(batch_size_for(i)) {
            match client.check_motions(tcp_id, batch, 20) {
                Ok((rs, _retries)) => tcp_results.extend(rs),
                Err(e) => {
                    fail(
                        &mut outcome.failures,
                        format!("trace {i}: check failed: {e}"),
                    );
                }
            }
        }
        // --- In-process path ---
        let (session, _evicted) = match registry.open(&trace.robot_name, mode, seed) {
            Ok(s) => s,
            Err(e) => {
                fail(
                    &mut outcome.failures,
                    format!("trace {i}: in-process open failed: {e}"),
                );
                continue;
            }
        };
        let mut local_results = Vec::new();
        for batch in trace.motions.chunks(batch_size_for(i)) {
            local_results.extend(replay_batch_in_process(&session, batch, CSP_STEP));
        }

        // Per-check diff, plus the brute-force verdict both must match.
        if tcp_results.len() != local_results.len() {
            fail(
                &mut outcome.failures,
                format!(
                    "trace {i}: result count {} (tcp) != {} (in-process)",
                    tcp_results.len(),
                    local_results.len()
                ),
            );
        }
        for (m, (t, l)) in tcp_results.iter().zip(&local_results).enumerate() {
            outcome.checks_diffed += 1;
            if t != l {
                fail(
                    &mut outcome.failures,
                    format!("trace {i} motion {m}: tcp {t:?} != in-process {l:?}"),
                );
            }
            let truth = chunk[i].motions[m].colliding();
            if t.colliding != truth {
                fail(
                    &mut outcome.failures,
                    format!(
                        "trace {i} motion {m}: verdict {} != brute-force {truth}",
                        t.colliding
                    ),
                );
            }
        }

        // Per-session ledger: wire stats vs in-process metrics.
        match client.stats(Some(tcp_id)) {
            Ok(kv) => diff_session_ledger(i, mode, &kv, &session, chunk_idx, &mut outcome.failures),
            Err(e) => fail(
                &mut outcome.failures,
                format!("trace {i}: stats failed: {e}"),
            ),
        }
        runs.push(SessionRun {
            id: tcp_id,
            mode,
            tcp_results,
        });
    }

    // Global counters must equal the sum over the (still open) sessions.
    diff_global_ledger(&mut client, &runs, chunk_idx, &mut outcome.failures);

    // Third view of the same ledger: scrape /metrics while the sessions
    // are still open (global counters are cumulative, so this must run
    // before the determinism replay adds a session).
    match server.metrics_addr() {
        Some(addr) => diff_prometheus_scrape(addr, &runs, chunk_idx, &mut outcome.failures),
        None => fail(
            &mut outcome.failures,
            "metrics endpoint did not come up".to_string(),
        ),
    }

    // Determinism: replay the first trace in a fresh session with the same
    // seed and mode; results must be identical.
    if let (Some(first_run), Some(trace)) = (runs.first(), chunk.first()) {
        let seed = base_seed.wrapping_add(chunk_idx as u64 * 1000);
        match client.open(&trace.robot_name, trace.link_count, first_run.mode, seed) {
            Ok(replay_id) => {
                let mut replay_results = Vec::new();
                for batch in trace.motions.chunks(batch_size_for(0)) {
                    match client.check_motions(replay_id, batch, 20) {
                        Ok((rs, _)) => replay_results.extend(rs),
                        Err(e) => fail(
                            &mut outcome.failures,
                            format!("determinism replay check failed: {e}"),
                        ),
                    }
                }
                if replay_results != first_run.tcp_results {
                    fail(
                        &mut outcome.failures,
                        "same-seed replay diverged from the first run".to_string(),
                    );
                }
                let _ = client.close(replay_id);
            }
            Err(e) => fail(
                &mut outcome.failures,
                format!("determinism replay open failed: {e}"),
            ),
        }
    }

    // Close everything; the pool must report empty afterwards.
    for run in &runs {
        if let Err(e) = client.close(run.id) {
            fail(
                &mut outcome.failures,
                format!("close of session {} failed: {e}", run.id),
            );
        }
    }
    match client.stats(None) {
        Ok(kv) => {
            if stat_u64(&kv, "sessions_open") != Some(0) {
                fail(
                    &mut outcome.failures,
                    format!(
                        "sessions leaked after close: {:?}",
                        stat_u64(&kv, "sessions_open")
                    ),
                );
            }
        }
        Err(e) => fail(&mut outcome.failures, format!("final stats failed: {e}")),
    }
}

fn diff_session_ledger(
    i: usize,
    mode: SchedMode,
    kv: &[(String, String)],
    session: &copred_service::SessionState,
    chunk_idx: usize,
    failures: &mut Vec<String>,
) {
    let mut fail = |msg: String| failures.push(format!("chunk {chunk_idx}: trace {i}: {msg}"));
    let wire = |key: &str| stat_u64(kv, key).unwrap_or(u64::MAX);
    let local = |a: &std::sync::atomic::AtomicU64| a.load(Ordering::Relaxed);
    let m = &session.metrics;
    let pairs = [
        ("checks", local(&m.checks)),
        ("cdqs_issued", local(&m.cdqs_issued)),
        ("cdqs_total", local(&m.cdqs_total)),
        ("collisions", local(&m.collisions)),
        ("true_pos", local(&m.true_pos)),
        ("false_pos", local(&m.false_pos)),
        ("true_neg", local(&m.true_neg)),
        ("false_neg", local(&m.false_neg)),
    ];
    for (key, expect) in pairs {
        let got = wire(key);
        if got != expect {
            fail(format!("stat {key}: wire {got} != in-process {expect}"));
        }
    }
    let confusion = wire("true_pos") + wire("false_pos") + wire("true_neg") + wire("false_neg");
    match mode {
        SchedMode::Coord => {
            if confusion != wire("cdqs_issued") {
                fail(format!(
                    "confusion ledger broken: tp+fp+tn+fn = {confusion} != cdqs_issued {}",
                    wire("cdqs_issued")
                ));
            }
        }
        SchedMode::Naive | SchedMode::Csp => {
            if confusion != 0 {
                fail(format!(
                    "unpredicted session accumulated confusion counts: {confusion}"
                ));
            }
        }
    }
    if wire("cdqs_issued") > wire("cdqs_total") {
        fail(format!(
            "cdqs_issued {} > cdqs_total {}",
            wire("cdqs_issued"),
            wire("cdqs_total")
        ));
    }
}

/// Scrapes the chunk server's `/metrics` page and diffs it against the
/// wire results: per coord session the scraped confusion ledger must sum
/// to the scraped `cdqs_issued`, scraped session series must match the
/// client-side result sums, and scraped global counters must equal the
/// sums over the scraped session series.
fn diff_prometheus_scrape(
    addr: std::net::SocketAddr,
    runs: &[SessionRun],
    chunk_idx: usize,
    failures: &mut Vec<String>,
) {
    let body = match copred_obs::http_get(addr, "/metrics") {
        Ok(b) => b,
        Err(e) => {
            failures.push(format!("chunk {chunk_idx}: /metrics scrape failed: {e}"));
            return;
        }
    };
    let samples = match copred_obs::parse_prometheus(&body) {
        Ok(s) => s,
        Err(e) => {
            failures.push(format!(
                "chunk {chunk_idx}: scraped page does not parse: {e}"
            ));
            return;
        }
    };
    let mut fail = |msg: String| failures.push(format!("chunk {chunk_idx}: scrape: {msg}"));
    // Counters are exact small integers, so f64 equality is safe here.
    let get = |name: &str, session: Option<&str>| -> Option<f64> {
        samples
            .iter()
            .find(|s| {
                s.name == name
                    && match session {
                        Some(id) => s.label("session") == Some(id),
                        None => true,
                    }
            })
            .map(|s| s.value)
    };
    let mut sums = (0.0f64, 0.0f64, 0.0f64); // checks, issued, declared
    for run in runs {
        let id = run.id.to_string();
        let g = |name: &str| get(name, Some(&id));
        // A missing series yields NaN, which poisons the sums and fails
        // the equality checks below.
        let series = |name: &str| g(name).unwrap_or(f64::NAN);
        let checks = series("copred_session_checks_total");
        let issued = series("copred_session_cdqs_issued_total");
        let declared = series("copred_session_cdqs_declared_total");
        if checks != run.tcp_results.len() as f64 {
            fail(format!(
                "session {id}: scraped checks {checks} != {} wire results",
                run.tcp_results.len()
            ));
        }
        let wire_issued: u64 = run.tcp_results.iter().map(|r| r.cdqs_executed).sum();
        if issued != wire_issued as f64 {
            fail(format!(
                "session {id}: scraped cdqs_issued {issued} != wire sum {wire_issued}"
            ));
        }
        let confusion: f64 = [
            "copred_session_true_pos_total",
            "copred_session_false_pos_total",
            "copred_session_true_neg_total",
            "copred_session_false_neg_total",
        ]
        .iter()
        .map(|n| series(n))
        .sum();
        match run.mode {
            SchedMode::Coord => {
                if confusion != issued {
                    fail(format!(
                        "session {id}: scraped tp+fp+tn+fn {confusion} != cdqs_issued {issued}"
                    ));
                }
            }
            SchedMode::Naive | SchedMode::Csp => {
                if confusion != 0.0 {
                    fail(format!(
                        "session {id}: unpredicted session scraped confusion {confusion}"
                    ));
                }
            }
        }
        sums.0 += checks;
        sums.1 += issued;
        sums.2 += declared;
    }
    for (name, expect) in [
        ("copred_checks_total", sums.0),
        ("copred_cdqs_issued_total", sums.1),
        ("copred_cdqs_declared_total", sums.2),
    ] {
        match get(name, None) {
            Some(got) if got == expect => {}
            got => fail(format!(
                "global {name} {got:?} != sum of session series {expect}"
            )),
        }
    }
    if get("copred_sessions_open", None) != Some(runs.len() as f64) {
        fail(format!(
            "copred_sessions_open {:?} != {} open sessions",
            get("copred_sessions_open", None),
            runs.len()
        ));
    }
}

fn diff_global_ledger(
    client: &mut ServiceClient,
    runs: &[SessionRun],
    chunk_idx: usize,
    failures: &mut Vec<String>,
) {
    let mut session_sums = (0u64, 0u64, 0u64);
    for run in runs {
        match client.stats(Some(run.id)) {
            Ok(kv) => {
                session_sums.0 += stat_u64(&kv, "checks").unwrap_or(0);
                session_sums.1 += stat_u64(&kv, "cdqs_issued").unwrap_or(0);
                session_sums.2 += stat_u64(&kv, "cdqs_total").unwrap_or(0);
            }
            Err(e) => failures.push(format!("chunk {chunk_idx}: session stats failed: {e}")),
        }
    }
    match client.stats(None) {
        Ok(kv) => {
            let pairs = [
                ("checks", session_sums.0),
                ("cdqs_issued", session_sums.1),
                ("cdqs_total", session_sums.2),
            ];
            for (key, expect) in pairs {
                let got = stat_u64(&kv, key).unwrap_or(u64::MAX);
                if got != expect {
                    failures.push(format!(
                        "chunk {chunk_idx}: global {key} {got} != sum of sessions {expect}"
                    ));
                }
            }
            if stat_u64(&kv, "sessions_open") != Some(runs.len() as u64) {
                failures.push(format!(
                    "chunk {chunk_idx}: sessions_open {:?} != {} open sessions",
                    stat_u64(&kv, "sessions_open"),
                    runs.len()
                ));
            }
        }
        Err(e) => failures.push(format!("chunk {chunk_idx}: global stats failed: {e}")),
    }
}

/// Cross-checks the multi-threaded swexec CPU path against brute force:
/// prediction and thread count may change CDQ counts, never verdicts.
pub fn run_cpu_diff(seed: u64) -> Vec<String> {
    let mut failures = Vec::new();
    let robot: Robot = presets::planar_2d().into();
    let scene = random_scene(&robot, Density::Medium, 24, seed);
    let motions: Vec<Vec<_>> = scene
        .poses
        .chunks(2)
        .filter(|p| p.len() == 2)
        .map(|p| Motion::new(p[0].clone(), p[1].clone()).discretize(6))
        .collect();
    let truth: u64 = motions
        .iter()
        .map(|poses| {
            u64::from(
                copred_collision::enumerate_motion_cdqs(&robot, &scene.env, poses)
                    .iter()
                    .any(|c| c.colliding),
            )
        })
        .sum();
    let total_cdqs: u64 = motions
        .iter()
        .map(|poses| {
            copred_collision::enumerate_motion_cdqs(&robot, &scene.env, poses).len() as u64
        })
        .sum();
    for (threads, predict) in [(1usize, false), (1, true), (4, true)] {
        let cfg = CpuExecConfig {
            n_threads: threads,
            with_prediction: predict,
            cht_params: ChtParams::paper_2d(),
            seed,
        };
        let out = run_cpu(&robot, &scene.env, &motions, &cfg);
        if out.colliding_motions != truth {
            failures.push(format!(
                "run_cpu(threads={threads}, predict={predict}): {} colliding motions != brute-force {truth}",
                out.colliding_motions
            ));
        }
        if out.cdqs_executed > total_cdqs {
            failures.push(format!(
                "run_cpu(threads={threads}, predict={predict}): executed {} > total {total_cdqs}",
                out.cdqs_executed
            ));
        }
    }
    failures
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::ScenarioGen;

    #[test]
    fn small_diff_run_is_clean() {
        let g = ScenarioGen::new(9);
        let traces: Vec<QueryTrace> = (0..4).map(|i| g.query_trace(i)).collect();
        let out = run_service_diff(&traces, 900);
        assert!(out.failures.is_empty(), "{:?}", out.failures);
        assert!(out.checks_diffed > 0);
    }

    #[test]
    fn cpu_diff_is_clean() {
        let failures = run_cpu_diff(17);
        assert!(failures.is_empty(), "{failures:?}");
    }
}
