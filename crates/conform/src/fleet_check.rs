//! Stage 8: fleet conformance — sharded sessions answer like one node.
//!
//! Three sub-checks per case, all deterministic in the seed:
//!
//! * **Replay identity** — a live single-connection loadgen run is
//!   recorded into a CPRDLOG and replayed through a 2-backend fleet with
//!   bit-compare on: every response must match the recording, and the
//!   fleet's response stream must equal a single in-process node's.
//! * **Migration identity** — one fingerprinted session runs the same
//!   op stream twice on fresh 2-backend fleets; in the second run the
//!   session's owner is killed mid-stream. The migrated run must answer
//!   byte-for-byte like the calm run, and the router's per-session
//!   metrics ledger must match except for the migration count itself.
//! * **Hostile replication** — truncated, version-skewed, and
//!   CRC-corrupt snapshot pushes against a live store-enabled server
//!   must come back as structured rejections that leave the receiver
//!   cold-startable: no panic, no stuck state, no session leak.

use crate::generate::ScenarioGen;
use copred_core::{ChtParams, Strategy};
use copred_fleet::FleetBackend;
use copred_geometry::Vec3;
use copred_kinematics::Config;
use copred_replay::format::{read_log, write_log};
use copred_replay::{
    normalize_response, run_replay, InProcessBackend, LogMeta, LogRecord, ReplayBackend,
    ReplayOptions,
};
use copred_service::protocol::{Request, Response, SchedMode};
use copred_service::{run_loadgen, LoadgenConfig, Server, ServerConfig, ServiceClient};
use copred_store::crc::crc32;
use copred_store::snapshot::encode;
use copred_store::TableImage;
use copred_trace::{MotionTrace, Stage, TraceCdq};

/// Outcome of the fleet stage.
#[derive(Debug, Default)]
pub struct FleetCheckOutcome {
    /// Cases run (replay + migration + hostile sub-checks each).
    pub cases_run: u64,
    /// Ops replayed across all fleet and single-node arms.
    pub ops_replayed: u64,
    /// Human-readable divergence reports (empty = conformant).
    pub failures: Vec<String>,
}

/// Runs `cases` fleet conformance checks, each deterministic in
/// `base_seed` and the case index.
pub fn run_fleet_checks(gen: &ScenarioGen, cases: u64, base_seed: u64) -> FleetCheckOutcome {
    let mut outcome = FleetCheckOutcome::default();
    for case in 0..cases {
        let seed = base_seed.wrapping_mul(37).wrapping_add(case);
        check_replay_identity(gen, case, seed, &mut outcome);
        check_migration_identity(case, seed, &mut outcome);
        check_hostile_replication(case, seed, &mut outcome);
        outcome.cases_run += 1;
    }
    outcome
}

/// Record a live run, then require a fleet replay to match both the
/// recording and a single-node replay, bit for bit.
fn check_replay_identity(gen: &ScenarioGen, case: u64, seed: u64, outcome: &mut FleetCheckOutcome) {
    let fail = |failures: &mut Vec<String>, msg: String| {
        failures.push(format!("fleet case {case} (replay): {msg}"));
    };
    // Trace indices offset far from the other stages' so workloads differ.
    let traces: Vec<_> = (0..2)
        .map(|i| gen.query_trace(20_000 + case * 10 + i))
        .collect();
    let server = match Server::start(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        ..ServerConfig::default()
    }) {
        Ok(s) => s,
        Err(e) => {
            fail(
                &mut outcome.failures,
                format!("recording server failed to start: {e}"),
            );
            return;
        }
    };
    let lg = LoadgenConfig {
        addr: server.local_addr().to_string(),
        connections: 1,
        mode: SchedMode::Coord,
        seed,
        batch: 2,
        ..LoadgenConfig::default()
    };
    let report = match run_loadgen(&lg, &traces) {
        Ok(r) => r,
        Err(e) => {
            fail(&mut outcome.failures, format!("recording run failed: {e}"));
            return;
        }
    };
    drop(server);
    let meta = LogMeta {
        seed,
        fingerprint: 0,
        robot: traces[0].robot_name.clone(),
        workload: "conform-fleet".to_string(),
        scale: format!("traces={}", traces.len()),
    };
    let records: Vec<LogRecord> = report.ops.iter().map(LogRecord::from_op_record).collect();
    let log = match read_log(&write_log(&meta, &records)) {
        Ok(l) => l,
        Err(e) => {
            fail(
                &mut outcome.failures,
                format!("own recording failed to parse: {e}"),
            );
            return;
        }
    };
    let opts = ReplayOptions::default(); // sequential, compare on

    let mut single = InProcessBackend::with_server_defaults();
    let single_out = match run_replay(&log, &mut single, &opts) {
        Ok(o) => o,
        Err(e) => {
            fail(&mut outcome.failures, format!("single-node replay: {e}"));
            return;
        }
    };
    outcome.ops_replayed += single_out.ops;

    let mut fleet = match FleetBackend::start(2) {
        Ok(f) => f,
        Err(e) => {
            fail(&mut outcome.failures, format!("fleet failed to start: {e}"));
            return;
        }
    };
    match run_replay(&log, &mut fleet, &opts) {
        Ok(fleet_out) => {
            outcome.ops_replayed += fleet_out.ops;
            for d in fleet_out.mismatches.iter().take(3) {
                fail(
                    &mut outcome.failures,
                    format!(
                        "fleet replay diverged from the recording at op {} ({}): recorded {:?}, got {:?}",
                        d.idx, d.verb, d.expected, d.actual
                    ),
                );
            }
            if fleet_out.responses != single_out.responses {
                fail(
                    &mut outcome.failures,
                    "fleet and single-node replays answered differently".to_string(),
                );
            }
        }
        Err(e) => fail(&mut outcome.failures, format!("fleet replay: {e}")),
    }
}

/// A deterministic synthetic motion; `salt` varies poses, CDQ centers,
/// and ground truth so repeated salts re-hit learned CHT entries.
fn synthetic_motion(salt: u64) -> MotionTrace {
    let f = |k: u64| ((salt.wrapping_mul(31).wrapping_add(k) % 200) as f64 - 100.0) / 100.0;
    let poses: Vec<Config> = (0..3)
        .map(|p| Config::new(vec![f(p * 2), f(p * 2 + 1)]))
        .collect();
    let mut cdqs = Vec::new();
    for pose_idx in 0..poses.len() as u32 {
        for link_idx in 0..2u32 {
            let k = u64::from(pose_idx * 2 + link_idx);
            cdqs.push(TraceCdq {
                pose_idx,
                link_idx,
                center: Vec3::new(f(k + 10), f(k + 20), 0.0),
                colliding: (salt + k).is_multiple_of(3),
                obstacle_tests: 1 + (k % 4) as u32,
            });
        }
    }
    MotionTrace {
        stage: if salt.is_multiple_of(2) {
            Stage::Explore
        } else {
            Stage::Validate
        },
        poses,
        cdqs,
    }
}

/// The migration op stream: one fingerprinted session, batches whose
/// salts cycle so late rounds revisit learned cells — a migrated replica
/// that lost warm state would answer those rounds differently.
fn migration_ops(fp: u64, seed: u64) -> Vec<Request> {
    let mut ops = vec![Request::Open {
        robot: "planar-2d".to_string(),
        link_count: 2,
        mode: SchedMode::Coord,
        seed,
        fp: Some(fp),
    }];
    for round in 0..6u64 {
        let base = seed * 100 + (round % 3) * 8;
        ops.push(Request::CheckMotion {
            session: 0,
            motions: (base..base + 8).map(synthetic_motion).collect(),
            trace: None,
        });
    }
    ops.push(Request::Close { session: 0 });
    ops
}

/// Drives `ops` through a fleet, killing the session's owner after
/// `kill_after_op` ops when set. Returns normalized responses and the
/// final router ledger, or an error string.
fn drive_fleet(
    fleet: &mut FleetBackend,
    ops: &[Request],
    kill_after_op: Option<usize>,
) -> Result<(Vec<String>, copred_fleet::SessionLedger), String> {
    let mut live = 0u64;
    let mut responses = Vec::new();
    for (i, op) in ops.iter().enumerate() {
        if kill_after_op == Some(i) {
            let owner = fleet
                .router()
                .node_of(live)
                .ok_or("session not routed at kill point")?;
            fleet.kill_backend(owner);
        }
        let mut op = op.clone();
        match &mut op {
            Request::CheckMotion { session, .. } | Request::Close { session } => *session = live,
            _ => {}
        }
        let resp = fleet.call(&op)?;
        if let Response::Session { id, .. } = resp {
            live = id;
        }
        responses.push(normalize_response(&resp.to_text()));
    }
    let ledger = fleet
        .router()
        .ledger(live)
        .ok_or("ledger lost after close")?
        .clone();
    Ok((responses, ledger))
}

/// A killed-and-failed-over session must answer byte-for-byte like an
/// undisturbed one, with an equal metrics ledger.
fn check_migration_identity(case: u64, seed: u64, outcome: &mut FleetCheckOutcome) {
    let fail = |failures: &mut Vec<String>, msg: String| {
        failures.push(format!("fleet case {case} (migration): {msg}"));
    };
    let fp = 0xF1EE_0000_0000 | seed;
    let ops = migration_ops(fp, seed % 97);
    // Kill mid-stream, after the open and at least one check batch but
    // before the last; varies with the case.
    let kill_at = 2 + (case as usize % 4);

    let calm = FleetBackend::start(2)
        .map_err(|e| e.to_string())
        .and_then(|mut fleet| {
            let out = drive_fleet(&mut fleet, &ops, None);
            outcome.ops_replayed += ops.len() as u64;
            out
        });
    let stormy = FleetBackend::start(2)
        .map_err(|e| e.to_string())
        .and_then(|mut fleet| {
            let out = drive_fleet(&mut fleet, &ops, Some(kill_at));
            outcome.ops_replayed += ops.len() as u64;
            out
        });
    let ((calm_resp, calm_ledger), (stormy_resp, stormy_ledger)) = match (calm, stormy) {
        (Ok(a), Ok(b)) => (a, b),
        (Err(e), _) | (_, Err(e)) => {
            fail(&mut outcome.failures, e);
            return;
        }
    };
    if stormy_ledger.migrations != 1 {
        fail(
            &mut outcome.failures,
            format!(
                "killing the owner at op {kill_at} caused {} migrations, want 1",
                stormy_ledger.migrations
            ),
        );
    }
    if calm_resp != stormy_resp {
        let at = calm_resp.iter().zip(&stormy_resp).position(|(a, b)| a != b);
        fail(
            &mut outcome.failures,
            format!("migrated session diverged from the calm run (first at op {at:?})"),
        );
    }
    let mut stormy_modulo = stormy_ledger.clone();
    stormy_modulo.migrations = calm_ledger.migrations;
    if calm_ledger != stormy_modulo {
        fail(
            &mut outcome.failures,
            format!("migrated ledger {stormy_ledger:?} != calm ledger {calm_ledger:?} (modulo migrations)"),
        );
    }
    // The identity only means something if the post-kill rounds consulted
    // learned state.
    if calm_ledger.cdqs_issued >= calm_ledger.cdqs_total {
        fail(
            &mut outcome.failures,
            format!(
                "workload never exercised the predictor ({} of {})",
                calm_ledger.cdqs_issued, calm_ledger.cdqs_total
            ),
        );
    }
}

/// Small table geometry so hostile snapshots stay cheap to craft.
fn tiny_params() -> ChtParams {
    ChtParams {
        bits: 6,
        counter_bits: 2,
        strategy: Strategy::new(1.0),
        update_fraction: 0.125,
    }
}

/// Torn, version-skewed, and corrupt pushes degrade to cold start.
fn check_hostile_replication(case: u64, seed: u64, outcome: &mut FleetCheckOutcome) {
    let fail = |failures: &mut Vec<String>, msg: String| {
        failures.push(format!("fleet case {case} (hostile): {msg}"));
    };
    let dir = std::env::temp_dir().join(format!(
        "copred-conform-fleet-{}-{case}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    if let Err(e) = std::fs::create_dir_all(&dir) {
        fail(&mut outcome.failures, format!("store dir: {e}"));
        return;
    }
    let server = match Server::start(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        cht_params: tiny_params(),
        store_dir: Some(dir.to_string_lossy().into_owned()),
        ..ServerConfig::default()
    }) {
        Ok(s) => s,
        Err(e) => {
            fail(
                &mut outcome.failures,
                format!("server failed to start: {e}"),
            );
            return;
        }
    };
    let mut client = match ServiceClient::connect(server.local_addr()) {
        Ok(c) => c,
        Err(e) => {
            fail(&mut outcome.failures, format!("connect: {e}"));
            return;
        }
    };
    let mut image = TableImage::empty(tiny_params());
    for (i, cell) in image.cells.iter_mut().enumerate() {
        let v = seed.wrapping_mul(0x9E37_79B9).wrapping_add(i as u64);
        cell.0 = (v % 4) as u8;
        cell.1 = ((v >> 8) % 4) as u8;
    }
    image.u_state = seed | 1;
    let good = encode(&image);

    // Three hostile shapes, offsets derived from the seed.
    let torn = good[..(seed as usize % good.len())].to_vec();
    let mut flipped = good.clone();
    flipped[seed as usize % good.len()] ^= 1 << (seed % 8) as u8;
    let shapes: [(&str, u32, u32, Vec<u8>); 3] = [
        ("torn", 1, crc32(&torn), torn),
        ("flipped", 1, crc32(&good), flipped), // stale transfer CRC
        ("skewed", 2 + (seed % 1000) as u32, crc32(&good), good),
    ];
    for (i, (shape, version, crc, payload)) in shapes.into_iter().enumerate() {
        // One fingerprint per shape: the cold-start probe below persists
        // (empty) state on close, which a later shape's `snap_none` check
        // would otherwise see.
        let fp = 0xBAD0_0000_0000 | (case << 8) | i as u64;
        let resp = client.call(&Request::SnapPush {
            fp,
            version,
            crc,
            payload,
        });
        match resp {
            Ok(Response::Error(_)) => {}
            Ok(other) => {
                fail(
                    &mut outcome.failures,
                    format!("{shape} push must be rejected, got {other:?}"),
                );
                continue;
            }
            Err(e) => {
                fail(
                    &mut outcome.failures,
                    format!("{shape} push dropped the connection: {e}"),
                );
                return;
            }
        }
        // Nothing stuck under the fingerprint, and sessions still open.
        match client.call(&Request::SnapGet { fp }) {
            Ok(Response::SnapNone { .. }) => {}
            Ok(other) => fail(
                &mut outcome.failures,
                format!("{shape}: rejected push left state behind: {other:?}"),
            ),
            Err(e) => fail(&mut outcome.failures, format!("{shape}: snap_get: {e}")),
        }
        let opened = client.open_with_fp("planar-2d", 2, SchedMode::Coord, 3, Some(fp));
        match opened {
            Ok((id, _warm)) => {
                if let Err(e) = client.close(id) {
                    fail(&mut outcome.failures, format!("{shape}: close: {e}"));
                }
            }
            Err(e) => fail(
                &mut outcome.failures,
                format!("{shape}: receiver not cold-startable: {e}"),
            ),
        }
        match client.stats(None) {
            Ok(kv) => {
                let open = kv.iter().find(|(k, _)| k == "sessions_open");
                if open.map(|(_, v)| v.as_str()) != Some("0") {
                    fail(
                        &mut outcome.failures,
                        format!("{shape}: session leak: sessions_open = {open:?}"),
                    );
                }
            }
            Err(e) => fail(&mut outcome.failures, format!("{shape}: stats: {e}")),
        }
    }
    drop(client);
    drop(server);
    let _ = std::fs::remove_dir_all(&dir);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_case_is_clean() {
        let gen = ScenarioGen::new(43);
        let out = run_fleet_checks(&gen, 1, 4300);
        assert!(out.failures.is_empty(), "{:?}", out.failures);
        assert_eq!(out.cases_run, 1);
        assert!(out.ops_replayed > 0);
    }
}
