//! Stage 6: tracing invisibility.
//!
//! PR 8 threads an optional `trace <hex128>` token through the check
//! protocol and stamps it into spans, exemplars, and the flight
//! recorder. Observability must never perturb the system it observes:
//! this stage proves that tracing changes *nothing* about what the
//! service computes or says on the wire, beyond the token itself.
//!
//! Per case:
//!
//! * **Live A/B** — the same seeded workload runs twice over loopback
//!   TCP against fresh servers, once with client trace ids off and once
//!   on. Session ids are a deterministic counter and the connection is
//!   single, so the two op streams must match *byte for byte* once the
//!   `trace` tokens are stripped — same verbs, same tags, same request
//!   and response bytes — and the scheduler-facing aggregates (checks,
//!   collisions, CDQs issued and declared) must be identical, proving
//!   the predictor saw the same call sequence.
//! * **Replay injection** — the *untraced* recording is replayed
//!   in-process with `trace_seed` set, attaching fresh trace ids to
//!   every check. The replay must stay mismatch-free against the
//!   recorded bytes (the comparator strips only the echo), with zero
//!   backend errors and identical aggregates: injecting tracing into a
//!   trace-free CPRDLOG v1 log is invisible.
//! * **Replay echo** — the *traced* recording replays with
//!   `trace_seed = None`; the backend must echo the recorded tokens
//!   verbatim, so the comparison is exact even without normalization
//!   headroom. Stripping tokens from both replays' raw responses must
//!   yield identical streams.
//!
//! The CPRDLOG v1 container format is untouched either way — traced and
//! untraced recordings serialize through the same `write_log`.

use crate::generate::ScenarioGen;
use copred_replay::format::{read_log, write_log};
use copred_replay::{run_replay, InProcessBackend, LogMeta, LogRecord, ReplayOptions};
use copred_service::{run_loadgen, LoadgenConfig, LoadgenReport, SchedMode, Server, ServerConfig};

/// Outcome of the tracing-invisibility stage.
#[derive(Debug, Default)]
pub struct TraceCheckOutcome {
    /// Cases run (one live A/B pair plus replays each).
    pub cases_run: u64,
    /// Wire ops compared byte-for-byte across the traced/untraced runs.
    pub ops_compared: u64,
    /// Human-readable divergence reports (empty = conformant).
    pub failures: Vec<String>,
}

/// Removes every ` trace <hex128>` token from a wire string, leaving all
/// other bytes untouched. Non-token occurrences of the word stay as-is.
pub fn strip_trace_token(s: &str) -> String {
    const NEEDLE: &str = " trace ";
    let mut out = String::with_capacity(s.len());
    let mut rest = s;
    while let Some(pos) = rest.find(NEEDLE) {
        let (head, tail) = rest.split_at(pos);
        out.push_str(head);
        let after = &tail[NEEDLE.len()..];
        let hex_len = after.bytes().take_while(|b| b.is_ascii_hexdigit()).count();
        let boundary = after[hex_len..].is_empty()
            || after[hex_len..].starts_with('\n')
            || after[hex_len..].starts_with(' ');
        if hex_len == 32 && boundary {
            rest = &after[hex_len..];
        } else {
            out.push_str(NEEDLE);
            rest = after;
        }
    }
    out.push_str(rest);
    out
}

fn mode_for(case: u64) -> SchedMode {
    [SchedMode::Coord, SchedMode::Naive, SchedMode::Csp][(case % 3) as usize]
}

fn live_run(
    gen: &ScenarioGen,
    case: u64,
    seed: u64,
    trace_ids: bool,
) -> Result<LoadgenReport, String> {
    // Trace indices offset far from the other stages' so workloads differ.
    let traces: Vec<_> = (0..3)
        .map(|i| gen.query_trace(20_000 + case * 10 + i))
        .collect();
    let server = Server::start(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        ..ServerConfig::default()
    })
    .map_err(|e| format!("server failed to start: {e}"))?;
    let lg = LoadgenConfig {
        addr: server.local_addr().to_string(),
        connections: 1,
        mode: mode_for(case),
        seed,
        batch: 1 + (case % 3) as usize,
        trace_ids,
        ..LoadgenConfig::default()
    };
    run_loadgen(&lg, &traces).map_err(|e| format!("loadgen run failed: {e}"))
}

fn to_log(report: &LoadgenReport, seed: u64) -> Result<copred_replay::format::ReplayLog, String> {
    let meta = LogMeta {
        seed,
        fingerprint: 0,
        robot: "conform".to_string(),
        workload: "trace-check".to_string(),
        scale: format!("ops={}", report.ops.len()),
    };
    let records: Vec<LogRecord> = report.ops.iter().map(LogRecord::from_op_record).collect();
    let log = read_log(&write_log(&meta, &records))
        .map_err(|e| format!("own recording failed to parse: {e}"))?;
    if !log.complete || log.records.len() != records.len() {
        return Err("log round-trip lost records".to_string());
    }
    Ok(log)
}

/// Runs `cases` tracing-invisibility checks, each deriving
/// deterministically from `base_seed` and the case index.
pub fn run_trace_checks(gen: &ScenarioGen, cases: u64, base_seed: u64) -> TraceCheckOutcome {
    let mut outcome = TraceCheckOutcome::default();
    for case in 0..cases {
        check_case(gen, case, base_seed, &mut outcome);
        outcome.cases_run += 1;
    }
    outcome
}

#[allow(clippy::too_many_lines)]
fn check_case(gen: &ScenarioGen, case: u64, base_seed: u64, outcome: &mut TraceCheckOutcome) {
    let fail = |failures: &mut Vec<String>, msg: String| {
        failures.push(format!("trace case {case}: {msg}"));
    };
    let seed = base_seed.wrapping_mul(37).wrapping_add(case);

    // --- Live A/B: identical workload, tracing off vs on.
    let plain = match live_run(gen, case, seed, false) {
        Ok(r) => r,
        Err(e) => {
            fail(&mut outcome.failures, format!("untraced run: {e}"));
            return;
        }
    };
    let traced = match live_run(gen, case, seed, true) {
        Ok(r) => r,
        Err(e) => {
            fail(&mut outcome.failures, format!("traced run: {e}"));
            return;
        }
    };

    if plain.checks != traced.checks
        || plain.collisions != traced.collisions
        || plain.cdqs_issued != traced.cdqs_issued
        || plain.cdqs_total != traced.cdqs_total
    {
        fail(
            &mut outcome.failures,
            format!(
                "aggregates diverged: untraced (checks {}, collisions {}, cdqs {}/{}) vs traced ({}, {}, {}/{})",
                plain.checks,
                plain.collisions,
                plain.cdqs_issued,
                plain.cdqs_total,
                traced.checks,
                traced.collisions,
                traced.cdqs_issued,
                traced.cdqs_total
            ),
        );
    }
    if plain.ops.len() != traced.ops.len() {
        fail(
            &mut outcome.failures,
            format!(
                "op counts diverged: {} untraced vs {} traced",
                plain.ops.len(),
                traced.ops.len()
            ),
        );
        return;
    }
    let mut tokens_seen = 0u64;
    for (i, (p, t)) in plain.ops.iter().zip(&traced.ops).enumerate() {
        outcome.ops_compared += 1;
        if p.verb != t.verb || p.tag != t.tag || p.session != t.session {
            fail(
                &mut outcome.failures,
                format!(
                    "op {i} shape diverged: {}/{}/{} vs {}/{}/{}",
                    p.verb, p.tag, p.session, t.verb, t.tag, t.session
                ),
            );
            continue;
        }
        if t.verb == "check_motion" && t.request.contains(" trace ") {
            tokens_seen += 1;
        }
        let t_req = strip_trace_token(&t.request);
        let t_resp = strip_trace_token(&t.response);
        if t_req != p.request {
            fail(
                &mut outcome.failures,
                format!(
                    "op {i} ({}) request bytes diverged beyond the trace token: {:?} vs {:?}",
                    p.verb, p.request, t.request
                ),
            );
        }
        if t_resp != p.response {
            fail(
                &mut outcome.failures,
                format!(
                    "op {i} ({}) response bytes diverged beyond the trace token: {:?} vs {:?}",
                    p.verb, p.response, t.response
                ),
            );
        }
    }
    if tokens_seen == 0 {
        fail(
            &mut outcome.failures,
            "traced run carried no trace tokens on check ops".to_string(),
        );
    }

    // --- Replay injection: fresh trace ids into the untraced recording.
    let plain_log = match to_log(&plain, seed) {
        Ok(l) => l,
        Err(e) => {
            fail(&mut outcome.failures, e);
            return;
        }
    };
    let inject_opts = ReplayOptions {
        trace_seed: Some(seed ^ 0x07AC_E1D5),
        ..ReplayOptions::default()
    };
    let mut inproc = InProcessBackend::with_server_defaults();
    let injected = match run_replay(&plain_log, &mut inproc, &inject_opts) {
        Ok(o) => o,
        Err(e) => {
            fail(&mut outcome.failures, format!("injection replay: {e}"));
            return;
        }
    };
    if !injected.mismatches.is_empty() || injected.backend_errors > 0 {
        fail(
            &mut outcome.failures,
            format!(
                "injecting trace ids into an untraced log perturbed the replay: {} mismatches, {} backend errors (first: {:?})",
                injected.mismatches.len(),
                injected.backend_errors,
                injected.mismatches.first()
            ),
        );
    }
    if injected.checks != plain.checks
        || injected.collisions != plain.collisions
        || injected.cdqs_issued != plain.cdqs_issued
    {
        fail(
            &mut outcome.failures,
            format!(
                "injection replay aggregates (checks {}, collisions {}, cdqs {}) != recording ({}, {}, {})",
                injected.checks,
                injected.collisions,
                injected.cdqs_issued,
                plain.checks,
                plain.collisions,
                plain.cdqs_issued
            ),
        );
    }

    // --- Replay echo: the traced recording replays exactly as recorded.
    let traced_log = match to_log(&traced, seed) {
        Ok(l) => l,
        Err(e) => {
            fail(&mut outcome.failures, e);
            return;
        }
    };
    let mut inproc2 = InProcessBackend::with_server_defaults();
    let echoed = match run_replay(&traced_log, &mut inproc2, &ReplayOptions::default()) {
        Ok(o) => o,
        Err(e) => {
            fail(&mut outcome.failures, format!("echo replay: {e}"));
            return;
        }
    };
    if !echoed.mismatches.is_empty() || echoed.backend_errors > 0 {
        fail(
            &mut outcome.failures,
            format!(
                "traced log failed to replay bit-identically: {} mismatches, {} backend errors",
                echoed.mismatches.len(),
                echoed.backend_errors
            ),
        );
    }

    // Both replays answered the same workload; their raw responses must
    // agree byte-for-byte once trace tokens are stripped.
    let strip_all =
        |rs: &[String]| -> Vec<String> { rs.iter().map(|r| strip_trace_token(r)).collect() };
    if strip_all(&injected.responses) != strip_all(&echoed.responses) {
        fail(
            &mut outcome.failures,
            "injected and echoed replays diverged beyond trace tokens".to_string(),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strip_removes_only_well_formed_tokens() {
        let tok = "0123456789abcdef0123456789abcdef";
        assert_eq!(
            strip_trace_token(&format!("check_motion 7 2 trace {tok}\n")),
            "check_motion 7 2\n"
        );
        assert_eq!(
            strip_trace_token(&format!("ok results 2 trace {tok}\n")),
            "ok results 2\n"
        );
        // Too short, too long, or non-hex: untouched.
        assert_eq!(strip_trace_token("a trace 0123\n"), "a trace 0123\n");
        let long = format!("a trace {tok}0\n");
        assert_eq!(strip_trace_token(&long), long);
        assert_eq!(strip_trace_token("a trace zzzz\n"), "a trace zzzz\n");
        // Multiple tokens in one string.
        assert_eq!(
            strip_trace_token(&format!("x trace {tok} y trace {tok}\n")),
            "x y\n"
        );
        // No token at all: identity.
        assert_eq!(
            strip_trace_token("open baxter 7 coord 3\n"),
            "open baxter 7 coord 3\n"
        );
    }

    #[test]
    fn single_case_is_clean() {
        let gen = ScenarioGen::new(43);
        let out = run_trace_checks(&gen, 1, 4300);
        assert!(out.failures.is_empty(), "{:?}", out.failures);
        assert_eq!(out.cases_run, 1);
        assert!(out.ops_compared > 0);
    }
}
