//! Property-based tests for predictor invariants.

use copred_core::{
    fold_xor, Cht, ChtParams, CollisionHash, CoordHash, HashInput, PoseHash, PredictionMetrics,
    Strategy,
};
use copred_geometry::{Aabb, Vec3};
use copred_kinematics::{presets, Config, Robot};
use proptest::prelude::*;

fn arm() -> Robot {
    presets::kuka_iiwa().into()
}

proptest! {
    #[test]
    fn coord_code_in_range(x in -2.0..2.0f64, y in -2.0..2.0f64, z in -2.0..2.0f64, k in 1u32..9) {
        let ws = Aabb::new(Vec3::splat(-1.5), Vec3::splat(1.5));
        let h = CoordHash::new(ws, k, false);
        let q = Config::zeros(2);
        let code = h.code(&HashInput { config: &q, center: Vec3::new(x, y, z) });
        prop_assert!(code < (1u64 << (3 * k)));
    }

    #[test]
    fn coord_locality_within_bin(cx in -0.9..0.9f64, cy in -0.9..0.9f64, cz in -0.9..0.9f64) {
        // Points in the same spatial bin always share a code.
        let ws = Aabb::new(Vec3::splat(-1.0), Vec3::splat(1.0));
        let k = 4;
        let h = CoordHash::new(ws, k, false);
        let bin = 2.0 / f64::from(1u32 << k);
        let snap = |v: f64| ((v + 1.0) / bin).floor() * bin - 1.0 + bin * 0.5;
        let center = Vec3::new(snap(cx), snap(cy), snap(cz));
        let nudged = center + Vec3::splat(bin * 0.2);
        let q = Config::zeros(2);
        prop_assert_eq!(
            h.code(&HashInput { config: &q, center }),
            h.code(&HashInput { config: &q, center: nudged })
        );
    }

    #[test]
    fn pose_hash_deterministic(vals in prop::collection::vec(-1.5..1.5f64, 7)) {
        let robot = arm();
        let h = PoseHash::new(&robot, 4);
        let q = Config::new(vals);
        let c = robot.fk(&q).links[0].center;
        let a = h.code(&HashInput { config: &q, center: c });
        let b = h.code(&HashInput { config: &q, center: c });
        prop_assert_eq!(a, b);
        prop_assert!(a < (1u64 << h.bits()));
    }

    #[test]
    fn fold_stays_in_range(code in any::<u64>(), from in 16u32..64, to in 1u32..16) {
        let folded = fold_xor(code, from, to);
        prop_assert!(folded < (1u64 << to));
    }

    #[test]
    fn cht_prediction_monotone_in_collisions(obs in prop::collection::vec(any::<bool>(), 1..60)) {
        // Feeding strictly more colliding observations to an entry can only
        // keep or raise COLL, so a predicted entry stays predicted under
        // extra colliding observations.
        let mut cht = Cht::new(
            ChtParams { bits: 6, counter_bits: 4, strategy: Strategy::new(1.0), update_fraction: 1.0 },
            9,
        );
        for &o in &obs {
            cht.observe(5, o);
        }
        let before = cht.peek(5);
        cht.observe(5, true);
        let after = cht.peek(5);
        prop_assert!(!before || after);
    }

    #[test]
    fn cht_counters_never_exceed_width(obs in prop::collection::vec(any::<bool>(), 0..200), bits in 1u32..5) {
        let mut cht = Cht::new(
            ChtParams { bits: 4, counter_bits: bits, strategy: Strategy::new(0.5), update_fraction: 1.0 },
            3,
        );
        for &o in &obs {
            cht.observe(2, o);
        }
        let (c, n) = cht.counters(2);
        let max = ((1u32 << bits) - 1) as u8;
        prop_assert!(c <= max && n <= max);
    }

    #[test]
    fn strategy_aggressiveness_order(coll in 0u8..16, noncoll in 0u8..16) {
        // Lower S is strictly more aggressive: if a conservative strategy
        // predicts, every more aggressive one does too.
        let s_values = [2.0, 1.0, 0.5, 0.25, 0.0];
        let mut prev = false;
        for &s in s_values.iter() {
            let p = Strategy::new(s).predicts(coll, noncoll);
            if prev {
                prop_assert!(p, "S={s} flipped a conservative prediction off");
            }
            prev = p;
        }
    }

    #[test]
    fn batched_coord_codes_match_scalar(
        centers in prop::collection::vec(
            (-2.0..2.0f64, -2.0..2.0f64, -2.0..2.0f64).prop_map(|(x, y, z)| Vec3::new(x, y, z)),
            1..130,
        ),
        k in 1u32..9,
        planar in any::<bool>(),
    ) {
        // The vectorized hash path must reproduce the scalar code for every
        // center, including across the internal 64-element chunk boundary.
        let ws = Aabb::new(Vec3::splat(-1.5), Vec3::splat(1.5));
        let h = CoordHash::new(ws, k, planar);
        let mut batch = vec![0u64; centers.len()];
        h.code_batch(&centers, &mut batch);
        let q = Config::zeros(2);
        for (i, &c) in centers.iter().enumerate() {
            prop_assert_eq!(
                batch[i],
                h.code(&HashInput { config: &q, center: c }),
                "center {} diverged (k={}, planar={})", i, k, planar
            );
        }
    }

    #[test]
    fn cht_gang_probe_matches_scalar(
        observes in prop::collection::vec((0u64..64, any::<bool>()), 0..120),
        probes in prop::collection::vec(0u64..64, 1..40),
        counter_bits in 1u32..=8,
        s_idx in 0usize..4,
    ) {
        // Gang-probed lookups must be bit-identical to per-code predicts —
        // verdicts AND read stats — at every counter width 1..=8.
        let s = [0.0, 0.5, 1.0, 2.0][s_idx];
        let mut cht = Cht::new(
            ChtParams { bits: 6, counter_bits, strategy: Strategy::new(s), update_fraction: 1.0 },
            17,
        );
        for &(code, colliding) in &observes {
            cht.observe(code, colliding);
        }
        let mut scalar_cht = cht.clone();
        let mut batch = vec![false; probes.len()];
        cht.predict_batch(&probes, &mut batch);
        for (i, &code) in probes.iter().enumerate() {
            prop_assert_eq!(batch[i], scalar_cht.predict(code), "probe {} diverged", i);
        }
        prop_assert_eq!(cht.stats().reads, scalar_cht.stats().reads);
    }

    #[test]
    fn metrics_counts_are_consistent(samples in prop::collection::vec((any::<bool>(), any::<bool>()), 0..200)) {
        let mut m = PredictionMetrics::new();
        for (p, a) in &samples {
            m.record(*p, *a);
        }
        prop_assert_eq!(m.total() as usize, samples.len());
        let p = m.precision();
        let r = m.recall();
        prop_assert!((0.0..=1.0).contains(&p));
        prop_assert!((0.0..=1.0).contains(&r));
        prop_assert!(m.f1() <= 1.0);
    }
}
