//! The COORD collision predictor and its software integration
//! (Algorithm 1 of the paper).

use crate::cht::{Cht, ChtParams};
use crate::hash::{CollisionHash, CoordHash, HashInput};
use crate::metrics::PredictionMetrics;
use copred_collision::{enumerate_pose_cdqs, Environment, MotionCheckOutcome};
use copred_kinematics::{Config, Robot};

/// A collision predictor: a hash function plus a Collision History Table.
///
/// # Examples
///
/// ```
/// use copred_core::{ChtParams, Predictor};
/// use copred_collision::Environment;
/// use copred_geometry::{Aabb, Vec3};
/// use copred_kinematics::{presets, Config, Motion, Robot};
///
/// let robot: Robot = presets::planar_2d().into();
/// let env = Environment::new(
///     robot.workspace(),
///     vec![Aabb::new(Vec3::new(0.2, -1.0, -0.1), Vec3::new(0.6, 1.0, 0.1))],
/// );
/// let mut pred = Predictor::coord_default(&robot, 1);
/// let poses = Motion::new(Config::new(vec![-0.8, 0.0]), Config::new(vec![0.8, 0.0]))
///     .discretize(17);
/// let out = pred.check_motion(&robot, &env, &poses);
/// assert!(out.colliding);
/// ```
#[derive(Debug)]
pub struct Predictor {
    hasher: Box<dyn CollisionHash>,
    cht: Cht,
}

impl Predictor {
    /// Creates a predictor from a hash function and CHT parameters.
    pub fn new(hasher: Box<dyn CollisionHash>, params: ChtParams, seed: u64) -> Self {
        Predictor {
            hasher,
            cht: Cht::new(params, seed),
        }
    }

    /// The paper's default COORD predictor for `robot`: COORD hash sized to
    /// the paper's CHT (4096 entries for arms, 1024 for 2D), `S = 1`,
    /// `U = 0.125`.
    pub fn coord_default(robot: &Robot, seed: u64) -> Self {
        let hash = CoordHash::paper_default(robot);
        let params = match robot {
            Robot::Planar(_) => ChtParams::paper_2d(),
            Robot::Arm(_) => ChtParams::paper_arm(),
        };
        debug_assert_eq!(hash.bits(), params.bits);
        Predictor::new(Box::new(hash), params, seed)
    }

    /// A COORD predictor whose strategy `S` adapts to the environment's
    /// measured clutter (the paper's §VI-A1 future-work heuristic): low
    /// clutter gets an aggressive recall-first strategy, high clutter a
    /// precision-first one. `clutter` is the occupied workspace fraction
    /// (e.g. `Environment::clutter_fraction(32)`).
    pub fn coord_adaptive(robot: &Robot, clutter: f64, seed: u64) -> Self {
        let mut this = Predictor::coord_default(robot, seed);
        let params = ChtParams {
            strategy: crate::cht::Strategy::adaptive_for_clutter(clutter),
            ..*this.cht.params()
        };
        this.cht = Cht::new(params, seed);
        this
    }

    /// The hash function in use.
    pub fn hasher(&self) -> &dyn CollisionHash {
        self.hasher.as_ref()
    }

    /// The underlying history table.
    pub fn cht(&self) -> &Cht {
        &self.cht
    }

    /// Mutable access to the history table (for instrumentation).
    pub fn cht_mut(&mut self) -> &mut Cht {
        &mut self.cht
    }

    /// Predicts whether a CDQ will collide.
    pub fn predict(&mut self, input: &HashInput<'_>) -> bool {
        let code = self.hasher.code(input);
        self.cht.predict(code)
    }

    /// Records an executed CDQ's outcome.
    pub fn observe(&mut self, input: &HashInput<'_>, colliding: bool) {
        let code = self.hasher.code(input);
        self.cht.observe(code, colliding);
    }

    /// Resets the history for a new motion-planning query.
    pub fn reset(&mut self) {
        self.cht.reset();
    }

    /// Motion-environment collision check with collision prediction —
    /// Algorithm 1 of the paper.
    ///
    /// Sample poses are consumed in the CSP order of the underlying
    /// scheduler (ref. \[43\]) (the predictor sits on top of coarse-step scheduling,
    /// as in the hardware COPU). Every link CDQ is first looked up in the
    /// CHT: predicted-colliding CDQs are executed immediately (early exit
    /// on a hit), the rest are queued. If no predicted CDQ hits, the queue
    /// is drained in arrival order. Every executed CDQ updates the history
    /// table, so with a cold table the check degrades exactly to CSP.
    pub fn check_motion(
        &mut self,
        robot: &Robot,
        env: &Environment,
        poses: &[Config],
    ) -> MotionCheckOutcome {
        // Queue entries: (config index, link center, obb, obstacle cost hint).
        let mut queue: Vec<(usize, copred_geometry::Vec3, copred_geometry::Obb)> = Vec::new();
        let mut executed = 0usize;
        let mut tests = 0usize;
        let total = poses.len() * robot.link_count();

        let order =
            copred_kinematics::csp_order(poses.len(), copred_collision::Schedule::DEFAULT_CSP_STEP);
        for pi in order {
            let q = &poses[pi];
            let pose = robot.fk(q);
            for link in &pose.links {
                let input = HashInput {
                    config: q,
                    center: link.center,
                };
                if self.predict(&input) {
                    let (colliding, cost) = env.obb_collides_with_cost(&link.obb);
                    executed += 1;
                    tests += cost;
                    self.observe(&input, colliding);
                    if colliding {
                        return MotionCheckOutcome {
                            colliding: true,
                            cdqs_executed: executed,
                            cdqs_total: total,
                            obstacle_tests: tests,
                        };
                    }
                } else {
                    queue.push((pi, link.center, link.obb));
                }
            }
        }
        for (pi, center, obb) in queue {
            let (colliding, cost) = env.obb_collides_with_cost(&obb);
            executed += 1;
            tests += cost;
            let input = HashInput {
                config: &poses[pi],
                center,
            };
            self.observe(&input, colliding);
            if colliding {
                return MotionCheckOutcome {
                    colliding: true,
                    cdqs_executed: executed,
                    cdqs_total: total,
                    obstacle_tests: tests,
                };
            }
        }
        MotionCheckOutcome {
            colliding: false,
            cdqs_executed: executed,
            cdqs_total: total,
            obstacle_tests: tests,
        }
    }

    /// Pose-environment check with prediction: predicted links first, then
    /// the rest, early exit on a hit. Returns `(colliding, cdqs executed)`.
    pub fn check_pose(&mut self, robot: &Robot, env: &Environment, q: &Config) -> (bool, usize) {
        let out = self.check_motion(robot, env, std::slice::from_ref(q));
        (out.colliding, out.cdqs_executed)
    }
}

/// One labeled sample for offline prediction-quality evaluation: the pose,
/// one link center, and the CDQ's ground truth.
#[derive(Debug, Clone)]
pub struct PredSample {
    /// The robot configuration.
    pub config: Config,
    /// The link center (hash input).
    pub center: copred_geometry::Vec3,
    /// Ground-truth CDQ outcome.
    pub colliding: bool,
}

/// Builds the per-CDQ evaluation samples for a set of poses in an
/// environment — the protocol of the paper's hash-function studies (1000
/// random poses per scene).
pub fn samples_for_poses(robot: &Robot, env: &Environment, poses: &[Config]) -> Vec<PredSample> {
    let mut out = Vec::new();
    for q in poses {
        for cdq in enumerate_pose_cdqs(robot, env, q) {
            out.push(PredSample {
                config: q.clone(),
                center: cdq.center,
                colliding: cdq.colliding,
            });
        }
    }
    out
}

/// Streams `samples` through a predictor in order: predict, score against
/// ground truth, then observe. Returns the confusion matrix — the paper's
/// online precision/recall measurement (Fig. 9, Fig. 13).
pub fn evaluate_online(predictor: &mut Predictor, samples: &[PredSample]) -> PredictionMetrics {
    let mut metrics = PredictionMetrics::new();
    for s in samples {
        let input = HashInput {
            config: &s.config,
            center: s.center,
        };
        let predicted = predictor.predict(&input);
        metrics.record(predicted, s.colliding);
        predictor.observe(&input, s.colliding);
    }
    metrics
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cht::Strategy;
    use copred_collision::{check_motion_scheduled, Schedule};
    use copred_geometry::{Aabb, Vec3};
    use copred_kinematics::{presets, Motion};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn walled_planar() -> (Robot, Environment) {
        let robot: Robot = presets::planar_2d().into();
        let env = Environment::new(
            robot.workspace(),
            vec![Aabb::new(
                Vec3::new(0.2, -1.0, -0.1),
                Vec3::new(0.6, 1.0, 0.1),
            )],
        );
        (robot, env)
    }

    #[test]
    fn predictor_agrees_with_ground_truth() {
        let (robot, env) = walled_planar();
        let mut pred = Predictor::coord_default(&robot, 3);
        for (motion, expect) in [
            (
                Motion::new(Config::new(vec![-0.8, 0.0]), Config::new(vec![0.8, 0.0])),
                true,
            ),
            (
                Motion::new(Config::new(vec![-0.8, 0.0]), Config::new(vec![-0.1, 0.0])),
                false,
            ),
        ] {
            let poses = motion.discretize(17);
            let out = pred.check_motion(&robot, &env, &poses);
            assert_eq!(out.colliding, expect);
        }
    }

    #[test]
    fn warm_history_cuts_cdqs_on_colliding_motions() {
        let (robot, env) = walled_planar();
        let mut pred = Predictor::coord_default(&robot, 3);
        let motion = Motion::new(Config::new(vec![-0.8, 0.0]), Config::new(vec![0.8, 0.0]));
        let poses = motion.discretize(33);
        // Cold pass fills the table.
        let cold = pred.check_motion(&robot, &env, &poses);
        // Warm pass on a slightly shifted colliding motion.
        let motion2 = Motion::new(Config::new(vec![-0.8, 0.05]), Config::new(vec![0.8, 0.05]));
        let warm = pred.check_motion(&robot, &env, &motion2.discretize(33));
        assert!(warm.colliding);
        assert!(
            warm.cdqs_executed < cold.cdqs_executed,
            "warm {} !< cold {}",
            warm.cdqs_executed,
            cold.cdqs_executed
        );
        // The warm pass should be near the oracle limit of 1.
        assert!(
            warm.cdqs_executed <= 4,
            "warm executed {}",
            warm.cdqs_executed
        );
    }

    #[test]
    fn free_motion_executes_every_cdq_once() {
        let (robot, env) = walled_planar();
        let mut pred = Predictor::coord_default(&robot, 3);
        let poses =
            Motion::new(Config::new(vec![-0.9, -0.5]), Config::new(vec![-0.9, 0.5])).discretize(11);
        let out = pred.check_motion(&robot, &env, &poses);
        assert!(!out.colliding);
        assert_eq!(out.cdqs_executed, 11);
        assert_eq!(out.cdqs_total, 11);
    }

    #[test]
    fn prediction_never_changes_the_answer() {
        // Soundness: prediction reorders CDQs but every motion's outcome
        // matches the unpredicted schedule.
        let (robot, env) = walled_planar();
        let mut pred = Predictor::coord_default(&robot, 5);
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..40 {
            let m = Motion::new(
                robot.sample_uniform(&mut rng),
                robot.sample_uniform(&mut rng),
            );
            let poses = m.discretize(9);
            let with_pred = pred.check_motion(&robot, &env, &poses);
            let without = check_motion_scheduled(&robot, &env, &poses, Schedule::Naive);
            assert_eq!(with_pred.colliding, without.colliding);
        }
    }

    #[test]
    fn reset_forgets_history() {
        let (robot, env) = walled_planar();
        let mut pred = Predictor::coord_default(&robot, 3);
        let poses =
            Motion::new(Config::new(vec![-0.8, 0.0]), Config::new(vec![0.8, 0.0])).discretize(33);
        let cold = pred.check_motion(&robot, &env, &poses);
        pred.reset();
        let again = pred.check_motion(&robot, &env, &poses);
        assert_eq!(cold.cdqs_executed, again.cdqs_executed);
    }

    #[test]
    fn online_evaluation_produces_sane_metrics() {
        let (robot, env) = walled_planar();
        let mut rng = StdRng::seed_from_u64(2);
        // Enough poses that each COORD bin accumulates history (the planar
        // robot contributes one CDQ per pose, unlike arms with 7).
        let poses: Vec<Config> = (0..4000).map(|_| robot.sample_uniform(&mut rng)).collect();
        let samples = samples_for_poses(&robot, &env, &poses);
        let mut pred = Predictor::coord_default(&robot, 3);
        let m = evaluate_online(&mut pred, &samples);
        assert_eq!(m.total() as usize, samples.len());
        // COORD on a big static wall should predict usefully better than the
        // base rate.
        assert!(m.base_rate() > 0.05, "base rate {}", m.base_rate());
        assert!(
            m.precision() > m.base_rate(),
            "precision {} vs base {}",
            m.precision(),
            m.base_rate()
        );
        assert!(m.recall() > 0.3, "recall {}", m.recall());
    }

    #[test]
    fn custom_strategy_is_respected() {
        let (robot, env) = walled_planar();
        // Very conservative strategy (huge S): predictor almost never fires,
        // so every CDQ goes through the queue exactly once.
        let hash = CoordHash::paper_default(&robot);
        let params = ChtParams {
            bits: 10,
            counter_bits: 4,
            strategy: Strategy::new(1000.0),
            update_fraction: 1.0,
        };
        let mut pred = Predictor::new(Box::new(hash), params, 4);
        let poses =
            Motion::new(Config::new(vec![-0.8, 0.0]), Config::new(vec![0.8, 0.0])).discretize(9);
        let out = pred.check_motion(&robot, &env, &poses);
        assert!(out.colliding);
    }

    #[test]
    fn adaptive_predictor_uses_clutter_strategy() {
        let (robot, env) = walled_planar();
        let clutter = env.clutter_fraction(16);
        let pred = Predictor::coord_adaptive(&robot, clutter, 3);
        let expected = Strategy::adaptive_for_clutter(clutter);
        assert_eq!(pred.cht().params().strategy.s(), expected.s());
        // Still answers queries correctly.
        let mut pred = pred;
        let (hit, _) = pred.check_pose(&robot, &env, &Config::new(vec![0.4, 0.0]));
        assert!(hit);
    }

    #[test]
    fn pose_check_wrapper() {
        let (robot, env) = walled_planar();
        let mut pred = Predictor::coord_default(&robot, 3);
        let (hit, n) = pred.check_pose(&robot, &env, &Config::new(vec![0.4, 0.0]));
        assert!(hit);
        assert_eq!(n, 1);
        let (hit, _) = pred.check_pose(&robot, &env, &Config::new(vec![-0.8, 0.0]));
        assert!(!hit);
    }
}
