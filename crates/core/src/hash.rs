//! Collision-prediction hash functions (paper §III-B and §III-C).
//!
//! Every hash maps a CDQ to a code addressing the Collision History Table.
//! The paper explores C-space hashes (**POSE**, **POSE-part**, **POSE+fold**,
//! **ENPOSE**) and physical-space hashes (**COORD**, **ENCOORD**); COORD —
//! quantized Cartesian link centers — wins because it is the only family
//! whose codes preserve *physical* spatial locality.

use crate::mlp::Autoencoder;
use copred_geometry::{msbs, Aabb, FixedEncoder, Vec3};
use copred_kinematics::{Config, Robot};
use rand::Rng;
use std::fmt;

/// The per-CDQ quantities a hash function may consume: the C-space pose and
/// the Cartesian center of the queried bounding volume.
#[derive(Debug, Clone, Copy)]
pub struct HashInput<'a> {
    /// The robot configuration the CDQ belongs to.
    pub config: &'a Config,
    /// World-space center of the CDQ's bounding volume (link center).
    pub center: Vec3,
}

/// A collision-prediction hash function.
///
/// Implementations must be deterministic: equal inputs give equal codes.
pub trait CollisionHash: fmt::Debug + Send + Sync {
    /// Short display name (e.g. `"COORD-12"`).
    fn name(&self) -> String;
    /// Width of the produced code in bits; the natural CHT has `2^bits`
    /// entries.
    fn bits(&self) -> u32;
    /// Hash code for a CDQ.
    fn code(&self, input: &HashInput<'_>) -> u64;
}

/// Quantizes each DOF of a configuration to 16-bit fixed point over its
/// joint limits.
///
/// Degenerate joint limits (`hi <= lo`, e.g. a welded joint with a
/// zero-width range) map every value of that DOF to one constant bucket
/// instead of propagating the `0/0` NaN of the naive formula: NaN silently
/// casts to code 0 in [`Self::quantize`] but poisons any MLP fed by
/// [`Self::normalize`].
#[derive(Debug, Clone)]
pub struct DofQuantizer {
    limits: Vec<(f64, f64)>,
}

impl DofQuantizer {
    /// Builds a quantizer from a robot's joint limits.
    pub fn for_robot(robot: &Robot) -> Self {
        Self::from_limits((0..robot.dofs()).map(|i| robot.limits(i)).collect())
    }

    /// Builds a quantizer from explicit `(lo, hi)` limits per DOF.
    /// Degenerate pairs (`hi <= lo`, or non-finite bounds) are accepted and
    /// behave as a constant bucket.
    pub fn from_limits(limits: Vec<(f64, f64)>) -> Self {
        DofQuantizer { limits }
    }

    /// Number of DOFs.
    pub fn dofs(&self) -> usize {
        self.limits.len()
    }

    /// Whether DOF `i` has a usable (positive-width, finite) range.
    #[inline]
    fn usable_range(&self, i: usize) -> Option<(f64, f64)> {
        let (lo, hi) = self.limits[i];
        (hi > lo && (hi - lo).is_finite()).then_some((lo, hi))
    }

    /// Quantizes DOF `i` to a `u16` (saturating outside limits). DOFs with
    /// degenerate limits quantize to the constant bucket 0.
    pub fn quantize(&self, v: f64, i: usize) -> u16 {
        let Some((lo, hi)) = self.usable_range(i) else {
            return 0;
        };
        let t = ((v - lo) / (hi - lo)).clamp(0.0, 1.0);
        (t * f64::from(u16::MAX)).round() as u16
    }

    /// Normalizes DOF `i` into `[-1, 1]` (for MLP inputs). DOFs with
    /// degenerate limits normalize to the constant midpoint `0.0`.
    pub fn normalize(&self, v: f64, i: usize) -> f64 {
        let Some((lo, hi)) = self.usable_range(i) else {
            return 0.0;
        };
        (2.0 * (v - lo) / (hi - lo) - 1.0).clamp(-1.0, 1.0)
    }

    /// Normalizes a full configuration.
    pub fn normalize_config(&self, q: &Config) -> Vec<f64> {
        q.values()
            .iter()
            .enumerate()
            .map(|(i, &v)| self.normalize(v, i))
            .collect()
    }
}

/// XOR-folds a `from_bits`-wide code down to `to_bits` (paper's POSE+fold:
/// "a part of the POSE hash code is XORed with the other part").
pub fn fold_xor(code: u64, from_bits: u32, to_bits: u32) -> u64 {
    assert!(
        to_bits > 0 && to_bits <= 64,
        "fold target must be 1..=64 bits"
    );
    if from_bits <= to_bits {
        return code;
    }
    let mask = if to_bits == 64 {
        u64::MAX
    } else {
        (1u64 << to_bits) - 1
    };
    let mut rest = code;
    let mut out = 0u64;
    let mut remaining = from_bits;
    while remaining > 0 {
        out ^= rest & mask;
        rest >>= to_bits;
        remaining = remaining.saturating_sub(to_bits);
    }
    out
}

/// **POSE**: `k` MSBs of each quantized DOF, concatenated (paper §III-B).
/// Code width is `k · n` for an n-DOF robot — large and sparse for arms.
#[derive(Debug, Clone)]
pub struct PoseHash {
    quant: DofQuantizer,
    k: u32,
}

impl PoseHash {
    /// Creates a POSE hash with `k` bits per DOF.
    ///
    /// # Panics
    ///
    /// Panics when `k` is zero, exceeds 16, or the total width exceeds 64.
    pub fn new(robot: &Robot, k: u32) -> Self {
        assert!((1..=16).contains(&k), "POSE needs 1..=16 bits per DOF");
        let quant = DofQuantizer::for_robot(robot);
        assert!(
            k as usize * quant.dofs() <= 64,
            "POSE code wider than 64 bits"
        );
        PoseHash { quant, k }
    }
}

impl CollisionHash for PoseHash {
    fn name(&self) -> String {
        format!("POSE-{}", self.bits())
    }
    fn bits(&self) -> u32 {
        self.k * self.quant.dofs() as u32
    }
    fn code(&self, input: &HashInput<'_>) -> u64 {
        let mut code = 0u64;
        for (i, &v) in input.config.values().iter().enumerate() {
            code = (code << self.k) | u64::from(msbs(self.quant.quantize(v, i), self.k));
        }
        code
    }
}

/// **POSE-part**: only the first two DOFs — the joints closest to the base,
/// which dominate the physical space the robot occupies (paper Fig. 8b/8c).
#[derive(Debug, Clone)]
pub struct PosePartHash {
    quant: DofQuantizer,
    k: u32,
    dofs_used: usize,
}

impl PosePartHash {
    /// Creates a POSE-part hash with `k` bits for each of the first two DOFs.
    ///
    /// # Panics
    ///
    /// Panics when the robot has fewer than two DOFs or `k` is out of range.
    pub fn new(robot: &Robot, k: u32) -> Self {
        assert!((1..=16).contains(&k), "POSE-part needs 1..=16 bits per DOF");
        let quant = DofQuantizer::for_robot(robot);
        assert!(quant.dofs() >= 2, "POSE-part needs at least 2 DOFs");
        PosePartHash {
            quant,
            k,
            dofs_used: 2,
        }
    }
}

impl CollisionHash for PosePartHash {
    fn name(&self) -> String {
        format!("POSE-part-{}", self.bits())
    }
    fn bits(&self) -> u32 {
        self.k * self.dofs_used as u32
    }
    fn code(&self, input: &HashInput<'_>) -> u64 {
        let mut code = 0u64;
        for i in 0..self.dofs_used {
            let v = input.config[i];
            code = (code << self.k) | u64::from(msbs(self.quant.quantize(v, i), self.k));
        }
        code
    }
}

/// **POSE+fold**: the POSE code XOR-folded to a smaller width. Folding
/// shrinks the table but destroys physical locality (nearby poses land in
/// unrelated entries once distant poses alias onto them).
#[derive(Debug, Clone)]
pub struct PoseFoldHash {
    inner: PoseHash,
    to_bits: u32,
}

impl PoseFoldHash {
    /// Creates a POSE hash with `k` bits per DOF folded to `to_bits`.
    pub fn new(robot: &Robot, k: u32, to_bits: u32) -> Self {
        let inner = PoseHash::new(robot, k);
        assert!(
            to_bits >= 1 && to_bits < inner.bits(),
            "fold must shrink the code"
        );
        PoseFoldHash { inner, to_bits }
    }
}

impl CollisionHash for PoseFoldHash {
    fn name(&self) -> String {
        format!("POSE+fold-{}", self.to_bits)
    }
    fn bits(&self) -> u32 {
        self.to_bits
    }
    fn code(&self, input: &HashInput<'_>) -> u64 {
        fold_xor(self.inner.code(input), self.inner.bits(), self.to_bits)
    }
}

/// **ENPOSE**: the pose is encoded by a trained one-layer MLP autoencoder
/// into a 2- or 4-dimensional latent vector, which is quantized to `k` bits
/// per dimension (paper §III-B).
#[derive(Debug, Clone)]
pub struct EnposeHash {
    quant: DofQuantizer,
    ae: Autoencoder,
    k: u32,
}

impl EnposeHash {
    /// Number of random poses the paper trains on.
    pub const TRAIN_POSES: usize = 32_768;

    /// Trains the encoder on `train_poses` random poses of `robot` and
    /// builds the hash with `latent_dim` latent dimensions and `k` bits per
    /// dimension.
    pub fn train<R: Rng + ?Sized>(
        robot: &Robot,
        latent_dim: usize,
        k: u32,
        train_poses: usize,
        epochs: usize,
        rng: &mut R,
    ) -> Self {
        assert!(
            k >= 1 && (k as usize * latent_dim) <= 64,
            "ENPOSE code too wide"
        );
        let quant = DofQuantizer::for_robot(robot);
        let samples: Vec<Vec<f64>> = (0..train_poses.max(8))
            .map(|_| quant.normalize_config(&robot.sample_uniform(rng)))
            .collect();
        let ae = Autoencoder::train(&samples, latent_dim, epochs, 0.02, rng);
        EnposeHash { quant, ae, k }
    }
}

impl CollisionHash for EnposeHash {
    fn name(&self) -> String {
        format!("ENPOSE-{}", self.bits())
    }
    fn bits(&self) -> u32 {
        self.k * self.ae.latent_dim() as u32
    }
    fn code(&self, input: &HashInput<'_>) -> u64 {
        let x = self.quant.normalize_config(input.config);
        self.ae.quantized_code(&x, self.k)
    }
}

/// **COORD** (the paper's proposal, Fig. 10): the CDQ's link center is
/// expressed as three 16-bit fixed-point coordinates over the workspace and
/// the `k` MSBs of each are concatenated. For planar robots only x and y are
/// hashed.
#[derive(Debug, Clone)]
pub struct CoordHash {
    enc: FixedEncoder,
    k: u32,
    planar: bool,
}

impl CoordHash {
    /// Creates a COORD hash over `workspace` with `k` bits per coordinate.
    ///
    /// # Panics
    ///
    /// Panics when `k` is out of `1..=16`.
    pub fn new(workspace: Aabb, k: u32, planar: bool) -> Self {
        assert!(
            (1..=16).contains(&k),
            "COORD needs 1..=16 bits per coordinate"
        );
        CoordHash {
            enc: FixedEncoder::new(workspace),
            k,
            planar,
        }
    }

    /// COORD hash sized for a robot: planar robots hash (x, y), arms hash
    /// (x, y, z), both over the robot's workspace.
    pub fn for_robot(robot: &Robot, k: u32) -> Self {
        let planar = matches!(robot, Robot::Planar(_));
        CoordHash::new(robot.workspace(), k, planar)
    }

    /// The paper's default table sizes: 4096 entries (k=4, 12 bits) for
    /// robotic arms and 1024 entries (k=5, 10 bits) for 2D path planning.
    pub fn paper_default(robot: &Robot) -> Self {
        match robot {
            Robot::Planar(_) => CoordHash::for_robot(robot, 5),
            Robot::Arm(_) => CoordHash::for_robot(robot, 4),
        }
    }

    /// Bits kept per coordinate.
    pub fn k(&self) -> u32 {
        self.k
    }

    /// Batched COORD codes for a slice of link centers.
    ///
    /// COORD only consumes the Cartesian center (the C-space config in
    /// [`HashInput`] is ignored), so a center slice fully determines the
    /// codes. Results are bit-identical to calling [`CollisionHash::code`]
    /// per center; internally the centers are transposed per axis so the
    /// fixed-point subtract/scale/clamp chain runs over contiguous lanes
    /// (see [`FixedEncoder::encode_axis_slice`]).
    ///
    /// # Panics
    ///
    /// Panics when `out` is shorter than `centers`.
    pub fn code_batch(&self, centers: &[Vec3], out: &mut [u64]) {
        assert!(out.len() >= centers.len(), "output buffer too short");
        let dims = if self.planar { 2 } else { 3 };
        const CHUNK: usize = 64;
        for (cs, os) in centers.chunks(CHUNK).zip(out.chunks_mut(CHUNK)) {
            let n = cs.len();
            let mut vs = [0.0f64; CHUNK];
            let mut q = [[0u16; CHUNK]; 3];
            for (ax, q_ax) in q.iter_mut().enumerate().take(dims) {
                for (v, c) in vs.iter_mut().zip(cs) {
                    *v = c[ax];
                }
                self.enc.encode_axis_slice(&vs[..n], ax, q_ax);
            }
            for (i, o) in os.iter_mut().enumerate() {
                let mut code = 0u64;
                for q_ax in q.iter().take(dims) {
                    code = (code << self.k) | u64::from(msbs(q_ax[i], self.k));
                }
                *o = code;
            }
        }
    }
}

impl CollisionHash for CoordHash {
    fn name(&self) -> String {
        format!("COORD-{}", self.bits())
    }
    fn bits(&self) -> u32 {
        self.k * if self.planar { 2 } else { 3 }
    }
    fn code(&self, input: &HashInput<'_>) -> u64 {
        let q = self.enc.encode(input.center);
        let dims = if self.planar { 2 } else { 3 };
        let mut code = 0u64;
        for &qi in q.iter().take(dims) {
            code = (code << self.k) | u64::from(msbs(qi, self.k));
        }
        code
    }
}

/// **ENCOORD**: the link center is MLP-encoded into a small latent space
/// before quantization (paper §III-C).
#[derive(Debug, Clone)]
pub struct EncoordHash {
    workspace: Aabb,
    ae: Autoencoder,
    k: u32,
}

impl EncoordHash {
    /// Trains the center-coordinate encoder on `train_points` centers drawn
    /// from random robot poses.
    pub fn train<R: Rng + ?Sized>(
        robot: &Robot,
        latent_dim: usize,
        k: u32,
        train_points: usize,
        epochs: usize,
        rng: &mut R,
    ) -> Self {
        assert!(
            k >= 1 && (k as usize * latent_dim) <= 64,
            "ENCOORD code too wide"
        );
        let workspace = robot.workspace();
        let mut samples = Vec::with_capacity(train_points.max(8));
        while samples.len() < train_points.max(8) {
            let q = robot.sample_uniform(rng);
            for link in robot.fk(&q).links {
                samples.push(normalize_center(&workspace, link.center));
                if samples.len() >= train_points.max(8) {
                    break;
                }
            }
        }
        let ae = Autoencoder::train(&samples, latent_dim, epochs, 0.02, rng);
        EncoordHash { workspace, ae, k }
    }
}

fn normalize_center(ws: &Aabb, c: Vec3) -> Vec<f64> {
    let e = ws.extents();
    vec![
        (2.0 * (c.x - ws.min.x) / e.x - 1.0).clamp(-1.0, 1.0),
        (2.0 * (c.y - ws.min.y) / e.y - 1.0).clamp(-1.0, 1.0),
        (2.0 * (c.z - ws.min.z) / e.z - 1.0).clamp(-1.0, 1.0),
    ]
}

impl CollisionHash for EncoordHash {
    fn name(&self) -> String {
        format!("ENCOORD-{}", self.bits())
    }
    fn bits(&self) -> u32 {
        self.k * self.ae.latent_dim() as u32
    }
    fn code(&self, input: &HashInput<'_>) -> u64 {
        let x = normalize_center(&self.workspace, input.center);
        self.ae.quantized_code(&x, self.k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use copred_kinematics::presets;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn arm() -> Robot {
        presets::kuka_iiwa().into()
    }

    fn input_for<'a>(robot: &Robot, q: &'a Config) -> (HashInput<'a>, Vec3) {
        let pose = robot.fk(q);
        let c = pose.links[3].center;
        (
            HashInput {
                config: q,
                center: c,
            },
            c,
        )
    }

    #[test]
    fn pose_hash_width_and_range() {
        let robot = arm();
        let h = PoseHash::new(&robot, 4);
        assert_eq!(h.bits(), 28);
        let q = Config::zeros(7);
        let (input, _) = input_for(&robot, &q);
        assert!(h.code(&input) < (1u64 << 28));
    }

    #[test]
    fn pose_hash_locality() {
        let robot = arm();
        let h = PoseHash::new(&robot, 3);
        let a = Config::new(vec![0.51; 7]);
        let mut b = a.clone();
        b.values_mut()[6] += 1e-4;
        let pa = robot.fk(&a).links[6].center;
        let pb = robot.fk(&b).links[6].center;
        assert_eq!(
            h.code(&HashInput {
                config: &a,
                center: pa
            }),
            h.code(&HashInput {
                config: &b,
                center: pb
            })
        );
    }

    #[test]
    fn pose_part_uses_first_two_dofs_only() {
        let robot = arm();
        let h = PosePartHash::new(&robot, 5);
        assert_eq!(h.bits(), 10);
        let a = Config::new(vec![0.3, -0.2, 0.0, 0.0, 0.0, 0.0, 0.0]);
        let b = Config::new(vec![0.3, -0.2, 1.0, -1.0, 0.5, 2.0, -2.0]);
        let ca = robot.fk(&a).links[0].center;
        let cb = robot.fk(&b).links[0].center;
        assert_eq!(
            h.code(&HashInput {
                config: &a,
                center: ca
            }),
            h.code(&HashInput {
                config: &b,
                center: cb
            })
        );
    }

    #[test]
    fn fold_reduces_width() {
        assert_eq!(fold_xor(0b1010_1100, 8, 4), 0b1010 ^ 0b1100);
        assert_eq!(fold_xor(0x7, 3, 8), 0x7); // no-op when already narrow
                                              // Folding is deterministic and in range.
        for c in [0u64, 1, 0xFFFF_FFFF, 0xDEAD_BEEF_CAFE] {
            let f = fold_xor(c, 48, 12);
            assert!(f < (1 << 12));
            assert_eq!(f, fold_xor(c, 48, 12));
        }
    }

    #[test]
    fn pose_fold_hash_range() {
        let robot = arm();
        let h = PoseFoldHash::new(&robot, 4, 12);
        assert_eq!(h.bits(), 12);
        let q = Config::new(vec![0.7; 7]);
        let (input, _) = input_for(&robot, &q);
        assert!(h.code(&input) < (1 << 12));
    }

    #[test]
    fn coord_hash_matches_paper_fig10() {
        // Fig. 10: 4 MSBs of each 16-bit coordinate, concatenated.
        let ws = Aabb::new(Vec3::splat(0.0), Vec3::splat(1.0));
        let h = CoordHash::new(ws, 4, false);
        assert_eq!(h.bits(), 12);
        let q = Config::zeros(2);
        // Center at (0.5, 0.25, 0.75): fixed point rounds to 0x8000, 0x4000,
        // 0xBFFF (0.75 · 65535 = 49151), so the MSB nibbles are 8, 4, B and
        // the concatenated code is 0x84B.
        let code = h.code(&HashInput {
            config: &q,
            center: Vec3::new(0.5, 0.25, 0.75),
        });
        assert_eq!(code, 0x84B);
    }

    #[test]
    fn coord_hash_groups_nearby_centers() {
        let ws = Aabb::new(Vec3::splat(-1.0), Vec3::splat(1.0));
        let h = CoordHash::new(ws, 4, false);
        let q = Config::zeros(2);
        let a = Vec3::new(0.30, 0.30, 0.30);
        let b = a + Vec3::splat(0.01);
        let far = Vec3::new(-0.70, 0.30, 0.30);
        let ca = h.code(&HashInput {
            config: &q,
            center: a,
        });
        let cb = h.code(&HashInput {
            config: &q,
            center: b,
        });
        let cf = h.code(&HashInput {
            config: &q,
            center: far,
        });
        assert_eq!(ca, cb);
        assert_ne!(ca, cf);
    }

    #[test]
    fn coord_planar_ignores_z() {
        let ws = Aabb::new(Vec3::new(-1.0, -1.0, -0.1), Vec3::new(1.0, 1.0, 0.1));
        let h = CoordHash::new(ws, 5, true);
        assert_eq!(h.bits(), 10);
        let q = Config::zeros(2);
        let a = h.code(&HashInput {
            config: &q,
            center: Vec3::new(0.2, 0.2, -0.05),
        });
        let b = h.code(&HashInput {
            config: &q,
            center: Vec3::new(0.2, 0.2, 0.05),
        });
        assert_eq!(a, b);
    }

    #[test]
    fn paper_default_table_sizes() {
        let arm: Robot = presets::baxter_arm().into();
        let planar: Robot = presets::planar_2d().into();
        assert_eq!(CoordHash::paper_default(&arm).bits(), 12); // 4096 entries
        assert_eq!(CoordHash::paper_default(&planar).bits(), 10); // 1024 entries
    }

    #[test]
    fn enpose_trains_and_hashes() {
        let robot = arm();
        let mut rng = StdRng::seed_from_u64(9);
        let h = EnposeHash::train(&robot, 2, 5, 256, 3, &mut rng);
        assert_eq!(h.bits(), 10);
        let q = robot.sample_uniform(&mut rng);
        let (input, _) = input_for(&robot, &q);
        let c = h.code(&input);
        assert!(c < (1 << 10));
        assert_eq!(c, h.code(&input));
    }

    #[test]
    fn encoord_trains_and_hashes() {
        let robot = arm();
        let mut rng = StdRng::seed_from_u64(10);
        let h = EncoordHash::train(&robot, 2, 5, 256, 3, &mut rng);
        assert_eq!(h.bits(), 10);
        let q = robot.sample_uniform(&mut rng);
        let (input, _) = input_for(&robot, &q);
        assert!(h.code(&input) < (1 << 10));
    }

    #[test]
    fn names_identify_family_and_width() {
        let robot = arm();
        assert_eq!(PoseHash::new(&robot, 4).name(), "POSE-28");
        assert_eq!(CoordHash::for_robot(&robot, 4).name(), "COORD-12");
        assert_eq!(PoseFoldHash::new(&robot, 4, 14).name(), "POSE+fold-14");
    }

    #[test]
    fn degenerate_limits_map_to_constant_bucket_not_nan() {
        // Regression: `hi == lo` made (v - lo) / (hi - lo) evaluate to NaN,
        // which silently cast to quantized code 0 but leaked NaN out of
        // normalize() into MLP inputs.
        let q = DofQuantizer::from_limits(vec![(0.5, 0.5), (-1.0, 1.0), (2.0, -2.0)]);
        assert_eq!(q.dofs(), 3);
        for v in [0.5, 0.0, -3.0, 7.0, f64::MAX] {
            // Zero-width and inverted ranges: one constant bucket.
            assert_eq!(q.quantize(v, 0), 0, "v={v}");
            assert_eq!(q.quantize(v, 2), 0, "v={v}");
            // normalize must never return NaN.
            assert_eq!(q.normalize(v, 0), 0.0, "v={v}");
            assert_eq!(q.normalize(v, 2), 0.0, "v={v}");
            assert!(!q.normalize(v, 0).is_nan());
        }
        // The healthy DOF still quantizes normally.
        assert_eq!(q.quantize(-1.0, 1), 0);
        assert_eq!(q.quantize(1.0, 1), u16::MAX);
        assert!((q.normalize(0.0, 1)).abs() < 1e-9);
        // Non-finite limits are degenerate too, not NaN factories.
        let inf = DofQuantizer::from_limits(vec![(f64::NEG_INFINITY, f64::INFINITY)]);
        assert_eq!(inf.quantize(0.0, 0), 0);
        assert!(!inf.normalize(123.0, 0).is_nan());
    }

    #[test]
    fn dof_quantizer_saturation_and_normalization() {
        let robot = arm();
        let quant = DofQuantizer::for_robot(&robot);
        let (lo, hi) = robot.limits(0);
        assert_eq!(quant.quantize(lo - 10.0, 0), 0);
        assert_eq!(quant.quantize(hi + 10.0, 0), u16::MAX);
        assert!((quant.normalize((lo + hi) / 2.0, 0)).abs() < 1e-9);
    }
}
