//! # copred-core
//!
//! The paper's primary contribution: **COORD** collision prediction for
//! robot motion planning.
//!
//! * [`hash`]: the hash-function design space — C-space hashes (POSE,
//!   POSE-part, POSE+fold, ENPOSE) and physical-space hashes (COORD,
//!   ENCOORD).
//! * [`Cht`]: the Collision History Table with saturating COLL/NONCOLL
//!   counters, the `S` prediction strategy, and the `U` update policy.
//! * [`Predictor`]: hash + CHT, including Algorithm 1 (motion collision
//!   detection with collision prediction).
//! * [`PredictionMetrics`]: precision/recall scoring.
//! * [`statmodel`]: the Fig. 13 statistical computation-reduction model.
//! * [`mlp`]: the from-scratch autoencoder behind ENPOSE/ENCOORD.
//!
//! ## Example
//!
//! ```
//! use copred_core::Predictor;
//! use copred_collision::Environment;
//! use copred_geometry::{Aabb, Vec3};
//! use copred_kinematics::{presets, Config, Motion, Robot};
//!
//! let robot: Robot = presets::planar_2d().into();
//! let env = Environment::new(
//!     robot.workspace(),
//!     vec![Aabb::new(Vec3::new(0.2, -1.0, -0.1), Vec3::new(0.6, 1.0, 0.1))],
//! );
//! let mut pred = Predictor::coord_default(&robot, 42);
//! let poses = Motion::new(Config::new(vec![-0.8, 0.0]), Config::new(vec![0.8, 0.0]))
//!     .discretize(17);
//! let out = pred.check_motion(&robot, &env, &poses);
//! assert!(out.colliding);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod cht;
pub mod hash;
mod metrics;
pub mod mlp;
mod predictor;
pub mod statmodel;

pub use cht::{Cht, ChtParams, ChtStats, Strategy};
pub use hash::{
    fold_xor, CollisionHash, CoordHash, DofQuantizer, EncoordHash, EnposeHash, HashInput,
    PoseFoldHash, PoseHash, PosePartHash,
};
pub use metrics::PredictionMetrics;
pub use predictor::{evaluate_online, samples_for_poses, PredSample, Predictor};
