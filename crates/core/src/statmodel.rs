//! Statistical model of computation reduction (paper Fig. 13).
//!
//! The paper reports "approximate computation reductions achieved by
//! collision prediction using a statistical model. This statistical model
//! considers the baseline collision probability, precision, and recall and
//! provides the potential decrease in the number of CDQs executed for
//! collision check of a motion consisting of 80 CDQs." We implement that
//! model by Monte-Carlo simulation over synthetic motions: outcomes are
//! Bernoulli draws, the predictor flags CDQs consistently with the given
//! precision/recall, flagged CDQs execute first, and execution early-exits
//! at the first collision.

use rand::Rng;

/// Parameters of the statistical computation model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StatModelParams {
    /// CDQs per motion (the paper uses 80).
    pub cdqs_per_motion: usize,
    /// Probability that an individual CDQ collides (baseline collision
    /// probability of the environment).
    pub collision_prob: f64,
    /// Predictor precision.
    pub precision: f64,
    /// Predictor recall.
    pub recall: f64,
    /// Monte-Carlo trials.
    pub trials: usize,
}

impl StatModelParams {
    /// The paper's motion size with typical defaults.
    pub fn paper_default(collision_prob: f64, precision: f64, recall: f64) -> Self {
        StatModelParams {
            cdqs_per_motion: 80,
            collision_prob,
            precision,
            recall,
            trials: 4000,
        }
    }

    fn validate(&self) {
        assert!(self.cdqs_per_motion > 0, "motion needs at least one CDQ");
        assert!(
            (0.0..=1.0).contains(&self.collision_prob),
            "p must be a probability"
        );
        assert!(
            (0.0..=1.0).contains(&self.precision),
            "precision must be a probability"
        );
        assert!(
            (0.0..=1.0).contains(&self.recall),
            "recall must be a probability"
        );
        assert!(self.trials > 0, "need at least one trial");
    }
}

/// False-positive flag probability implied by `(p, precision, recall)`:
/// solving `precision = r·p / (r·p + q·(1-p))` for `q`, clamped to `[0, 1]`.
pub fn implied_fp_rate(p: f64, precision: f64, recall: f64) -> f64 {
    if p >= 1.0 {
        return 0.0;
    }
    if precision <= 0.0 {
        // Zero precision with any flags means everything free is flagged.
        return if recall > 0.0 { 1.0 } else { 0.0 };
    }
    (recall * p * (1.0 - precision) / (precision * (1.0 - p))).clamp(0.0, 1.0)
}

/// Expected CDQs executed per motion **without** prediction (uniformly
/// random execution order, early exit at the first collision).
pub fn expected_cdqs_baseline<R: Rng + ?Sized>(params: &StatModelParams, rng: &mut R) -> f64 {
    params.validate();
    let n = params.cdqs_per_motion;
    let mut total = 0u64;
    for _ in 0..params.trials {
        let mut executed = n;
        for i in 0..n {
            if rng.gen::<f64>() < params.collision_prob {
                executed = i + 1;
                break;
            }
        }
        total += executed as u64;
    }
    total as f64 / params.trials as f64
}

/// Expected CDQs executed per motion **with** prediction: flagged CDQs
/// (true positives with probability `recall`, false positives at the implied
/// rate) execute before unflagged ones.
pub fn expected_cdqs_predicted<R: Rng + ?Sized>(params: &StatModelParams, rng: &mut R) -> f64 {
    params.validate();
    let n = params.cdqs_per_motion;
    let q = implied_fp_rate(params.collision_prob, params.precision, params.recall);
    let mut total = 0u64;
    for _ in 0..params.trials {
        // Draw outcomes and flags.
        let mut flagged_coll = 0usize; // colliding CDQs the predictor flags
        let mut flagged_free = 0usize; // free CDQs the predictor flags
        let mut unflagged_coll = 0usize;
        let mut unflagged_free = 0usize;
        for _ in 0..n {
            let colliding = rng.gen::<f64>() < params.collision_prob;
            let flagged = if colliding {
                rng.gen::<f64>() < params.recall
            } else {
                rng.gen::<f64>() < q
            };
            match (flagged, colliding) {
                (true, true) => flagged_coll += 1,
                (true, false) => flagged_free += 1,
                (false, true) => unflagged_coll += 1,
                (false, false) => unflagged_free += 1,
            }
        }
        total += executed_with_priority(
            flagged_coll,
            flagged_free,
            unflagged_coll,
            unflagged_free,
            rng,
        ) as u64;
    }
    total as f64 / params.trials as f64
}

/// Simulates early-exit execution where the flagged group runs first;
/// ordering within each group is uniformly random.
fn executed_with_priority<R: Rng + ?Sized>(
    flagged_coll: usize,
    flagged_free: usize,
    unflagged_coll: usize,
    unflagged_free: usize,
    rng: &mut R,
) -> usize {
    let first = count_until_hit(flagged_coll, flagged_free, rng);
    match first {
        Some(k) => k,
        None => {
            let flagged_total = flagged_coll + flagged_free;
            match count_until_hit(unflagged_coll, unflagged_free, rng) {
                Some(k) => flagged_total + k,
                None => flagged_total + unflagged_coll + unflagged_free,
            }
        }
    }
}

/// Number of draws until the first colliding item when `coll` colliding and
/// `free` free items are executed in uniformly random order; `None` if no
/// colliding item exists.
fn count_until_hit<R: Rng + ?Sized>(coll: usize, free: usize, rng: &mut R) -> Option<usize> {
    if coll == 0 {
        return None;
    }
    let (c, mut f) = (coll as f64, free as f64);
    let mut executed = 0usize;
    loop {
        executed += 1;
        if rng.gen::<f64>() < c / (c + f) {
            return Some(executed);
        }
        f -= 1.0;
    }
}

/// The Fig. 13 metric: fractional decrease in expected executed CDQs versus
/// the unpredicted baseline, in `[-1, 1]` (negative would mean the predictor
/// hurt).
pub fn computation_decrease<R: Rng + ?Sized>(params: &StatModelParams, rng: &mut R) -> f64 {
    let base = expected_cdqs_baseline(params, rng);
    let pred = expected_cdqs_predicted(params, rng);
    (base - pred) / base
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(77)
    }

    #[test]
    fn implied_fp_rate_consistency() {
        // Perfect precision => no false positives.
        assert_eq!(implied_fp_rate(0.1, 1.0, 0.8), 0.0);
        // precision == base rate with full recall => flag everything.
        let q = implied_fp_rate(0.2, 0.2, 1.0);
        assert!((q - 1.0).abs() < 1e-9);
        // Zero recall => no flags needed.
        assert_eq!(implied_fp_rate(0.2, 0.5, 0.0), 0.0);
    }

    #[test]
    fn oracle_limit_is_one_cdq_for_colliding_motions() {
        // precision=recall=1 with p=1: every CDQ collides, predictor flags
        // all, first executed hits.
        let params = StatModelParams {
            cdqs_per_motion: 80,
            collision_prob: 1.0,
            precision: 1.0,
            recall: 1.0,
            trials: 200,
        };
        let e = expected_cdqs_predicted(&params, &mut rng());
        assert!((e - 1.0).abs() < 1e-9);
    }

    #[test]
    fn no_collisions_executes_everything() {
        let params = StatModelParams {
            cdqs_per_motion: 40,
            collision_prob: 0.0,
            precision: 0.9,
            recall: 0.9,
            trials: 100,
        };
        assert_eq!(expected_cdqs_baseline(&params, &mut rng()), 40.0);
        assert_eq!(expected_cdqs_predicted(&params, &mut rng()), 40.0);
        assert_eq!(computation_decrease(&params, &mut rng()), 0.0);
    }

    #[test]
    fn good_predictor_reduces_computation() {
        let params = StatModelParams::paper_default(0.1, 0.8, 0.6);
        let dec = computation_decrease(&params, &mut rng());
        assert!(dec > 0.1, "decrease {dec}");
    }

    #[test]
    fn perfect_predictor_beats_imperfect() {
        let perfect = StatModelParams::paper_default(0.1, 1.0, 1.0);
        let weak = StatModelParams::paper_default(0.1, 0.4, 0.2);
        let mut r = rng();
        let d_perfect = computation_decrease(&perfect, &mut r);
        let d_weak = computation_decrease(&weak, &mut r);
        assert!(d_perfect > d_weak, "perfect {d_perfect} vs weak {d_weak}");
    }

    #[test]
    fn high_clutter_prefers_precision_low_clutter_prefers_recall() {
        // The paper's Fig. 13 observation: in low-clutter environments
        // recall matters (aggressive predictor wins); in high clutter
        // precision matters.
        let mut r = rng();
        // Low clutter: aggressive (high recall, low precision) vs
        // conservative (low recall, high precision).
        let low_aggr = StatModelParams::paper_default(0.025, 0.3, 0.9);
        let low_cons = StatModelParams::paper_default(0.025, 0.9, 0.2);
        let d_aggr = computation_decrease(&low_aggr, &mut r);
        let d_cons = computation_decrease(&low_cons, &mut r);
        assert!(
            d_aggr > d_cons,
            "low clutter: aggressive {d_aggr} vs conservative {d_cons}"
        );
        // High clutter: precision wins.
        let hi_aggr = StatModelParams::paper_default(0.25, 0.3, 0.95);
        let hi_cons = StatModelParams::paper_default(0.25, 0.95, 0.45);
        let d_aggr = computation_decrease(&hi_aggr, &mut r);
        let d_cons = computation_decrease(&hi_cons, &mut r);
        assert!(
            d_cons > d_aggr,
            "high clutter: conservative {d_cons} vs aggressive {d_aggr}"
        );
    }

    #[test]
    fn baseline_expectation_matches_geometric() {
        // With collision probability p, the baseline early-exit count is
        // approximately min(Geom(p), N).
        let params = StatModelParams {
            cdqs_per_motion: 200,
            collision_prob: 0.25,
            precision: 1.0,
            recall: 1.0,
            trials: 20_000,
        };
        let e = expected_cdqs_baseline(&params, &mut rng());
        assert!((e - 4.0).abs() < 0.2, "expected ~4, got {e}");
    }

    #[test]
    #[should_panic(expected = "p must be a probability")]
    fn invalid_probability_rejected() {
        let params = StatModelParams {
            cdqs_per_motion: 10,
            collision_prob: 1.5,
            precision: 0.5,
            recall: 0.5,
            trials: 10,
        };
        let _ = expected_cdqs_baseline(&params, &mut rng());
    }
}
