//! Prediction-quality metrics.
//!
//! The paper evaluates hash functions and strategies by *collision
//! prediction precision* ("the fraction of poses in collision from poses
//! predicted for collision") and *recall* ("the ratio of the number of
//! colliding poses predicted to be in a collision and total colliding
//! poses").

/// A confusion matrix over predicted vs actual CDQ outcomes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PredictionMetrics {
    /// Predicted colliding, actually colliding.
    pub tp: u64,
    /// Predicted colliding, actually free.
    pub fp: u64,
    /// Predicted free, actually free.
    pub tn: u64,
    /// Predicted free, actually colliding.
    pub fn_: u64,
}

impl PredictionMetrics {
    /// An empty confusion matrix.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one prediction against ground truth.
    pub fn record(&mut self, predicted: bool, actual: bool) {
        match (predicted, actual) {
            (true, true) => self.tp += 1,
            (true, false) => self.fp += 1,
            (false, false) => self.tn += 1,
            (false, true) => self.fn_ += 1,
        }
    }

    /// Total samples recorded.
    pub fn total(&self) -> u64 {
        self.tp + self.fp + self.tn + self.fn_
    }

    /// Precision: `TP / (TP + FP)`. Returns 0 when nothing was predicted
    /// colliding.
    pub fn precision(&self) -> f64 {
        let denom = self.tp + self.fp;
        if denom == 0 {
            0.0
        } else {
            self.tp as f64 / denom as f64
        }
    }

    /// Recall: `TP / (TP + FN)`. Returns 0 when nothing actually collided.
    pub fn recall(&self) -> f64 {
        let denom = self.tp + self.fn_;
        if denom == 0 {
            0.0
        } else {
            self.tp as f64 / denom as f64
        }
    }

    /// Base rate of actual collisions — the "random baseline" precision the
    /// paper quotes (2.6% low-density, 26% high-density).
    pub fn base_rate(&self) -> f64 {
        let t = self.total();
        if t == 0 {
            0.0
        } else {
            (self.tp + self.fn_) as f64 / t as f64
        }
    }

    /// Accuracy: fraction of correct predictions.
    pub fn accuracy(&self) -> f64 {
        let t = self.total();
        if t == 0 {
            0.0
        } else {
            (self.tp + self.tn) as f64 / t as f64
        }
    }

    /// F1 score (harmonic mean of precision and recall).
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// Merges another confusion matrix into this one.
    pub fn merge(&mut self, other: &PredictionMetrics) {
        self.tp += other.tp;
        self.fp += other.fp;
        self.tn += other.tn;
        self.fn_ += other.fn_;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_metrics_are_zero() {
        let m = PredictionMetrics::new();
        assert_eq!(m.precision(), 0.0);
        assert_eq!(m.recall(), 0.0);
        assert_eq!(m.accuracy(), 0.0);
        assert_eq!(m.f1(), 0.0);
        assert_eq!(m.total(), 0);
    }

    #[test]
    fn perfect_predictor() {
        let mut m = PredictionMetrics::new();
        for _ in 0..10 {
            m.record(true, true);
        }
        for _ in 0..90 {
            m.record(false, false);
        }
        assert_eq!(m.precision(), 1.0);
        assert_eq!(m.recall(), 1.0);
        assert_eq!(m.accuracy(), 1.0);
        assert_eq!(m.f1(), 1.0);
        assert!((m.base_rate() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn partial_predictor() {
        let mut m = PredictionMetrics::new();
        // 8 TP, 2 FP, 4 FN, 86 TN.
        m.tp = 8;
        m.fp = 2;
        m.fn_ = 4;
        m.tn = 86;
        assert!((m.precision() - 0.8).abs() < 1e-12);
        assert!((m.recall() - 8.0 / 12.0).abs() < 1e-12);
        assert!((m.accuracy() - 0.94).abs() < 1e-12);
        assert!((m.base_rate() - 0.12).abs() < 1e-12);
    }

    #[test]
    fn record_covers_all_cells() {
        let mut m = PredictionMetrics::new();
        m.record(true, true);
        m.record(true, false);
        m.record(false, true);
        m.record(false, false);
        assert_eq!((m.tp, m.fp, m.fn_, m.tn), (1, 1, 1, 1));
        assert_eq!(m.total(), 4);
    }

    #[test]
    fn merge_adds_cells() {
        let mut a = PredictionMetrics {
            tp: 1,
            fp: 2,
            tn: 3,
            fn_: 4,
        };
        let b = PredictionMetrics {
            tp: 10,
            fp: 20,
            tn: 30,
            fn_: 40,
        };
        a.merge(&b);
        assert_eq!(
            a,
            PredictionMetrics {
                tp: 11,
                fp: 22,
                tn: 33,
                fn_: 44
            }
        );
    }

    #[test]
    fn never_predicting_gives_zero_precision_full_tn() {
        let mut m = PredictionMetrics::new();
        for _ in 0..5 {
            m.record(false, true);
        }
        for _ in 0..95 {
            m.record(false, false);
        }
        assert_eq!(m.precision(), 0.0);
        assert_eq!(m.recall(), 0.0);
        assert!((m.accuracy() - 0.95).abs() < 1e-12);
    }
}
