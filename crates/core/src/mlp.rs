//! A tiny from-scratch MLP autoencoder.
//!
//! The paper's ENPOSE/ENCOORD hash variants "train a small encoder-decoder
//! network on 32,768 random poses using the loss between input poses and
//! decoded poses. One-layer MLPs are used as the encoder and decoder to keep
//! encoding overhead low." This module implements exactly that: a one-layer
//! tanh encoder, a one-layer linear decoder, and plain SGD on mean squared
//! error. No external ML dependency is used.

use rand::Rng;

/// A dense layer `y = W x + b` with optional tanh activation.
#[derive(Debug, Clone)]
pub struct Linear {
    w: Vec<f64>, // row-major: out x in
    b: Vec<f64>,
    n_in: usize,
    n_out: usize,
    tanh: bool,
}

impl Linear {
    /// Creates a layer with uniform Xavier-style initialization.
    pub fn new<R: Rng + ?Sized>(n_in: usize, n_out: usize, tanh: bool, rng: &mut R) -> Self {
        assert!(n_in > 0 && n_out > 0, "layer dimensions must be positive");
        let scale = (6.0 / (n_in + n_out) as f64).sqrt();
        Linear {
            w: (0..n_in * n_out)
                .map(|_| rng.gen_range(-scale..scale))
                .collect(),
            b: vec![0.0; n_out],
            n_in,
            n_out,
            tanh,
        }
    }

    /// Input dimension.
    pub fn n_in(&self) -> usize {
        self.n_in
    }

    /// Output dimension.
    pub fn n_out(&self) -> usize {
        self.n_out
    }

    /// Forward pass.
    ///
    /// # Panics
    ///
    /// Panics when `x.len() != n_in`.
    pub fn forward(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.n_in, "input dimension mismatch");
        (0..self.n_out)
            .map(|o| {
                let z: f64 = self.b[o]
                    + self.w[o * self.n_in..(o + 1) * self.n_in]
                        .iter()
                        .zip(x)
                        .map(|(w, xi)| w * xi)
                        .sum::<f64>();
                if self.tanh {
                    z.tanh()
                } else {
                    z
                }
            })
            .collect()
    }

    /// Backward pass for one sample: given the input `x`, the produced
    /// output `y`, and the gradient of the loss w.r.t. `y`, applies an SGD
    /// step of size `lr` and returns the gradient w.r.t. `x`.
    fn backward(&mut self, x: &[f64], y: &[f64], dy: &[f64], lr: f64) -> Vec<f64> {
        let mut dx = vec![0.0; self.n_in];
        for o in 0..self.n_out {
            // d(tanh)/dz = 1 - y^2 for the activated layer, 1 otherwise.
            let dz = if self.tanh {
                dy[o] * (1.0 - y[o] * y[o])
            } else {
                dy[o]
            };
            let row = &mut self.w[o * self.n_in..(o + 1) * self.n_in];
            for (i, (w, xi)) in row.iter_mut().zip(x).enumerate() {
                dx[i] += *w * dz;
                *w -= lr * dz * xi;
            }
            self.b[o] -= lr * dz;
        }
        dx
    }
}

/// An encoder-decoder pair trained to reconstruct its inputs.
#[derive(Debug, Clone)]
pub struct Autoencoder {
    encoder: Linear,
    decoder: Linear,
    /// Per-latent-dimension value ranges observed on the training set, used
    /// by the hash layer to quantize latents.
    latent_ranges: Vec<(f64, f64)>,
}

impl Autoencoder {
    /// Trains an autoencoder with `latent_dim` latent dimensions on
    /// `samples` for `epochs` passes of SGD with learning rate `lr`.
    ///
    /// # Panics
    ///
    /// Panics when `samples` is empty or dimensions are inconsistent.
    pub fn train<R: Rng + ?Sized>(
        samples: &[Vec<f64>],
        latent_dim: usize,
        epochs: usize,
        lr: f64,
        rng: &mut R,
    ) -> Self {
        assert!(!samples.is_empty(), "autoencoder needs training samples");
        let n = samples[0].len();
        assert!(
            samples.iter().all(|s| s.len() == n),
            "inconsistent sample dims"
        );
        let mut encoder = Linear::new(n, latent_dim, true, rng);
        let mut decoder = Linear::new(latent_dim, n, false, rng);
        let mut order: Vec<usize> = (0..samples.len()).collect();
        for _ in 0..epochs {
            // Fisher-Yates shuffle for SGD sample order.
            for i in (1..order.len()).rev() {
                order.swap(i, rng.gen_range(0..=i));
            }
            for &idx in &order {
                let x = &samples[idx];
                let z = encoder.forward(x);
                let y = decoder.forward(&z);
                // MSE gradient: dL/dy = 2 (y - x) / n.
                let dy: Vec<f64> = y
                    .iter()
                    .zip(x)
                    .map(|(yi, xi)| 2.0 * (yi - xi) / n as f64)
                    .collect();
                let dz = decoder.backward(&z, &y, &dy, lr);
                encoder.backward(x, &z, &dz, lr);
            }
        }
        // Record latent ranges over the training set for quantization.
        let mut latent_ranges = vec![(f64::INFINITY, f64::NEG_INFINITY); latent_dim];
        for s in samples {
            for (d, z) in encoder.forward(s).into_iter().enumerate() {
                let r = &mut latent_ranges[d];
                r.0 = r.0.min(z);
                r.1 = r.1.max(z);
            }
        }
        // Guard degenerate (constant) latents.
        for r in &mut latent_ranges {
            if r.1 - r.0 < 1e-9 {
                r.1 = r.0 + 1e-9;
            }
        }
        Autoencoder {
            encoder,
            decoder,
            latent_ranges,
        }
    }

    /// Latent dimension.
    pub fn latent_dim(&self) -> usize {
        self.encoder.n_out()
    }

    /// Input dimension.
    pub fn input_dim(&self) -> usize {
        self.encoder.n_in()
    }

    /// Encodes a sample into latent space.
    pub fn encode(&self, x: &[f64]) -> Vec<f64> {
        self.encoder.forward(x)
    }

    /// Reconstructs a sample.
    pub fn reconstruct(&self, x: &[f64]) -> Vec<f64> {
        self.decoder.forward(&self.encode(x))
    }

    /// Mean squared reconstruction error over a set.
    pub fn mse(&self, samples: &[Vec<f64>]) -> f64 {
        let mut total = 0.0;
        for s in samples {
            let y = self.reconstruct(s);
            total += y.iter().zip(s).map(|(a, b)| (a - b) * (a - b)).sum::<f64>() / s.len() as f64;
        }
        total / samples.len() as f64
    }

    /// Quantizes the latent representation of `x` to `k` bits per dimension
    /// using the training-set latent ranges, concatenating dimensions into
    /// one code (lowest dimension in the most significant position).
    pub fn quantized_code(&self, x: &[f64], k: u32) -> u64 {
        let mut code = 0u64;
        for (d, z) in self.encode(x).into_iter().enumerate() {
            let (lo, hi) = self.latent_ranges[d];
            let t = ((z - lo) / (hi - lo)).clamp(0.0, 1.0);
            let max = (1u64 << k) - 1;
            let q = (t * max as f64).round() as u64;
            code = (code << k) | q;
        }
        code
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(12345)
    }

    #[test]
    fn linear_forward_shapes() {
        let mut r = rng();
        let l = Linear::new(3, 2, false, &mut r);
        let y = l.forward(&[1.0, 0.0, -1.0]);
        assert_eq!(y.len(), 2);
        assert!(y.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn tanh_saturates() {
        let mut r = rng();
        let mut l = Linear::new(1, 1, true, &mut r);
        // Force a huge weight manually via training steps toward saturation.
        for _ in 0..200 {
            let x = [10.0];
            let y = l.forward(&x);
            let dy = [y[0] - 1.0];
            l.backward(&x, &y, &dy, 0.5);
        }
        let y = l.forward(&[10.0]);
        assert!(y[0] <= 1.0 && y[0] >= -1.0);
    }

    #[test]
    fn autoencoder_learns_linear_structure() {
        // Data on a 1-D manifold in 3-D: (t, 2t, -t). A 1-latent autoencoder
        // must reconstruct it much better than an untrained one.
        let mut r = rng();
        let samples: Vec<Vec<f64>> = (0..256)
            .map(|_| {
                let t: f64 = r.gen_range(-1.0..1.0);
                vec![t, 2.0 * t, -t]
            })
            .collect();
        let trained = Autoencoder::train(&samples, 1, 60, 0.05, &mut r);
        let untrained = Autoencoder::train(&samples, 1, 0, 0.05, &mut r);
        let mse_t = trained.mse(&samples);
        let mse_u = untrained.mse(&samples);
        assert!(mse_t < mse_u * 0.2, "trained {mse_t} vs untrained {mse_u}");
        assert!(mse_t < 0.05, "trained mse too high: {mse_t}");
    }

    #[test]
    fn quantized_code_within_width() {
        let mut r = rng();
        let samples: Vec<Vec<f64>> = (0..64)
            .map(|_| (0..4).map(|_| r.gen_range(-1.0..1.0)).collect())
            .collect();
        let ae = Autoencoder::train(&samples, 2, 5, 0.05, &mut r);
        for s in &samples {
            let code = ae.quantized_code(s, 5);
            assert!(code < (1 << 10), "code {code} exceeds 10 bits");
        }
    }

    #[test]
    fn quantized_code_is_deterministic() {
        let mut r = rng();
        let samples: Vec<Vec<f64>> = (0..32).map(|_| vec![r.gen_range(-1.0..1.0); 3]).collect();
        let ae = Autoencoder::train(&samples, 2, 3, 0.05, &mut r);
        assert_eq!(
            ae.quantized_code(&samples[0], 4),
            ae.quantized_code(&samples[0], 4)
        );
    }

    #[test]
    fn encode_dim_matches_latent() {
        let mut r = rng();
        let samples = vec![vec![0.5, -0.5]; 8];
        let ae = Autoencoder::train(&samples, 2, 1, 0.1, &mut r);
        assert_eq!(ae.latent_dim(), 2);
        assert_eq!(ae.input_dim(), 2);
        assert_eq!(ae.encode(&samples[0]).len(), 2);
    }

    #[test]
    #[should_panic(expected = "needs training samples")]
    fn empty_training_set_rejected() {
        let mut r = rng();
        let _ = Autoencoder::train(&[], 2, 1, 0.1, &mut r);
    }
}
