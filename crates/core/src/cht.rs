//! The Collision History Table (CHT) and prediction strategy (paper §III-D).
//!
//! Each CHT entry holds two saturating counters, `COLL` and `NONCOLL`,
//! counting past colliding and collision-free CDQs that hashed to the entry.
//! A CDQ is *predicted colliding* when `COLL > S × NONCOLL`; lower `S` makes
//! the predictor more aggressive. Collision-free outcomes update the table
//! only with probability `U` (reduced update traffic); colliding outcomes
//! always update. The table is reset after every motion-planning query
//! because obstacles may have moved.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// The prediction strategy parameter `S` (`COLL > S × NONCOLL`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Strategy {
    s: f64,
}

impl Strategy {
    /// Creates a strategy with weight `s`.
    ///
    /// # Panics
    ///
    /// Panics when `s` is negative or not finite.
    pub fn new(s: f64) -> Self {
        assert!(
            s.is_finite() && s >= 0.0,
            "S must be a finite non-negative weight"
        );
        Strategy { s }
    }

    /// The hardware form `COLL > NONCOLL >> x`, i.e. `S = 2^-x`.
    ///
    /// Every shift width is valid: `x >= 1075` underflows `2^-x` to `0.0`,
    /// which is simply [`Strategy::most_aggressive`]. (The earlier
    /// `1u32 << x` form panicked in debug builds for `x >= 32` and silently
    /// wrapped to `S = 1.0` in release.)
    pub fn from_shift(x: u32) -> Self {
        // Clamp the exponent so the i32 cast cannot wrap; 2^-1074 is the
        // smallest subnormal, anything beyond is exactly 0.0 anyway.
        Strategy::new(2f64.powi(-(x.min(1075) as i32)))
    }

    /// The most aggressive strategy (`S = 0`): any recorded collision in the
    /// entry predicts a collision. With `S = 0` the CHT needs only one bit
    /// per entry.
    pub fn most_aggressive() -> Self {
        Strategy::new(0.0)
    }

    /// The paper's proposed future-work heuristic (§VI-A1): pick `S` from an
    /// estimate of environmental obstacle density ("e.g., the number of
    /// voxels"). Low clutter favors recall (aggressive, small `S`); high
    /// clutter favors precision (large `S`). `clutter` is the occupied
    /// fraction of the workspace, e.g.
    /// `Environment::clutter_fraction` in `copred-collision`, or a voxel count
    /// ratio from the mapping pipeline.
    ///
    /// # Panics
    ///
    /// Panics when `clutter` is not in `[0, 1]`.
    pub fn adaptive_for_clutter(clutter: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&clutter),
            "clutter must be a fraction in [0, 1], got {clutter}"
        );
        // Thresholds from the Fig. 13 sweep: the low-density optimum is the
        // aggressive end, the high-density optimum is S = 2, with S = 1 in
        // between.
        if clutter < 0.03 {
            Strategy::new(0.0)
        } else if clutter < 0.12 {
            Strategy::new(1.0)
        } else {
            Strategy::new(2.0)
        }
    }

    /// The weight `S`.
    pub fn s(&self) -> f64 {
        self.s
    }

    /// The prediction rule.
    #[inline]
    pub fn predicts(&self, coll: u8, noncoll: u8) -> bool {
        f64::from(coll) > self.s * f64::from(noncoll)
    }
}

/// Access-traffic counters for energy modeling and the U-parameter studies.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChtStats {
    /// Prediction lookups served.
    pub reads: u64,
    /// Updates written to the table.
    pub writes: u64,
    /// Collision-free updates skipped by the `U` policy.
    pub skipped_updates: u64,
}

/// Sizing and policy parameters of a CHT instance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChtParams {
    /// Address width: the table has `2^bits` entries.
    pub bits: u32,
    /// Saturating-counter width per field (the paper's hardware uses 4-bit
    /// counters; 1-bit entries are the `S = 0` degenerate form that stores
    /// only "a collision was seen").
    pub counter_bits: u32,
    /// Prediction strategy `S`.
    pub strategy: Strategy,
    /// Update probability `U` for collision-free CDQs (colliding CDQs always
    /// update).
    pub update_fraction: f64,
}

impl ChtParams {
    /// The paper's evaluation setup for robotic arms: 4096 × 8-bit entries,
    /// `S = 1`, `U = 0.125` (§VI-B).
    pub fn paper_arm() -> Self {
        ChtParams {
            bits: 12,
            counter_bits: 4,
            strategy: Strategy::new(1.0),
            update_fraction: 0.125,
        }
    }

    /// The paper's 2D path-planning setup: 1024 × 8-bit entries.
    pub fn paper_2d() -> Self {
        ChtParams {
            bits: 10,
            ..Self::paper_arm()
        }
    }

    /// The performance-evaluation setup of §VI-B2: 4096 × 1-bit entries with
    /// `S = 0`, `U = 0`.
    pub fn paper_1bit() -> Self {
        ChtParams {
            bits: 12,
            counter_bits: 1,
            strategy: Strategy::most_aggressive(),
            update_fraction: 0.0,
        }
    }

    /// Number of entries.
    pub fn entries(&self) -> usize {
        1usize << self.bits.min(63)
    }

    /// Storage bits per entry: `2 × counter_bits`, or a single bit when the
    /// counters are 1-bit wide (NONCOLL is not stored for `S = 0`).
    pub fn entry_bits(&self) -> u32 {
        if self.counter_bits == 1 {
            1
        } else {
            2 * self.counter_bits
        }
    }

    /// Total table capacity in bits (SRAM sizing for the area/energy model).
    pub fn total_bits(&self) -> u64 {
        self.entries() as u64 * u64::from(self.entry_bits())
    }
}

#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct Entry {
    coll: u8,
    noncoll: u8,
}

/// Backing store: dense for hardware-sized tables, sparse for the large
/// C-space hash studies (e.g. POSE with 28-bit codes).
#[derive(Debug, Clone)]
enum Storage {
    Dense(Vec<Entry>),
    Sparse(HashMap<u64, Entry>),
}

/// Widest address for which the table is allocated densely.
const DENSE_BITS_LIMIT: u32 = 22;

/// The Collision History Table.
///
/// # Examples
///
/// ```
/// use copred_core::{Cht, ChtParams};
///
/// let mut cht = Cht::new(ChtParams::paper_arm(), 42);
/// assert!(!cht.predict(100));      // empty table predicts nothing
/// cht.observe(100, true);          // a colliding CDQ updates COLL
/// assert!(cht.predict(100));       // ... and now the entry predicts
/// cht.reset();                     // new planning query: history cleared
/// assert!(!cht.predict(100));
/// ```
#[derive(Debug, Clone)]
pub struct Cht {
    params: ChtParams,
    storage: Storage,
    stats: ChtStats,
    rng: StdRng,
    seed: u64,
}

impl Cht {
    /// Creates an empty table. `seed` drives the random `U`-policy sampling
    /// (the hardware uses an RNG in the Query Update Unit).
    pub fn new(params: ChtParams, seed: u64) -> Self {
        assert!(
            params.bits >= 1 && params.bits <= 63,
            "CHT needs 1..=63 address bits"
        );
        assert!(
            params.counter_bits >= 1 && params.counter_bits <= 8,
            "counter width must be 1..=8 bits"
        );
        assert!(
            (0.0..=1.0).contains(&params.update_fraction),
            "U must lie in [0, 1]"
        );
        let storage = if params.bits <= DENSE_BITS_LIMIT {
            Storage::Dense(vec![Entry::default(); params.entries()])
        } else {
            Storage::Sparse(HashMap::new())
        };
        Cht {
            params,
            storage,
            stats: ChtStats::default(),
            rng: StdRng::seed_from_u64(seed),
            seed,
        }
    }

    /// The table's parameters.
    pub fn params(&self) -> &ChtParams {
        &self.params
    }

    /// Access statistics accumulated since construction or the last
    /// [`Self::reset_stats`].
    pub fn stats(&self) -> ChtStats {
        self.stats
    }

    /// Clears the access statistics.
    pub fn reset_stats(&mut self) {
        self.stats = ChtStats::default();
    }

    fn mask(&self) -> u64 {
        (1u64 << self.params.bits) - 1
    }

    fn entry(&self, code: u64) -> Entry {
        let addr = code & self.mask();
        match &self.storage {
            Storage::Dense(v) => v[addr as usize],
            Storage::Sparse(m) => m.get(&addr).copied().unwrap_or_default(),
        }
    }

    fn entry_mut(&mut self, code: u64) -> &mut Entry {
        let addr = code & self.mask();
        match &mut self.storage {
            Storage::Dense(v) => &mut v[addr as usize],
            Storage::Sparse(m) => m.entry(addr).or_default(),
        }
    }

    /// Raw counters `(COLL, NONCOLL)` of the entry `code` maps to.
    pub fn counters(&self, code: u64) -> (u8, u8) {
        let e = self.entry(code);
        (e.coll, e.noncoll)
    }

    /// Overwrites the raw counters of the entry `code` maps to — the
    /// serialization hook used by `copred-store` to restore a table from a
    /// snapshot image. Values are clamped to the counter width so a decoded
    /// image can never hold an unrepresentable state.
    pub fn set_counters(&mut self, code: u64, coll: u8, noncoll: u8) {
        let max = ((1u32 << self.params.counter_bits) - 1) as u8;
        let e = self.entry_mut(code);
        e.coll = coll.min(max);
        e.noncoll = noncoll.min(max);
    }

    /// Prediction lookup: does the entry predict a collision?
    pub fn predict(&mut self, code: u64) -> bool {
        self.stats.reads += 1;
        let e = self.entry(code);
        self.params.strategy.predicts(e.coll, e.noncoll)
    }

    /// Gang prediction lookup: one read per code, results in order.
    ///
    /// Bit-identical (results *and* access statistics) to calling
    /// [`Self::predict`] per code — the gang form exists so batched
    /// pipelines issue one address-translation/bounds-check pass over a
    /// dense table instead of `n` independent calls, and so the stats
    /// counter is bumped once.
    ///
    /// # Panics
    ///
    /// Panics when `out` is shorter than `codes`.
    pub fn predict_batch(&mut self, codes: &[u64], out: &mut [bool]) {
        assert!(out.len() >= codes.len(), "output buffer too short");
        self.stats.reads += codes.len() as u64;
        let mask = self.mask();
        let strategy = self.params.strategy;
        match &self.storage {
            Storage::Dense(v) => {
                for (o, &code) in out.iter_mut().zip(codes) {
                    let e = v[(code & mask) as usize];
                    *o = strategy.predicts(e.coll, e.noncoll);
                }
            }
            Storage::Sparse(m) => {
                for (o, &code) in out.iter_mut().zip(codes) {
                    let e = m.get(&(code & mask)).copied().unwrap_or_default();
                    *o = strategy.predicts(e.coll, e.noncoll);
                }
            }
        }
    }

    /// Prediction lookup without touching the access statistics (for
    /// instrumentation and tests).
    pub fn peek(&self, code: u64) -> bool {
        let e = self.entry(code);
        self.params.strategy.predicts(e.coll, e.noncoll)
    }

    /// Records the outcome of an executed CDQ. Colliding outcomes always
    /// update `COLL`; collision-free outcomes update `NONCOLL` with
    /// probability `U`.
    pub fn observe(&mut self, code: u64, colliding: bool) {
        let max = ((1u32 << self.params.counter_bits) - 1) as u8;
        let single_bit = self.params.counter_bits == 1;
        if colliding {
            self.stats.writes += 1;
            let e = self.entry_mut(code);
            e.coll = e.coll.saturating_add(1).min(max);
        } else if single_bit {
            // 1-bit entries store only the collision bit; free outcomes are
            // not recorded at all.
            self.stats.skipped_updates += 1;
        } else if self.params.update_fraction > 0.0
            && self.rng.gen::<f64>() < self.params.update_fraction
        {
            self.stats.writes += 1;
            let e = self.entry_mut(code);
            e.noncoll = e.noncoll.saturating_add(1).min(max);
        } else {
            self.stats.skipped_updates += 1;
        }
    }

    /// Clears every entry — performed "after each motion planning query, as
    /// obstacle positions might change" (paper §IV). Also reseeds the
    /// `U`-policy RNG so a reset table replays identically.
    pub fn reset(&mut self) {
        match &mut self.storage {
            Storage::Dense(v) => v.iter_mut().for_each(|e| *e = Entry::default()),
            Storage::Sparse(m) => m.clear(),
        }
        self.rng = StdRng::seed_from_u64(self.seed);
    }

    /// Number of entries with any recorded history (density measurement for
    /// the hash-function studies).
    pub fn populated_entries(&self) -> usize {
        match &self.storage {
            Storage::Dense(v) => v.iter().filter(|e| e.coll > 0 || e.noncoll > 0).count(),
            Storage::Sparse(m) => m.values().filter(|e| e.coll > 0 || e.noncoll > 0).count(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cht(s: f64, u: f64) -> Cht {
        Cht::new(
            ChtParams {
                bits: 8,
                counter_bits: 4,
                strategy: Strategy::new(s),
                update_fraction: u,
            },
            7,
        )
    }

    #[test]
    fn empty_table_predicts_nothing() {
        let mut t = cht(0.0, 1.0);
        for code in 0..256 {
            assert!(!t.predict(code));
        }
    }

    #[test]
    fn single_collision_flips_prediction() {
        let mut t = cht(1.0, 1.0);
        t.observe(5, true);
        assert!(t.predict(5));
        assert!(!t.predict(6));
    }

    #[test]
    fn strategy_weights_noncoll() {
        // With S = 1: COLL=1, NONCOLL=1 -> 1 > 1 is false.
        let mut t = cht(1.0, 1.0);
        t.observe(9, true);
        t.observe(9, false);
        assert!(!t.predict(9));
        // With S = 0: any collision predicts regardless of NONCOLL.
        let mut t0 = cht(0.0, 1.0);
        t0.observe(9, true);
        for _ in 0..10 {
            t0.observe(9, false);
        }
        assert!(t0.predict(9));
        // With S = 2: needs COLL > 2*NONCOLL.
        let mut t2 = cht(2.0, 1.0);
        t2.observe(9, true);
        t2.observe(9, false);
        assert!(!t2.predict(9));
        t2.observe(9, true);
        t2.observe(9, true);
        assert!(t2.predict(9));
    }

    #[test]
    fn adaptive_strategy_tracks_clutter() {
        assert_eq!(Strategy::adaptive_for_clutter(0.0).s(), 0.0);
        assert_eq!(Strategy::adaptive_for_clutter(0.01).s(), 0.0);
        assert_eq!(Strategy::adaptive_for_clutter(0.08).s(), 1.0);
        assert_eq!(Strategy::adaptive_for_clutter(0.3).s(), 2.0);
        assert_eq!(Strategy::adaptive_for_clutter(1.0).s(), 2.0);
        // Monotone: more clutter never lowers S.
        let mut prev = -1.0;
        for i in 0..=20 {
            let s = Strategy::adaptive_for_clutter(i as f64 / 20.0).s();
            assert!(s >= prev);
            prev = s;
        }
    }

    #[test]
    #[should_panic(expected = "clutter must be a fraction")]
    fn adaptive_strategy_rejects_bad_fraction() {
        let _ = Strategy::adaptive_for_clutter(1.5);
    }

    #[test]
    fn shift_form_matches_power_of_two() {
        assert_eq!(Strategy::from_shift(0).s(), 1.0);
        assert_eq!(Strategy::from_shift(1).s(), 0.5);
        assert_eq!(Strategy::from_shift(3).s(), 0.125);
    }

    #[test]
    fn shift_form_survives_wide_shifts() {
        // Regression: `1u32 << 32` panicked in debug builds and wrapped to
        // S = 1.0 in release; the strategy must stay 2^-x for any width.
        assert_eq!(Strategy::from_shift(31).s(), 2f64.powi(-31));
        assert_eq!(Strategy::from_shift(32).s(), 2f64.powi(-32));
        assert_ne!(Strategy::from_shift(32).s(), 1.0, "no silent wrap");
        assert_eq!(Strategy::from_shift(64).s(), 2f64.powi(-64));
        // Deep in the subnormal range `powi` may round to zero a little
        // early; what matters is that S stays finite, tiny, and reaches
        // exactly 0.0 (the most aggressive strategy) rather than wrapping
        // back to 1.0.
        assert!(Strategy::from_shift(1022).s() > 0.0);
        assert!(Strategy::from_shift(1022).s() <= 2f64.powi(-1022));
        assert_eq!(Strategy::from_shift(1075).s(), 0.0);
        assert_eq!(Strategy::from_shift(u32::MAX).s(), 0.0);
        // Monotone: a wider shift never raises S.
        let mut prev = f64::INFINITY;
        for x in 0..80 {
            let s = Strategy::from_shift(x).s();
            assert!(s < prev, "S must strictly fall until underflow");
            prev = s;
        }
    }

    #[test]
    fn counters_saturate_at_width() {
        let mut t = cht(1.0, 1.0);
        for _ in 0..100 {
            t.observe(3, true);
            t.observe(3, false);
        }
        let (c, n) = t.counters(3);
        assert_eq!(c, 15);
        assert_eq!(n, 15);
    }

    #[test]
    fn update_fraction_zero_skips_all_free_updates() {
        let mut t = cht(1.0, 0.0);
        for _ in 0..50 {
            t.observe(1, false);
        }
        assert_eq!(t.counters(1), (0, 0));
        assert_eq!(t.stats().skipped_updates, 50);
        assert_eq!(t.stats().writes, 0);
    }

    #[test]
    fn update_fraction_statistics() {
        let mut t = cht(1.0, 0.25);
        let trials = 4000;
        for i in 0..trials {
            t.observe(i % 256, false);
        }
        let w = t.stats().writes as f64 / trials as f64;
        assert!((w - 0.25).abs() < 0.05, "measured U = {w}");
    }

    #[test]
    fn colliding_updates_never_skipped() {
        let mut t = cht(1.0, 0.0);
        for _ in 0..10 {
            t.observe(2, true);
        }
        assert_eq!(t.counters(2).0, 10);
    }

    #[test]
    fn reset_clears_history_and_prediction() {
        let mut t = cht(0.5, 1.0);
        t.observe(77, true);
        assert!(t.predict(77));
        t.reset();
        assert!(!t.predict(77));
        assert_eq!(t.populated_entries(), 0);
    }

    #[test]
    fn address_masking_aliases_high_bits() {
        let mut t = cht(0.0, 1.0);
        t.observe(0x100 + 5, true); // aliases onto entry 5 in an 8-bit table
        assert!(t.predict(5));
    }

    #[test]
    fn sparse_backend_for_wide_codes() {
        let params = ChtParams {
            bits: 30,
            counter_bits: 4,
            strategy: Strategy::new(1.0),
            update_fraction: 1.0,
        };
        let mut t = Cht::new(params, 1);
        t.observe(123_456_789, true);
        assert!(t.predict(123_456_789));
        assert!(!t.predict(987));
        assert_eq!(t.populated_entries(), 1);
    }

    #[test]
    fn single_bit_mode_stores_only_collisions() {
        let mut t = Cht::new(ChtParams::paper_1bit(), 3);
        t.observe(4, false);
        assert!(!t.predict(4));
        t.observe(4, true);
        assert!(t.predict(4));
        assert_eq!(t.params().entry_bits(), 1);
    }

    #[test]
    fn paper_parameter_presets() {
        let arm = ChtParams::paper_arm();
        assert_eq!(arm.entries(), 4096);
        assert_eq!(arm.entry_bits(), 8);
        assert_eq!(arm.total_bits(), 4096 * 8);
        let planar = ChtParams::paper_2d();
        assert_eq!(planar.entries(), 1024);
        let one = ChtParams::paper_1bit();
        assert_eq!(one.total_bits(), 4096);
    }

    #[test]
    fn stats_count_reads() {
        let mut t = cht(1.0, 1.0);
        t.predict(0);
        t.predict(1);
        assert_eq!(t.stats().reads, 2);
        t.reset_stats();
        assert_eq!(t.stats().reads, 0);
    }

    #[test]
    #[should_panic(expected = "U must lie in [0, 1]")]
    fn invalid_update_fraction_rejected() {
        let _ = Cht::new(
            ChtParams {
                bits: 4,
                counter_bits: 4,
                strategy: Strategy::new(1.0),
                update_fraction: 1.5,
            },
            0,
        );
    }
}
