//! # copred-collision
//!
//! Collision-detection substrate: environments of cuboid obstacles, the
//! decomposition of pose/motion checks into elementary CDQs with early-exit
//! OR semantics, and the reference CDQ scheduling policies (Naive, CSP,
//! Oracle) the COORD predictor is compared against.
//!
//! ## Example
//!
//! ```
//! use copred_collision::{check_motion_scheduled, Environment, Schedule};
//! use copred_geometry::{Aabb, Vec3};
//! use copred_kinematics::{presets, Config, Motion, Robot};
//!
//! let robot: Robot = presets::planar_2d().into();
//! let env = Environment::new(
//!     robot.workspace(),
//!     vec![Aabb::new(Vec3::new(-0.1, -1.0, -0.1), Vec3::new(0.1, 1.0, 0.1))],
//! );
//! let poses = Motion::new(Config::new(vec![-0.5, 0.0]), Config::new(vec![0.5, 0.0]))
//!     .discretize(9);
//! let out = check_motion_scheduled(&robot, &env, &poses, Schedule::Oracle);
//! assert!(out.colliding);
//! assert_eq!(out.cdqs_executed, 1); // the oracle limit
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod cdq;
mod environment;
mod schedule;

pub use cdq::{
    check_pose, enumerate_motion_cdqs, enumerate_motion_cdqs_scalar, enumerate_pose_cdqs,
    motion_collides, CdqInfo, CdqStats,
};
pub use environment::Environment;
pub use schedule::{
    check_motion_scheduled, run_predicted_schedule, run_schedule, CdqPredictor, MotionCheckOutcome,
    Schedule,
};
