//! Collision Detection Queries (CDQs) and their enumeration.
//!
//! A pose-environment or motion-environment collision check decomposes into
//! many elementary CDQs — one bounding volume of the robot against the whole
//! environment — whose outputs are OR-combined with early exit (paper
//! §III-A). [`enumerate_motion_cdqs`] materializes that decomposition with
//! ground-truth outcomes, which the schedulers, the Oracle limit study, the
//! trace recorder, and the accelerator simulator all consume.

use crate::environment::Environment;
use copred_geometry::{BatchObb, Obb, Vec3, OBB_LANES};
use copred_kinematics::{Config, Robot};

/// One elementary collision detection query, with its ground-truth outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct CdqInfo {
    /// Index of the sample pose along the motion (0 for pose checks).
    pub pose_idx: usize,
    /// Index of the robot link the query bounds.
    pub link_idx: usize,
    /// Cartesian center of the bounding volume — the COORD hash input.
    pub center: Vec3,
    /// The oriented box tested against the environment.
    pub obb: Obb,
    /// Ground truth: does this volume intersect any obstacle?
    pub colliding: bool,
    /// Obstacle-pair tests the early-exit CDU evaluates for this query.
    pub obstacle_tests: usize,
}

/// All CDQs for a single pose check, in link order.
pub fn enumerate_pose_cdqs(robot: &Robot, env: &Environment, q: &Config) -> Vec<CdqInfo> {
    let pose = robot.fk(q);
    pose.links
        .iter()
        .enumerate()
        .map(|(link_idx, link)| {
            let (colliding, obstacle_tests) = env.obb_collides_with_cost(&link.obb);
            CdqInfo {
                pose_idx: 0,
                link_idx,
                center: link.center,
                obb: link.obb,
                colliding,
                obstacle_tests,
            }
        })
        .collect()
}

/// All CDQs for a discretized motion, pose-major then link order, with
/// `pose_idx` set to the sample index.
///
/// Internally the link OBBs of consecutive poses are packed [`OBB_LANES`]
/// at a time (across pose boundaries — enumeration has no early exit) and
/// resolved with the lane-parallel environment query. Outcomes, costs, and
/// ordering are bit-identical to [`enumerate_motion_cdqs_scalar`].
pub fn enumerate_motion_cdqs(robot: &Robot, env: &Environment, poses: &[Config]) -> Vec<CdqInfo> {
    let mut out = Vec::with_capacity(poses.len() * robot.link_count());
    for (pose_idx, q) in poses.iter().enumerate() {
        let pose = robot.fk(q);
        for (link_idx, link) in pose.links.iter().enumerate() {
            out.push(CdqInfo {
                pose_idx,
                link_idx,
                center: link.center,
                obb: link.obb,
                colliding: false,
                obstacle_tests: 0,
            });
        }
    }
    let mut lanes = [Obb::axis_aligned(Vec3::ZERO, Vec3::ZERO); OBB_LANES];
    for chunk in out.chunks_mut(OBB_LANES) {
        for (lane, cdq) in lanes.iter_mut().zip(chunk.iter()) {
            *lane = cdq.obb;
        }
        let batch = BatchObb::from_obbs(&lanes[..chunk.len()]);
        let (hits, costs) = env.obb_collides_batch_with_cost(&batch);
        for (l, cdq) in chunk.iter_mut().enumerate() {
            cdq.colliding = hits[l];
            cdq.obstacle_tests = costs[l];
        }
    }
    out
}

/// Scalar reference implementation of [`enumerate_motion_cdqs`]: one
/// [`Environment::obb_collides_with_cost`] call per link. Kept as the
/// bit-exactness oracle the batched path is property-tested against.
pub fn enumerate_motion_cdqs_scalar(
    robot: &Robot,
    env: &Environment,
    poses: &[Config],
) -> Vec<CdqInfo> {
    let mut out = Vec::with_capacity(poses.len() * robot.link_count());
    for (pose_idx, q) in poses.iter().enumerate() {
        for mut cdq in enumerate_pose_cdqs(robot, env, q) {
            cdq.pose_idx = pose_idx;
            out.push(cdq);
        }
    }
    out
}

/// Checks a single pose with early exit, returning `(colliding, cdqs
/// executed)`. This is the hot path planners call: links are tested in
/// order and the check stops at the first collision.
pub fn check_pose(robot: &Robot, env: &Environment, q: &Config) -> (bool, usize) {
    let pose = robot.fk(q);
    for (i, link) in pose.links.iter().enumerate() {
        if env.obb_collides(&link.obb) {
            return (true, i + 1);
        }
    }
    (false, pose.links.len())
}

/// Ground truth for a motion: `true` when any sample pose collides.
pub fn motion_collides(robot: &Robot, env: &Environment, poses: &[Config]) -> bool {
    poses.iter().any(|q| check_pose(robot, env, q).0)
}

/// Aggregate CDQ counters accumulated over a motion-planning query.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CdqStats {
    /// Elementary CDQs executed.
    pub cdqs: u64,
    /// Obstacle-pair tests executed inside those CDQs.
    pub obstacle_tests: u64,
    /// Pose/motion checks that returned "colliding".
    pub colliding_checks: u64,
    /// Pose/motion checks that returned "collision-free".
    pub free_checks: u64,
}

impl CdqStats {
    /// A zeroed counter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one completed check.
    pub fn record_check(&mut self, colliding: bool, cdqs: usize) {
        self.cdqs += cdqs as u64;
        if colliding {
            self.colliding_checks += 1;
        } else {
            self.free_checks += 1;
        }
    }

    /// Total checks recorded.
    pub fn total_checks(&self) -> u64 {
        self.colliding_checks + self.free_checks
    }

    /// Fraction of checks that collided (the paper reports 52%–93% for
    /// planner workloads).
    pub fn colliding_fraction(&self) -> f64 {
        let t = self.total_checks();
        if t == 0 {
            0.0
        } else {
            self.colliding_checks as f64 / t as f64
        }
    }

    /// Merges another counter set into this one.
    pub fn merge(&mut self, other: &CdqStats) {
        self.cdqs += other.cdqs;
        self.obstacle_tests += other.obstacle_tests;
        self.colliding_checks += other.colliding_checks;
        self.free_checks += other.free_checks;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use copred_geometry::{Aabb, Vec3};
    use copred_kinematics::presets;

    fn planar_env() -> (Robot, Environment) {
        let robot: Robot = presets::planar_2d().into();
        let ws = robot.workspace();
        // A block on the right half of the plane.
        let env = Environment::new(
            ws,
            vec![Aabb::new(
                Vec3::new(0.3, -1.0, -0.1),
                Vec3::new(0.6, 1.0, 0.1),
            )],
        );
        (robot, env)
    }

    #[test]
    fn pose_cdqs_have_ground_truth() {
        let (robot, env) = planar_env();
        let hit = enumerate_pose_cdqs(&robot, &env, &Config::new(vec![0.4, 0.0]));
        assert_eq!(hit.len(), 1);
        assert!(hit[0].colliding);
        let miss = enumerate_pose_cdqs(&robot, &env, &Config::new(vec![-0.5, 0.0]));
        assert!(!miss[0].colliding);
    }

    #[test]
    fn check_pose_early_exits() {
        let (robot, env) = planar_env();
        let (hit, n) = check_pose(&robot, &env, &Config::new(vec![0.45, 0.2]));
        assert!(hit);
        assert_eq!(n, 1);
        let (hit, n) = check_pose(&robot, &env, &Config::new(vec![-0.45, 0.2]));
        assert!(!hit);
        assert_eq!(n, robot.link_count());
    }

    #[test]
    fn arm_pose_early_exit_skips_later_links() {
        let robot: Robot = presets::kuka_iiwa().into();
        let ws = robot.workspace();
        // Obstacle swallowing the base: the first link collides immediately.
        let env = Environment::new(
            ws,
            vec![Aabb::from_center_half_extents(
                Vec3::new(0.0, 0.0, 0.2),
                Vec3::splat(0.3),
            )],
        );
        let (hit, n) = check_pose(&robot, &env, &Config::zeros(7));
        assert!(hit);
        assert!(n < robot.link_count(), "early exit expected, executed {n}");
    }

    #[test]
    fn motion_enumeration_is_pose_major() {
        let (robot, env) = planar_env();
        let poses = vec![
            Config::new(vec![-0.5, 0.0]),
            Config::new(vec![0.0, 0.0]),
            Config::new(vec![0.45, 0.0]),
        ];
        let cdqs = enumerate_motion_cdqs(&robot, &env, &poses);
        assert_eq!(cdqs.len(), 3);
        assert_eq!(cdqs[0].pose_idx, 0);
        assert_eq!(cdqs[2].pose_idx, 2);
        assert!(!cdqs[0].colliding);
        assert!(cdqs[2].colliding);
        assert!(motion_collides(&robot, &env, &poses));
    }

    #[test]
    fn batched_enumeration_matches_scalar_reference() {
        let (robot, env) = planar_env();
        // Ragged pose counts exercise every tail-lane width.
        for n_poses in 1..=10usize {
            let poses: Vec<Config> = (0..n_poses)
                .map(|i| Config::new(vec![-0.6 + 0.13 * i as f64, 0.1 * i as f64]))
                .collect();
            let batched = enumerate_motion_cdqs(&robot, &env, &poses);
            let scalar = enumerate_motion_cdqs_scalar(&robot, &env, &poses);
            assert_eq!(batched, scalar, "divergence at {n_poses} poses");
        }
    }

    #[test]
    fn stats_accumulate_and_merge() {
        let mut s = CdqStats::new();
        s.record_check(true, 3);
        s.record_check(false, 7);
        assert_eq!(s.cdqs, 10);
        assert_eq!(s.total_checks(), 2);
        assert!((s.colliding_fraction() - 0.5).abs() < 1e-12);
        let mut t = CdqStats::new();
        t.record_check(true, 1);
        s.merge(&t);
        assert_eq!(s.cdqs, 11);
        assert_eq!(s.colliding_checks, 2);
        assert_eq!(CdqStats::new().colliding_fraction(), 0.0);
    }
}
