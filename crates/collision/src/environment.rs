//! Environments: collections of cuboid obstacles.
//!
//! The paper's benchmarks place "5 - 9 cuboid-shaped obstacles" (random
//! scenes) or "a work table with several objects" (planner scenes) inside
//! the robot's reach. An [`Environment`] stores those cuboids as world-space
//! AABBs and answers the elementary intersection queries a Collision
//! Detection Unit performs, with early-exit obstacle iteration so the cost
//! of each CDQ (in obstacle-pair tests) can be modeled.

use copred_geometry::{Aabb, BatchObb, Obb, Sphere, Vec3, VoxelGrid, OBB_LANES};

/// A static scene: cuboid obstacles inside a workspace box.
///
/// # Examples
///
/// ```
/// use copred_collision::Environment;
/// use copred_geometry::{Aabb, Obb, Vec3};
///
/// let ws = Aabb::new(Vec3::splat(-1.0), Vec3::splat(1.0));
/// let env = Environment::new(ws, vec![Aabb::new(Vec3::ZERO, Vec3::splat(0.5))]);
/// let link = Obb::axis_aligned(Vec3::splat(0.25), Vec3::splat(0.1));
/// assert!(env.obb_collides(&link));
/// ```
#[derive(Debug, Clone)]
pub struct Environment {
    workspace: Aabb,
    obstacles: Vec<Aabb>,
}

impl Environment {
    /// Creates an environment. Obstacles are kept as given (they may poke
    /// out of the workspace; only their overlap matters).
    pub fn new(workspace: Aabb, obstacles: Vec<Aabb>) -> Self {
        Environment {
            workspace,
            obstacles,
        }
    }

    /// An obstacle-free environment.
    pub fn empty(workspace: Aabb) -> Self {
        Environment::new(workspace, Vec::new())
    }

    /// The workspace box.
    pub fn workspace(&self) -> &Aabb {
        &self.workspace
    }

    /// The obstacle cuboids.
    pub fn obstacles(&self) -> &[Aabb] {
        &self.obstacles
    }

    /// Number of obstacles.
    pub fn obstacle_count(&self) -> usize {
        self.obstacles.len()
    }

    /// Adds an obstacle.
    pub fn add_obstacle(&mut self, o: Aabb) {
        self.obstacles.push(o);
    }

    /// One OBB-environment CDQ: does the box hit any obstacle?
    ///
    /// Iterates obstacles with early exit, exactly like the cascaded
    /// early-exit CDU of the baseline accelerator.
    pub fn obb_collides(&self, obb: &Obb) -> bool {
        self.obb_collides_with_cost(obb).0
    }

    /// Like [`Self::obb_collides`] but also returns how many obstacle-pair
    /// tests were evaluated before the query resolved (for cycle modeling).
    pub fn obb_collides_with_cost(&self, obb: &Obb) -> (bool, usize) {
        // Broad phase: the OBB's AABB, then the exact SAT test.
        let bb = obb.aabb();
        for (i, obs) in self.obstacles.iter().enumerate() {
            if bb.intersects(obs) && obb.intersects_aabb(obs) {
                return (true, i + 1);
            }
        }
        (false, self.obstacles.len())
    }

    /// Lane-parallel CDQs: one verdict and cost per live lane of `batch`.
    ///
    /// Bit-identical to running [`Self::obb_collides_with_cost`] on each
    /// lane's OBB: every lane walks the obstacle list in the same order
    /// with the same broad-phase/SAT cascade, so a lane's cost is the index
    /// of its first hit plus one, or the obstacle count on a miss. The
    /// batch form evaluates each obstacle against all unresolved lanes at
    /// once and stops when every lane has hit (the batch-level analogue of
    /// the scalar early exit).
    pub fn obb_collides_batch_with_cost(
        &self,
        batch: &BatchObb,
    ) -> ([bool; OBB_LANES], [usize; OBB_LANES]) {
        let mut hits = [false; OBB_LANES];
        let mut costs = [self.obstacles.len(); OBB_LANES];
        let bbs = batch.aabbs();
        // Batch-level broad phase: one scalar test against the union of
        // the lane AABBs rejects an obstacle for the whole batch. This is
        // conservative (see `BatchAabbs::bound`), and skipping an obstacle
        // is outcome-identical to an all-lanes broad-phase miss — neither
        // touches verdicts or the cost ledger.
        let bound = bbs.bound();
        let mut alive = batch.live_mask();
        for (i, obs) in self.obstacles.iter().enumerate() {
            if !bound.intersects(obs) {
                continue;
            }
            let candidates = alive & bbs.intersects_mask(obs);
            if candidates != 0 {
                // Narrow-phase dispatch: with one or two surviving lanes the
                // scalar cascade (first-separating-axis early exit) resolves
                // them in a fraction of the 15-axis lane-parallel sweep,
                // which has to run until *every* candidate is separated.
                // Denser masks amortize the lane kernel. Both sides are
                // bit-exact against `Obb::intersects_aabb`, so the verdict
                // and cost ledgers cannot depend on the dispatch.
                let hit_now = if candidates.count_ones() <= 2 {
                    let mut m = 0u8;
                    let mut rest = candidates;
                    while rest != 0 {
                        let l = rest.trailing_zeros() as usize;
                        rest &= rest - 1;
                        if batch.get(l).intersects_aabb(obs) {
                            m |= 1 << l;
                        }
                    }
                    m
                } else {
                    batch.intersects_aabb_mask_among(obs, candidates)
                };
                if hit_now != 0 {
                    for (l, cost) in costs.iter_mut().enumerate() {
                        if (hit_now >> l) & 1 == 1 {
                            hits[l] = true;
                            *cost = i + 1;
                        }
                    }
                    alive &= !hit_now;
                    if alive == 0 {
                        break;
                    }
                }
            }
        }
        (hits, costs)
    }

    /// One sphere-environment CDQ (the §VII-1 sphere-set representation).
    pub fn sphere_collides(&self, s: &Sphere) -> bool {
        self.sphere_collides_with_cost(s).0
    }

    /// Sphere CDQ with obstacle-pair test count.
    pub fn sphere_collides_with_cost(&self, s: &Sphere) -> (bool, usize) {
        for (i, obs) in self.obstacles.iter().enumerate() {
            if s.intersects_aabb(obs) {
                return (true, i + 1);
            }
        }
        (false, self.obstacles.len())
    }

    /// Minimum separation distance between an OBB and the obstacle set,
    /// measured between the OBB's center-line sample points and obstacle
    /// surfaces (conservative; 0 when intersecting). Infinity for an empty
    /// environment.
    ///
    /// This is the query class the paper's §VII scope discussion excludes
    /// from collision prediction: a planner that needs the separation (or
    /// penetration) *distance* must evaluate every obstacle — there is no
    /// early exit for a predictor to accelerate, so prediction applies only
    /// to Boolean CDQs like [`Self::obb_collides`].
    pub fn separation_distance_obb(&self, obb: &Obb) -> f64 {
        if self.obstacles.is_empty() {
            return f64::INFINITY;
        }
        if self.obb_collides(obb) {
            return 0.0;
        }
        // Sample the box (center + corners) against every obstacle — note:
        // no early exit is possible, unlike the Boolean query.
        let mut best = f64::INFINITY;
        for p in std::iter::once(obb.center).chain(obb.corners()) {
            for o in &self.obstacles {
                best = best.min(o.distance_squared(p));
            }
        }
        best.sqrt()
    }

    /// Point-in-obstacle query (used by clearance fields and samplers).
    pub fn point_collides(&self, p: Vec3) -> bool {
        self.obstacles.iter().any(|o| o.contains(p))
    }

    /// Conservative distance from `p` to the nearest obstacle surface
    /// (0 when inside an obstacle). Infinity for an empty environment.
    pub fn clearance(&self, p: Vec3) -> f64 {
        self.obstacles
            .iter()
            .map(|o| o.distance_squared(p))
            .fold(f64::INFINITY, f64::min)
            .sqrt()
    }

    /// Voxelizes the obstacles over the workspace at `resolution` voxels per
    /// axis — the environment representation of the Dadu-P substrate
    /// (§VII-2) and the clutter heuristic the paper mentions.
    pub fn voxelize(&self, resolution: u32) -> VoxelGrid {
        let mut grid = VoxelGrid::new(self.workspace, resolution);
        for o in &self.obstacles {
            grid.fill_aabb(o);
        }
        grid
    }

    /// Fraction of workspace volume covered by obstacles, measured on a
    /// voxel grid (clamped union, so overlapping obstacles are not double
    /// counted).
    pub fn clutter_fraction(&self, resolution: u32) -> f64 {
        self.voxelize(resolution).occupancy_fraction()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ws() -> Aabb {
        Aabb::new(Vec3::splat(-1.0), Vec3::splat(1.0))
    }

    fn env_one() -> Environment {
        Environment::new(ws(), vec![Aabb::new(Vec3::ZERO, Vec3::splat(0.5))])
    }

    #[test]
    fn empty_environment_never_collides() {
        let e = Environment::empty(ws());
        let probe = Obb::axis_aligned(Vec3::ZERO, Vec3::splat(0.5));
        assert!(!e.obb_collides(&probe));
        assert!(!e.sphere_collides(&Sphere::new(Vec3::ZERO, 0.5)));
        assert!(!e.point_collides(Vec3::ZERO));
        assert_eq!(e.obb_collides_with_cost(&probe).1, 0);
        assert_eq!(e.clearance(Vec3::ZERO), f64::INFINITY);
    }

    #[test]
    fn obb_query_hits_and_misses() {
        let e = env_one();
        assert!(e.obb_collides(&Obb::axis_aligned(Vec3::splat(0.4), Vec3::splat(0.2))));
        assert!(!e.obb_collides(&Obb::axis_aligned(Vec3::splat(-0.8), Vec3::splat(0.1))));
    }

    #[test]
    fn early_exit_cost_counts_tests() {
        let mut e = Environment::empty(ws());
        // Three obstacles; the probe hits the second one.
        e.add_obstacle(Aabb::new(
            Vec3::new(-1.0, -1.0, -1.0),
            Vec3::new(-0.9, -0.9, -0.9),
        ));
        e.add_obstacle(Aabb::new(Vec3::ZERO, Vec3::splat(0.3)));
        e.add_obstacle(Aabb::new(Vec3::splat(0.8), Vec3::splat(0.9)));
        let probe = Obb::axis_aligned(Vec3::splat(0.1), Vec3::splat(0.05));
        let (hit, cost) = e.obb_collides_with_cost(&probe);
        assert!(hit);
        assert_eq!(cost, 2);
        // A missing probe tests all three.
        let miss = Obb::axis_aligned(Vec3::new(0.6, -0.6, 0.0), Vec3::splat(0.05));
        let (hit, cost) = e.obb_collides_with_cost(&miss);
        assert!(!hit);
        assert_eq!(cost, 3);
    }

    #[test]
    fn batched_query_matches_scalar_verdicts_and_costs() {
        let mut e = Environment::empty(ws());
        e.add_obstacle(Aabb::new(
            Vec3::new(-1.0, -1.0, -1.0),
            Vec3::new(-0.9, -0.9, -0.9),
        ));
        e.add_obstacle(Aabb::new(Vec3::ZERO, Vec3::splat(0.3)));
        e.add_obstacle(Aabb::new(Vec3::splat(0.8), Vec3::splat(0.9)));
        // A mix of hitting, missing, and boundary-touching probes.
        let probes: Vec<Obb> = (0..11)
            .map(|k| {
                let f = k as f64;
                Obb::new(
                    Vec3::new(0.2 * f - 1.0, 0.1 * f - 0.5, (f * 0.7).sin() * 0.5),
                    copred_geometry::Mat3::rot_z(0.3 * f),
                    Vec3::splat(0.05 + 0.02 * f),
                )
            })
            .collect();
        for n in 1..=OBB_LANES {
            let batch = BatchObb::from_obbs(&probes[..n]);
            let (hits, costs) = e.obb_collides_batch_with_cost(&batch);
            for (l, p) in probes[..n].iter().enumerate() {
                let (hit, cost) = e.obb_collides_with_cost(p);
                assert_eq!(hits[l], hit, "verdict lane {l}/{n}");
                assert_eq!(costs[l], cost, "cost lane {l}/{n}");
            }
        }
    }

    #[test]
    fn sphere_query() {
        let e = env_one();
        assert!(e.sphere_collides(&Sphere::new(Vec3::splat(0.6), 0.2)));
        assert!(!e.sphere_collides(&Sphere::new(Vec3::splat(-0.6), 0.05)));
    }

    #[test]
    fn clearance_measures_distance() {
        let e = env_one();
        // Point at (-0.5, 0.25, 0.25): distance to box [0,0.5]^3 is 0.5 in x.
        let c = e.clearance(Vec3::new(-0.5, 0.25, 0.25));
        assert!((c - 0.5).abs() < 1e-12);
        assert_eq!(e.clearance(Vec3::splat(0.25)), 0.0);
    }

    #[test]
    fn voxelization_matches_obstacles() {
        let e = env_one();
        let g = e.voxelize(8);
        assert!(g.occupied_at(Vec3::splat(0.25)));
        assert!(!g.occupied_at(Vec3::splat(-0.75)));
        // Obstacle covers 1/8 of each axis's positive half => 1/64 of volume;
        // conservative fill can only round up.
        let frac = e.clutter_fraction(8);
        assert!(frac >= 0.5f64.powi(3) / 8.0);
        assert!(frac < 0.1);
    }

    #[test]
    fn separation_distance_scope_query() {
        let e = env_one(); // obstacle [0, 0.5]^3
                           // Intersecting box: distance 0.
        let hit = Obb::axis_aligned(Vec3::splat(0.4), Vec3::splat(0.2));
        assert_eq!(e.separation_distance_obb(&hit), 0.0);
        // Separated box: nearest corner at (-0.2,...) -> 0.2 from the face.
        let sep = Obb::axis_aligned(Vec3::splat(-0.4), Vec3::splat(0.2));
        let d = e.separation_distance_obb(&sep);
        assert!((d - 0.2 * 3f64.sqrt()).abs() < 0.15, "distance {d}");
        assert!(d > 0.0);
        // Empty environment: infinite separation.
        let empty = Environment::empty(ws());
        assert_eq!(empty.separation_distance_obb(&sep), f64::INFINITY);
        // Monotone: moving the probe away never decreases the distance.
        let further = Obb::axis_aligned(Vec3::splat(-0.7), Vec3::splat(0.2));
        assert!(e.separation_distance_obb(&further) >= d);
    }

    #[test]
    fn point_queries() {
        let e = env_one();
        assert!(e.point_collides(Vec3::splat(0.1)));
        assert!(!e.point_collides(Vec3::splat(-0.1)));
    }
}
