//! CDQ scheduling policies for motion-environment checks.
//!
//! For a colliding motion the execution order of CDQs determines how much
//! work is done before the collision is found (paper Fig. 1). This module
//! implements the three reference orderings the paper compares against the
//! COORD predictor:
//!
//! * **Naive** — poses checked sequentially from start to goal;
//! * **CSP** — the coarse-step scheduling policy of Shah et al. (ref. \[43\])
//!   (physically distant poses first);
//! * **Oracle** — the limit study: a colliding motion costs exactly one CDQ.

use crate::cdq::CdqInfo;
use crate::environment::Environment;
use copred_kinematics::{csp_order, Config, Robot};

/// A CDQ ordering policy for motion checks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Schedule {
    /// Sequential pose order (Fig. 1a).
    Naive,
    /// Coarse-step policy with the given stride (Fig. 1b). A stride of 1 is
    /// equivalent to [`Schedule::Naive`].
    Csp {
        /// Pose-index stride.
        step: usize,
    },
    /// Perfect prediction (Fig. 1c): one CDQ for a colliding motion, all
    /// CDQs for a collision-free one.
    Oracle,
    /// RACOD-style speculation (Bakhshalipour et al., ref. \[3\], cited by
    /// the paper as prior scheduling work): CDQs execute in naive order but
    /// `depth` of them are in flight at once, so early exit only takes
    /// effect at batch boundaries — speculation hides latency at the price
    /// of redundant queries.
    Speculative {
        /// CDQs speculatively in flight.
        depth: usize,
    },
}

impl Schedule {
    /// The paper's default CSP stride for motion checks.
    pub const DEFAULT_CSP_STEP: usize = 5;

    /// The default CSP schedule.
    pub fn csp_default() -> Self {
        Schedule::Csp {
            step: Self::DEFAULT_CSP_STEP,
        }
    }
}

/// Result of a scheduled motion-environment collision check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MotionCheckOutcome {
    /// Whether the motion collides.
    pub colliding: bool,
    /// Elementary CDQs executed before the check resolved.
    pub cdqs_executed: usize,
    /// Total CDQs the motion decomposes into.
    pub cdqs_total: usize,
    /// Obstacle-pair tests executed inside the executed CDQs.
    pub obstacle_tests: usize,
}

/// Applies `schedule` to a pre-enumerated CDQ list (pose-major order as
/// produced by [`crate::enumerate_motion_cdqs`]) and simulates early-exit
/// execution.
///
/// `n_poses` is the number of sample poses; each pose contributes a
/// contiguous block of CDQs in `cdqs`.
pub fn run_schedule(cdqs: &[CdqInfo], n_poses: usize, schedule: Schedule) -> MotionCheckOutcome {
    let total = cdqs.len();
    let colliding = cdqs.iter().any(|c| c.colliding);
    match schedule {
        Schedule::Oracle => {
            if colliding {
                // One CDQ — the oracle executes a known-colliding query.
                let hit = cdqs.iter().find(|c| c.colliding).expect("colliding CDQ");
                MotionCheckOutcome {
                    colliding: true,
                    cdqs_executed: 1,
                    cdqs_total: total,
                    obstacle_tests: hit.obstacle_tests,
                }
            } else {
                exhaust_all(cdqs)
            }
        }
        Schedule::Naive => execute_order(cdqs, pose_order_indices(cdqs, n_poses, 1)),
        Schedule::Csp { step } => execute_order(cdqs, pose_order_indices(cdqs, n_poses, step)),
        Schedule::Speculative { depth } => {
            execute_batched(cdqs, pose_order_indices(cdqs, n_poses, 1), depth.max(1))
        }
    }
}

/// Early exit only between batches of `depth` in-flight CDQs (speculation).
fn execute_batched(cdqs: &[CdqInfo], order: Vec<usize>, depth: usize) -> MotionCheckOutcome {
    let mut executed = 0;
    let mut tests = 0;
    for batch in order.chunks(depth) {
        let mut hit = false;
        for &i in batch {
            executed += 1;
            tests += cdqs[i].obstacle_tests;
            hit |= cdqs[i].colliding;
        }
        if hit {
            return MotionCheckOutcome {
                colliding: true,
                cdqs_executed: executed,
                cdqs_total: cdqs.len(),
                obstacle_tests: tests,
            };
        }
    }
    MotionCheckOutcome {
        colliding: false,
        cdqs_executed: executed,
        cdqs_total: cdqs.len(),
        obstacle_tests: tests,
    }
}

/// Builds the CDQ visit order for a pose-level stride: poses visited in
/// [`csp_order`], links sequentially within each pose.
fn pose_order_indices(cdqs: &[CdqInfo], n_poses: usize, step: usize) -> Vec<usize> {
    // Start offset of each pose's CDQ block.
    let mut starts = vec![0usize; n_poses + 1];
    for c in cdqs {
        starts[c.pose_idx + 1] += 1;
    }
    for i in 0..n_poses {
        starts[i + 1] += starts[i];
    }
    let mut order = Vec::with_capacity(cdqs.len());
    for p in csp_order(n_poses, step) {
        order.extend(starts[p]..starts[p + 1]);
    }
    order
}

fn execute_order(cdqs: &[CdqInfo], order: Vec<usize>) -> MotionCheckOutcome {
    let mut executed = 0;
    let mut tests = 0;
    for i in order {
        executed += 1;
        tests += cdqs[i].obstacle_tests;
        if cdqs[i].colliding {
            return MotionCheckOutcome {
                colliding: true,
                cdqs_executed: executed,
                cdqs_total: cdqs.len(),
                obstacle_tests: tests,
            };
        }
    }
    MotionCheckOutcome {
        colliding: false,
        cdqs_executed: executed,
        cdqs_total: cdqs.len(),
        obstacle_tests: tests,
    }
}

fn exhaust_all(cdqs: &[CdqInfo]) -> MotionCheckOutcome {
    MotionCheckOutcome {
        colliding: false,
        cdqs_executed: cdqs.len(),
        cdqs_total: cdqs.len(),
        obstacle_tests: cdqs.iter().map(|c| c.obstacle_tests).sum(),
    }
}

/// A stateful CDQ-level collision predictor driving
/// [`run_predicted_schedule`] — the software shape of the paper's CHT
/// lookup/update pair (Algorithm 1), decoupled from any concrete hash or
/// table so replay harnesses and servers can plug in shared, per-session,
/// or mock predictors.
pub trait CdqPredictor {
    /// Predicts whether `cdq` will collide.
    fn predict(&mut self, cdq: &CdqInfo) -> bool;
    /// Records an executed CDQ's ground-truth outcome.
    fn observe(&mut self, cdq: &CdqInfo, colliding: bool);
}

/// Algorithm 1 over a pre-enumerated CDQ list: the predictor-ordered
/// schedule that `copred-service` dispatches batches through.
///
/// Poses are visited in the CSP order with stride `csp_step` (stride 1 is
/// the naive order). Each CDQ is first looked up in the predictor:
/// predicted-colliding CDQs execute immediately (early exit on a hit), the
/// rest are queued and drained in arrival order only if no predicted CDQ
/// hits. Every executed CDQ feeds its outcome back via
/// [`CdqPredictor::observe`], so a cold predictor degrades exactly to CSP.
///
/// # Panics
///
/// Panics when a CDQ's `pose_idx` is not below `n_poses` (malformed input;
/// traces validated by `copred-trace`'s parser never are).
pub fn run_predicted_schedule(
    cdqs: &[CdqInfo],
    n_poses: usize,
    csp_step: usize,
    predictor: &mut dyn CdqPredictor,
) -> MotionCheckOutcome {
    let total = cdqs.len();
    let mut executed = 0usize;
    let mut tests = 0usize;
    let mut queue: Vec<usize> = Vec::new();
    let order = pose_order_indices(cdqs, n_poses, csp_step.max(1));
    for i in order {
        let cdq = &cdqs[i];
        if predictor.predict(cdq) {
            executed += 1;
            tests += cdq.obstacle_tests;
            predictor.observe(cdq, cdq.colliding);
            if cdq.colliding {
                return MotionCheckOutcome {
                    colliding: true,
                    cdqs_executed: executed,
                    cdqs_total: total,
                    obstacle_tests: tests,
                };
            }
        } else {
            queue.push(i);
        }
    }
    for i in queue {
        let cdq = &cdqs[i];
        executed += 1;
        tests += cdq.obstacle_tests;
        predictor.observe(cdq, cdq.colliding);
        if cdq.colliding {
            return MotionCheckOutcome {
                colliding: true,
                cdqs_executed: executed,
                cdqs_total: total,
                obstacle_tests: tests,
            };
        }
    }
    MotionCheckOutcome {
        colliding: false,
        cdqs_executed: executed,
        cdqs_total: total,
        obstacle_tests: tests,
    }
}

/// Convenience: discretize, enumerate, and run one scheduled motion check.
pub fn check_motion_scheduled(
    robot: &Robot,
    env: &Environment,
    poses: &[Config],
    schedule: Schedule,
) -> MotionCheckOutcome {
    let cdqs = crate::cdq::enumerate_motion_cdqs(robot, env, poses);
    run_schedule(&cdqs, poses.len(), schedule)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cdq::enumerate_motion_cdqs;
    use copred_geometry::{Aabb, Vec3};
    use copred_kinematics::{presets, Motion};

    /// Planar robot crossing a wall in the middle of the workspace.
    fn crossing_setup() -> (Robot, Environment, Vec<Config>) {
        let robot: Robot = presets::planar_2d().into();
        let env = Environment::new(
            robot.workspace(),
            vec![Aabb::new(
                Vec3::new(-0.05, -1.0, -0.1),
                Vec3::new(0.05, 1.0, 0.1),
            )],
        );
        let motion = Motion::new(Config::new(vec![-0.8, 0.0]), Config::new(vec![0.8, 0.0]));
        let poses = motion.discretize(17);
        (robot, env, poses)
    }

    #[test]
    fn oracle_needs_one_cdq_for_colliding_motion() {
        let (robot, env, poses) = crossing_setup();
        let out = check_motion_scheduled(&robot, &env, &poses, Schedule::Oracle);
        assert!(out.colliding);
        assert_eq!(out.cdqs_executed, 1);
        assert_eq!(out.cdqs_total, 17);
    }

    #[test]
    fn naive_walks_to_the_wall() {
        let (robot, env, poses) = crossing_setup();
        let out = check_motion_scheduled(&robot, &env, &poses, Schedule::Naive);
        assert!(out.colliding);
        // The wall sits mid-motion: the naive order executes roughly half the
        // poses before hitting it.
        assert!(out.cdqs_executed >= 7, "executed {}", out.cdqs_executed);
    }

    #[test]
    fn csp_beats_naive_on_wide_wall() {
        // A wide block covering the second half of the motion: naive walks
        // pose by pose to reach it, while the coarse stride lands inside it
        // within its first pass (Fig. 1b's advantage).
        let robot: Robot = presets::planar_2d().into();
        let env = Environment::new(
            robot.workspace(),
            vec![Aabb::new(
                Vec3::new(0.2, -1.0, -0.1),
                Vec3::new(0.6, 1.0, 0.1),
            )],
        );
        let poses =
            Motion::new(Config::new(vec![-0.8, 0.0]), Config::new(vec![0.8, 0.0])).discretize(17);
        let naive = check_motion_scheduled(&robot, &env, &poses, Schedule::Naive);
        let csp = check_motion_scheduled(&robot, &env, &poses, Schedule::csp_default());
        assert!(csp.colliding && naive.colliding);
        assert!(
            csp.cdqs_executed < naive.cdqs_executed,
            "CSP {} vs naive {}",
            csp.cdqs_executed,
            naive.cdqs_executed
        );
    }

    #[test]
    fn free_motion_costs_all_cdqs_for_every_schedule() {
        let robot: Robot = presets::planar_2d().into();
        let env = Environment::empty(robot.workspace());
        let poses =
            Motion::new(Config::new(vec![-0.8, 0.0]), Config::new(vec![0.8, 0.0])).discretize(9);
        for s in [Schedule::Naive, Schedule::csp_default(), Schedule::Oracle] {
            let out = check_motion_scheduled(&robot, &env, &poses, s);
            assert!(!out.colliding);
            assert_eq!(out.cdqs_executed, 9, "{s:?}");
            assert_eq!(out.cdqs_total, 9);
        }
    }

    #[test]
    fn speculation_trades_redundancy_for_latency() {
        // Speculation never executes fewer CDQs than naive (redundant
        // in-flight work), and depth 1 is exactly naive.
        let (robot, env, poses) = crossing_setup();
        let naive = check_motion_scheduled(&robot, &env, &poses, Schedule::Naive);
        let spec1 =
            check_motion_scheduled(&robot, &env, &poses, Schedule::Speculative { depth: 1 });
        assert_eq!(naive, spec1);
        for depth in [2usize, 4, 8] {
            let spec =
                check_motion_scheduled(&robot, &env, &poses, Schedule::Speculative { depth });
            assert_eq!(spec.colliding, naive.colliding);
            assert!(
                spec.cdqs_executed >= naive.cdqs_executed,
                "depth {depth}: {} < naive {}",
                spec.cdqs_executed,
                naive.cdqs_executed
            );
            // Redundancy is bounded by one batch.
            assert!(spec.cdqs_executed < naive.cdqs_executed + depth);
        }
    }

    #[test]
    fn csp_step_one_equals_naive() {
        let (robot, env, poses) = crossing_setup();
        let naive = check_motion_scheduled(&robot, &env, &poses, Schedule::Naive);
        let csp1 = check_motion_scheduled(&robot, &env, &poses, Schedule::Csp { step: 1 });
        assert_eq!(naive, csp1);
    }

    #[test]
    fn csp_step_zero_equals_naive() {
        // `step: 0` is a degenerate stride a client can send over the wire;
        // `csp_order` treats any step <= 1 as the identity order, so the
        // outcome must be exactly naive rather than a panic or empty order.
        let (robot, env, poses) = crossing_setup();
        let cdqs = enumerate_motion_cdqs(&robot, &env, &poses);
        let naive = run_schedule(&cdqs, poses.len(), Schedule::Naive);
        let csp0 = run_schedule(&cdqs, poses.len(), Schedule::Csp { step: 0 });
        assert_eq!(naive, csp0);
        let mut cold = FixedPredictor {
            hot: vec![],
            observed: 0,
        };
        let predicted0 = run_predicted_schedule(&cdqs, poses.len(), 0, &mut cold);
        assert_eq!(predicted0, naive, "cold predictor with step 0 is naive");
    }

    #[test]
    fn raw_and_clamped_stride_zero_produce_the_same_order() {
        // `run_schedule` passes `Csp { step }` through raw while
        // `run_predicted_schedule` clamps with `csp_step.max(1)`. The two
        // agree only because `csp_order` already returns the identity for
        // any step <= 1 — pin that at the order level (not just outcome
        // level) so a future `csp_order` change cannot silently split the
        // two entry points. Non-bug finding recorded in EXPERIMENTS.md.
        for counts in [vec![1usize, 2, 3], vec![4, 0, 1, 2], vec![2; 9]] {
            let cdqs: Vec<CdqInfo> = counts
                .iter()
                .enumerate()
                .flat_map(|(p, &k)| (0..k).map(move |_| synth_cdq(p)))
                .collect();
            let raw0 = pose_order_indices(&cdqs, counts.len(), 0);
            let clamped = pose_order_indices(&cdqs, counts.len(), 1);
            assert_eq!(raw0, clamped, "counts={counts:?}");
            assert_eq!(
                raw0,
                (0..cdqs.len()).collect::<Vec<_>>(),
                "stride 0 must be the identity order"
            );
        }
    }

    #[test]
    fn single_pose_motion_works_under_every_schedule() {
        let robot: Robot = presets::planar_2d().into();
        let env = Environment::new(
            robot.workspace(),
            vec![Aabb::new(
                Vec3::new(-0.05, -1.0, -0.1),
                Vec3::new(0.05, 1.0, 0.1),
            )],
        );
        for start in [-0.8f64, 0.0] {
            let poses = Motion::new(Config::new(vec![start, 0.0]), Config::new(vec![start, 0.0]))
                .discretize(1);
            assert_eq!(poses.len(), 1);
            let cdqs = enumerate_motion_cdqs(&robot, &env, &poses);
            let truth = cdqs.iter().any(|c| c.colliding);
            for s in [
                Schedule::Naive,
                Schedule::Csp { step: 0 },
                Schedule::csp_default(),
                Schedule::Oracle,
                Schedule::Speculative { depth: 4 },
            ] {
                let out = run_schedule(&cdqs, 1, s);
                assert_eq!(out.colliding, truth, "{s:?} start={start}");
                assert!(out.cdqs_executed <= out.cdqs_total.max(1), "{s:?}");
            }
            let mut cold = FixedPredictor {
                hot: vec![],
                observed: 0,
            };
            let out = run_predicted_schedule(&cdqs, 1, 5, &mut cold);
            assert_eq!(out.colliding, truth);
            assert_eq!(cold.observed, out.cdqs_executed);
        }
    }

    /// Synthetic free CDQ for permutation tests: `pose_idx` is all the
    /// ordering logic looks at.
    fn synth_cdq(pose_idx: usize) -> CdqInfo {
        CdqInfo {
            pose_idx,
            link_idx: 0,
            center: Vec3::ZERO,
            obb: copred_geometry::Obb::axis_aligned(Vec3::ZERO, Vec3::ZERO),
            colliding: false,
            obstacle_tests: 1,
        }
    }

    #[test]
    fn pose_order_is_a_permutation_for_uneven_blocks() {
        // Property: for any per-pose CDQ multiplicity (including poses with
        // zero CDQs) and any stride, `pose_order_indices` visits every CDQ
        // index exactly once. Checked exhaustively over a grid of shapes —
        // a missed or doubled index is exactly the bug class that would
        // silently skip or re-execute a CDQ.
        for counts in [
            vec![1usize],
            vec![3],
            vec![1, 1, 1, 1, 1],
            vec![2, 0, 3, 1, 0, 4],
            vec![0, 0, 2],
            vec![5, 1, 1, 1, 1, 1, 1, 2],
        ] {
            let cdqs: Vec<CdqInfo> = counts
                .iter()
                .enumerate()
                .flat_map(|(p, &k)| (0..k).map(move |_| synth_cdq(p)))
                .collect();
            for step in [0usize, 1, 2, 3, 5, 7, 100] {
                // Raw step, no clamp: `run_schedule` forwards client strides
                // verbatim, so the raw 0 must behave (not panic, not skip).
                let mut order = pose_order_indices(&cdqs, counts.len(), step);
                assert_eq!(order.len(), cdqs.len(), "counts={counts:?} step={step}");
                order.sort_unstable();
                assert_eq!(
                    order,
                    (0..cdqs.len()).collect::<Vec<_>>(),
                    "counts={counts:?} step={step}"
                );
            }
        }
    }

    #[test]
    fn run_schedule_consistent_with_ground_truth() {
        let (robot, env, poses) = crossing_setup();
        let cdqs = enumerate_motion_cdqs(&robot, &env, &poses);
        for s in [Schedule::Naive, Schedule::Csp { step: 3 }, Schedule::Oracle] {
            let out = run_schedule(&cdqs, poses.len(), s);
            assert_eq!(out.colliding, cdqs.iter().any(|c| c.colliding), "{s:?}");
            assert!(out.cdqs_executed <= out.cdqs_total);
        }
    }

    /// A mock predictor with a fixed set of predicted-colliding CDQ indices.
    struct FixedPredictor {
        hot: Vec<usize>,
        observed: usize,
    }

    impl CdqPredictor for FixedPredictor {
        fn predict(&mut self, cdq: &CdqInfo) -> bool {
            self.hot.contains(&cdq.pose_idx)
        }
        fn observe(&mut self, _cdq: &CdqInfo, _colliding: bool) {
            self.observed += 1;
        }
    }

    #[test]
    fn perfect_predictor_matches_oracle() {
        let (robot, env, poses) = crossing_setup();
        let cdqs = enumerate_motion_cdqs(&robot, &env, &poses);
        let hot: Vec<usize> = cdqs
            .iter()
            .filter(|c| c.colliding)
            .map(|c| c.pose_idx)
            .collect();
        let mut pred = FixedPredictor { hot, observed: 0 };
        let out = run_predicted_schedule(&cdqs, poses.len(), 1, &mut pred);
        assert!(out.colliding);
        assert_eq!(
            out.cdqs_executed, 1,
            "a perfect prediction is checked first"
        );
        assert_eq!(pred.observed, out.cdqs_executed);
    }

    #[test]
    fn cold_predictor_degrades_to_csp() {
        let (robot, env, poses) = crossing_setup();
        let cdqs = enumerate_motion_cdqs(&robot, &env, &poses);
        let mut cold = FixedPredictor {
            hot: vec![],
            observed: 0,
        };
        let step = Schedule::DEFAULT_CSP_STEP;
        let predicted = run_predicted_schedule(&cdqs, poses.len(), step, &mut cold);
        let csp = run_schedule(&cdqs, poses.len(), Schedule::Csp { step });
        assert_eq!(
            predicted, csp,
            "never-predicting table must equal plain CSP"
        );
    }

    #[test]
    fn wrong_predictions_still_find_the_collision() {
        let (robot, env, poses) = crossing_setup();
        let cdqs = enumerate_motion_cdqs(&robot, &env, &poses);
        // Predict only known-free poses: everything predicted executes
        // first without a hit, then the queue drains to the true collision.
        let free: Vec<usize> = cdqs
            .iter()
            .filter(|c| !c.colliding)
            .map(|c| c.pose_idx)
            .take(3)
            .collect();
        let mut pred = FixedPredictor {
            hot: free,
            observed: 0,
        };
        let out = run_predicted_schedule(&cdqs, poses.len(), 1, &mut pred);
        assert!(out.colliding);
        assert!(out.cdqs_executed <= out.cdqs_total);
        assert_eq!(pred.observed, out.cdqs_executed);
    }

    #[test]
    fn free_motion_executes_everything_once() {
        let robot: Robot = presets::planar_2d().into();
        let env = Environment::empty(robot.workspace());
        let poses =
            Motion::new(Config::new(vec![-0.8, 0.0]), Config::new(vec![0.8, 0.0])).discretize(9);
        let cdqs = enumerate_motion_cdqs(&robot, &env, &poses);
        let mut pred = FixedPredictor {
            hot: vec![0, 4],
            observed: 0,
        };
        let out = run_predicted_schedule(&cdqs, poses.len(), 3, &mut pred);
        assert!(!out.colliding);
        assert_eq!(out.cdqs_executed, out.cdqs_total);
        assert_eq!(pred.observed, out.cdqs_total);
    }

    #[test]
    fn arm_motion_through_obstacle() {
        let robot: Robot = presets::kuka_iiwa().into();
        let env = Environment::new(
            robot.workspace(),
            vec![Aabb::from_center_half_extents(
                Vec3::new(0.5, 0.0, 0.5),
                Vec3::splat(0.25),
            )],
        );
        // A sweep of the base joint passes the arm through the obstacle.
        let motion = Motion::new(
            Config::new(vec![-1.2, 0.9, 0.0, -1.2, 0.0, 0.0, 0.0]),
            Config::new(vec![1.2, 0.9, 0.0, -1.2, 0.0, 0.0, 0.0]),
        );
        let poses = motion.discretize(20);
        let oracle = check_motion_scheduled(&robot, &env, &poses, Schedule::Oracle);
        let naive = check_motion_scheduled(&robot, &env, &poses, Schedule::Naive);
        if oracle.colliding {
            assert_eq!(oracle.cdqs_executed, 1);
            assert!(naive.cdqs_executed > 1);
        } else {
            assert_eq!(naive.cdqs_executed, naive.cdqs_total);
        }
    }
}
