//! Property-based tests for the collision substrate.

use copred_collision::{
    check_motion_scheduled, check_pose, enumerate_motion_cdqs, enumerate_motion_cdqs_scalar,
    run_schedule, Environment, MotionCheckOutcome, Schedule,
};
use copred_geometry::{Aabb, Vec3};
use copred_kinematics::{presets, Config, Motion, Robot};
use proptest::prelude::*;

fn planar_env(obstacles: Vec<Aabb>) -> (Robot, Environment) {
    let robot: Robot = presets::planar_2d().into();
    let env = Environment::new(robot.workspace(), obstacles);
    (robot, env)
}

fn obstacles() -> impl Strategy<Value = Vec<Aabb>> {
    prop::collection::vec(
        (-0.9..0.7f64, -0.9..0.7f64, 0.02..0.3f64, 0.02..0.3f64).prop_map(|(x, y, w, h)| {
            Aabb::new(Vec3::new(x, y, -0.1), Vec3::new(x + w, y + h, 0.1))
        }),
        0..6,
    )
}

fn config2() -> impl Strategy<Value = Config> {
    (-0.95..0.95f64, -0.95..0.95f64).prop_map(|(x, y)| Config::new(vec![x, y]))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn schedules_agree_on_outcome(obs in obstacles(), from in config2(), to in config2(), n in 2usize..25) {
        let (robot, env) = planar_env(obs);
        let poses = Motion::new(from, to).discretize(n);
        let mut outcomes = Vec::new();
        for s in [Schedule::Naive, Schedule::Csp { step: 3 }, Schedule::csp_default(), Schedule::Oracle] {
            let out = check_motion_scheduled(&robot, &env, &poses, s);
            prop_assert!(out.cdqs_executed <= out.cdqs_total);
            outcomes.push(out.colliding);
        }
        prop_assert!(outcomes.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn oracle_is_lower_bound(obs in obstacles(), from in config2(), to in config2(), n in 2usize..25, step in 1usize..8) {
        let (robot, env) = planar_env(obs);
        let poses = Motion::new(from, to).discretize(n);
        let cdqs = enumerate_motion_cdqs(&robot, &env, &poses);
        let oracle = run_schedule(&cdqs, n, Schedule::Oracle);
        let other = run_schedule(&cdqs, n, Schedule::Csp { step });
        prop_assert!(oracle.cdqs_executed <= other.cdqs_executed);
    }

    #[test]
    fn free_motions_cost_everything(from in config2(), to in config2(), n in 2usize..25) {
        let (robot, env) = planar_env(vec![]);
        let poses = Motion::new(from, to).discretize(n);
        for s in [Schedule::Naive, Schedule::csp_default(), Schedule::Oracle] {
            let out = check_motion_scheduled(&robot, &env, &poses, s);
            prop_assert!(!out.colliding);
            prop_assert_eq!(out.cdqs_executed, out.cdqs_total);
        }
    }

    #[test]
    fn pose_check_agrees_with_enumeration(obs in obstacles(), q in config2()) {
        let (robot, env) = planar_env(obs);
        let (hit, executed) = check_pose(&robot, &env, &q);
        let cdqs = enumerate_motion_cdqs(&robot, &env, std::slice::from_ref(&q));
        prop_assert_eq!(hit, cdqs.iter().any(|c| c.colliding));
        prop_assert!(executed <= cdqs.len());
    }

    #[test]
    fn obstacle_tests_bounded_by_obstacle_count(obs in obstacles(), q in config2()) {
        let (robot, env) = planar_env(obs);
        for cdq in enumerate_motion_cdqs(&robot, &env, std::slice::from_ref(&q)) {
            prop_assert!(cdq.obstacle_tests <= env.obstacle_count());
            if !cdq.colliding {
                // A miss must have scanned every obstacle.
                prop_assert_eq!(cdq.obstacle_tests, env.obstacle_count());
            } else {
                prop_assert!(cdq.obstacle_tests >= 1);
            }
        }
    }

    #[test]
    fn adding_obstacles_never_unblocks(obs in obstacles(), extra in obstacles(), from in config2(), to in config2()) {
        // Monotonicity: a motion colliding in a sub-environment still
        // collides when more obstacles are added.
        let (robot, env_small) = planar_env(obs.clone());
        let mut all = obs;
        all.extend(extra);
        let (_, env_big) = planar_env(all);
        let poses = Motion::new(from, to).discretize(9);
        let small: MotionCheckOutcome =
            check_motion_scheduled(&robot, &env_small, &poses, Schedule::Naive);
        let big = check_motion_scheduled(&robot, &env_big, &poses, Schedule::Naive);
        if small.colliding {
            prop_assert!(big.colliding);
        }
    }

    #[test]
    fn batched_enumeration_matches_scalar_oracle(
        obs in obstacles(),
        from in config2(),
        to in config2(),
        n in 1usize..20,
    ) {
        // The lane-batched CDQ enumeration must reproduce the scalar
        // reference exactly: same verdicts, same obstacle-test costs, same
        // order, for every pose count (exercising every tail lane width).
        let (robot, env) = planar_env(obs);
        let poses = Motion::new(from, to).discretize(n);
        prop_assert_eq!(
            enumerate_motion_cdqs(&robot, &env, &poses),
            enumerate_motion_cdqs_scalar(&robot, &env, &poses)
        );
    }

    #[test]
    fn clearance_zero_iff_point_collides(obs in obstacles(), q in config2()) {
        let (_, env) = planar_env(obs);
        let p = Vec3::new(q[0], q[1], 0.0);
        if env.point_collides(p) {
            prop_assert_eq!(env.clearance(p), 0.0);
        } else if env.obstacle_count() > 0 {
            prop_assert!(env.clearance(p) > 0.0);
        }
    }
}
