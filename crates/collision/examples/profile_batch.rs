//! Cost breakdown for the batched CDQ path vs the scalar reference.
//!
//! Run with `cargo run --release -p copred-collision --example profile_batch`.
//! Prints ns/CDQ for each stage of both paths (broad-phase cascade,
//! SoA transpose, lane-parallel AABBs, masked SAT) plus the raw 15-axis
//! SAT kernel with no broad phase. These are the numbers behind the
//! scalar-vs-batched table in EXPERIMENTS.md; the workload is the same
//! planar-robot link corpus the `swexec_batch` perfwatch suite uses.
//! Timings on a 1-vCPU host are noisy — read trends, not digits.

use copred_collision::Environment;
use copred_geometry::{Aabb, BatchObb, Obb, Vec3, OBB_LANES};
use copred_kinematics::{presets, Config, Motion, Robot};
use std::hint::black_box;
use std::time::Instant;

fn main() {
    let robot: Robot = presets::planar_2d().into();
    let env = Environment::new(
        robot.workspace(),
        vec![
            Aabb::new(Vec3::new(0.1, -1.0, -0.1), Vec3::new(0.5, 0.6, 0.1)),
            Aabb::new(Vec3::new(-0.7, -0.3, -0.1), Vec3::new(-0.4, 0.0, 0.1)),
            Aabb::new(Vec3::new(-0.2, 0.55, -0.1), Vec3::new(0.2, 0.9, 0.1)),
            Aabb::new(Vec3::new(-1.0, -0.9, -0.1), Vec3::new(-0.5, -0.6, 0.1)),
            Aabb::new(Vec3::new(0.6, -0.6, -0.1), Vec3::new(0.95, -0.2, 0.1)),
        ],
    );
    let mut state = 42u64;
    let mut rand01 = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    let mut sample = |robot: &Robot| {
        Config::new(
            (0..robot.dofs())
                .map(|_| (rand01() * 2.0 - 1.0) * std::f64::consts::PI)
                .collect(),
        )
    };
    let mut obbs: Vec<Obb> = Vec::new();
    for _ in 0..60 {
        let poses = Motion::new(sample(&robot), sample(&robot)).discretize(24);
        for q in &poses {
            for link in robot.fk(q).links {
                obbs.push(link.obb);
            }
        }
    }
    println!("{} obbs, {} obstacles", obbs.len(), env.obstacle_count());
    let passes = 200;

    let t = Instant::now();
    for _ in 0..passes {
        for o in &obbs {
            black_box(env.obb_collides_with_cost(black_box(o)));
        }
    }
    let scalar = t.elapsed().as_secs_f64();
    println!(
        "scalar full     {:>8.1} ns/cdq",
        scalar * 1e9 / (passes * obbs.len()) as f64
    );

    let t = Instant::now();
    for _ in 0..passes {
        for o in &obbs {
            black_box(black_box(o).aabb());
        }
    }
    let sc_aabb = t.elapsed().as_secs_f64();
    println!(
        "scalar aabb()   {:>8.1} ns/cdq",
        sc_aabb * 1e9 / (passes * obbs.len()) as f64
    );

    let t = Instant::now();
    for _ in 0..passes {
        for chunk in obbs.chunks(OBB_LANES) {
            black_box(BatchObb::from_obbs(black_box(chunk)));
        }
    }
    let transpose = t.elapsed().as_secs_f64();
    println!(
        "from_obbs only  {:>8.1} ns/cdq",
        transpose * 1e9 / (passes * obbs.len()) as f64
    );

    let batches: Vec<BatchObb> = obbs.chunks(OBB_LANES).map(BatchObb::from_obbs).collect();

    let t = Instant::now();
    for _ in 0..passes {
        for b in &batches {
            black_box(black_box(b).aabbs());
        }
    }
    let aabbs = t.elapsed().as_secs_f64();
    println!(
        "aabbs() only    {:>8.1} ns/cdq",
        aabbs * 1e9 / (passes * obbs.len()) as f64
    );

    let t = Instant::now();
    for _ in 0..passes {
        for b in &batches {
            black_box(env.obb_collides_batch_with_cost(black_box(b)));
        }
    }
    let query = t.elapsed().as_secs_f64();
    println!(
        "batch query     {:>8.1} ns/cdq (prebuilt batches)",
        query * 1e9 / (passes * obbs.len()) as f64
    );

    let t = Instant::now();
    for _ in 0..passes {
        for chunk in obbs.chunks(OBB_LANES) {
            let b = BatchObb::from_obbs(chunk);
            black_box(env.obb_collides_batch_with_cost(black_box(&b)));
        }
    }
    let full = t.elapsed().as_secs_f64();
    println!(
        "batch full      {:>8.1} ns/cdq (transpose + query)",
        full * 1e9 / (passes * obbs.len()) as f64
    );

    // Raw 15-axis SAT kernel, one fixed rotated partner.
    let partner = Obb::new(
        Vec3::new(0.1, 0.1, 0.0),
        copred_geometry::Mat3::rot_z(0.3) * copred_geometry::Mat3::rot_x(0.2),
        Vec3::new(0.4, 0.3, 0.2),
    );
    let t = Instant::now();
    let mut hits = 0usize;
    for _ in 0..passes {
        for o in &obbs {
            hits += usize::from(black_box(o).intersects(black_box(&partner)));
        }
    }
    let sat_s = t.elapsed().as_secs_f64();
    println!(
        "scalar SAT      {:>8.1} ns/cdq ({} hits)",
        sat_s * 1e9 / (passes * obbs.len()) as f64,
        hits / passes
    );
    let t = Instant::now();
    let mut bhits = 0u32;
    for _ in 0..passes {
        for b in &batches {
            bhits += black_box(b)
                .intersects_mask(black_box(&partner))
                .count_ones();
        }
    }
    let bsat_s = t.elapsed().as_secs_f64();
    println!(
        "batch SAT       {:>8.1} ns/cdq ({} hits, prebuilt) speedup {:.2}x",
        bsat_s * 1e9 / (passes * obbs.len()) as f64,
        bhits as usize / passes,
        sat_s / bsat_s
    );
    let t = Instant::now();
    for _ in 0..passes {
        for chunk in obbs.chunks(OBB_LANES) {
            let b = BatchObb::from_obbs(chunk);
            black_box(b.intersects_mask(black_box(&partner)));
        }
    }
    let bsat2_s = t.elapsed().as_secs_f64();
    println!(
        "batch SAT+xpose {:>8.1} ns/cdq speedup {:.2}x",
        bsat2_s * 1e9 / (passes * obbs.len()) as f64,
        sat_s / bsat2_s
    );
}
