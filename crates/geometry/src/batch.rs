//! Structure-of-arrays OBB batches: the lane-parallel collision hot path.
//!
//! The scalar pipeline tests one link OBB against one obstacle at a time,
//! walking array-of-structs [`Obb`] values. At quick scale that per-CDQ SAT
//! is the throughput ceiling (see ROADMAP). `BatchObb` transposes up to
//! [`OBB_LANES`] boxes into per-field lane arrays so the 15-axis SAT runs
//! the same f64 operation across all lanes at once, on stable Rust with no
//! dependencies (`core::simd` is nightly-only): every kernel is straight-
//! line code over whole-lane-array primitives that the backend maps onto
//! packed vector ops (see the lane-discipline note on the primitives).
//!
//! Every batched kernel in this module carries a bit-exactness contract
//! against its scalar reference in [`crate::obb`]: same operations, same
//! evaluation order, same [`BOUNDARY_EPS`]. Lane verdicts are returned as
//! `u8` bitmasks (bit `l` = lane `l`), which downstream gang-probe code
//! (SWAR CHT lookups) consumes directly.

use crate::aabb::Aabb;
use crate::obb::{Obb, BOUNDARY_EPS};
use crate::vec3::Vec3;

/// Number of lanes in a [`BatchObb`].
///
/// Eight f64 lanes fill two AVX2 registers (or one AVX-512 register) and
/// keep every lane mask within one byte, which is what the SWAR CHT
/// gang-probe packs its counters into.
pub const OBB_LANES: usize = 8;

/// One whole batch-worth of lane values.
type Lanes = [f64; OBB_LANES];

/// A batch of up to [`OBB_LANES`] OBBs in structure-of-arrays layout.
///
/// Lanes `len..OBB_LANES` are padded with copies of the last real box so
/// every lane computes on finite data; callers mask results with
/// [`BatchObb::live_mask`].
///
/// # Bit-exactness contract
///
/// For every live lane `l`:
///
/// * `batch.intersects_mask(&b) >> l & 1 == u8::from(obbs[l].intersects(&b))`
/// * `batch.intersects_aabb_mask(&a) >> l & 1 == u8::from(obbs[l].intersects_aabb(&a))`
/// * `batch.aabbs()` lane `l` equals `obbs[l].aabb()` component-for-component
///
/// The first and third are bit-identical computations. The second
/// specializes the SAT for an axis-aligned partner (the scalar path routes
/// through [`Obb::from_aabb`], whose identity rotation makes each
/// `a.rot.col(i).dot(e_j)` collapse to `rot[i][j]` exactly — the only
/// representable difference is the sign of a zero, and every use of those
/// values is either `|r|` or feeds an `|·|` comparison, so no verdict bit
/// can differ).
#[derive(Debug, Clone)]
pub struct BatchObb {
    /// Lane centers: `center[axis][lane]`.
    pub center: [Lanes; 3],
    /// Lane rotations: `rot[i][j][lane]` is component `j` of local axis `i`,
    /// i.e. `Mat3::col(i)[j]` of the lane's rotation.
    pub rot: [[Lanes; 3]; 3],
    /// Lane half-extents: `half[axis][lane]`.
    pub half: [Lanes; 3],
    /// Number of live lanes (`1..=OBB_LANES`).
    pub len: usize,
}

/// Lane-parallel AABBs (the broad-phase companion of [`BatchObb`]).
#[derive(Debug, Clone)]
pub struct BatchAabbs {
    /// Minimum corners: `min[axis][lane]`.
    pub min: [Lanes; 3],
    /// Maximum corners: `max[axis][lane]`.
    pub max: [Lanes; 3],
}

impl BatchObb {
    /// Transposes a slice of OBBs into SoA lanes.
    ///
    /// # Panics
    ///
    /// Panics when `obbs` is empty or holds more than [`OBB_LANES`] boxes.
    pub fn from_obbs(obbs: &[Obb]) -> Self {
        assert!(
            !obbs.is_empty() && obbs.len() <= OBB_LANES,
            "BatchObb wants 1..={OBB_LANES} boxes, got {}",
            obbs.len()
        );
        let mut batch = BatchObb {
            center: [[0.0; OBB_LANES]; 3],
            rot: [[[0.0; OBB_LANES]; 3]; 3],
            half: [[0.0; OBB_LANES]; 3],
            len: obbs.len(),
        };
        // Box-major fill: walk each source OBB once (one cache line and a
        // half, contiguous) and scatter its 15 fields to lane slot `l`.
        // Dead lanes are then padded with copies of the last real box:
        // finite data, no NaNs, and no per-element index clamping in the
        // main loop.
        for (l, o) in obbs.iter().enumerate() {
            for ax in 0..3 {
                batch.center[ax][l] = o.center[ax];
                batch.half[ax][l] = o.half_extents[ax];
                let col = o.rot.col(ax);
                batch.rot[ax][0][l] = col[0];
                batch.rot[ax][1][l] = col[1];
                batch.rot[ax][2][l] = col[2];
            }
        }
        let last = obbs.len() - 1;
        for l in obbs.len()..OBB_LANES {
            for ax in 0..3 {
                batch.center[ax][l] = batch.center[ax][last];
                batch.half[ax][l] = batch.half[ax][last];
                batch.rot[ax][0][l] = batch.rot[ax][0][last];
                batch.rot[ax][1][l] = batch.rot[ax][1][last];
                batch.rot[ax][2][l] = batch.rot[ax][2][last];
            }
        }
        batch
    }

    /// Bitmask with one bit set per live lane.
    #[inline]
    pub fn live_mask(&self) -> u8 {
        if self.len >= 8 {
            0xFF
        } else {
            (1u8 << self.len) - 1
        }
    }

    /// Reconstructs lane `l` as a scalar [`Obb`] (diffing and tests).
    ///
    /// # Panics
    ///
    /// Panics when `l >= len`.
    pub fn get(&self, l: usize) -> Obb {
        assert!(l < self.len, "lane {l} out of {} live lanes", self.len);
        let col = |i: usize| Vec3::new(self.rot[i][0][l], self.rot[i][1][l], self.rot[i][2][l]);
        Obb::new(
            Vec3::new(self.center[0][l], self.center[1][l], self.center[2][l]),
            crate::mat3::Mat3::from_cols(col(0), col(1), col(2)),
            Vec3::new(self.half[0][l], self.half[1][l], self.half[2][l]),
        )
    }

    /// Lane-parallel [`Obb::aabb`]: the smallest world AABB of every lane.
    ///
    /// Bit-identical to the scalar method — the `|R|·h` accumulation runs
    /// in the same axis order.
    #[inline]
    pub fn aabbs(&self) -> BatchAabbs {
        let mut out = BatchAabbs {
            min: [[0.0; OBB_LANES]; 3],
            max: [[0.0; OBB_LANES]; 3],
        };
        // World axis c, hand-unrolled (lane discipline: no outer loops).
        let ext = |c: usize| {
            add8(
                add8(
                    mul8(abs8(self.rot[0][c]), self.half[0]),
                    mul8(abs8(self.rot[1][c]), self.half[1]),
                ),
                mul8(abs8(self.rot[2][c]), self.half[2]),
            )
        };
        let (e0, e1, e2) = (ext(0), ext(1), ext(2));
        out.min[0] = sub8(self.center[0], e0);
        out.max[0] = add8(self.center[0], e0);
        out.min[1] = sub8(self.center[1], e1);
        out.max[1] = add8(self.center[1], e1);
        out.min[2] = sub8(self.center[2], e2);
        out.max[2] = add8(self.center[2], e2);
        out
    }

    /// Lane-parallel general SAT against one scalar OBB.
    ///
    /// Bit `l` of the result is exactly `self.get(l).intersects(other)`:
    /// the kernel evaluates the same 15 axes with the same flop order per
    /// lane, it merely shares `other`'s data across lanes and trades the
    /// scalar first-separating-axis early exit for an all-lanes-separated
    /// early exit (which cannot change any lane's verdict — a verdict is
    /// "some axis separates", independent of which axis is found first).
    pub fn intersects_mask(&self, other: &Obb) -> u8 {
        let mut alive = self.live_mask();
        let bcol = [
            other.rot.col(0).to_array(),
            other.rot.col(1).to_array(),
            other.rot.col(2).to_array(),
        ];
        let bc = other.center.to_array();
        let be = other.half_extents.to_array();
        let d = [
            subs8(bc[0], self.center[0]),
            subs8(bc[1], self.center[1]),
            subs8(bc[2], self.center[2]),
        ];

        // Staged setup, mirroring the scalar cascade's cost shape: axis
        // A_i needs only row i of `r`/`|R|` and component i of `t`, so each
        // row is produced right before its test and the batch bails as soon
        // as every lane has a separating A-face axis — the common outcome —
        // without ever computing the other rows. Flop order per lane matches
        // `sat_obb_obb` exactly (r[i][j] = a.col(i)·b.col(j)).
        let mut r = [[[0.0f64; OBB_LANES]; 3]; 3];
        let mut abs_r = [[[0.0f64; OBB_LANES]; 3]; 3];
        let mut t = [[0.0f64; OBB_LANES]; 3];
        macro_rules! a_face_axis {
            ($i:literal) => {{
                r[$i][0] = dot3s_8(
                    self.rot[$i][0],
                    bcol[0][0],
                    self.rot[$i][1],
                    bcol[0][1],
                    self.rot[$i][2],
                    bcol[0][2],
                );
                r[$i][1] = dot3s_8(
                    self.rot[$i][0],
                    bcol[1][0],
                    self.rot[$i][1],
                    bcol[1][1],
                    self.rot[$i][2],
                    bcol[1][2],
                );
                r[$i][2] = dot3s_8(
                    self.rot[$i][0],
                    bcol[2][0],
                    self.rot[$i][1],
                    bcol[2][1],
                    self.rot[$i][2],
                    bcol[2][2],
                );
                abs_r[$i][0] = adds8(abs8(r[$i][0]), BOUNDARY_EPS);
                abs_r[$i][1] = adds8(abs8(r[$i][1]), BOUNDARY_EPS);
                abs_r[$i][2] = adds8(abs8(r[$i][2]), BOUNDARY_EPS);
                t[$i] = dot3_8(
                    d[0],
                    self.rot[$i][0],
                    d[1],
                    self.rot[$i][1],
                    d[2],
                    self.rot[$i][2],
                );
                let rb = dot3s_8(
                    abs_r[$i][0],
                    be[0],
                    abs_r[$i][1],
                    be[1],
                    abs_r[$i][2],
                    be[2],
                );
                alive &= !gt_abs_mask8(t[$i], add8(self.half[$i], rb));
                if alive == 0 {
                    return 0;
                }
            }};
        }
        a_face_axis!(0);
        a_face_axis!(1);
        a_face_axis!(2);
        self.sat_tail(&r, &abs_r, &t, be, alive)
    }

    /// Lane-parallel SAT against an axis-aligned box.
    ///
    /// The hot-path specialization: with an identity partner rotation, the
    /// nine `a.col(i)·e_j` dot products collapse to the lane rotation
    /// entries themselves, eliminating 27 multiply-adds per lane. Verdicts
    /// are exactly those of `self.get(l).intersects_aabb(aabb)` (see the
    /// type-level contract for the ±0.0 argument).
    pub fn intersects_aabb_mask(&self, aabb: &Aabb) -> u8 {
        self.intersects_aabb_mask_among(aabb, self.live_mask())
    }

    /// [`Self::intersects_aabb_mask`] restricted to the lanes in `among`
    /// (bits outside `among` come back 0). A broad phase that has already
    /// ruled lanes out passes its candidate mask here so the kernel stops
    /// as soon as every *candidate* is resolved instead of sweeping all
    /// eight lanes through the full 15-axis cascade.
    ///
    /// Candidate lanes get exactly the bits [`Self::intersects_aabb_mask`]
    /// would produce: a verdict is "some separating axis exists", which
    /// does not depend on which other lanes are along for the ride.
    ///
    /// The setup is staged to mirror the scalar cascade's cost shape: the
    /// three A-face axes each need only one row of `|R|` and one component
    /// of `t`, so those are produced on the fly and the remaining twelve
    /// axes' inputs are only materialized for batches that survive.
    pub fn intersects_aabb_mask_among(&self, aabb: &Aabb, among: u8) -> u8 {
        let mut alive = self.live_mask() & among;
        if alive == 0 {
            return 0;
        }
        let bc = aabb.center().to_array();
        let be = aabb.half_extents().to_array();
        let d = [
            subs8(bc[0], self.center[0]),
            subs8(bc[1], self.center[1]),
            subs8(bc[2], self.center[2]),
        ];

        // Stage 1: A-face axes, computing t[i] and |R| row i as we go.
        // Lanes are correlated (consecutive poses of the same link), so
        // whole batches usually die on one of these first three axes —
        // worth a mask-and-branch per axis, unlike the tail groups.
        let mut t = [[0.0f64; OBB_LANES]; 3];
        let mut abs_r = [[[0.0f64; OBB_LANES]; 3]; 3];
        macro_rules! a_face_axis {
            ($i:literal) => {{
                t[$i] = dot3_8(
                    d[0],
                    self.rot[$i][0],
                    d[1],
                    self.rot[$i][1],
                    d[2],
                    self.rot[$i][2],
                );
                abs_r[$i][0] = adds8(abs8(self.rot[$i][0]), BOUNDARY_EPS);
                abs_r[$i][1] = adds8(abs8(self.rot[$i][1]), BOUNDARY_EPS);
                abs_r[$i][2] = adds8(abs8(self.rot[$i][2]), BOUNDARY_EPS);
                let rb = dot3s_8(
                    abs_r[$i][0],
                    be[0],
                    abs_r[$i][1],
                    be[1],
                    abs_r[$i][2],
                    be[2],
                );
                alive &= !gt_abs_mask8(t[$i], add8(self.half[$i], rb));
                if alive == 0 {
                    return 0;
                }
            }};
        }
        a_face_axis!(0);
        a_face_axis!(1);
        a_face_axis!(2);
        // Stage 2: B-face and cross axes (all inputs now materialized;
        // the partner's rotation is the identity, so `r` is `self.rot`).
        self.sat_tail(&self.rot, &abs_r, &t, be, alive)
    }

    /// Axis groups B0–B2 and Ai×Bj of the SAT cascade (tail shared by both
    /// SAT entry points; `r`/`abs_r`/`t` follow the scalar `sat_obb_obb`
    /// layout). Returns the mask of lanes in `alive` with no separating
    /// axis.
    fn sat_tail(
        &self,
        r: &[[Lanes; 3]; 3],
        abs_r: &[[Lanes; 3]; 3],
        t: &[Lanes; 3],
        be: [f64; 3],
        mut alive: u8,
    ) -> u8 {
        // Separation masks accumulate per axis *group* with one liveness
        // branch per group: at 15 branches per cascade the checks used to
        // cost more than the axis arithmetic they guarded. Grouping cannot
        // change a verdict — a lane's verdict is "some axis separates it"
        // regardless of where in the cascade that axis sits. Both groups
        // are hand-unrolled per the module lane discipline.

        // Axes L = B0, B1, B2.
        let mut sep = 0u8;
        macro_rules! b_face_axis {
            ($j:literal) => {{
                let ra = dot3_8(
                    self.half[0],
                    abs_r[0][$j],
                    self.half[1],
                    abs_r[1][$j],
                    self.half[2],
                    abs_r[2][$j],
                );
                let tp = dot3_8(t[0], r[0][$j], t[1], r[1][$j], t[2], r[2][$j]);
                sep |= gt_abs_mask8(tp, adds8(ra, be[$j]));
            }};
        }
        b_face_axis!(0);
        b_face_axis!(1);
        b_face_axis!(2);
        alive &= !sep;
        if alive == 0 {
            return 0;
        }
        // Axes L = Ai x Bj, nine (i, j) combos with i1/i2 and j1/j2 the
        // cyclic successors of i and j.
        let mut sep = 0u8;
        macro_rules! cross_axis {
            ($i:literal, $i1:literal, $i2:literal, $j:literal, $j1:literal, $j2:literal) => {{
                let ra = add8(
                    mul8(self.half[$i1], abs_r[$i2][$j]),
                    mul8(self.half[$i2], abs_r[$i1][$j]),
                );
                let rb = add8(
                    muls8(abs_r[$i][$j2], be[$j1]),
                    muls8(abs_r[$i][$j1], be[$j2]),
                );
                let tp = sub8(mul8(t[$i2], r[$i1][$j]), mul8(t[$i1], r[$i2][$j]));
                sep |= gt_abs_mask8(tp, add8(ra, rb));
            }};
        }
        cross_axis!(0, 1, 2, 0, 1, 2);
        cross_axis!(0, 1, 2, 1, 2, 0);
        cross_axis!(0, 1, 2, 2, 0, 1);
        cross_axis!(1, 2, 0, 0, 1, 2);
        cross_axis!(1, 2, 0, 1, 2, 0);
        cross_axis!(1, 2, 0, 2, 0, 1);
        cross_axis!(2, 0, 1, 0, 1, 2);
        cross_axis!(2, 0, 1, 1, 2, 0);
        cross_axis!(2, 0, 1, 2, 0, 1);
        alive & !sep
    }
}

// --- Whole-lane-array elementwise primitives --------------------------
//
// Lane discipline: every kernel in this module is straight-line code over
// these whole-`Lanes` primitives — short outer dimensions (3 world axes,
// 3x3 rotation rows, 9 cross axes) are hand-unrolled, never looped, and
// per-lane accumulation (`acc[l] += a * b` repeated per axis) never
// appears. The distinction matters: given a short outer loop, LLVM
// first fully unrolls the inner 8-lane loops, then loop-vectorizes the
// leftover trip-3 outer dimension with masked gathers/scatters across
// the *axis* stride (~5x slower than scalar, measured with perf +
// disassembly). With no outer loops left, the only vector shape
// available to the SLP pass is the lane-contiguous one, and each
// primitive compiles to two ymm (or one zmm) ops.

#[inline(always)]
fn add8(a: Lanes, b: Lanes) -> Lanes {
    let mut o = [0.0; OBB_LANES];
    for l in 0..OBB_LANES {
        o[l] = a[l] + b[l];
    }
    o
}

#[inline(always)]
fn sub8(a: Lanes, b: Lanes) -> Lanes {
    let mut o = [0.0; OBB_LANES];
    for l in 0..OBB_LANES {
        o[l] = a[l] - b[l];
    }
    o
}

#[inline(always)]
fn mul8(a: Lanes, b: Lanes) -> Lanes {
    let mut o = [0.0; OBB_LANES];
    for l in 0..OBB_LANES {
        o[l] = a[l] * b[l];
    }
    o
}

#[inline(always)]
fn abs8(a: Lanes) -> Lanes {
    let mut o = [0.0; OBB_LANES];
    for l in 0..OBB_LANES {
        o[l] = a[l].abs();
    }
    o
}

/// Broadcast-multiply: `a * s` in every lane.
#[inline(always)]
fn muls8(a: Lanes, s: f64) -> Lanes {
    let mut o = [0.0; OBB_LANES];
    for l in 0..OBB_LANES {
        o[l] = a[l] * s;
    }
    o
}

/// Broadcast-add: `a + s` in every lane.
#[inline(always)]
fn adds8(a: Lanes, s: f64) -> Lanes {
    let mut o = [0.0; OBB_LANES];
    for l in 0..OBB_LANES {
        o[l] = a[l] + s;
    }
    o
}

/// Broadcast-subtract: `s - a` in every lane.
#[inline(always)]
fn subs8(s: f64, a: Lanes) -> Lanes {
    let mut o = [0.0; OBB_LANES];
    for l in 0..OBB_LANES {
        o[l] = s - a[l];
    }
    o
}

/// Left-associated 3-term lane dot: `a0*b0 + a1*b1 + a2*b2`.
///
/// Matches the scalar references' `x*x' + y*y' + z*z'` flop order exactly
/// (addition is left-associative in both).
#[inline(always)]
fn dot3_8(a0: Lanes, b0: Lanes, a1: Lanes, b1: Lanes, a2: Lanes, b2: Lanes) -> Lanes {
    add8(add8(mul8(a0, b0), mul8(a1, b1)), mul8(a2, b2))
}

/// Left-associated 3-term lane dot against broadcast scalars:
/// `a0*s0 + a1*s1 + a2*s2`.
#[inline(always)]
fn dot3s_8(a0: Lanes, s0: f64, a1: Lanes, s1: f64, a2: Lanes, s2: f64) -> Lanes {
    add8(add8(muls8(a0, s0), muls8(a1, s1)), muls8(a2, s2))
}

/// Lane mask of `|t| > bound`, bit `l` set when lane `l` separates.
///
/// Computed as the sign bits of `bound - |t|` rather than a lane-bool
/// compare: the sign-bit fold is the idiom the x86 backend matches to a
/// single `movmskpd`, where a bool-array fold scalarizes (measured, and
/// it drags neighboring arithmetic into cross-lane shuffles with it).
/// The rewrite is verdict-exact: both operands are finite, IEEE
/// subtraction of distinct finite values never rounds to zero (so the
/// sign of `bound - |t|` is the sign of the exact difference), and a
/// `-0.0` result needs `bound = -0.0`, which cannot happen — `bound` is
/// a sum of products of absolute values, `+0.0` at its smallest.
#[inline(always)]
fn gt_abs_mask8(t: Lanes, bound: Lanes) -> u8 {
    sign_mask8(sub8(bound, abs8(t)))
}

/// Sign bits of every lane, packed (bit `l` = lane `l` is negative).
#[inline(always)]
fn sign_mask8(v: Lanes) -> u8 {
    let mut m = 0u8;
    for (l, x) in v.iter().enumerate() {
        m |= ((x.to_bits() >> 63) as u8) << l;
    }
    m
}

/// Packs lane bools into a bitmask (bit `l` = `ok[l]`). Kept out of the
/// compare loops so those stay pure lane arithmetic for the vectorizer.
#[inline]
fn fold_mask(ok: &[bool; OBB_LANES]) -> u8 {
    let mut m = 0u8;
    for (l, &b) in ok.iter().enumerate() {
        m |= u8::from(b) << l;
    }
    m
}

impl BatchAabbs {
    /// Lane-parallel [`Aabb::intersects`] against one scalar AABB (closed
    /// intervals: touching counts). Bit `l` set when lane `l` overlaps.
    #[inline]
    pub fn intersects_mask(&self, other: &Aabb) -> u8 {
        let omin = other.min.to_array();
        let omax = other.max.to_array();
        // Branchless lane bools (`&`, not `&&`) with a single fold at the
        // end; real `<=`/`>=` compares, so signed-zero corners match the
        // scalar `Aabb::intersects` conjunction trivially. (Compares alone
        // don't trigger the outer-dim vectorization pathology the SAT
        // kernels unroll around, and one fold per call is cheap.)
        let mut ok = [true; OBB_LANES];
        for ax in 0..3 {
            for (l, o) in ok.iter_mut().enumerate() {
                *o &= (self.min[ax][l] <= omax[ax]) & (self.max[ax][l] >= omin[ax]);
            }
        }
        fold_mask(&ok)
    }

    /// The union AABB of all lanes (closed hull; dead lanes duplicate a
    /// live one, so they never widen it).
    ///
    /// A caller sweeping many obstacles tests this bound first: one scalar
    /// [`Aabb::intersects`] rejects an obstacle for all eight lanes at
    /// once, and rejection is conservative — every lane box is inside the
    /// union, so an obstacle missing the union misses every lane, which is
    /// exactly the all-lanes-miss outcome of [`Self::intersects_mask`].
    /// Lane min/max are IEEE-exact, so no tolerance is involved.
    #[inline]
    pub fn bound(&self) -> Aabb {
        let fold = |v: &Lanes, pick: fn(f64, f64) -> f64| {
            let mut acc = v[0];
            for x in &v[1..] {
                acc = pick(acc, *x);
            }
            acc
        };
        Aabb::new(
            Vec3::new(
                fold(&self.min[0], f64::min),
                fold(&self.min[1], f64::min),
                fold(&self.min[2], f64::min),
            ),
            Vec3::new(
                fold(&self.max[0], f64::max),
                fold(&self.max[1], f64::max),
                fold(&self.max[2], f64::max),
            ),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mat3::Mat3;

    fn sample_obbs() -> Vec<Obb> {
        let mut v = Vec::new();
        for k in 0..11usize {
            let f = k as f64;
            v.push(Obb::new(
                Vec3::new(f * 0.37 - 1.5, (f * 0.61).sin(), f * 0.23 - 1.0),
                Mat3::rot_z(f * 0.7) * Mat3::rot_x(f * 0.31) * Mat3::rot_y(f * 1.13),
                Vec3::new(0.1 + 0.05 * f, 0.3, 0.07 * (f + 1.0)),
            ));
        }
        v
    }

    #[test]
    fn roundtrip_preserves_lanes() {
        let obbs = sample_obbs();
        let batch = BatchObb::from_obbs(&obbs[..5]);
        assert_eq!(batch.len, 5);
        assert_eq!(batch.live_mask(), 0b11111);
        for (l, obb) in obbs.iter().enumerate().take(5) {
            assert_eq!(&batch.get(l), obb);
        }
    }

    #[test]
    fn aabbs_match_scalar_bitwise() {
        let obbs = sample_obbs();
        for n in 1..=OBB_LANES {
            let batch = BatchObb::from_obbs(&obbs[..n]);
            let bbs = batch.aabbs();
            for (l, obb) in obbs.iter().enumerate().take(n) {
                let scalar = obb.aabb();
                for ax in 0..3 {
                    assert_eq!(bbs.min[ax][l].to_bits(), scalar.min[ax].to_bits());
                    assert_eq!(bbs.max[ax][l].to_bits(), scalar.max[ax].to_bits());
                }
            }
        }
    }

    #[test]
    fn general_sat_matches_scalar_every_lane_count() {
        let obbs = sample_obbs();
        let partners = sample_obbs();
        for n in 1..=OBB_LANES {
            let batch = BatchObb::from_obbs(&obbs[..n]);
            for p in &partners {
                let mask = batch.intersects_mask(p);
                for (l, obb) in obbs.iter().enumerate().take(n) {
                    assert_eq!(
                        (mask >> l) & 1 == 1,
                        obb.intersects(p),
                        "lane {l}/{n} vs partner at {}",
                        p.center
                    );
                }
            }
        }
    }

    #[test]
    fn aabb_sat_matches_scalar_every_lane_count() {
        let obbs = sample_obbs();
        let boxes = [
            Aabb::new(Vec3::splat(-0.5), Vec3::splat(0.5)),
            Aabb::new(Vec3::new(0.0, -2.0, -1.0), Vec3::new(2.0, 0.0, 0.5)),
            Aabb::new(Vec3::splat(5.0), Vec3::splat(6.0)),
            Aabb::new(Vec3::new(-1.5, 0.0, -1.0), Vec3::new(-1.4, 0.1, -0.9)),
        ];
        for n in 1..=OBB_LANES {
            let batch = BatchObb::from_obbs(&obbs[..n]);
            let bbs = batch.aabbs();
            for bx in &boxes {
                let narrow = batch.intersects_aabb_mask(bx);
                let broad = bbs.intersects_mask(bx);
                for (l, obb) in obbs.iter().enumerate().take(n) {
                    assert_eq!(
                        (narrow >> l) & 1 == 1,
                        obb.intersects_aabb(bx),
                        "narrow lane {l}/{n}"
                    );
                    assert_eq!(
                        (broad >> l) & 1 == 1,
                        obb.aabb().intersects(bx),
                        "broad lane {l}/{n}"
                    );
                }
            }
        }
    }

    #[test]
    fn boundary_touching_lanes_match_scalar() {
        // Faces exactly touching: the epsilon policy must make batched and
        // scalar agree lane-for-lane at the boundary.
        let obbs: Vec<Obb> = (0..OBB_LANES)
            .map(|l| {
                Obb::axis_aligned(
                    Vec3::new(1.0 + l as f64 * 1e-10, 0.0, 0.0),
                    Vec3::splat(0.5),
                )
            })
            .collect();
        let batch = BatchObb::from_obbs(&obbs);
        let unit = Aabb::new(Vec3::splat(-0.5), Vec3::splat(0.5));
        let mask = batch.intersects_aabb_mask(&unit);
        for (l, o) in obbs.iter().enumerate() {
            assert_eq!((mask >> l) & 1 == 1, o.intersects_aabb(&unit), "lane {l}");
        }
    }

    #[test]
    #[should_panic(expected = "BatchObb wants")]
    fn empty_batch_panics() {
        let _ = BatchObb::from_obbs(&[]);
    }
}
