//! Spheres and sphere intersection tests.
//!
//! Spheres are the alternative link bounding volume studied in the paper's
//! §VII-1 (curobo-style sphere sets per link). Sphere CDQs are cheaper than
//! OBB CDQs but need several spheres per link for comparable tightness.

use crate::aabb::Aabb;
use crate::obb::Obb;
use crate::vec3::Vec3;

/// A sphere given by center and radius.
///
/// # Examples
///
/// ```
/// use copred_geometry::{Sphere, Vec3};
///
/// let a = Sphere::new(Vec3::ZERO, 1.0);
/// let b = Sphere::new(Vec3::new(1.5, 0.0, 0.0), 1.0);
/// assert!(a.intersects(&b));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sphere {
    /// Center in world coordinates.
    pub center: Vec3,
    /// Radius. Non-negative.
    pub radius: f64,
}

impl Sphere {
    /// Creates a sphere.
    ///
    /// # Panics
    ///
    /// Panics in debug builds when `radius` is negative.
    pub fn new(center: Vec3, radius: f64) -> Self {
        debug_assert!(radius >= 0.0, "negative sphere radius: {radius}");
        Sphere { center, radius }
    }

    /// Sphere-sphere overlap (touching counts).
    #[inline]
    pub fn intersects(&self, other: &Sphere) -> bool {
        let r = self.radius + other.radius;
        self.center.distance_squared(other.center) <= r * r
    }

    /// Sphere-AABB overlap via closest-point distance.
    #[inline]
    pub fn intersects_aabb(&self, aabb: &Aabb) -> bool {
        aabb.distance_squared(self.center) <= self.radius * self.radius
    }

    /// Sphere-OBB overlap: transform the center into the box frame and run
    /// the AABB test there.
    pub fn intersects_obb(&self, obb: &Obb) -> bool {
        let d = self.center - obb.center;
        let local = Vec3::new(
            d.dot(obb.rot.col(0)),
            d.dot(obb.rot.col(1)),
            d.dot(obb.rot.col(2)),
        );
        let box_local = Aabb::from_center_half_extents(Vec3::ZERO, obb.half_extents);
        box_local.distance_squared(local) <= self.radius * self.radius
    }

    /// Returns `true` when `p` is inside or on the sphere.
    #[inline]
    pub fn contains(&self, p: Vec3) -> bool {
        self.center.distance_squared(p) <= self.radius * self.radius
    }

    /// Smallest AABB enclosing the sphere.
    pub fn aabb(&self) -> Aabb {
        Aabb::from_center_half_extents(self.center, Vec3::splat(self.radius))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mat3::Mat3;

    #[test]
    fn sphere_sphere() {
        let a = Sphere::new(Vec3::ZERO, 1.0);
        assert!(a.intersects(&Sphere::new(Vec3::new(1.9, 0.0, 0.0), 1.0)));
        // Exactly touching.
        assert!(a.intersects(&Sphere::new(Vec3::new(2.0, 0.0, 0.0), 1.0)));
        assert!(!a.intersects(&Sphere::new(Vec3::new(2.01, 0.0, 0.0), 1.0)));
    }

    #[test]
    fn sphere_aabb() {
        let b = Aabb::new(Vec3::ZERO, Vec3::ONE);
        assert!(Sphere::new(Vec3::splat(0.5), 0.1).intersects_aabb(&b)); // inside
        assert!(Sphere::new(Vec3::new(1.5, 0.5, 0.5), 0.6).intersects_aabb(&b)); // face
        assert!(!Sphere::new(Vec3::new(1.5, 0.5, 0.5), 0.4).intersects_aabb(&b));
        // Corner approach: distance to corner (1,1,1) from (1.5,1.5,1.5) is sqrt(0.75).
        let corner = Vec3::splat(1.5);
        assert!(Sphere::new(corner, 0.87).intersects_aabb(&b));
        assert!(!Sphere::new(corner, 0.85).intersects_aabb(&b));
    }

    #[test]
    fn sphere_obb_rotation_matters() {
        let obb = Obb::new(
            Vec3::ZERO,
            Mat3::rot_z(std::f64::consts::FRAC_PI_4),
            Vec3::new(2.0, 0.1, 0.1),
        );
        // Point along the rotated long axis.
        let dir = Mat3::rot_z(std::f64::consts::FRAC_PI_4) * Vec3::X;
        assert!(Sphere::new(dir * 1.9, 0.05).intersects_obb(&obb));
        // Same distance along world X misses the thin rotated box.
        assert!(!Sphere::new(Vec3::X * 1.9, 0.05).intersects_obb(&obb));
    }

    #[test]
    fn contains_points() {
        let s = Sphere::new(Vec3::new(1.0, 1.0, 1.0), 0.5);
        assert!(s.contains(Vec3::new(1.0, 1.0, 1.4)));
        assert!(s.contains(Vec3::new(1.0, 1.0, 1.5))); // boundary
        assert!(!s.contains(Vec3::new(1.0, 1.0, 1.51)));
    }

    #[test]
    fn aabb_encloses_sphere() {
        let s = Sphere::new(Vec3::new(-1.0, 2.0, 0.0), 0.75);
        let b = s.aabb();
        assert_eq!(b.min, Vec3::new(-1.75, 1.25, -0.75));
        assert_eq!(b.max, Vec3::new(-0.25, 2.75, 0.75));
    }

    #[test]
    fn zero_radius_is_point() {
        let s = Sphere::new(Vec3::splat(0.5), 0.0);
        assert!(s.intersects_aabb(&Aabb::new(Vec3::ZERO, Vec3::ONE)));
        assert!(s.contains(Vec3::splat(0.5)));
        assert!(!s.contains(Vec3::splat(0.5001)));
    }
}
