//! Axis-aligned bounding boxes.

use crate::vec3::Vec3;

/// An axis-aligned box given by its `min` and `max` corners.
///
/// Used for environment obstacles (the paper's "cuboid-shaped obstacles"),
/// workspace bounds, and broad-phase culling.
///
/// # Examples
///
/// ```
/// use copred_geometry::{Aabb, Vec3};
///
/// let a = Aabb::new(Vec3::ZERO, Vec3::ONE);
/// assert!(a.contains(Vec3::splat(0.5)));
/// assert!(a.intersects(&Aabb::new(Vec3::splat(0.5), Vec3::splat(2.0))));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Aabb {
    /// Minimum corner.
    pub min: Vec3,
    /// Maximum corner.
    pub max: Vec3,
}

impl Aabb {
    /// Creates a box from corners.
    ///
    /// # Panics
    ///
    /// Panics in debug builds when any `min` component exceeds the matching
    /// `max` component.
    pub fn new(min: Vec3, max: Vec3) -> Self {
        debug_assert!(
            min.x <= max.x && min.y <= max.y && min.z <= max.z,
            "inverted Aabb: {min} > {max}"
        );
        Aabb { min, max }
    }

    /// Creates a box from a center point and half-extents.
    pub fn from_center_half_extents(center: Vec3, half: Vec3) -> Self {
        Aabb::new(center - half, center + half)
    }

    /// Smallest box containing all `points`.
    ///
    /// Returns `None` for an empty iterator.
    pub fn from_points<I: IntoIterator<Item = Vec3>>(points: I) -> Option<Self> {
        let mut it = points.into_iter();
        let first = it.next()?;
        let (mut lo, mut hi) = (first, first);
        for p in it {
            lo = lo.min(p);
            hi = hi.max(p);
        }
        Some(Aabb::new(lo, hi))
    }

    /// Center of the box.
    #[inline]
    pub fn center(&self) -> Vec3 {
        (self.min + self.max) * 0.5
    }

    /// Half-extents (half the side lengths).
    #[inline]
    pub fn half_extents(&self) -> Vec3 {
        (self.max - self.min) * 0.5
    }

    /// Side lengths.
    #[inline]
    pub fn extents(&self) -> Vec3 {
        self.max - self.min
    }

    /// Volume of the box.
    #[inline]
    pub fn volume(&self) -> f64 {
        let e = self.extents();
        e.x * e.y * e.z
    }

    /// Returns `true` when `p` lies inside or on the boundary.
    #[inline]
    pub fn contains(&self, p: Vec3) -> bool {
        p.x >= self.min.x
            && p.x <= self.max.x
            && p.y >= self.min.y
            && p.y <= self.max.y
            && p.z >= self.min.z
            && p.z <= self.max.z
    }

    /// Returns `true` when `other` lies entirely inside `self`.
    pub fn contains_aabb(&self, other: &Aabb) -> bool {
        self.contains(other.min) && self.contains(other.max)
    }

    /// Axis-aligned overlap test (closed intervals: touching counts).
    #[inline]
    pub fn intersects(&self, other: &Aabb) -> bool {
        self.min.x <= other.max.x
            && self.max.x >= other.min.x
            && self.min.y <= other.max.y
            && self.max.y >= other.min.y
            && self.min.z <= other.max.z
            && self.max.z >= other.min.z
    }

    /// Smallest box containing both boxes.
    pub fn union(&self, other: &Aabb) -> Aabb {
        Aabb::new(self.min.min(other.min), self.max.max(other.max))
    }

    /// Box grown by `margin` on every side.
    pub fn inflated(&self, margin: f64) -> Aabb {
        Aabb::new(
            self.min - Vec3::splat(margin),
            self.max + Vec3::splat(margin),
        )
    }

    /// Closest point inside the box to `p`.
    #[inline]
    pub fn closest_point(&self, p: Vec3) -> Vec3 {
        p.clamp(self.min, self.max)
    }

    /// Squared distance from `p` to the box (0 when inside).
    #[inline]
    pub fn distance_squared(&self, p: Vec3) -> f64 {
        (p - self.closest_point(p)).norm_squared()
    }

    /// The 8 corner points.
    pub fn corners(&self) -> [Vec3; 8] {
        let (lo, hi) = (self.min, self.max);
        [
            Vec3::new(lo.x, lo.y, lo.z),
            Vec3::new(hi.x, lo.y, lo.z),
            Vec3::new(lo.x, hi.y, lo.z),
            Vec3::new(hi.x, hi.y, lo.z),
            Vec3::new(lo.x, lo.y, hi.z),
            Vec3::new(hi.x, lo.y, hi.z),
            Vec3::new(lo.x, hi.y, hi.z),
            Vec3::new(hi.x, hi.y, hi.z),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit() -> Aabb {
        Aabb::new(Vec3::ZERO, Vec3::ONE)
    }

    #[test]
    fn center_and_extents() {
        let b = Aabb::new(Vec3::new(-1.0, 0.0, 2.0), Vec3::new(1.0, 4.0, 6.0));
        assert_eq!(b.center(), Vec3::new(0.0, 2.0, 4.0));
        assert_eq!(b.half_extents(), Vec3::new(1.0, 2.0, 2.0));
        assert_eq!(b.volume(), 2.0 * 4.0 * 4.0);
    }

    #[test]
    fn contains_boundary_points() {
        let b = unit();
        assert!(b.contains(Vec3::ZERO));
        assert!(b.contains(Vec3::ONE));
        assert!(b.contains(Vec3::splat(0.5)));
        assert!(!b.contains(Vec3::new(1.0001, 0.5, 0.5)));
        assert!(!b.contains(Vec3::new(0.5, -0.0001, 0.5)));
    }

    #[test]
    fn intersection_cases() {
        let b = unit();
        // Overlapping.
        assert!(b.intersects(&Aabb::new(Vec3::splat(0.5), Vec3::splat(2.0))));
        // Touching faces count as intersecting (conservative).
        assert!(b.intersects(&Aabb::new(
            Vec3::new(1.0, 0.0, 0.0),
            Vec3::new(2.0, 1.0, 1.0)
        )));
        // Disjoint along one axis.
        assert!(!b.intersects(&Aabb::new(
            Vec3::new(1.1, 0.0, 0.0),
            Vec3::new(2.0, 1.0, 1.0)
        )));
        // Contained.
        assert!(b.intersects(&Aabb::new(Vec3::splat(0.25), Vec3::splat(0.75))));
        // Symmetric.
        let other = Aabb::new(Vec3::splat(-0.5), Vec3::splat(0.5));
        assert_eq!(b.intersects(&other), other.intersects(&b));
    }

    #[test]
    fn from_points_builds_hull() {
        let pts = [
            Vec3::new(1.0, -1.0, 0.0),
            Vec3::new(-2.0, 3.0, 1.0),
            Vec3::new(0.0, 0.0, -4.0),
        ];
        let b = Aabb::from_points(pts).unwrap();
        assert_eq!(b.min, Vec3::new(-2.0, -1.0, -4.0));
        assert_eq!(b.max, Vec3::new(1.0, 3.0, 1.0));
        assert!(Aabb::from_points(std::iter::empty()).is_none());
    }

    #[test]
    fn union_and_inflate() {
        let a = unit();
        let b = Aabb::new(Vec3::splat(2.0), Vec3::splat(3.0));
        let u = a.union(&b);
        assert_eq!(u.min, Vec3::ZERO);
        assert_eq!(u.max, Vec3::splat(3.0));
        let inf = a.inflated(0.5);
        assert_eq!(inf.min, Vec3::splat(-0.5));
        assert_eq!(inf.max, Vec3::splat(1.5));
    }

    #[test]
    fn closest_point_and_distance() {
        let b = unit();
        assert_eq!(b.closest_point(Vec3::splat(0.5)), Vec3::splat(0.5));
        assert_eq!(
            b.closest_point(Vec3::new(2.0, 0.5, 0.5)),
            Vec3::new(1.0, 0.5, 0.5)
        );
        assert_eq!(b.distance_squared(Vec3::new(2.0, 0.5, 0.5)), 1.0);
        assert_eq!(b.distance_squared(Vec3::splat(0.5)), 0.0);
    }

    #[test]
    fn corners_are_all_distinct_and_contained() {
        let b = Aabb::new(Vec3::new(-1.0, -2.0, -3.0), Vec3::new(1.0, 2.0, 3.0));
        let cs = b.corners();
        for (i, c) in cs.iter().enumerate() {
            assert!(b.contains(*c));
            for c2 in &cs[i + 1..] {
                assert_ne!(c, c2);
            }
        }
    }

    #[test]
    fn contains_aabb_nested() {
        let outer = Aabb::new(Vec3::splat(-2.0), Vec3::splat(2.0));
        assert!(outer.contains_aabb(&unit()));
        assert!(!unit().contains_aabb(&outer));
    }
}
