//! Three-dimensional vectors.
//!
//! [`Vec3`] is the workhorse value type of the geometry substrate: link
//! centers, obstacle extents, and hash inputs are all `Vec3`s. The type is
//! `Copy` and all operations are implemented without allocation.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Index, Mul, Neg, Sub, SubAssign};

/// A 3-component vector of `f64`.
///
/// # Examples
///
/// ```
/// use copred_geometry::Vec3;
///
/// let a = Vec3::new(1.0, 2.0, 3.0);
/// let b = Vec3::new(4.0, 5.0, 6.0);
/// assert_eq!(a.dot(b), 32.0);
/// assert_eq!(a + b, Vec3::new(5.0, 7.0, 9.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec3 {
    /// X component.
    pub x: f64,
    /// Y component.
    pub y: f64,
    /// Z component.
    pub z: f64,
}

impl Vec3 {
    /// The zero vector.
    pub const ZERO: Vec3 = Vec3 {
        x: 0.0,
        y: 0.0,
        z: 0.0,
    };
    /// The all-ones vector.
    pub const ONE: Vec3 = Vec3 {
        x: 1.0,
        y: 1.0,
        z: 1.0,
    };
    /// Unit vector along X.
    pub const X: Vec3 = Vec3 {
        x: 1.0,
        y: 0.0,
        z: 0.0,
    };
    /// Unit vector along Y.
    pub const Y: Vec3 = Vec3 {
        x: 0.0,
        y: 1.0,
        z: 0.0,
    };
    /// Unit vector along Z.
    pub const Z: Vec3 = Vec3 {
        x: 0.0,
        y: 0.0,
        z: 1.0,
    };

    /// Creates a vector from components.
    #[inline]
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Vec3 { x, y, z }
    }

    /// Creates a vector with all components equal to `v`.
    #[inline]
    pub const fn splat(v: f64) -> Self {
        Vec3 { x: v, y: v, z: v }
    }

    /// Creates a vector in the XY plane (z = 0), for planar robots.
    #[inline]
    pub const fn planar(x: f64, y: f64) -> Self {
        Vec3 { x, y, z: 0.0 }
    }

    /// Dot product.
    #[inline]
    pub fn dot(self, rhs: Vec3) -> f64 {
        self.x * rhs.x + self.y * rhs.y + self.z * rhs.z
    }

    /// Cross product.
    #[inline]
    pub fn cross(self, rhs: Vec3) -> Vec3 {
        Vec3 {
            x: self.y * rhs.z - self.z * rhs.y,
            y: self.z * rhs.x - self.x * rhs.z,
            z: self.x * rhs.y - self.y * rhs.x,
        }
    }

    /// Euclidean norm.
    #[inline]
    pub fn norm(self) -> f64 {
        self.dot(self).sqrt()
    }

    /// Squared Euclidean norm (avoids the square root).
    #[inline]
    pub fn norm_squared(self) -> f64 {
        self.dot(self)
    }

    /// Distance to another point.
    #[inline]
    pub fn distance(self, rhs: Vec3) -> f64 {
        (self - rhs).norm()
    }

    /// Squared distance to another point.
    #[inline]
    pub fn distance_squared(self, rhs: Vec3) -> f64 {
        (self - rhs).norm_squared()
    }

    /// Returns the vector scaled to unit length.
    ///
    /// Returns [`Vec3::ZERO`] when the norm is smaller than `1e-12` so that
    /// degenerate directions never produce NaNs downstream.
    #[inline]
    pub fn normalized(self) -> Vec3 {
        let n = self.norm();
        if n < 1e-12 {
            Vec3::ZERO
        } else {
            self / n
        }
    }

    /// Component-wise minimum.
    #[inline]
    pub fn min(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x.min(rhs.x), self.y.min(rhs.y), self.z.min(rhs.z))
    }

    /// Component-wise maximum.
    #[inline]
    pub fn max(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x.max(rhs.x), self.y.max(rhs.y), self.z.max(rhs.z))
    }

    /// Component-wise absolute value.
    #[inline]
    pub fn abs(self) -> Vec3 {
        Vec3::new(self.x.abs(), self.y.abs(), self.z.abs())
    }

    /// Component-wise multiplication (Hadamard product).
    #[inline]
    pub fn mul_elem(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x * rhs.x, self.y * rhs.y, self.z * rhs.z)
    }

    /// Clamps every component into `[min, max]`.
    #[inline]
    pub fn clamp(self, min: Vec3, max: Vec3) -> Vec3 {
        self.max(min).min(max)
    }

    /// Linear interpolation: `self + t * (rhs - self)`.
    #[inline]
    pub fn lerp(self, rhs: Vec3, t: f64) -> Vec3 {
        self + (rhs - self) * t
    }

    /// Largest component value.
    #[inline]
    pub fn max_element(self) -> f64 {
        self.x.max(self.y).max(self.z)
    }

    /// Smallest component value.
    #[inline]
    pub fn min_element(self) -> f64 {
        self.x.min(self.y).min(self.z)
    }

    /// Returns `true` when every component is finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite() && self.z.is_finite()
    }

    /// Components as a fixed-size array `[x, y, z]`.
    #[inline]
    pub fn to_array(self) -> [f64; 3] {
        [self.x, self.y, self.z]
    }

    /// Builds a vector from a `[x, y, z]` array.
    #[inline]
    pub fn from_array(a: [f64; 3]) -> Self {
        Vec3::new(a[0], a[1], a[2])
    }
}

impl fmt::Display for Vec3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.4}, {:.4}, {:.4})", self.x, self.y, self.z)
    }
}

impl Add for Vec3 {
    type Output = Vec3;
    #[inline]
    fn add(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x + rhs.x, self.y + rhs.y, self.z + rhs.z)
    }
}

impl AddAssign for Vec3 {
    #[inline]
    fn add_assign(&mut self, rhs: Vec3) {
        *self = *self + rhs;
    }
}

impl Sub for Vec3 {
    type Output = Vec3;
    #[inline]
    fn sub(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x - rhs.x, self.y - rhs.y, self.z - rhs.z)
    }
}

impl SubAssign for Vec3 {
    #[inline]
    fn sub_assign(&mut self, rhs: Vec3) {
        *self = *self - rhs;
    }
}

impl Mul<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn mul(self, rhs: f64) -> Vec3 {
        Vec3::new(self.x * rhs, self.y * rhs, self.z * rhs)
    }
}

impl Mul<Vec3> for f64 {
    type Output = Vec3;
    #[inline]
    fn mul(self, rhs: Vec3) -> Vec3 {
        rhs * self
    }
}

impl Div<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn div(self, rhs: f64) -> Vec3 {
        Vec3::new(self.x / rhs, self.y / rhs, self.z / rhs)
    }
}

impl Neg for Vec3 {
    type Output = Vec3;
    #[inline]
    fn neg(self) -> Vec3 {
        Vec3::new(-self.x, -self.y, -self.z)
    }
}

impl Index<usize> for Vec3 {
    type Output = f64;

    /// Indexes components 0, 1, 2 as x, y, z.
    ///
    /// # Panics
    ///
    /// Panics when `i >= 3`.
    #[inline]
    fn index(&self, i: usize) -> &f64 {
        match i {
            0 => &self.x,
            1 => &self.y,
            2 => &self.z,
            _ => panic!("Vec3 index out of range: {i}"),
        }
    }
}

impl From<[f64; 3]> for Vec3 {
    fn from(a: [f64; 3]) -> Self {
        Vec3::from_array(a)
    }
}

impl From<Vec3> for [f64; 3] {
    fn from(v: Vec3) -> Self {
        v.to_array()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_arithmetic() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(-1.0, 0.5, 2.0);
        assert_eq!(a + b, Vec3::new(0.0, 2.5, 5.0));
        assert_eq!(a - b, Vec3::new(2.0, 1.5, 1.0));
        assert_eq!(a * 2.0, Vec3::new(2.0, 4.0, 6.0));
        assert_eq!(2.0 * a, a * 2.0);
        assert_eq!(a / 2.0, Vec3::new(0.5, 1.0, 1.5));
        assert_eq!(-a, Vec3::new(-1.0, -2.0, -3.0));
    }

    #[test]
    fn dot_and_cross() {
        assert_eq!(Vec3::X.dot(Vec3::Y), 0.0);
        assert_eq!(Vec3::X.cross(Vec3::Y), Vec3::Z);
        assert_eq!(Vec3::Y.cross(Vec3::Z), Vec3::X);
        assert_eq!(Vec3::Z.cross(Vec3::X), Vec3::Y);
        // Anti-commutativity.
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(4.0, -5.0, 6.0);
        assert_eq!(a.cross(b), -(b.cross(a)));
        // Cross product is orthogonal to both operands.
        assert!(a.cross(b).dot(a).abs() < 1e-12);
        assert!(a.cross(b).dot(b).abs() < 1e-12);
    }

    #[test]
    fn norms_and_distances() {
        let v = Vec3::new(3.0, 4.0, 0.0);
        assert_eq!(v.norm(), 5.0);
        assert_eq!(v.norm_squared(), 25.0);
        assert_eq!(v.distance(Vec3::ZERO), 5.0);
        assert_eq!(Vec3::ZERO.distance_squared(v), 25.0);
    }

    #[test]
    fn normalize_zero_is_zero() {
        assert_eq!(Vec3::ZERO.normalized(), Vec3::ZERO);
        let v = Vec3::new(0.0, 0.0, 2.0).normalized();
        assert!((v.norm() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn elementwise_helpers() {
        let a = Vec3::new(1.0, -5.0, 3.0);
        let b = Vec3::new(2.0, 2.0, -1.0);
        assert_eq!(a.min(b), Vec3::new(1.0, -5.0, -1.0));
        assert_eq!(a.max(b), Vec3::new(2.0, 2.0, 3.0));
        assert_eq!(a.abs(), Vec3::new(1.0, 5.0, 3.0));
        assert_eq!(a.mul_elem(b), Vec3::new(2.0, -10.0, -3.0));
        assert_eq!(a.max_element(), 3.0);
        assert_eq!(a.min_element(), -5.0);
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = Vec3::new(0.0, 0.0, 0.0);
        let b = Vec3::new(2.0, 4.0, 6.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), Vec3::new(1.0, 2.0, 3.0));
    }

    #[test]
    fn clamp_componentwise() {
        let v = Vec3::new(-2.0, 0.5, 9.0);
        let c = v.clamp(Vec3::splat(-1.0), Vec3::splat(1.0));
        assert_eq!(c, Vec3::new(-1.0, 0.5, 1.0));
    }

    #[test]
    fn indexing_and_conversion() {
        let v = Vec3::new(7.0, 8.0, 9.0);
        assert_eq!(v[0], 7.0);
        assert_eq!(v[1], 8.0);
        assert_eq!(v[2], 9.0);
        let a: [f64; 3] = v.into();
        assert_eq!(Vec3::from(a), v);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn index_out_of_range_panics() {
        let _ = Vec3::ZERO[3];
    }

    #[test]
    fn planar_has_zero_z() {
        let p = Vec3::planar(1.5, -2.5);
        assert_eq!(p.z, 0.0);
        assert_eq!(p.x, 1.5);
    }
}
