//! Rigid-body transforms (rotation + translation).
//!
//! [`Iso3`] is the 4×4 homogeneous transformation matrix of robot kinematics
//! (the paper's "transformation matrix ... containing rotation and
//! translation" computed from DH parameters), stored as a rotation matrix
//! plus a translation vector.

use crate::mat3::Mat3;
use crate::vec3::Vec3;
use std::ops::Mul;

/// A rigid transform in 3D: `p ↦ rot * p + trans`.
///
/// # Examples
///
/// ```
/// use copred_geometry::{Iso3, Mat3, Vec3};
///
/// let t = Iso3::new(Mat3::rot_z(std::f64::consts::FRAC_PI_2), Vec3::new(1.0, 0.0, 0.0));
/// let p = t.apply(Vec3::X);
/// assert!((p - Vec3::new(1.0, 1.0, 0.0)).norm() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Iso3 {
    /// Rotation part.
    pub rot: Mat3,
    /// Translation part.
    pub trans: Vec3,
}

impl Iso3 {
    /// The identity transform.
    pub const IDENTITY: Iso3 = Iso3 {
        rot: Mat3::IDENTITY,
        trans: Vec3::ZERO,
    };

    /// Creates a transform from rotation and translation.
    #[inline]
    pub const fn new(rot: Mat3, trans: Vec3) -> Self {
        Iso3 { rot, trans }
    }

    /// A pure translation.
    #[inline]
    pub fn translation(t: Vec3) -> Self {
        Iso3::new(Mat3::IDENTITY, t)
    }

    /// A pure rotation.
    #[inline]
    pub fn rotation(r: Mat3) -> Self {
        Iso3::new(r, Vec3::ZERO)
    }

    /// The Denavit–Hartenberg link transform for parameters
    /// `(theta, d, a, alpha)` (standard DH convention):
    ///
    /// `Rz(theta) · Tz(d) · Tx(a) · Rx(alpha)`
    ///
    /// This is the per-joint transform used by `copred-kinematics` to chain
    /// link frames, exactly as the paper's baseline accelerator computes
    /// "transformation matrices for all links ... using the DH parameters".
    pub fn from_dh(theta: f64, d: f64, a: f64, alpha: f64) -> Self {
        let (st, ct) = theta.sin_cos();
        let (sa, ca) = alpha.sin_cos();
        let rot = Mat3::from_rows([
            [ct, -st * ca, st * sa],
            [st, ct * ca, -ct * sa],
            [0.0, sa, ca],
        ]);
        let trans = Vec3::new(a * ct, a * st, d);
        Iso3 { rot, trans }
    }

    /// Applies the transform to a point.
    #[inline]
    pub fn apply(&self, p: Vec3) -> Vec3 {
        self.rot * p + self.trans
    }

    /// Applies only the rotation part (for directions).
    #[inline]
    pub fn apply_vec(&self, v: Vec3) -> Vec3 {
        self.rot * v
    }

    /// The inverse transform.
    pub fn inverse(&self) -> Iso3 {
        let rt = self.rot.transpose();
        Iso3::new(rt, -(rt * self.trans))
    }

    /// Returns `true` when the rotation part is a proper rotation and the
    /// translation is finite.
    pub fn is_valid(&self, tol: f64) -> bool {
        self.rot.is_rotation(tol) && self.trans.is_finite()
    }
}

impl Mul for Iso3 {
    type Output = Iso3;

    /// Composition: `(a * b).apply(p) == a.apply(b.apply(p))`.
    #[inline]
    fn mul(self, rhs: Iso3) -> Iso3 {
        Iso3 {
            rot: self.rot * rhs.rot,
            trans: self.rot * rhs.trans + self.trans,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::FRAC_PI_2;

    fn assert_close(a: Vec3, b: Vec3) {
        assert!((a - b).norm() < 1e-10, "{a} != {b}");
    }

    #[test]
    fn identity_is_noop() {
        let p = Vec3::new(1.0, 2.0, 3.0);
        assert_eq!(Iso3::IDENTITY.apply(p), p);
    }

    #[test]
    fn translation_then_rotation_composition() {
        let t = Iso3::translation(Vec3::X);
        let r = Iso3::rotation(Mat3::rot_z(FRAC_PI_2));
        // r * t first translates, then rotates.
        let p = (r * t).apply(Vec3::ZERO);
        assert_close(p, Vec3::Y);
        // t * r first rotates, then translates.
        let q = (t * r).apply(Vec3::X);
        assert_close(q, Vec3::new(1.0, 1.0, 0.0));
    }

    #[test]
    fn composition_matches_sequential_application() {
        let a = Iso3::new(Mat3::rot_x(0.3), Vec3::new(0.1, -0.2, 0.5));
        let b = Iso3::new(Mat3::rot_z(-1.2), Vec3::new(2.0, 0.0, -1.0));
        let p = Vec3::new(0.7, 0.8, 0.9);
        assert_close((a * b).apply(p), a.apply(b.apply(p)));
    }

    #[test]
    fn inverse_roundtrips() {
        let t = Iso3::new(
            Mat3::rot_y(0.8) * Mat3::rot_z(0.2),
            Vec3::new(1.0, 2.0, 3.0),
        );
        let p = Vec3::new(-0.5, 0.25, 4.0);
        assert_close(t.inverse().apply(t.apply(p)), p);
        assert_close(t.apply(t.inverse().apply(p)), p);
    }

    #[test]
    fn dh_zero_params_is_identity() {
        let t = Iso3::from_dh(0.0, 0.0, 0.0, 0.0);
        assert!(t.is_valid(1e-12));
        assert_close(t.apply(Vec3::new(1.0, 2.0, 3.0)), Vec3::new(1.0, 2.0, 3.0));
    }

    #[test]
    fn dh_pure_theta_rotates_about_z() {
        let t = Iso3::from_dh(FRAC_PI_2, 0.0, 0.0, 0.0);
        assert_close(t.apply(Vec3::X), Vec3::Y);
    }

    #[test]
    fn dh_link_length_translates_along_rotated_x() {
        // theta=90deg, a=2: new origin at (0, 2, 0).
        let t = Iso3::from_dh(FRAC_PI_2, 0.0, 2.0, 0.0);
        assert_close(t.apply(Vec3::ZERO), Vec3::new(0.0, 2.0, 0.0));
    }

    #[test]
    fn dh_offset_translates_along_z() {
        let t = Iso3::from_dh(0.0, 1.5, 0.0, 0.0);
        assert_close(t.apply(Vec3::ZERO), Vec3::new(0.0, 0.0, 1.5));
    }

    #[test]
    fn dh_alpha_twists_about_x() {
        let t = Iso3::from_dh(0.0, 0.0, 0.0, FRAC_PI_2);
        assert_close(t.apply(Vec3::Y), Vec3::Z);
    }

    #[test]
    fn dh_transforms_are_valid_rotations() {
        for i in 0..20 {
            let th = i as f64 * 0.37 - 3.0;
            let t = Iso3::from_dh(th, 0.3, 0.2, th * 0.5);
            assert!(t.is_valid(1e-9), "invalid DH transform at {th}");
        }
    }
}
