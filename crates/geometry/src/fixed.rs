//! 16-bit fixed-point coordinate encoding.
//!
//! The paper represents a link's center with "three 16-bit fixed point
//! representations of its Cartesian coordinates" and the COORD hash keeps the
//! top `k` most-significant bits of each (Fig. 10). [`FixedEncoder`] performs
//! that quantization relative to a workspace bounding box: each axis of the
//! workspace is mapped linearly onto the full `u16` range, so an MSB slice is
//! exactly a uniform spatial bin along that axis.

use crate::aabb::Aabb;
use crate::vec3::Vec3;

/// Width, in bits, of the fixed-point coordinate representation.
pub const FIXED_BITS: u32 = 16;

/// Quantizes world coordinates into 16-bit fixed point over a workspace box.
///
/// # Examples
///
/// ```
/// use copred_geometry::{Aabb, FixedEncoder, Vec3};
///
/// let ws = Aabb::new(Vec3::splat(-1.0), Vec3::splat(1.0));
/// let enc = FixedEncoder::new(ws);
/// let q = enc.encode(Vec3::ZERO);
/// // The workspace center quantizes to mid-range on every axis.
/// assert!(q.iter().all(|&c| (c as i32 - 0x8000).abs() <= 1));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FixedEncoder {
    workspace: Aabb,
    inv_extent: Vec3,
}

impl FixedEncoder {
    /// Creates an encoder over `workspace`. Coordinates outside the box are
    /// clamped to its boundary before quantization (saturating fixed point).
    ///
    /// # Panics
    ///
    /// Panics when any workspace extent is zero or negative.
    pub fn new(workspace: Aabb) -> Self {
        let e = workspace.extents();
        assert!(
            e.x > 0.0 && e.y > 0.0 && e.z > 0.0,
            "workspace must have positive extent on every axis, got {e}"
        );
        FixedEncoder {
            workspace,
            inv_extent: Vec3::new(1.0 / e.x, 1.0 / e.y, 1.0 / e.z),
        }
    }

    /// The workspace this encoder quantizes over.
    pub fn workspace(&self) -> &Aabb {
        &self.workspace
    }

    /// Quantizes one coordinate on axis `axis` (0=x, 1=y, 2=z).
    pub fn encode_axis(&self, v: f64, axis: usize) -> u16 {
        let lo = self.workspace.min[axis];
        let t = ((v - lo) * self.inv_extent[axis]).clamp(0.0, 1.0);
        // Scale so that the max coordinate maps to u16::MAX exactly.
        (t * f64::from(u16::MAX)).round() as u16
    }

    /// Quantizes a point to `[qx, qy, qz]` 16-bit fixed-point values.
    pub fn encode(&self, p: Vec3) -> [u16; 3] {
        [
            self.encode_axis(p.x, 0),
            self.encode_axis(p.y, 1),
            self.encode_axis(p.z, 2),
        ]
    }

    /// Quantizes a slice of coordinates along one axis (SoA batch form).
    ///
    /// Bit-identical to calling [`Self::encode_axis`] per element; the
    /// per-axis slice layout keeps the subtract/scale/clamp chain in a
    /// vectorizable loop for the batched COORD hash.
    ///
    /// # Panics
    ///
    /// Panics when `out` is shorter than `vs`.
    pub fn encode_axis_slice(&self, vs: &[f64], axis: usize, out: &mut [u16]) {
        assert!(out.len() >= vs.len(), "output buffer too short");
        let lo = self.workspace.min[axis];
        let inv = self.inv_extent[axis];
        for (o, &v) in out.iter_mut().zip(vs) {
            let t = ((v - lo) * inv).clamp(0.0, 1.0);
            *o = (t * f64::from(u16::MAX)).round() as u16;
        }
    }

    /// Reconstructs the (bin-center) world coordinate of a quantized point.
    pub fn decode(&self, q: [u16; 3]) -> Vec3 {
        let e = self.workspace.extents();
        Vec3::new(
            self.workspace.min.x + f64::from(q[0]) / f64::from(u16::MAX) * e.x,
            self.workspace.min.y + f64::from(q[1]) / f64::from(u16::MAX) * e.y,
            self.workspace.min.z + f64::from(q[2]) / f64::from(u16::MAX) * e.z,
        )
    }

    /// Spatial size of one MSB bin when keeping `k` bits per axis.
    pub fn bin_size(&self, k: u32) -> Vec3 {
        let bins = f64::from(1u32 << k);
        self.workspace.extents() / bins
    }
}

/// Keeps the `k` most-significant bits of a 16-bit fixed-point value.
///
/// This is the paper's Fig. 10 operation: "four MSBs of each coordinate are
/// used for hash code generation, and the rest of the bits are discarded."
///
/// # Panics
///
/// Panics when `k > 16`.
#[inline]
pub fn msbs(q: u16, k: u32) -> u16 {
    assert!(k <= FIXED_BITS, "cannot keep {k} MSBs of a 16-bit value");
    if k == 0 {
        0
    } else {
        q >> (FIXED_BITS - k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ws() -> Aabb {
        Aabb::new(Vec3::splat(-2.0), Vec3::splat(2.0))
    }

    #[test]
    fn endpoints_map_to_extremes() {
        let enc = FixedEncoder::new(ws());
        assert_eq!(enc.encode(Vec3::splat(-2.0)), [0, 0, 0]);
        assert_eq!(enc.encode(Vec3::splat(2.0)), [u16::MAX; 3]);
    }

    #[test]
    fn out_of_range_saturates() {
        let enc = FixedEncoder::new(ws());
        assert_eq!(enc.encode(Vec3::splat(-100.0)), [0, 0, 0]);
        assert_eq!(enc.encode(Vec3::splat(100.0)), [u16::MAX; 3]);
    }

    #[test]
    fn quantization_is_monotone() {
        let enc = FixedEncoder::new(ws());
        let mut prev = 0u16;
        for i in 0..=100 {
            let v = -2.0 + 4.0 * (i as f64) / 100.0;
            let q = enc.encode_axis(v, 0);
            assert!(q >= prev, "quantization not monotone at {v}");
            prev = q;
        }
    }

    #[test]
    fn decode_roundtrip_within_one_lsb() {
        let enc = FixedEncoder::new(ws());
        let p = Vec3::new(0.123, -1.9, 1.7);
        let back = enc.decode(enc.encode(p));
        let lsb = 4.0 / f64::from(u16::MAX);
        assert!((back - p).abs().max_element() <= lsb);
    }

    #[test]
    fn axis_slice_matches_scalar_bitwise() {
        let enc = FixedEncoder::new(ws());
        let vs: Vec<f64> = (0..37).map(|i| -3.0 + 0.17 * i as f64).collect();
        for axis in 0..3 {
            let mut out = vec![0u16; vs.len()];
            enc.encode_axis_slice(&vs, axis, &mut out);
            for (&v, &q) in vs.iter().zip(&out) {
                assert_eq!(q, enc.encode_axis(v, axis));
            }
        }
    }

    #[test]
    fn msb_extraction() {
        assert_eq!(msbs(0xFFFF, 4), 0xF);
        assert_eq!(msbs(0x8000, 1), 1);
        assert_eq!(msbs(0x7FFF, 1), 0);
        assert_eq!(msbs(0xABCD, 8), 0xAB);
        assert_eq!(msbs(0x1234, 16), 0x1234);
        assert_eq!(msbs(0xFFFF, 0), 0);
    }

    #[test]
    #[should_panic(expected = "cannot keep")]
    fn msbs_rejects_wide_k() {
        msbs(0, 17);
    }

    #[test]
    fn nearby_points_share_msb_bins() {
        let enc = FixedEncoder::new(ws());
        // Two points 1 mm apart in a 4 m workspace share a 4-bit bin (25 cm)
        // unless they straddle a bin boundary; pick points mid-bin.
        let a = Vec3::new(0.125, 0.125, 0.125);
        let b = a + Vec3::splat(0.001);
        let (qa, qb) = (enc.encode(a), enc.encode(b));
        for i in 0..3 {
            assert_eq!(msbs(qa[i], 4), msbs(qb[i], 4));
        }
    }

    #[test]
    fn distant_points_differ_in_msb_bins() {
        let enc = FixedEncoder::new(ws());
        let qa = enc.encode(Vec3::splat(-1.5));
        let qb = enc.encode(Vec3::splat(1.5));
        assert_ne!(msbs(qa[0], 2), msbs(qb[0], 2));
    }

    #[test]
    fn bin_size_halves_per_bit() {
        let enc = FixedEncoder::new(ws());
        let b4 = enc.bin_size(4);
        let b5 = enc.bin_size(5);
        assert!((b4.x - 0.25).abs() < 1e-12);
        assert!((b5.x - 0.125).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive extent")]
    fn degenerate_workspace_rejected() {
        let flat = Aabb::new(Vec3::ZERO, Vec3::new(1.0, 0.0, 1.0));
        let _ = FixedEncoder::new(flat);
    }
}
