//! # copred-geometry
//!
//! Geometry substrate for the COORD collision-prediction reproduction:
//! vectors, rotations, rigid transforms, bounding volumes (AABB / OBB /
//! sphere), 16-bit fixed-point coordinate quantization, voxel grids and
//! octrees.
//!
//! Everything here is allocation-free value types plus two container types
//! ([`VoxelGrid`], [`Octree`]) used by the Dadu-P accelerator substrate.
//!
//! ## Example
//!
//! ```
//! use copred_geometry::{Aabb, FixedEncoder, Mat3, Obb, Vec3};
//!
//! // A robot link bounded by an OBB, tested against a cuboid obstacle:
//! let link = Obb::new(Vec3::new(0.3, 0.0, 0.5), Mat3::rot_y(0.4), Vec3::new(0.25, 0.05, 0.05));
//! let obstacle = Aabb::new(Vec3::new(0.2, -0.2, 0.3), Vec3::new(0.6, 0.2, 0.7));
//! assert!(link.intersects_aabb(&obstacle));
//!
//! // The COORD hash quantizes the link center to 16-bit fixed point:
//! let ws = Aabb::new(Vec3::splat(-1.0), Vec3::splat(1.0));
//! let q = FixedEncoder::new(ws).encode(link.center);
//! assert_eq!(q.len(), 3);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod aabb;
mod batch;
mod fixed;
mod iso3;
mod mat3;
mod obb;
mod octree;
mod sphere;
mod vec3;
mod voxel;

pub use aabb::Aabb;
pub use batch::{BatchAabbs, BatchObb, OBB_LANES};
pub use fixed::{msbs, FixedEncoder, FIXED_BITS};
pub use iso3::Iso3;
pub use mat3::Mat3;
pub use obb::{Obb, BOUNDARY_EPS, SAT_AXIS_COUNT};
pub use octree::Octree;
pub use sphere::Sphere;
pub use vec3::Vec3;
pub use voxel::{VoxelCoord, VoxelGrid};
