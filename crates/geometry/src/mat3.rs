//! 3×3 rotation matrices.
//!
//! [`Mat3`] is used for link orientations and OBB axes. Rows/columns are
//! stored row-major; the columns of a rotation matrix are the local frame's
//! axes expressed in world coordinates.

use crate::vec3::Vec3;
use std::ops::Mul;

/// A 3×3 matrix of `f64`, row-major.
///
/// # Examples
///
/// ```
/// use copred_geometry::{Mat3, Vec3};
///
/// let r = Mat3::rot_z(std::f64::consts::FRAC_PI_2);
/// let v = r * Vec3::X;
/// assert!((v - Vec3::Y).norm() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mat3 {
    /// Rows of the matrix.
    pub rows: [[f64; 3]; 3],
}

impl Default for Mat3 {
    fn default() -> Self {
        Mat3::IDENTITY
    }
}

impl Mat3 {
    /// The identity matrix.
    pub const IDENTITY: Mat3 = Mat3 {
        rows: [[1.0, 0.0, 0.0], [0.0, 1.0, 0.0], [0.0, 0.0, 1.0]],
    };

    /// Creates a matrix from rows.
    #[inline]
    pub const fn from_rows(rows: [[f64; 3]; 3]) -> Self {
        Mat3 { rows }
    }

    /// Creates a matrix whose columns are `x`, `y`, `z`.
    #[inline]
    pub fn from_cols(x: Vec3, y: Vec3, z: Vec3) -> Self {
        Mat3 {
            rows: [[x.x, y.x, z.x], [x.y, y.y, z.y], [x.z, y.z, z.z]],
        }
    }

    /// Rotation of `angle` radians about the X axis.
    pub fn rot_x(angle: f64) -> Self {
        let (s, c) = angle.sin_cos();
        Mat3::from_rows([[1.0, 0.0, 0.0], [0.0, c, -s], [0.0, s, c]])
    }

    /// Rotation of `angle` radians about the Y axis.
    pub fn rot_y(angle: f64) -> Self {
        let (s, c) = angle.sin_cos();
        Mat3::from_rows([[c, 0.0, s], [0.0, 1.0, 0.0], [-s, 0.0, c]])
    }

    /// Rotation of `angle` radians about the Z axis.
    pub fn rot_z(angle: f64) -> Self {
        let (s, c) = angle.sin_cos();
        Mat3::from_rows([[c, -s, 0.0], [s, c, 0.0], [0.0, 0.0, 1.0]])
    }

    /// Rotation of `angle` radians about an arbitrary (normalized) `axis`
    /// using Rodrigues' formula.
    pub fn from_axis_angle(axis: Vec3, angle: f64) -> Self {
        let a = axis.normalized();
        let (s, c) = angle.sin_cos();
        let t = 1.0 - c;
        let (x, y, z) = (a.x, a.y, a.z);
        Mat3::from_rows([
            [t * x * x + c, t * x * y - s * z, t * x * z + s * y],
            [t * x * y + s * z, t * y * y + c, t * y * z - s * x],
            [t * x * z - s * y, t * y * z + s * x, t * z * z + c],
        ])
    }

    /// Element at `(row, col)`.
    #[inline]
    pub fn at(&self, row: usize, col: usize) -> f64 {
        self.rows[row][col]
    }

    /// The `i`-th column (the `i`-th local axis for rotation matrices).
    #[inline]
    pub fn col(&self, i: usize) -> Vec3 {
        Vec3::new(self.rows[0][i], self.rows[1][i], self.rows[2][i])
    }

    /// The `i`-th row.
    #[inline]
    pub fn row(&self, i: usize) -> Vec3 {
        Vec3::from_array(self.rows[i])
    }

    /// Matrix transpose. For rotation matrices this is the inverse.
    pub fn transpose(&self) -> Mat3 {
        let mut m = [[0.0; 3]; 3];
        for (r, row) in m.iter_mut().enumerate() {
            for (c, cell) in row.iter_mut().enumerate() {
                *cell = self.rows[c][r];
            }
        }
        Mat3 { rows: m }
    }

    /// Matrix determinant.
    pub fn det(&self) -> f64 {
        let m = &self.rows;
        m[0][0] * (m[1][1] * m[2][2] - m[1][2] * m[2][1])
            - m[0][1] * (m[1][0] * m[2][2] - m[1][2] * m[2][0])
            + m[0][2] * (m[1][0] * m[2][1] - m[1][1] * m[2][0])
    }

    /// Returns `true` when the matrix is orthonormal with determinant +1
    /// (i.e. a proper rotation) within tolerance `tol`.
    pub fn is_rotation(&self, tol: f64) -> bool {
        let t = *self * self.transpose();
        let mut ortho = true;
        for r in 0..3 {
            for c in 0..3 {
                let expect = if r == c { 1.0 } else { 0.0 };
                if (t.rows[r][c] - expect).abs() > tol {
                    ortho = false;
                }
            }
        }
        ortho && (self.det() - 1.0).abs() < tol
    }
}

impl Mul<Vec3> for Mat3 {
    type Output = Vec3;
    #[inline]
    fn mul(self, v: Vec3) -> Vec3 {
        Vec3::new(self.row(0).dot(v), self.row(1).dot(v), self.row(2).dot(v))
    }
}

impl Mul<Mat3> for Mat3 {
    type Output = Mat3;
    fn mul(self, rhs: Mat3) -> Mat3 {
        let mut m = [[0.0; 3]; 3];
        for (r, row) in m.iter_mut().enumerate() {
            for (c, cell) in row.iter_mut().enumerate() {
                *cell = self.row(r).dot(rhs.col(c));
            }
        }
        Mat3 { rows: m }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, PI};

    fn assert_close(a: Vec3, b: Vec3) {
        assert!((a - b).norm() < 1e-10, "{a} != {b}");
    }

    #[test]
    fn identity_leaves_vectors_unchanged() {
        let v = Vec3::new(1.0, -2.0, 3.0);
        assert_eq!(Mat3::IDENTITY * v, v);
    }

    #[test]
    fn principal_rotations() {
        assert_close(Mat3::rot_z(FRAC_PI_2) * Vec3::X, Vec3::Y);
        assert_close(Mat3::rot_x(FRAC_PI_2) * Vec3::Y, Vec3::Z);
        assert_close(Mat3::rot_y(FRAC_PI_2) * Vec3::Z, Vec3::X);
        assert_close(Mat3::rot_z(PI) * Vec3::X, -Vec3::X);
    }

    #[test]
    fn axis_angle_matches_principal() {
        let a = Mat3::from_axis_angle(Vec3::Z, 0.7);
        let b = Mat3::rot_z(0.7);
        for r in 0..3 {
            for c in 0..3 {
                assert!((a.rows[r][c] - b.rows[r][c]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn rotations_are_orthonormal() {
        let r = Mat3::rot_x(0.3) * Mat3::rot_y(1.1) * Mat3::rot_z(-2.0);
        assert!(r.is_rotation(1e-10));
        assert!((r.det() - 1.0).abs() < 1e-10);
    }

    #[test]
    fn transpose_is_inverse_for_rotation() {
        let r = Mat3::from_axis_angle(Vec3::new(1.0, 2.0, 3.0), 0.9);
        let i = r * r.transpose();
        for (rr, row) in i.rows.iter().enumerate() {
            for (cc, &v) in row.iter().enumerate() {
                let expect = if rr == cc { 1.0 } else { 0.0 };
                assert!((v - expect).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn composition_applies_right_to_left() {
        let r1 = Mat3::rot_z(FRAC_PI_2);
        let r2 = Mat3::rot_x(FRAC_PI_2);
        // (r2 * r1) v == r2 (r1 v)
        let v = Vec3::new(1.0, 0.0, 0.0);
        assert_close((r2 * r1) * v, r2 * (r1 * v));
    }

    #[test]
    fn cols_and_rows_roundtrip() {
        let r = Mat3::rot_y(0.4);
        let rebuilt = Mat3::from_cols(r.col(0), r.col(1), r.col(2));
        assert_eq!(r, rebuilt);
        assert_eq!(r.at(0, 2), r.row(0)[2]);
    }

    #[test]
    fn non_rotation_detected() {
        let scaled = Mat3::from_rows([[2.0, 0.0, 0.0], [0.0, 1.0, 0.0], [0.0, 0.0, 1.0]]);
        assert!(!scaled.is_rotation(1e-9));
        // Reflection: orthonormal but det = -1.
        let reflect = Mat3::from_rows([[-1.0, 0.0, 0.0], [0.0, 1.0, 0.0], [0.0, 0.0, 1.0]]);
        assert!(!reflect.is_rotation(1e-9));
    }
}
