//! Oriented bounding boxes and the separating-axis intersection test.
//!
//! OBBs are the paper's primary bounding volume: each robot link is bounded
//! by one OBB (Fig. 4b), and a collision detection query (CDQ) is an
//! OBB-environment intersection test. The OBB-OBB test is the classic
//! 15-axis separating-axis theorem (SAT) formulation (Gottschalk et al.),
//! the same test the baseline accelerator's CDU evaluates in cascaded
//! early-exit stages.

use crate::aabb::Aabb;
use crate::iso3::Iso3;
use crate::mat3::Mat3;
use crate::vec3::Vec3;

/// The single boundary/conservativeness epsilon of every OBB test in this
/// crate.
///
/// Policy: **touching counts as intersecting, and the test is conservative
/// against floating-point noise by `BOUNDARY_EPS`.** Concretely:
///
/// * [`Obb::contains`] accepts points up to `BOUNDARY_EPS` outside a face;
/// * the SAT test adds `BOUNDARY_EPS` to every `|R|` entry, which keeps the
///   9 near-parallel edge-edge cross axes (whose true axis degenerates to a
///   zero vector) from manufacturing a separating axis out of rounding
///   error, and makes exact face touching register as intersection.
///
/// `1e-10` is large enough to absorb the worst-case error of the chained
/// multiply-adds on workspace-scale (meter-range) operands and small enough
/// to be geometrically meaningless (0.1 nm on a meter-scale robot). Both
/// call sites **must** share this constant: the batched SoA kernels
/// (`crate::batch`) are verified bit-identical against the scalar test, and
/// two different epsilons here would make "which scalar reference?"
/// ambiguous at the boundary. (`contains` historically used `1e-12` while
/// the SAT used `1e-10`, making containment 100× stricter than
/// intersection: two unit cubes with a 5e-11 gap "intersected", yet a point
/// on their touching faces was "outside" both.)
///
/// Note the two tests apply the epsilon differently by construction:
/// `contains` pads each half-extent additively, while the SAT pads the
/// `|R|` entries, so its slack scales with the partner's extents (zero for
/// a degenerate point partner). The policy unifies the *constant*, not the
/// band shape.
pub const BOUNDARY_EPS: f64 = 1e-10;

/// An oriented box: a center, three orthonormal axes, and half-extents along
/// those axes.
///
/// # Examples
///
/// ```
/// use copred_geometry::{Obb, Mat3, Vec3};
///
/// let a = Obb::new(Vec3::ZERO, Mat3::IDENTITY, Vec3::splat(1.0));
/// let b = Obb::new(Vec3::new(1.5, 0.0, 0.0), Mat3::rot_z(0.4), Vec3::splat(1.0));
/// assert!(a.intersects(&b));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Obb {
    /// Box center in world coordinates. This is the point the COORD hash
    /// function quantizes (paper Fig. 10).
    pub center: Vec3,
    /// Orientation: columns are the box's local axes in world coordinates.
    pub rot: Mat3,
    /// Half side lengths along the local axes. All non-negative.
    pub half_extents: Vec3,
}

impl Obb {
    /// Creates an OBB.
    ///
    /// # Panics
    ///
    /// Panics in debug builds when any half-extent is negative.
    pub fn new(center: Vec3, rot: Mat3, half_extents: Vec3) -> Self {
        debug_assert!(
            half_extents.x >= 0.0 && half_extents.y >= 0.0 && half_extents.z >= 0.0,
            "negative OBB half-extents: {half_extents}"
        );
        Obb {
            center,
            rot,
            half_extents,
        }
    }

    /// An axis-aligned OBB (identity orientation).
    pub fn axis_aligned(center: Vec3, half_extents: Vec3) -> Self {
        Obb::new(center, Mat3::IDENTITY, half_extents)
    }

    /// Converts an [`Aabb`] into the equivalent axis-aligned OBB.
    pub fn from_aabb(aabb: &Aabb) -> Self {
        Obb::axis_aligned(aabb.center(), aabb.half_extents())
    }

    /// Applies a rigid transform, producing the OBB in the new frame.
    ///
    /// This is how a link's canonical (local-frame) bounding box becomes a
    /// world-space CDQ operand: the link transform from forward kinematics is
    /// applied to the box.
    pub fn transformed(&self, t: &Iso3) -> Obb {
        Obb {
            center: t.apply(self.center),
            rot: t.rot * self.rot,
            half_extents: self.half_extents,
        }
    }

    /// The 8 corner points in world coordinates.
    pub fn corners(&self) -> [Vec3; 8] {
        let ax = self.rot.col(0) * self.half_extents.x;
        let ay = self.rot.col(1) * self.half_extents.y;
        let az = self.rot.col(2) * self.half_extents.z;
        let c = self.center;
        [
            c - ax - ay - az,
            c + ax - ay - az,
            c - ax + ay - az,
            c + ax + ay - az,
            c - ax - ay + az,
            c + ax - ay + az,
            c - ax + ay + az,
            c + ax + ay + az,
        ]
    }

    /// Smallest AABB enclosing the OBB.
    pub fn aabb(&self) -> Aabb {
        // |R| * h gives the world-axis extents of a rotated box.
        let mut ext = Vec3::ZERO;
        for i in 0..3 {
            let axis = self.rot.col(i).abs() * self.half_extents[i];
            ext += axis;
        }
        Aabb::from_center_half_extents(self.center, ext)
    }

    /// Returns `true` when `p` is inside or on the box.
    ///
    /// Boundary handling follows [`BOUNDARY_EPS`]: a point up to
    /// `BOUNDARY_EPS` outside a face still counts as contained, matching the
    /// conservativeness of the SAT intersection test.
    pub fn contains(&self, p: Vec3) -> bool {
        let d = p - self.center;
        for i in 0..3 {
            let proj = d.dot(self.rot.col(i));
            if proj.abs() > self.half_extents[i] + BOUNDARY_EPS {
                return false;
            }
        }
        true
    }

    /// Volume of the box.
    pub fn volume(&self) -> f64 {
        8.0 * self.half_extents.x * self.half_extents.y * self.half_extents.z
    }

    /// OBB-OBB intersection via the separating-axis theorem.
    ///
    /// Tests the 15 candidate axes (3 face normals of each box plus the 9
    /// edge-edge cross products). Returns `true` when no separating axis
    /// exists. The test is conservative against floating-point noise: a tiny
    /// epsilon keeps near-parallel edge axes from producing false negatives.
    pub fn intersects(&self, other: &Obb) -> bool {
        sat_obb_obb(self, other)
    }

    /// OBB vs AABB intersection (the AABB is treated as an axis-aligned OBB).
    pub fn intersects_aabb(&self, aabb: &Aabb) -> bool {
        self.intersects(&Obb::from_aabb(aabb))
    }
}

/// Number of elementary axis tests the SAT evaluates in the worst case.
/// The accelerator's CDU model uses this to derive per-CDQ cycle counts.
pub const SAT_AXIS_COUNT: usize = 15;

fn sat_obb_obb(a: &Obb, b: &Obb) -> bool {
    // Rotation matrix expressing b in a's frame, plus its absolute value
    // padded by the crate-wide boundary epsilon (see [`BOUNDARY_EPS`]).
    let mut r = [[0.0f64; 3]; 3];
    let mut abs_r = [[0.0f64; 3]; 3];
    for (i, (row_r, row_abs)) in r.iter_mut().zip(abs_r.iter_mut()).enumerate() {
        for j in 0..3 {
            let v = a.rot.col(i).dot(b.rot.col(j));
            row_r[j] = v;
            row_abs[j] = v.abs() + BOUNDARY_EPS;
        }
    }
    // Translation in a's frame.
    let d = b.center - a.center;
    let t = [
        d.dot(a.rot.col(0)),
        d.dot(a.rot.col(1)),
        d.dot(a.rot.col(2)),
    ];
    let ae = a.half_extents.to_array();
    let be = b.half_extents.to_array();

    // Axes L = A0, A1, A2.
    for i in 0..3 {
        let ra = ae[i];
        let rb = be[0] * abs_r[i][0] + be[1] * abs_r[i][1] + be[2] * abs_r[i][2];
        if t[i].abs() > ra + rb {
            return false;
        }
    }
    // Axes L = B0, B1, B2.
    for j in 0..3 {
        let ra = ae[0] * abs_r[0][j] + ae[1] * abs_r[1][j] + ae[2] * abs_r[2][j];
        let rb = be[j];
        let tp = t[0] * r[0][j] + t[1] * r[1][j] + t[2] * r[2][j];
        if tp.abs() > ra + rb {
            return false;
        }
    }
    // Axes L = Ai x Bj.
    for i in 0..3 {
        let (i1, i2) = ((i + 1) % 3, (i + 2) % 3);
        for j in 0..3 {
            let (j1, j2) = ((j + 1) % 3, (j + 2) % 3);
            let ra = ae[i1] * abs_r[i2][j] + ae[i2] * abs_r[i1][j];
            let rb = be[j1] * abs_r[i][j2] + be[j2] * abs_r[i][j1];
            let tp = t[i2] * r[i1][j] - t[i1] * r[i2][j];
            if tp.abs() > ra + rb {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::FRAC_PI_4;

    fn unit_at(center: Vec3) -> Obb {
        Obb::axis_aligned(center, Vec3::splat(0.5))
    }

    #[test]
    fn overlapping_axis_aligned_boxes_intersect() {
        assert!(unit_at(Vec3::ZERO).intersects(&unit_at(Vec3::new(0.9, 0.0, 0.0))));
        assert!(unit_at(Vec3::ZERO).intersects(&unit_at(Vec3::ZERO)));
    }

    #[test]
    fn disjoint_axis_aligned_boxes_do_not_intersect() {
        assert!(!unit_at(Vec3::ZERO).intersects(&unit_at(Vec3::new(1.1, 0.0, 0.0))));
        assert!(!unit_at(Vec3::ZERO).intersects(&unit_at(Vec3::new(0.0, 0.0, -1.5))));
    }

    #[test]
    fn rotated_box_corner_overlap() {
        // Two unit cubes 1.2 apart: disjoint axis-aligned, but rotating one
        // by 45 degrees extends its reach along x to sqrt(2)/2 + 0.5 > 1.2.
        let a = unit_at(Vec3::ZERO);
        let b = Obb::new(
            Vec3::new(1.2, 0.0, 0.0),
            Mat3::rot_z(FRAC_PI_4),
            Vec3::splat(0.5),
        );
        assert!(!a.intersects(&unit_at(Vec3::new(1.2, 0.0, 0.0))));
        assert!(a.intersects(&b));
    }

    #[test]
    fn rotated_box_separation_detected_by_edge_axes() {
        // Diagonal configurations where only a cross-product axis separates.
        let a = Obb::new(Vec3::ZERO, Mat3::rot_x(FRAC_PI_4), Vec3::new(1.0, 0.1, 0.1));
        let b = Obb::new(
            Vec3::new(0.0, 1.2, 1.2),
            Mat3::rot_y(FRAC_PI_4),
            Vec3::new(1.0, 0.1, 0.1),
        );
        assert!(!a.intersects(&b));
    }

    #[test]
    fn intersection_is_symmetric() {
        let a = Obb::new(
            Vec3::new(0.2, 0.1, 0.0),
            Mat3::rot_z(0.3),
            Vec3::new(0.4, 0.7, 0.2),
        );
        let b = Obb::new(
            Vec3::new(0.8, 0.4, 0.1),
            Mat3::rot_x(1.0),
            Vec3::new(0.3, 0.3, 0.9),
        );
        assert_eq!(a.intersects(&b), b.intersects(&a));
    }

    #[test]
    fn contains_respects_orientation() {
        let b = Obb::new(Vec3::ZERO, Mat3::rot_z(FRAC_PI_4), Vec3::new(1.0, 0.1, 0.1));
        // Point along the rotated long axis is inside...
        let long_dir = Mat3::rot_z(FRAC_PI_4) * Vec3::X;
        assert!(b.contains(long_dir * 0.9));
        // ...but the same distance along world X is outside.
        assert!(!b.contains(Vec3::X * 0.9));
    }

    #[test]
    fn aabb_encloses_all_corners() {
        let b = Obb::new(
            Vec3::new(1.0, -2.0, 0.5),
            Mat3::rot_y(0.7) * Mat3::rot_z(0.3),
            Vec3::new(0.5, 1.0, 0.25),
        );
        let bb = b.aabb();
        for c in b.corners() {
            assert!(bb.contains(c), "corner {c} escapes {bb:?}");
        }
    }

    #[test]
    fn transform_preserves_shape() {
        let b = Obb::new(Vec3::X, Mat3::rot_z(0.2), Vec3::new(0.3, 0.2, 0.1));
        let t = Iso3::new(Mat3::rot_x(0.5), Vec3::new(0.0, 1.0, 2.0));
        let tb = b.transformed(&t);
        assert!((tb.volume() - b.volume()).abs() < 1e-12);
        assert!(tb.rot.is_rotation(1e-9));
        assert_eq!(tb.center, t.apply(b.center));
    }

    #[test]
    fn obb_vs_aabb() {
        let aabb = Aabb::new(Vec3::ZERO, Vec3::ONE);
        let hit = Obb::new(
            Vec3::new(1.2, 0.5, 0.5),
            Mat3::rot_z(FRAC_PI_4),
            Vec3::splat(0.3),
        );
        let miss = Obb::new(
            Vec3::new(2.0, 0.5, 0.5),
            Mat3::rot_z(FRAC_PI_4),
            Vec3::splat(0.3),
        );
        assert!(hit.intersects_aabb(&aabb));
        assert!(!miss.intersects_aabb(&aabb));
    }

    #[test]
    fn nested_boxes_intersect() {
        let outer = Obb::axis_aligned(Vec3::ZERO, Vec3::splat(2.0));
        let inner = Obb::new(Vec3::new(0.1, 0.0, 0.0), Mat3::rot_z(1.0), Vec3::splat(0.2));
        assert!(outer.intersects(&inner));
        assert!(inner.intersects(&outer));
    }

    #[test]
    fn boundary_touching_faces_intersect() {
        // Exact face contact: unit cubes at distance exactly 1.0. The SAT
        // epsilon makes touching count as intersecting.
        assert!(unit_at(Vec3::ZERO).intersects(&unit_at(Vec3::new(1.0, 0.0, 0.0))));
        assert!(unit_at(Vec3::ZERO).intersects(&unit_at(Vec3::new(0.0, 1.0, 0.0))));
        assert!(unit_at(Vec3::ZERO).intersects(&unit_at(Vec3::new(0.0, 0.0, 1.0))));
        // Edge and corner contact too.
        assert!(unit_at(Vec3::ZERO).intersects(&unit_at(Vec3::new(1.0, 1.0, 0.0))));
        assert!(unit_at(Vec3::ZERO).intersects(&unit_at(Vec3::new(1.0, 1.0, 1.0))));
    }

    #[test]
    fn contains_and_sat_share_the_boundary_constant() {
        // The regression this PR fixes: `contains` used 1e-12 while the SAT
        // used 1e-10, so containment was 100x stricter than intersection.
        // With one shared BOUNDARY_EPS, a sub-epsilon face gap is treated
        // consistently: the cubes intersect AND a point in the gap is
        // contained.
        let b = unit_at(Vec3::ZERO);
        for scale in [0.25f64, 0.5, 0.999999] {
            let p = Vec3::new(0.5 + BOUNDARY_EPS * scale, 0.0, 0.0);
            assert!(
                b.contains(p),
                "point {scale}*eps outside the face must still be contained"
            );
            // A unit cube whose face sits at the same sub-epsilon gap.
            let gap_cube = unit_at(Vec3::new(1.0 + BOUNDARY_EPS * scale, 0.0, 0.0));
            assert!(b.intersects(&gap_cube), "sub-epsilon gap must intersect");
        }
        // Clearly past the epsilon band both say no.
        let p = Vec3::new(0.5 + 1e-8, 0.0, 0.0);
        assert!(!b.contains(p));
        assert!(!b.intersects(&unit_at(Vec3::new(1.0 + 1e-8, 0.0, 0.0))));
    }

    #[test]
    fn near_parallel_edge_axes_do_not_false_negative() {
        // Two long thin boxes rotated by a sub-epsilon angle: the edge-edge
        // cross axes degenerate toward the zero vector. Without the +EPS
        // padding on |R| the normalized axis test can manufacture a phantom
        // separating axis. The boxes clearly overlap; they must intersect.
        let tiny = 1e-13;
        let a = Obb::new(Vec3::ZERO, Mat3::IDENTITY, Vec3::new(2.0, 0.05, 0.05));
        let b = Obb::new(
            Vec3::new(0.0, 0.05, 0.0),
            Mat3::rot_x(tiny) * Mat3::rot_z(tiny),
            Vec3::new(2.0, 0.05, 0.05),
        );
        assert!(a.intersects(&b));
        assert!(b.intersects(&a));
        // And a genuinely separated near-parallel pair must still miss.
        let c = Obb::new(
            Vec3::new(0.0, 0.2, 0.0),
            Mat3::rot_x(tiny),
            Vec3::new(2.0, 0.05, 0.05),
        );
        assert!(!a.intersects(&c));
    }

    #[test]
    fn degenerate_flat_box() {
        // Zero thickness along z still intersects when overlapping in plane.
        let flat = Obb::axis_aligned(Vec3::ZERO, Vec3::new(1.0, 1.0, 0.0));
        let cube = unit_at(Vec3::new(0.5, 0.5, 0.0));
        assert!(flat.intersects(&cube));
        let far = unit_at(Vec3::new(0.0, 0.0, 1.0));
        // Touching exactly at z = 0.5+0.0 boundary: conservative => treated
        // as intersecting only if within epsilon; here they touch.
        assert!(flat.intersects(&far) || !flat.intersects(&far)); // must not panic
    }
}
