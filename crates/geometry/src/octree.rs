//! Octrees over occupancy data.
//!
//! Dadu-P (paper §VII-2) stores "the space occupied by each short motion ...
//! converted to an optimized octree-based representation offline"; at runtime
//! each motion octree is tested against environment voxels. [`Octree`] is
//! that offline representation: built once from a set of occupied world-space
//! boxes (the swept volume of a motion), then queried with voxel boxes.

use crate::aabb::Aabb;
use crate::vec3::Vec3;

/// Node payload: either a leaf with uniform occupancy, or eight children.
#[derive(Debug, Clone)]
enum Node {
    Leaf(bool),
    Branch(Box<[Node; 8]>),
}

/// A region octree storing boolean occupancy over a cubic root box.
///
/// # Examples
///
/// ```
/// use copred_geometry::{Aabb, Octree, Vec3};
///
/// let root = Aabb::new(Vec3::ZERO, Vec3::splat(1.0));
/// let tree = Octree::build(root, 4, &[Aabb::new(Vec3::ZERO, Vec3::splat(0.3))]);
/// assert!(tree.intersects(&Aabb::new(Vec3::splat(0.1), Vec3::splat(0.2))));
/// assert!(!tree.intersects(&Aabb::new(Vec3::splat(0.8), Vec3::splat(0.9))));
/// ```
#[derive(Debug, Clone)]
pub struct Octree {
    root_box: Aabb,
    root: Node,
    max_depth: u32,
}

fn octant(b: &Aabb, i: usize) -> Aabb {
    let c = b.center();
    let min = Vec3::new(
        if i & 1 == 0 { b.min.x } else { c.x },
        if i & 2 == 0 { b.min.y } else { c.y },
        if i & 4 == 0 { b.min.z } else { c.z },
    );
    let max = Vec3::new(
        if i & 1 == 0 { c.x } else { b.max.x },
        if i & 2 == 0 { c.y } else { b.max.y },
        if i & 4 == 0 { c.z } else { b.max.z },
    );
    Aabb::new(min, max)
}

fn build_node(region: &Aabb, depth: u32, max_depth: u32, occupied: &[Aabb]) -> Node {
    // Which inputs touch this region?
    let touching: Vec<&Aabb> = occupied.iter().filter(|o| o.intersects(region)).collect();
    if touching.is_empty() {
        return Node::Leaf(false);
    }
    if touching.iter().any(|o| o.contains_aabb(region)) || depth == max_depth {
        return Node::Leaf(true);
    }
    let owned: Vec<Aabb> = touching.into_iter().copied().collect();
    let children: Vec<Node> = (0..8)
        .map(|i| build_node(&octant(region, i), depth + 1, max_depth, &owned))
        .collect();
    // Merge uniform children back into a leaf ("optimized" octree).
    let first = match &children[0] {
        Node::Leaf(v) => Some(*v),
        Node::Branch(_) => None,
    };
    if let Some(v) = first {
        if children
            .iter()
            .all(|c| matches!(c, Node::Leaf(x) if *x == v))
        {
            return Node::Leaf(v);
        }
    }
    let arr: [Node; 8] = children.try_into().expect("exactly 8 children");
    Node::Branch(Box::new(arr))
}

impl Octree {
    /// Builds an octree of maximum depth `max_depth` whose occupied space is
    /// the union of `occupied` boxes, clipped to `root_box`.
    ///
    /// Leaves at `max_depth` that partially overlap an input box are marked
    /// occupied, so the tree is a conservative over-approximation — exactly
    /// what a collision-detection representation needs.
    pub fn build(root_box: Aabb, max_depth: u32, occupied: &[Aabb]) -> Self {
        let root = build_node(&root_box, 0, max_depth, occupied);
        Octree {
            root_box,
            root,
            max_depth,
        }
    }

    /// The root bounding box.
    pub fn root_box(&self) -> &Aabb {
        &self.root_box
    }

    /// Maximum subdivision depth.
    pub fn max_depth(&self) -> u32 {
        self.max_depth
    }

    /// Returns `true` when `query` overlaps any occupied region.
    pub fn intersects(&self, query: &Aabb) -> bool {
        fn rec(node: &Node, region: &Aabb, query: &Aabb) -> bool {
            if !region.intersects(query) {
                return false;
            }
            match node {
                Node::Leaf(v) => *v,
                Node::Branch(ch) => (0..8).any(|i| rec(&ch[i], &octant(region, i), query)),
            }
        }
        rec(&self.root, &self.root_box, query)
    }

    /// Returns `true` when the point is inside occupied space.
    pub fn contains(&self, p: Vec3) -> bool {
        if !self.root_box.contains(p) {
            return false;
        }
        self.intersects(&Aabb::new(p, p))
    }

    /// Total number of nodes (for size accounting in the Dadu-P model).
    pub fn node_count(&self) -> usize {
        fn rec(n: &Node) -> usize {
            match n {
                Node::Leaf(_) => 1,
                Node::Branch(ch) => 1 + ch.iter().map(rec).sum::<usize>(),
            }
        }
        rec(&self.root)
    }

    /// Number of occupied leaves.
    pub fn occupied_leaf_count(&self) -> usize {
        fn rec(n: &Node) -> usize {
            match n {
                Node::Leaf(true) => 1,
                Node::Leaf(false) => 0,
                Node::Branch(ch) => ch.iter().map(rec).sum(),
            }
        }
        rec(&self.root)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn root() -> Aabb {
        Aabb::new(Vec3::ZERO, Vec3::splat(1.0))
    }

    #[test]
    fn empty_tree_never_intersects() {
        let t = Octree::build(root(), 4, &[]);
        assert!(!t.intersects(&root()));
        assert_eq!(t.node_count(), 1);
        assert_eq!(t.occupied_leaf_count(), 0);
    }

    #[test]
    fn full_tree_always_intersects() {
        let t = Octree::build(root(), 4, &[root()]);
        assert!(t.intersects(&Aabb::new(Vec3::splat(0.4), Vec3::splat(0.6))));
        // A fully-covered root collapses to a single occupied leaf.
        assert_eq!(t.node_count(), 1);
        assert_eq!(t.occupied_leaf_count(), 1);
    }

    #[test]
    fn partial_occupancy_localized() {
        let occ = Aabb::new(Vec3::ZERO, Vec3::splat(0.4));
        let t = Octree::build(root(), 5, &[occ]);
        assert!(t.intersects(&Aabb::new(Vec3::splat(0.1), Vec3::splat(0.2))));
        assert!(!t.intersects(&Aabb::new(Vec3::splat(0.7), Vec3::splat(0.9))));
        assert!(t.contains(Vec3::splat(0.2)));
        assert!(!t.contains(Vec3::splat(0.8)));
    }

    #[test]
    fn conservative_at_max_depth() {
        // A sliver thinner than the deepest leaf is still reported occupied.
        let sliver = Aabb::new(Vec3::new(0.5, 0.5, 0.5), Vec3::new(0.5001, 0.5001, 0.5001));
        let t = Octree::build(root(), 3, &[sliver]);
        assert!(t.intersects(&Aabb::new(Vec3::splat(0.49), Vec3::splat(0.51))));
    }

    #[test]
    fn union_of_boxes() {
        let a = Aabb::new(Vec3::ZERO, Vec3::splat(0.2));
        let b = Aabb::new(Vec3::splat(0.8), Vec3::splat(1.0));
        let t = Octree::build(root(), 5, &[a, b]);
        assert!(t.contains(Vec3::splat(0.1)));
        assert!(t.contains(Vec3::splat(0.9)));
        assert!(!t.contains(Vec3::splat(0.5)));
    }

    #[test]
    fn deeper_trees_are_tighter() {
        let occ = Aabb::new(Vec3::ZERO, Vec3::splat(0.3));
        let shallow = Octree::build(root(), 1, &[occ]);
        let deep = Octree::build(root(), 6, &[occ]);
        // A query near but outside the box: shallow tree over-approximates.
        let q = Aabb::new(Vec3::splat(0.4), Vec3::splat(0.45));
        assert!(shallow.intersects(&q));
        assert!(!deep.intersects(&q));
    }

    #[test]
    fn queries_outside_root_are_false() {
        let t = Octree::build(root(), 3, &[root()]);
        assert!(!t.intersects(&Aabb::new(Vec3::splat(2.0), Vec3::splat(3.0))));
        assert!(!t.contains(Vec3::splat(-1.0)));
    }

    #[test]
    fn octant_partition_covers_parent() {
        let b = Aabb::new(Vec3::new(-1.0, 0.0, 2.0), Vec3::new(1.0, 2.0, 4.0));
        let mut vol = 0.0;
        for i in 0..8 {
            vol += octant(&b, i).volume();
        }
        assert!((vol - b.volume()).abs() < 1e-12);
    }
}
