//! Uniform voxel grids.
//!
//! The Dadu-P accelerator (paper §VII-2) represents environmental obstacles
//! as "a set of voxels" and each precomputed robot motion as an octree; a CDQ
//! there is a motion-octree vs voxel test. [`VoxelGrid`] provides the
//! occupancy-grid side of that substrate and is also used by environment
//! generators to estimate clutter.

use crate::aabb::Aabb;
use crate::vec3::Vec3;

/// Integer voxel coordinates within a grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VoxelCoord {
    /// X index.
    pub x: u32,
    /// Y index.
    pub y: u32,
    /// Z index.
    pub z: u32,
}

impl VoxelCoord {
    /// Creates a voxel coordinate.
    pub const fn new(x: u32, y: u32, z: u32) -> Self {
        VoxelCoord { x, y, z }
    }
}

/// A dense boolean occupancy grid over a workspace box.
///
/// # Examples
///
/// ```
/// use copred_geometry::{Aabb, Vec3, VoxelGrid};
///
/// let ws = Aabb::new(Vec3::ZERO, Vec3::splat(1.0));
/// let mut g = VoxelGrid::new(ws, 8);
/// g.fill_aabb(&Aabb::new(Vec3::ZERO, Vec3::splat(0.25)));
/// assert!(g.occupied_at(Vec3::splat(0.1)));
/// assert!(!g.occupied_at(Vec3::splat(0.9)));
/// ```
#[derive(Debug, Clone)]
pub struct VoxelGrid {
    workspace: Aabb,
    /// Voxels per axis.
    resolution: u32,
    occupancy: Vec<bool>,
}

impl VoxelGrid {
    /// Creates an empty grid with `resolution` voxels per axis.
    ///
    /// # Panics
    ///
    /// Panics when `resolution` is zero or the workspace is degenerate.
    pub fn new(workspace: Aabb, resolution: u32) -> Self {
        assert!(resolution > 0, "voxel resolution must be positive");
        let e = workspace.extents();
        assert!(
            e.x > 0.0 && e.y > 0.0 && e.z > 0.0,
            "workspace must have positive extent, got {e}"
        );
        let n = (resolution as usize).pow(3);
        VoxelGrid {
            workspace,
            resolution,
            occupancy: vec![false; n],
        }
    }

    /// Voxels per axis.
    pub fn resolution(&self) -> u32 {
        self.resolution
    }

    /// The workspace covered by the grid.
    pub fn workspace(&self) -> &Aabb {
        &self.workspace
    }

    /// Side lengths of one voxel.
    pub fn voxel_size(&self) -> Vec3 {
        self.workspace.extents() / f64::from(self.resolution)
    }

    fn index(&self, c: VoxelCoord) -> usize {
        let r = self.resolution as usize;
        (c.z as usize * r + c.y as usize) * r + c.x as usize
    }

    /// Converts a world point to its voxel coordinate, or `None` outside the
    /// workspace.
    pub fn coord_of(&self, p: Vec3) -> Option<VoxelCoord> {
        if !self.workspace.contains(p) {
            return None;
        }
        let e = self.workspace.extents();
        let r = f64::from(self.resolution);
        let f = |v: f64, lo: f64, ext: f64| -> u32 {
            (((v - lo) / ext * r) as u32).min(self.resolution - 1)
        };
        Some(VoxelCoord::new(
            f(p.x, self.workspace.min.x, e.x),
            f(p.y, self.workspace.min.y, e.y),
            f(p.z, self.workspace.min.z, e.z),
        ))
    }

    /// World-space box of voxel `c`.
    ///
    /// # Panics
    ///
    /// Panics when `c` is outside the grid.
    pub fn voxel_aabb(&self, c: VoxelCoord) -> Aabb {
        assert!(
            c.x < self.resolution && c.y < self.resolution && c.z < self.resolution,
            "voxel coordinate {c:?} outside resolution {}",
            self.resolution
        );
        let s = self.voxel_size();
        let min = self.workspace.min
            + Vec3::new(
                f64::from(c.x) * s.x,
                f64::from(c.y) * s.y,
                f64::from(c.z) * s.z,
            );
        Aabb::new(min, min + s)
    }

    /// Center of voxel `c` in world space.
    pub fn voxel_center(&self, c: VoxelCoord) -> Vec3 {
        self.voxel_aabb(c).center()
    }

    /// Marks a single voxel occupied.
    pub fn set(&mut self, c: VoxelCoord, occupied: bool) {
        let i = self.index(c);
        self.occupancy[i] = occupied;
    }

    /// Returns the occupancy of voxel `c`.
    pub fn get(&self, c: VoxelCoord) -> bool {
        self.occupancy[self.index(c)]
    }

    /// Occupancy at a world point (false outside the workspace).
    pub fn occupied_at(&self, p: Vec3) -> bool {
        self.coord_of(p).is_some_and(|c| self.get(c))
    }

    /// Marks every voxel overlapping `aabb` as occupied.
    pub fn fill_aabb(&mut self, aabb: &Aabb) {
        let Some(lo) = self.coord_of(aabb.min.max(self.workspace.min)) else {
            return;
        };
        let eps = self.voxel_size() * 1e-9;
        let hi_p = aabb.max.min(self.workspace.max - eps);
        let Some(hi) = self.coord_of(hi_p) else {
            return;
        };
        for z in lo.z..=hi.z {
            for y in lo.y..=hi.y {
                for x in lo.x..=hi.x {
                    let c = VoxelCoord::new(x, y, z);
                    if self.voxel_aabb(c).intersects(aabb) {
                        self.set(c, true);
                    }
                }
            }
        }
    }

    /// Number of occupied voxels.
    pub fn occupied_count(&self) -> usize {
        self.occupancy.iter().filter(|&&o| o).count()
    }

    /// Fraction of voxels occupied — the clutter heuristic the paper suggests
    /// ("the number of voxels") for adapting the prediction strategy `S`.
    pub fn occupancy_fraction(&self) -> f64 {
        self.occupied_count() as f64 / self.occupancy.len() as f64
    }

    /// Iterator over the coordinates of all occupied voxels.
    pub fn occupied_voxels(&self) -> impl Iterator<Item = VoxelCoord> + '_ {
        let r = self.resolution;
        self.occupancy
            .iter()
            .enumerate()
            .filter(|(_, &o)| o)
            .map(move |(i, _)| {
                let x = (i as u32) % r;
                let y = ((i as u32) / r) % r;
                let z = (i as u32) / (r * r);
                VoxelCoord::new(x, y, z)
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> VoxelGrid {
        VoxelGrid::new(Aabb::new(Vec3::ZERO, Vec3::splat(1.0)), 4)
    }

    #[test]
    fn empty_grid_has_no_occupancy() {
        let g = grid();
        assert_eq!(g.occupied_count(), 0);
        assert_eq!(g.occupancy_fraction(), 0.0);
        assert!(!g.occupied_at(Vec3::splat(0.5)));
    }

    #[test]
    fn coord_mapping_and_bounds() {
        let g = grid();
        assert_eq!(g.coord_of(Vec3::ZERO), Some(VoxelCoord::new(0, 0, 0)));
        // Max corner maps into the last voxel (clamped).
        assert_eq!(g.coord_of(Vec3::splat(1.0)), Some(VoxelCoord::new(3, 3, 3)));
        assert_eq!(g.coord_of(Vec3::splat(1.01)), None);
        assert_eq!(g.coord_of(Vec3::splat(-0.01)), None);
    }

    #[test]
    fn voxel_aabb_geometry() {
        let g = grid();
        let b = g.voxel_aabb(VoxelCoord::new(0, 0, 0));
        assert_eq!(b.min, Vec3::ZERO);
        assert_eq!(b.max, Vec3::splat(0.25));
        assert_eq!(g.voxel_center(VoxelCoord::new(0, 0, 0)), Vec3::splat(0.125));
    }

    #[test]
    fn set_get_roundtrip() {
        let mut g = grid();
        let c = VoxelCoord::new(1, 2, 3);
        g.set(c, true);
        assert!(g.get(c));
        assert_eq!(g.occupied_count(), 1);
        g.set(c, false);
        assert!(!g.get(c));
    }

    #[test]
    fn fill_aabb_marks_overlapping_voxels() {
        let mut g = grid();
        g.fill_aabb(&Aabb::new(Vec3::ZERO, Vec3::splat(0.5)));
        // 2x2x2 voxels (voxels touching the boundary at 0.5 also count —
        // conservative fill).
        assert!(g.occupied_count() >= 8);
        assert!(g.occupied_at(Vec3::splat(0.1)));
        assert!(!g.occupied_at(Vec3::splat(0.9)));
    }

    #[test]
    fn fill_outside_workspace_is_noop() {
        let mut g = grid();
        g.fill_aabb(&Aabb::new(Vec3::splat(2.0), Vec3::splat(3.0)));
        assert_eq!(g.occupied_count(), 0);
    }

    #[test]
    fn occupied_voxels_iterates_exactly_set() {
        let mut g = grid();
        let set = [
            VoxelCoord::new(0, 0, 0),
            VoxelCoord::new(3, 3, 3),
            VoxelCoord::new(1, 2, 0),
        ];
        for &c in &set {
            g.set(c, true);
        }
        let mut got: Vec<_> = g.occupied_voxels().collect();
        got.sort();
        let mut want = set.to_vec();
        want.sort();
        assert_eq!(got, want);
    }

    #[test]
    fn occupancy_fraction_counts() {
        let mut g = grid();
        g.fill_aabb(&Aabb::new(Vec3::ZERO, Vec3::splat(1.0)));
        assert_eq!(g.occupancy_fraction(), 1.0);
    }

    #[test]
    #[should_panic(expected = "resolution must be positive")]
    fn zero_resolution_rejected() {
        let _ = VoxelGrid::new(Aabb::new(Vec3::ZERO, Vec3::ONE), 0);
    }
}
