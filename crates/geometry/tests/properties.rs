//! Property-based tests for the geometry substrate.

use copred_geometry::{msbs, Aabb, BatchObb, FixedEncoder, Iso3, Mat3, Obb, Octree, Sphere, Vec3};
use proptest::prelude::*;

fn vec3_in(lo: f64, hi: f64) -> impl Strategy<Value = Vec3> {
    (lo..hi, lo..hi, lo..hi).prop_map(|(x, y, z)| Vec3::new(x, y, z))
}

fn rotation() -> impl Strategy<Value = Mat3> {
    (-3.1..3.1f64, -3.1..3.1f64, -3.1..3.1f64)
        .prop_map(|(a, b, c)| Mat3::rot_x(a) * Mat3::rot_y(b) * Mat3::rot_z(c))
}

fn obb() -> impl Strategy<Value = Obb> {
    (vec3_in(-2.0, 2.0), rotation(), vec3_in(0.01, 1.0)).prop_map(|(c, r, h)| Obb::new(c, r, h))
}

/// Rotations within ~1e-9 of axis-aligned: the degenerate regime where the
/// SAT cross-product axes are near-zero and the epsilon term dominates.
fn near_parallel_rotation() -> impl Strategy<Value = Mat3> {
    (-1e-9..1e-9f64, -1e-9..1e-9f64, -1e-9..1e-9f64)
        .prop_map(|(a, b, c)| Mat3::rot_x(a) * Mat3::rot_y(b) * Mat3::rot_z(c))
}

fn near_parallel_obb() -> impl Strategy<Value = Obb> {
    (
        vec3_in(-1.0, 1.0),
        near_parallel_rotation(),
        vec3_in(0.01, 1.0),
    )
        .prop_map(|(c, r, h)| Obb::new(c, r, h))
}

proptest! {
    #[test]
    fn obb_intersection_symmetric(a in obb(), b in obb()) {
        prop_assert_eq!(a.intersects(&b), b.intersects(&a));
    }

    #[test]
    fn obb_self_intersection(a in obb()) {
        prop_assert!(a.intersects(&a));
    }

    #[test]
    fn obb_aabb_encloses_corners(a in obb()) {
        let bb = a.aabb();
        for c in a.corners() {
            prop_assert!(bb.inflated(1e-9).contains(c));
        }
    }

    #[test]
    fn obb_corner_containment(a in obb()) {
        // Points slightly inside each corner are contained.
        for c in a.corners() {
            let p = a.center.lerp(c, 0.999);
            prop_assert!(a.contains(p));
        }
        // Points beyond each corner are not.
        for c in a.corners() {
            let p = a.center.lerp(c, 1.01);
            prop_assert!(!a.contains(p));
        }
    }

    #[test]
    fn obb_disjoint_aabbs_imply_disjoint_obbs(a in obb(), b in obb()) {
        // The AABB test is a sound broad phase: if the enclosing AABBs are
        // disjoint, the OBBs must be disjoint too.
        if !a.aabb().intersects(&b.aabb()) {
            prop_assert!(!a.intersects(&b));
        }
    }

    #[test]
    fn point_sampling_agrees_with_sat(a in obb(), b in obb()) {
        // If we find a sampled point inside both boxes, SAT must agree.
        let mut inside_both = false;
        for i in 0..5 {
            for j in 0..5 {
                for k in 0..5 {
                    let t = Vec3::new(i as f64 / 4.0, j as f64 / 4.0, k as f64 / 4.0);
                    let corners = b.corners();
                    let p = Vec3::new(
                        corners[0].x + t.x * (corners[7].x - corners[0].x),
                        corners[0].y + t.y * (corners[7].y - corners[0].y),
                        corners[0].z + t.z * (corners[7].z - corners[0].z),
                    );
                    if a.contains(p) && b.contains(p) {
                        inside_both = true;
                    }
                }
            }
        }
        if inside_both {
            prop_assert!(a.intersects(&b));
        }
    }

    #[test]
    fn rigid_transform_preserves_intersection(a in obb(), b in obb(), t in vec3_in(-3.0, 3.0), r in rotation()) {
        let iso = Iso3::new(r, t);
        prop_assert_eq!(
            a.intersects(&b),
            a.transformed(&iso).intersects(&b.transformed(&iso))
        );
    }

    #[test]
    fn sphere_obb_consistent_with_aabb_for_axis_aligned(c in vec3_in(-2.0, 2.0), r in 0.01..1.0f64, bc in vec3_in(-2.0, 2.0), bh in vec3_in(0.01, 1.0)) {
        let s = Sphere::new(c, r);
        let aabb = Aabb::from_center_half_extents(bc, bh);
        let o = Obb::from_aabb(&aabb);
        prop_assert_eq!(s.intersects_aabb(&aabb), s.intersects_obb(&o));
    }

    #[test]
    fn fixed_encoder_monotone(a in -0.99..0.99f64, b in -0.99..0.99f64) {
        let enc = FixedEncoder::new(Aabb::new(Vec3::splat(-1.0), Vec3::splat(1.0)));
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(enc.encode_axis(lo, 0) <= enc.encode_axis(hi, 0));
    }

    #[test]
    fn msb_bins_nest(q in any::<u16>(), k in 1u32..16) {
        // The k-bit bin is a refinement of the (k-1)-bit bin.
        prop_assert_eq!(msbs(q, k) >> 1, msbs(q, k - 1));
    }

    #[test]
    fn octree_is_conservative(boxes in prop::collection::vec(
        (vec3_in(0.0, 0.8), vec3_in(0.01, 0.2)).prop_map(|(min, ext)| Aabb::new(min, min + ext)),
        1..5,
    ), q in (vec3_in(0.0, 0.9), vec3_in(0.01, 0.1)).prop_map(|(min, ext)| Aabb::new(min, min + ext))) {
        let root = Aabb::new(Vec3::ZERO, Vec3::splat(1.0));
        let tree = Octree::build(root, 4, &boxes);
        let brute = boxes.iter().any(|b| b.intersects(&q));
        // The octree may over-approximate but never under-approximate.
        if brute {
            prop_assert!(tree.intersects(&q));
        }
    }

    #[test]
    fn iso_inverse_roundtrip(t in vec3_in(-3.0, 3.0), r in rotation(), p in vec3_in(-5.0, 5.0)) {
        let iso = Iso3::new(r, t);
        let back = iso.inverse().apply(iso.apply(p));
        prop_assert!((back - p).norm() < 1e-9);
    }

    #[test]
    fn batched_sat_matches_scalar(lanes in prop::collection::vec(obb(), 1..=8), partner in obb()) {
        // The batched kernel must reproduce the scalar SAT verdict bit for
        // bit in every lane, at every lane count 1..=8.
        let batch = BatchObb::from_obbs(&lanes);
        let mask = batch.intersects_mask(&partner);
        for (l, a) in lanes.iter().enumerate() {
            prop_assert_eq!(
                (mask >> l) & 1 == 1,
                a.intersects(&partner),
                "lane {} of {} diverged from scalar SAT", l, lanes.len()
            );
        }
        // The SoA round-trips losslessly and the broad-phase AABBs are
        // bitwise identical to the scalar accumulation.
        let bbs = batch.aabbs();
        for (l, a) in lanes.iter().enumerate() {
            prop_assert_eq!(batch.get(l), *a);
            let scalar = a.aabb();
            let lane_min = Vec3::new(bbs.min[0][l], bbs.min[1][l], bbs.min[2][l]);
            let lane_max = Vec3::new(bbs.max[0][l], bbs.max[1][l], bbs.max[2][l]);
            prop_assert_eq!(lane_min, scalar.min);
            prop_assert_eq!(lane_max, scalar.max);
        }
    }

    #[test]
    fn batched_sat_matches_scalar_near_parallel(
        lanes in prop::collection::vec(near_parallel_obb(), 1..=8),
        partner in near_parallel_obb(),
    ) {
        // Degenerate near-parallel edge pairs: cross-product axes collapse
        // toward zero and the BOUNDARY_EPS term decides. Batched and scalar
        // must still agree exactly.
        let batch = BatchObb::from_obbs(&lanes);
        let mask = batch.intersects_mask(&partner);
        for (l, a) in lanes.iter().enumerate() {
            prop_assert_eq!((mask >> l) & 1 == 1, a.intersects(&partner));
        }
    }

    #[test]
    fn batched_aabb_kernel_matches_scalar(
        lanes in prop::collection::vec(obb(), 1..=8),
        bc in vec3_in(-2.0, 2.0),
        bh in vec3_in(0.01, 1.0),
    ) {
        // The specialized OBB-vs-AABB fast path must equal the general
        // scalar SAT against the AABB lifted to an identity-rotation OBB.
        let aabb = Aabb::from_center_half_extents(bc, bh);
        let partner = Obb::from_aabb(&aabb);
        let batch = BatchObb::from_obbs(&lanes);
        let mask = batch.intersects_aabb_mask(&aabb);
        for (l, a) in lanes.iter().enumerate() {
            prop_assert_eq!((mask >> l) & 1 == 1, a.intersects(&partner));
        }
    }

    #[test]
    fn batched_sat_boundary_touching(
        gap_scale in -0.9..0.9f64,
        h in vec3_in(0.1, 1.0),
        count in 1usize..=8,
    ) {
        // Faces separated by less than BOUNDARY_EPS (including exact touch
        // and sub-epsilon overlap) intersect; scalar and batched agree.
        let gap = copred_geometry::BOUNDARY_EPS * gap_scale;
        let a = Obb::axis_aligned(Vec3::ZERO, h);
        let b = Obb::axis_aligned(Vec3::new(2.0 * h.x + gap, 0.0, 0.0), h);
        let lanes = vec![a; count];
        let batch = BatchObb::from_obbs(&lanes);
        let mask = batch.intersects_mask(&b);
        prop_assert!(a.intersects(&b), "sub-epsilon face gap must intersect");
        prop_assert_eq!(mask, batch.live_mask());
    }
}
