//! Serial-chain robotic arms with DH-parameter forward kinematics.
//!
//! The baseline accelerator computes "transformation matrices for all links
//! ... using the DH parameters of the robot and matrix multiplications", then
//! bounds each link with simple volumes (OBBs or spheres). [`ArmModel`]
//! reproduces that pipeline: a chain of revolute joints described by DH rows,
//! forward kinematics producing per-link world transforms, and per-link
//! bounding geometry derived from consecutive frame origins.

use crate::config::Config;
use crate::pose::{LinkPose, RobotPose};
use copred_geometry::{Aabb, Iso3, Mat3, Obb, Sphere, Vec3};

/// One revolute joint's Denavit–Hartenberg row. The joint variable is
/// `theta = theta_offset + q`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DhJoint {
    /// Constant offset added to the joint variable.
    pub theta_offset: f64,
    /// Link offset along the previous z axis.
    pub d: f64,
    /// Link length along the rotated x axis.
    pub a: f64,
    /// Link twist about the rotated x axis.
    pub alpha: f64,
    /// Joint limits `(lo, hi)` in radians.
    pub limits: (f64, f64),
}

impl DhJoint {
    /// Creates a DH row with symmetric limits `±limit`.
    pub fn new(theta_offset: f64, d: f64, a: f64, alpha: f64, limit: f64) -> Self {
        DhJoint {
            theta_offset,
            d,
            a,
            alpha,
            limits: (-limit, limit),
        }
    }
}

/// A serial revolute-joint arm.
///
/// # Examples
///
/// ```
/// use copred_kinematics::{presets, Config};
///
/// let arm = presets::kuka_iiwa();
/// let pose = arm.fk(&Config::zeros(arm.dofs()));
/// assert_eq!(pose.links.len(), arm.dofs());
/// ```
#[derive(Debug, Clone)]
pub struct ArmModel {
    name: String,
    base: Iso3,
    joints: Vec<DhJoint>,
    /// Radius used for link bounding volumes.
    link_radius: f64,
    /// Spheres per link in the sphere-set representation (§VII-1).
    spheres_per_link: usize,
}

impl ArmModel {
    /// Creates an arm from DH rows.
    ///
    /// # Panics
    ///
    /// Panics when `joints` is empty, `link_radius` is not positive, or
    /// `spheres_per_link` is zero.
    pub fn new(
        name: impl Into<String>,
        base: Iso3,
        joints: Vec<DhJoint>,
        link_radius: f64,
        spheres_per_link: usize,
    ) -> Self {
        assert!(!joints.is_empty(), "an arm needs at least one joint");
        assert!(link_radius > 0.0, "link radius must be positive");
        assert!(spheres_per_link > 0, "need at least one sphere per link");
        ArmModel {
            name: name.into(),
            base,
            joints,
            link_radius,
            spheres_per_link,
        }
    }

    /// Robot name (e.g. `"kuka-iiwa"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of degrees of freedom (= number of joints).
    pub fn dofs(&self) -> usize {
        self.joints.len()
    }

    /// Joint limits for DOF `i`.
    pub fn limits(&self, i: usize) -> (f64, f64) {
        self.joints[i].limits
    }

    /// Link bounding radius.
    pub fn link_radius(&self) -> f64 {
        self.link_radius
    }

    /// Maximum reach from the base: the sum of all link lengths plus the
    /// bounding radius.
    pub fn reach(&self) -> f64 {
        self.joints
            .iter()
            .map(|j| (j.d * j.d + j.a * j.a).sqrt())
            .sum::<f64>()
            + 2.0 * self.link_radius
    }

    /// A cubic workspace box centered at the base spanning the reach — the
    /// paper limits environment size "to the reach of the ... robot".
    pub fn workspace(&self) -> Aabb {
        let r = self.reach();
        Aabb::from_center_half_extents(self.base.trans, Vec3::splat(r))
    }

    /// World transforms of every link frame for configuration `q`,
    /// including the base frame at index 0 (so `transforms.len() == dofs+1`).
    ///
    /// # Panics
    ///
    /// Panics when `q` has the wrong DOF count.
    pub fn link_transforms(&self, q: &Config) -> Vec<Iso3> {
        assert_eq!(
            q.dofs(),
            self.dofs(),
            "configuration has {} DOFs, arm {} has {}",
            q.dofs(),
            self.name,
            self.dofs()
        );
        let mut ts = Vec::with_capacity(self.joints.len() + 1);
        let mut t = self.base;
        ts.push(t);
        for (j, &qi) in self.joints.iter().zip(q.values()) {
            t = t * Iso3::from_dh(j.theta_offset + qi, j.d, j.a, j.alpha);
            ts.push(t);
        }
        ts
    }

    /// Forward kinematics: world bounding geometry for every link.
    ///
    /// Link `i` is the body between frame origins `i` and `i+1`: its OBB is
    /// oriented along that segment with half-extents
    /// `(len/2 + radius, radius, radius)`, and its sphere set covers the same
    /// segment. Links whose frames coincide (pure-rotation DH rows) collapse
    /// to a radius-sized cube at the joint.
    ///
    /// # Panics
    ///
    /// Panics when `q` has the wrong DOF count.
    pub fn fk(&self, q: &Config) -> RobotPose {
        let ts = self.link_transforms(q);
        let r = self.link_radius;
        let mut links = Vec::with_capacity(self.joints.len());
        for w in ts.windows(2) {
            let (p0, p1) = (w[0].trans, w[1].trans);
            links.push(segment_link(p0, p1, r, self.spheres_per_link));
        }
        RobotPose { links }
    }
}

/// Builds the bounding geometry of a link spanning `p0 → p1`.
fn segment_link(p0: Vec3, p1: Vec3, radius: f64, n_spheres: usize) -> LinkPose {
    let center = (p0 + p1) * 0.5;
    let dir = p1 - p0;
    let len = dir.norm();
    let obb = if len < 1e-9 {
        Obb::axis_aligned(center, Vec3::splat(radius))
    } else {
        let x = dir / len;
        let rot = orthonormal_frame(x);
        Obb::new(center, rot, Vec3::new(len * 0.5 + radius, radius, radius))
    };
    // Sphere radii grow slightly so the union covers the capsule.
    let sphere_r = radius * 1.3 + len / (2.0 * n_spheres as f64);
    let spheres = (0..n_spheres)
        .map(|i| {
            let t = if n_spheres == 1 {
                0.5
            } else {
                i as f64 / (n_spheres - 1) as f64
            };
            Sphere::new(p0.lerp(p1, t), sphere_r)
        })
        .collect();
    LinkPose {
        center,
        obb,
        spheres,
    }
}

/// Completes a unit vector `x` into a right-handed orthonormal frame whose
/// first column is `x`.
fn orthonormal_frame(x: Vec3) -> Mat3 {
    let helper = if x.x.abs() < 0.9 { Vec3::X } else { Vec3::Y };
    let z = x.cross(helper).normalized();
    let y = z.cross(x);
    Mat3::from_cols(x, y, z)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::FRAC_PI_2;

    fn two_link() -> ArmModel {
        // Planar 2R arm: both joints rotate about z, links of length 1.
        ArmModel::new(
            "2r",
            Iso3::IDENTITY,
            vec![
                DhJoint::new(0.0, 0.0, 1.0, 0.0, std::f64::consts::PI),
                DhJoint::new(0.0, 0.0, 1.0, 0.0, std::f64::consts::PI),
            ],
            0.05,
            3,
        )
    }

    #[test]
    fn zero_config_stretches_along_x() {
        let arm = two_link();
        let ts = arm.link_transforms(&Config::zeros(2));
        assert_eq!(ts.len(), 3);
        assert!((ts[1].trans - Vec3::new(1.0, 0.0, 0.0)).norm() < 1e-12);
        assert!((ts[2].trans - Vec3::new(2.0, 0.0, 0.0)).norm() < 1e-12);
    }

    #[test]
    fn elbow_bend_rotates_second_link() {
        let arm = two_link();
        let ts = arm.link_transforms(&Config::new(vec![0.0, FRAC_PI_2]));
        assert!((ts[2].trans - Vec3::new(1.0, 1.0, 0.0)).norm() < 1e-12);
    }

    #[test]
    fn base_joint_rotates_whole_arm() {
        let arm = two_link();
        let ts = arm.link_transforms(&Config::new(vec![FRAC_PI_2, 0.0]));
        assert!((ts[2].trans - Vec3::new(0.0, 2.0, 0.0)).norm() < 1e-12);
    }

    #[test]
    fn fk_produces_one_link_pose_per_joint() {
        let arm = two_link();
        let pose = arm.fk(&Config::zeros(2));
        assert_eq!(pose.links.len(), 2);
        // First link spans (0,0,0) -> (1,0,0); its OBB center is midway.
        assert!((pose.links[0].center - Vec3::new(0.5, 0.0, 0.0)).norm() < 1e-12);
        assert!((pose.links[1].center - Vec3::new(1.5, 0.0, 0.0)).norm() < 1e-12);
    }

    #[test]
    fn link_obb_covers_segment_endpoints() {
        let arm = two_link();
        let pose = arm.fk(&Config::new(vec![0.3, -0.7]));
        let ts = arm.link_transforms(&Config::new(vec![0.3, -0.7]));
        for (i, link) in pose.links.iter().enumerate() {
            assert!(
                link.obb.contains(ts[i].trans),
                "link {i} misses proximal end"
            );
            assert!(
                link.obb.contains(ts[i + 1].trans),
                "link {i} misses distal end"
            );
        }
    }

    #[test]
    fn sphere_set_covers_segment() {
        let arm = two_link();
        let q = Config::new(vec![0.9, 0.4]);
        let pose = arm.fk(&q);
        let ts = arm.link_transforms(&q);
        for (i, link) in pose.links.iter().enumerate() {
            // Sample along the segment: every sample must be in some sphere.
            for k in 0..=10 {
                let p = ts[i].trans.lerp(ts[i + 1].trans, k as f64 / 10.0);
                assert!(
                    link.spheres.iter().any(|s| s.contains(p)),
                    "segment sample {p} of link {i} not covered"
                );
            }
        }
    }

    #[test]
    fn reach_and_workspace() {
        let arm = two_link();
        assert!((arm.reach() - 2.1).abs() < 1e-12);
        let ws = arm.workspace();
        // Every FK result stays in the workspace.
        for a in [-3.0, -1.0, 0.0, 1.5, 3.0] {
            for b in [-3.0, 0.0, 2.0] {
                let pose = arm.fk(&Config::new(vec![a, b]));
                for link in &pose.links {
                    assert!(ws.contains(link.center));
                }
            }
        }
    }

    #[test]
    fn degenerate_link_becomes_cube() {
        // A joint with d=a=0 produces a zero-length segment.
        let arm = ArmModel::new(
            "deg",
            Iso3::IDENTITY,
            vec![DhJoint::new(0.0, 0.0, 0.0, FRAC_PI_2, 3.0)],
            0.04,
            2,
        );
        let pose = arm.fk(&Config::zeros(1));
        assert_eq!(pose.links[0].obb.half_extents, Vec3::splat(0.04));
    }

    #[test]
    fn orthonormal_frame_is_rotation() {
        for v in [
            Vec3::X,
            Vec3::Y,
            Vec3::Z,
            Vec3::new(1.0, 2.0, 3.0).normalized(),
        ] {
            let m = orthonormal_frame(v);
            assert!(m.is_rotation(1e-9), "frame for {v} not a rotation");
            assert!((m.col(0) - v).norm() < 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "configuration has")]
    fn wrong_dof_count_panics() {
        let _ = two_link().fk(&Config::zeros(3));
    }
}
