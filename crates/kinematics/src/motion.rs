//! Motions: line segments in configuration space.
//!
//! A motion between two poses is a straight line in C-space (paper Fig. 2b).
//! Discrete collision detection divides the motion uniformly into sample
//! poses (Fig. 4c); the resolution is chosen so that no DOF moves more than a
//! step bound between consecutive samples.

use crate::config::Config;

/// A straight-line motion between two configurations.
///
/// # Examples
///
/// ```
/// use copred_kinematics::{Config, Motion};
///
/// let m = Motion::new(Config::zeros(2), Config::new(vec![1.0, 0.0]));
/// let poses = m.discretize(5);
/// assert_eq!(poses.len(), 5);
/// assert_eq!(poses[0], m.from);
/// assert_eq!(poses[4], m.to);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Motion {
    /// Start pose.
    pub from: Config,
    /// End pose.
    pub to: Config,
}

impl Motion {
    /// Creates a motion.
    ///
    /// # Panics
    ///
    /// Panics when the endpoints have different DOF counts.
    pub fn new(from: Config, to: Config) -> Self {
        assert_eq!(
            from.dofs(),
            to.dofs(),
            "motion endpoints must share DOF count"
        );
        Motion { from, to }
    }

    /// C-space length of the motion.
    pub fn length(&self) -> f64 {
        self.from.distance(&self.to)
    }

    /// Uniformly discretizes into exactly `n` poses including both endpoints.
    ///
    /// # Panics
    ///
    /// Panics when `n == 0`.
    pub fn discretize(&self, n: usize) -> Vec<Config> {
        assert!(n > 0, "cannot discretize a motion into 0 poses");
        if n == 1 {
            return vec![self.from.clone()];
        }
        (0..n)
            .map(|i| self.from.lerp(&self.to, i as f64 / (n - 1) as f64))
            .collect()
    }

    /// Discretizes with a maximum per-step C-space distance `step`, returning
    /// at least two poses (both endpoints).
    ///
    /// # Panics
    ///
    /// Panics when `step` is not positive.
    pub fn discretize_by_step(&self, step: f64) -> Vec<Config> {
        assert!(step > 0.0, "discretization step must be positive");
        let n = (self.length() / step).ceil() as usize + 1;
        self.discretize(n.max(2))
    }

    /// The reversed motion.
    pub fn reversed(&self) -> Motion {
        Motion::new(self.to.clone(), self.from.clone())
    }
}

/// Reorders pose indices `0..n` with the coarse-step policy (**CSP**) from
/// Shah et al. (ref. \[43\]): indices are visited with stride `step` in several
/// passes, so physically distant poses along the motion are checked first
/// (e.g. step 3 over 7 poses yields 0, 3, 6, 1, 4, 2, 5).
///
/// Returns the identity permutation for `step <= 1`.
///
/// # Examples
///
/// ```
/// use copred_kinematics::csp_order;
///
/// assert_eq!(csp_order(7, 3), vec![0, 3, 6, 1, 4, 2, 5]);
/// assert_eq!(csp_order(4, 1), vec![0, 1, 2, 3]);
/// ```
pub fn csp_order(n: usize, step: usize) -> Vec<usize> {
    if step <= 1 {
        return (0..n).collect();
    }
    let mut order = Vec::with_capacity(n);
    for offset in 0..step.min(n.max(1)) {
        let mut i = offset;
        while i < n {
            order.push(i);
            i += step;
        }
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn discretize_endpoints_exact() {
        let m = Motion::new(Config::new(vec![0.0, 1.0]), Config::new(vec![2.0, 3.0]));
        let ps = m.discretize(3);
        assert_eq!(ps[0], m.from);
        assert_eq!(ps[1].values(), &[1.0, 2.0]);
        assert_eq!(ps[2], m.to);
    }

    #[test]
    fn discretize_single_pose() {
        let m = Motion::new(Config::zeros(1), Config::new(vec![1.0]));
        assert_eq!(m.discretize(1), vec![Config::zeros(1)]);
    }

    #[test]
    fn discretize_by_step_bounds_step_size() {
        let m = Motion::new(Config::zeros(2), Config::new(vec![3.0, 4.0])); // length 5
        let ps = m.discretize_by_step(0.5);
        assert!(ps.len() >= 11);
        for w in ps.windows(2) {
            assert!(w[0].distance(&w[1]) <= 0.5 + 1e-12);
        }
    }

    #[test]
    fn zero_length_motion() {
        let c = Config::new(vec![1.0, 2.0]);
        let m = Motion::new(c.clone(), c.clone());
        assert_eq!(m.length(), 0.0);
        let ps = m.discretize_by_step(0.1);
        assert!(ps.len() >= 2);
        assert!(ps.iter().all(|p| *p == c));
    }

    #[test]
    fn reversed_swaps_endpoints() {
        let m = Motion::new(Config::zeros(2), Config::new(vec![1.0, 1.0]));
        let r = m.reversed();
        assert_eq!(r.from, m.to);
        assert_eq!(r.to, m.from);
        assert_eq!(m.length(), r.length());
    }

    #[test]
    fn csp_order_is_permutation() {
        for n in [1usize, 2, 5, 7, 16, 33] {
            for step in [1usize, 2, 3, 5, 8] {
                let mut order = csp_order(n, step);
                assert_eq!(order.len(), n, "n={n} step={step}");
                order.sort_unstable();
                assert_eq!(order, (0..n).collect::<Vec<_>>(), "n={n} step={step}");
            }
        }
    }

    #[test]
    fn csp_order_matches_paper_example() {
        // Paper §III-A: "a step size of 3 results in the order
        // P1, P4, P7, .., P2, P5, ... Pn".
        let order = csp_order(9, 3);
        assert_eq!(order, vec![0, 3, 6, 1, 4, 7, 2, 5, 8]);
    }

    #[test]
    fn csp_first_indices_are_spread() {
        let order = csp_order(30, 5);
        // The first ceil(30/5)=6 visited poses are 5 apart.
        assert_eq!(&order[..6], &[0, 5, 10, 15, 20, 25]);
    }

    #[test]
    #[should_panic(expected = "share DOF count")]
    fn mismatched_motion_endpoints_panic() {
        let _ = Motion::new(Config::zeros(2), Config::zeros(3));
    }
}
