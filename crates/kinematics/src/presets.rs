//! Robot presets used in the paper's evaluation.
//!
//! DH tables follow published kinematic descriptions; link bounding radii
//! are datasheet-scale approximations (see DESIGN.md substitution table —
//! the accelerators consume conservative bounding volumes, so exact link
//! meshes are not required).

use crate::arm::{ArmModel, DhJoint};
use crate::planar::PlanarModel;
use copred_geometry::{Aabb, Iso3, Vec3};
use std::f64::consts::{FRAC_PI_2, PI};

/// Kinova Jaco2, the 7-DOF assistive arm used for the predictor design
/// studies (paper §V). Spherical-wrist DH approximation.
pub fn jaco2() -> ArmModel {
    let j = |d: f64, alpha: f64| DhJoint::new(0.0, d, 0.0, alpha, PI);
    ArmModel::new(
        "jaco2",
        Iso3::IDENTITY,
        vec![
            j(0.2755, FRAC_PI_2),
            j(0.0, FRAC_PI_2),
            j(-0.410, FRAC_PI_2),
            j(-0.0098, FRAC_PI_2),
            j(-0.3111, FRAC_PI_2),
            j(0.0, FRAC_PI_2),
            j(-0.2638, PI),
        ],
        0.045,
        3,
    )
}

/// One 7-DOF arm of the Rethink Baxter, used for the MPNet benchmarks.
pub fn baxter_arm() -> ArmModel {
    ArmModel::new(
        "baxter",
        Iso3::IDENTITY,
        vec![
            DhJoint::new(0.0, 0.2703, 0.069, -FRAC_PI_2, 1.70),
            DhJoint::new(FRAC_PI_2, 0.0, 0.0, FRAC_PI_2, 1.50),
            DhJoint::new(0.0, 0.3644, 0.069, -FRAC_PI_2, 3.05),
            DhJoint::new(0.0, 0.0, 0.0, FRAC_PI_2, 2.61),
            DhJoint::new(0.0, 0.3743, 0.010, -FRAC_PI_2, 3.05),
            DhJoint::new(0.0, 0.0, 0.0, FRAC_PI_2, 2.09),
            DhJoint::new(0.0, 0.2295, 0.0, 0.0, 3.05),
        ],
        0.055,
        3,
    )
}

/// KUKA LBR iiwa 7 R800, the 7-DOF arm used for the GNNMP and BIT*
/// benchmarks.
pub fn kuka_iiwa() -> ArmModel {
    let lim = [2.96, 2.09, 2.96, 2.09, 2.96, 2.09, 3.05];
    let rows = [
        (0.34, -FRAC_PI_2),
        (0.0, FRAC_PI_2),
        (0.40, FRAC_PI_2),
        (0.0, -FRAC_PI_2),
        (0.40, -FRAC_PI_2),
        (0.0, FRAC_PI_2),
        (0.126, 0.0),
    ];
    ArmModel::new(
        "kuka-iiwa",
        Iso3::IDENTITY,
        rows.iter()
            .zip(lim)
            .map(|(&(d, alpha), l)| DhJoint::new(0.0, d, 0.0, alpha, l))
            .collect(),
        0.05,
        3,
    )
}

/// A planar 2-link arm (2 DOF, both joints about z): the textbook robot of
/// the paper's Fig. 2 C-space illustration. Useful for visualizable tests.
pub fn planar_arm_2dof() -> ArmModel {
    ArmModel::new(
        "planar-arm-2dof",
        Iso3::IDENTITY,
        vec![
            DhJoint::new(0.0, 0.0, 0.5, 0.0, PI),
            DhJoint::new(0.0, 0.0, 0.4, 0.0, PI),
        ],
        0.04,
        2,
    )
}

/// The 2D path-planning robot: a small disc in a ±1 m planar workspace.
pub fn planar_2d() -> PlanarModel {
    PlanarModel::new(
        "planar-2d",
        Aabb::new(Vec3::new(-1.0, -1.0, -0.05), Vec3::new(1.0, 1.0, 0.05)),
        0.02,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Config;

    #[test]
    fn all_arms_have_seven_dofs() {
        assert_eq!(jaco2().dofs(), 7);
        assert_eq!(baxter_arm().dofs(), 7);
        assert_eq!(kuka_iiwa().dofs(), 7);
    }

    #[test]
    fn reaches_are_plausible_for_tabletop_arms() {
        // All three commercial arms reach roughly 0.9-1.3 m.
        for arm in [jaco2(), baxter_arm(), kuka_iiwa()] {
            let r = arm.reach();
            assert!((0.8..1.5).contains(&r), "{} reach {r}", arm.name());
        }
    }

    #[test]
    fn kuka_zero_pose_is_vertical() {
        let arm = kuka_iiwa();
        let ts = arm.link_transforms(&Config::zeros(7));
        let tip = ts.last().unwrap().trans;
        // All joints at zero: the arm points straight up (x=y=0, z=sum of d).
        assert!(tip.x.abs() < 1e-9 && tip.y.abs() < 1e-9);
        assert!((tip.z - (0.34 + 0.40 + 0.40 + 0.126)).abs() < 1e-9);
    }

    #[test]
    fn distinct_configs_give_distinct_poses() {
        let arm = jaco2();
        let a = arm.fk(&Config::zeros(7));
        let b = arm.fk(&Config::new(vec![0.5; 7]));
        assert_ne!(
            a.links.last().unwrap().center,
            b.links.last().unwrap().center
        );
    }

    #[test]
    fn planar_arm_matches_fig2_geometry() {
        // Fig. 2: a 2-DOF arm whose pose is the pair of joint angles.
        let arm = planar_arm_2dof();
        assert_eq!(arm.dofs(), 2);
        // Stretched out along x: tip at link lengths' sum.
        let ts = arm.link_transforms(&Config::zeros(2));
        let tip = ts.last().unwrap().trans;
        assert!((tip.x - 0.9).abs() < 1e-12 && tip.y.abs() < 1e-12);
        // Elbow at 90 degrees: tip at (0.5, 0.4).
        let ts = arm.link_transforms(&Config::new(vec![0.0, std::f64::consts::FRAC_PI_2]));
        let tip = ts.last().unwrap().trans;
        assert!((tip.x - 0.5).abs() < 1e-12 && (tip.y - 0.4).abs() < 1e-12);
        // All motion stays in the z = 0 plane.
        let pose = arm.fk(&Config::new(vec![1.1, -0.7]));
        for link in pose.links {
            assert!(link.center.z.abs() < 1e-12);
        }
    }

    #[test]
    fn planar_preset_geometry() {
        let p = planar_2d();
        assert_eq!(p.dofs(), 2);
        assert!((p.radius() - 0.02).abs() < 1e-12);
        assert_eq!(p.limits(0), (-1.0, 1.0));
    }
}
