//! Planar (2D path-planning) robots.
//!
//! The paper's "2D path planning" benchmarks use a point robot moving in the
//! plane: its C-space is simply its (x, y) position, and collision checking
//! tests a small disc (modeled as a sphere with matching flat OBB) against
//! planar obstacles. The CHT for 2D planning is 1024 entries (vs 4096 for
//! arms).

use crate::config::Config;
use crate::pose::{LinkPose, RobotPose};
use copred_geometry::{Aabb, Obb, Sphere, Vec3};

/// A disc robot translating in the XY plane.
///
/// # Examples
///
/// ```
/// use copred_kinematics::{Config, PlanarModel};
/// use copred_geometry::{Aabb, Vec3};
///
/// let robot = PlanarModel::new("disc", Aabb::new(Vec3::splat(-1.0), Vec3::splat(1.0)), 0.02);
/// let pose = robot.fk(&Config::new(vec![0.5, -0.5]));
/// assert_eq!(pose.links.len(), 1);
/// assert_eq!(pose.links[0].center, Vec3::new(0.5, -0.5, 0.0));
/// ```
#[derive(Debug, Clone)]
pub struct PlanarModel {
    name: String,
    bounds: Aabb,
    radius: f64,
}

impl PlanarModel {
    /// Creates a planar disc robot confined to the XY extent of `bounds`.
    ///
    /// # Panics
    ///
    /// Panics when `radius` is not positive.
    pub fn new(name: impl Into<String>, bounds: Aabb, radius: f64) -> Self {
        assert!(radius > 0.0, "disc radius must be positive");
        PlanarModel {
            name: name.into(),
            bounds,
            radius,
        }
    }

    /// Robot name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The robot has 2 DOFs: x and y.
    pub fn dofs(&self) -> usize {
        2
    }

    /// Position limits for DOF `i` (0 = x, 1 = y).
    ///
    /// # Panics
    ///
    /// Panics when `i >= 2`.
    pub fn limits(&self, i: usize) -> (f64, f64) {
        match i {
            0 => (self.bounds.min.x, self.bounds.max.x),
            1 => (self.bounds.min.y, self.bounds.max.y),
            _ => panic!("planar robot has 2 DOFs, asked for limit {i}"),
        }
    }

    /// Disc radius.
    pub fn radius(&self) -> f64 {
        self.radius
    }

    /// The planar workspace box.
    pub fn workspace(&self) -> Aabb {
        self.bounds
    }

    /// Forward kinematics: the single disc "link" at `(x, y, 0)`.
    ///
    /// # Panics
    ///
    /// Panics when `q` does not have exactly 2 DOFs.
    pub fn fk(&self, q: &Config) -> RobotPose {
        assert_eq!(q.dofs(), 2, "planar robot needs a 2-DOF configuration");
        let center = Vec3::planar(q[0], q[1]);
        let r = self.radius;
        let link = LinkPose {
            center,
            obb: Obb::axis_aligned(center, Vec3::new(r, r, r)),
            spheres: vec![Sphere::new(center, r)],
        };
        RobotPose { links: vec![link] }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn robot() -> PlanarModel {
        PlanarModel::new("disc", Aabb::new(Vec3::splat(-2.0), Vec3::splat(2.0)), 0.05)
    }

    #[test]
    fn fk_places_disc() {
        let pose = robot().fk(&Config::new(vec![1.0, -1.5]));
        assert_eq!(pose.links[0].center, Vec3::new(1.0, -1.5, 0.0));
        assert_eq!(pose.links[0].spheres[0].radius, 0.05);
        assert_eq!(pose.link_count(), 1);
    }

    #[test]
    fn limits_follow_bounds() {
        let r = robot();
        assert_eq!(r.limits(0), (-2.0, 2.0));
        assert_eq!(r.limits(1), (-2.0, 2.0));
        assert_eq!(r.dofs(), 2);
    }

    #[test]
    #[should_panic(expected = "2 DOFs")]
    fn limit_out_of_range_panics() {
        let _ = robot().limits(2);
    }

    #[test]
    #[should_panic(expected = "2-DOF configuration")]
    fn wrong_config_panics() {
        let _ = robot().fk(&Config::zeros(3));
    }

    #[test]
    fn obb_matches_disc_extent() {
        let pose = robot().fk(&Config::zeros(2));
        let obb = pose.links[0].obb;
        assert!(obb.contains(Vec3::new(0.05, 0.0, 0.0)));
        assert!(!obb.contains(Vec3::new(0.06, 0.0, 0.0)));
    }
}
