//! Unified robot interface over arms and planar robots.

use crate::arm::ArmModel;
use crate::config::Config;
use crate::planar::PlanarModel;
use crate::pose::RobotPose;
use copred_geometry::Aabb;
use rand::Rng;

/// Any robot the reproduction evaluates: a DH arm or a planar disc robot.
///
/// The enum gives planners, environment generators, and the accelerator
/// simulator a single FK/limits interface, matching the paper's evaluation
/// over "different robots" (Baxter, KUKA, Jaco2, 2D path planning).
///
/// # Examples
///
/// ```
/// use copred_kinematics::{presets, Robot};
/// use rand::SeedableRng;
///
/// let robot: Robot = presets::jaco2().into();
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let q = robot.sample_uniform(&mut rng);
/// assert_eq!(q.dofs(), 7);
/// assert_eq!(robot.fk(&q).links.len(), 7);
/// ```
#[derive(Debug, Clone)]
pub enum Robot {
    /// A serial DH arm.
    Arm(ArmModel),
    /// A planar disc robot.
    Planar(PlanarModel),
}

impl Robot {
    /// Robot name.
    pub fn name(&self) -> &str {
        match self {
            Robot::Arm(a) => a.name(),
            Robot::Planar(p) => p.name(),
        }
    }

    /// Number of degrees of freedom.
    pub fn dofs(&self) -> usize {
        match self {
            Robot::Arm(a) => a.dofs(),
            Robot::Planar(p) => p.dofs(),
        }
    }

    /// Limits of DOF `i`.
    pub fn limits(&self, i: usize) -> (f64, f64) {
        match self {
            Robot::Arm(a) => a.limits(i),
            Robot::Planar(p) => p.limits(i),
        }
    }

    /// Number of rigid links (OBB CDQs per pose check).
    pub fn link_count(&self) -> usize {
        match self {
            Robot::Arm(a) => a.dofs(),
            Robot::Planar(_) => 1,
        }
    }

    /// Workspace bounding box — also the extent the COORD fixed-point
    /// encoder quantizes over.
    pub fn workspace(&self) -> Aabb {
        match self {
            Robot::Arm(a) => a.workspace(),
            Robot::Planar(p) => p.workspace(),
        }
    }

    /// Forward kinematics.
    ///
    /// # Panics
    ///
    /// Panics when `q` has the wrong number of DOFs.
    pub fn fk(&self, q: &Config) -> RobotPose {
        match self {
            Robot::Arm(a) => a.fk(q),
            Robot::Planar(p) => p.fk(q),
        }
    }

    /// Samples a configuration uniformly within joint limits.
    pub fn sample_uniform<R: Rng + ?Sized>(&self, rng: &mut R) -> Config {
        (0..self.dofs())
            .map(|i| {
                let (lo, hi) = self.limits(i);
                rng.gen_range(lo..hi)
            })
            .collect()
    }

    /// Clamps a configuration into joint limits.
    pub fn clamp(&self, mut q: Config) -> Config {
        for i in 0..self.dofs().min(q.dofs()) {
            let (lo, hi) = self.limits(i);
            q.values_mut()[i] = q[i].clamp(lo, hi);
        }
        q
    }
}

impl From<ArmModel> for Robot {
    fn from(a: ArmModel) -> Self {
        Robot::Arm(a)
    }
}

impl From<PlanarModel> for Robot {
    fn from(p: PlanarModel) -> Self {
        Robot::Planar(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn enum_dispatch_consistency() {
        let robots: Vec<Robot> = vec![
            presets::jaco2().into(),
            presets::baxter_arm().into(),
            presets::kuka_iiwa().into(),
            presets::planar_2d().into(),
        ];
        for r in &robots {
            assert!(r.dofs() >= 2, "{}", r.name());
            assert!(r.link_count() >= 1);
            let q = Config::zeros(r.dofs());
            let pose = r.fk(&q);
            assert_eq!(pose.links.len(), r.link_count(), "{}", r.name());
        }
    }

    #[test]
    fn sampling_respects_limits() {
        let r: Robot = presets::kuka_iiwa().into();
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            let q = r.sample_uniform(&mut rng);
            for i in 0..r.dofs() {
                let (lo, hi) = r.limits(i);
                assert!(q[i] >= lo && q[i] <= hi);
            }
        }
    }

    #[test]
    fn sampled_poses_stay_in_workspace() {
        let r: Robot = presets::jaco2().into();
        let ws = r.workspace();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..50 {
            let q = r.sample_uniform(&mut rng);
            for link in r.fk(&q).links {
                assert!(
                    ws.contains(link.center),
                    "link center {} escapes",
                    link.center
                );
            }
        }
    }

    #[test]
    fn clamp_pulls_into_limits() {
        let r: Robot = presets::planar_2d().into();
        let q = r.clamp(Config::new(vec![100.0, -100.0]));
        let (lo0, hi0) = r.limits(0);
        let (lo1, _) = r.limits(1);
        assert!(q[0] <= hi0 && q[0] >= lo0);
        assert_eq!(q[1], lo1);
    }
}
