//! # copred-kinematics
//!
//! Robot kinematics substrate: configuration-space points and motions,
//! DH-parameter forward kinematics, per-link bounding geometry, and the
//! robot models evaluated in the paper (Kinova Jaco2, Baxter, KUKA iiwa,
//! and a planar 2D path-planning robot).
//!
//! ## Example
//!
//! ```
//! use copred_kinematics::{presets, Config, Motion, Robot};
//!
//! let robot: Robot = presets::baxter_arm().into();
//! let motion = Motion::new(Config::zeros(7), Config::new(vec![0.4; 7]));
//! // Discretize the motion and bound every pose's links:
//! for q in motion.discretize(10) {
//!     let pose = robot.fk(&q);
//!     assert_eq!(pose.links.len(), 7);
//! }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod arm;
mod config;
mod motion;
mod planar;
mod pose;
pub mod presets;
mod robot;

pub use arm::{ArmModel, DhJoint};
pub use config::Config;
pub use motion::{csp_order, Motion};
pub use planar::PlanarModel;
pub use pose::{LinkPose, RobotPose};
pub use robot::Robot;
