//! Configuration-space points (robot poses).
//!
//! A pose of an n-DOF robot is an n-dimensional real vector — a point in the
//! robot's C-space (paper Fig. 2). [`Config`] wraps that vector and provides
//! the interpolation used to discretize motions into sample poses.

use std::fmt;
use std::ops::Index;

/// A point in configuration space: one value per degree of freedom.
///
/// # Examples
///
/// ```
/// use copred_kinematics::Config;
///
/// let a = Config::new(vec![0.0, 0.0]);
/// let b = Config::new(vec![1.0, 2.0]);
/// let mid = a.lerp(&b, 0.5);
/// assert_eq!(mid.values(), &[0.5, 1.0]);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Config(Vec<f64>);

impl Config {
    /// Creates a configuration from DOF values.
    pub fn new(values: Vec<f64>) -> Self {
        Config(values)
    }

    /// The all-zero configuration with `n` DOFs.
    pub fn zeros(n: usize) -> Self {
        Config(vec![0.0; n])
    }

    /// Number of degrees of freedom.
    pub fn dofs(&self) -> usize {
        self.0.len()
    }

    /// DOF values as a slice.
    pub fn values(&self) -> &[f64] {
        &self.0
    }

    /// Mutable DOF values.
    pub fn values_mut(&mut self) -> &mut [f64] {
        &mut self.0
    }

    /// Consumes the configuration, returning the underlying vector.
    pub fn into_inner(self) -> Vec<f64> {
        self.0
    }

    /// Euclidean distance in C-space.
    ///
    /// # Panics
    ///
    /// Panics when the two configurations have different DOF counts.
    pub fn distance(&self, other: &Config) -> f64 {
        assert_eq!(
            self.dofs(),
            other.dofs(),
            "DOF mismatch in Config::distance"
        );
        self.0
            .iter()
            .zip(&other.0)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt()
    }

    /// Linear interpolation `self + t (other - self)` — a point on the
    /// C-space line segment (the paper's "motion").
    ///
    /// # Panics
    ///
    /// Panics when the two configurations have different DOF counts.
    pub fn lerp(&self, other: &Config, t: f64) -> Config {
        assert_eq!(self.dofs(), other.dofs(), "DOF mismatch in Config::lerp");
        Config(
            self.0
                .iter()
                .zip(&other.0)
                .map(|(a, b)| a + (b - a) * t)
                .collect(),
        )
    }

    /// Returns `true` when every DOF value is finite.
    pub fn is_finite(&self) -> bool {
        self.0.iter().all(|v| v.is_finite())
    }
}

impl Index<usize> for Config {
    type Output = f64;
    fn index(&self, i: usize) -> &f64 {
        &self.0[i]
    }
}

impl From<Vec<f64>> for Config {
    fn from(v: Vec<f64>) -> Self {
        Config(v)
    }
}

impl FromIterator<f64> for Config {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        Config(iter.into_iter().collect())
    }
}

impl fmt::Display for Config {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, v) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v:.4}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let c = Config::new(vec![1.0, 2.0, 3.0]);
        assert_eq!(c.dofs(), 3);
        assert_eq!(c[1], 2.0);
        assert_eq!(c.values(), &[1.0, 2.0, 3.0]);
        assert_eq!(Config::zeros(4).values(), &[0.0; 4]);
    }

    #[test]
    fn distance_is_euclidean() {
        let a = Config::new(vec![0.0, 0.0]);
        let b = Config::new(vec![3.0, 4.0]);
        assert_eq!(a.distance(&b), 5.0);
        assert_eq!(b.distance(&a), 5.0);
        assert_eq!(a.distance(&a), 0.0);
    }

    #[test]
    fn lerp_endpoints() {
        let a = Config::new(vec![1.0, -1.0]);
        let b = Config::new(vec![3.0, 1.0]);
        assert_eq!(a.lerp(&b, 0.0), a);
        assert_eq!(a.lerp(&b, 1.0), b);
        assert_eq!(a.lerp(&b, 0.25).values(), &[1.5, -0.5]);
    }

    #[test]
    #[should_panic(expected = "DOF mismatch")]
    fn mismatched_dofs_panic() {
        let _ = Config::zeros(2).distance(&Config::zeros(3));
    }

    #[test]
    fn from_iterator_collects() {
        let c: Config = (0..3).map(|i| i as f64).collect();
        assert_eq!(c.values(), &[0.0, 1.0, 2.0]);
    }

    #[test]
    fn mutation_through_values_mut() {
        let mut c = Config::zeros(2);
        c.values_mut()[0] = 7.0;
        assert_eq!(c[0], 7.0);
    }

    #[test]
    fn display_formats() {
        let c = Config::new(vec![0.5, 1.0]);
        assert_eq!(format!("{c}"), "[0.5000, 1.0000]");
    }
}
