//! World-space bounding geometry of a robot pose.

use copred_geometry::{Obb, Sphere, Vec3};

/// Bounding geometry of one rigid link at a given pose.
///
/// A link carries both representations the paper evaluates: one OBB
/// (Shah et al. / RACOD style) and a set of covering spheres (curobo style,
/// §VII-1). The `center` is the quantity the COORD hash consumes.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkPose {
    /// Cartesian center of the link (the OBB center; paper Fig. 10 input).
    pub center: Vec3,
    /// OBB bounding the link.
    pub obb: Obb,
    /// Sphere set covering the link.
    pub spheres: Vec<Sphere>,
}

/// The full bounding geometry of a robot at one configuration: one
/// [`LinkPose`] per rigid link.
#[derive(Debug, Clone, PartialEq)]
pub struct RobotPose {
    /// Per-link geometry, ordered from the base outward.
    pub links: Vec<LinkPose>,
}

impl RobotPose {
    /// Number of links (= number of OBB CDQs needed for a pose check).
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// Total number of sphere CDQs needed for a pose check.
    pub fn sphere_count(&self) -> usize {
        self.links.iter().map(|l| l.spheres.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use copred_geometry::Mat3;

    #[test]
    fn counts() {
        let link = LinkPose {
            center: Vec3::ZERO,
            obb: Obb::new(Vec3::ZERO, Mat3::IDENTITY, Vec3::splat(0.1)),
            spheres: vec![Sphere::new(Vec3::ZERO, 0.1), Sphere::new(Vec3::X, 0.1)],
        };
        let pose = RobotPose {
            links: vec![link.clone(), link],
        };
        assert_eq!(pose.link_count(), 2);
        assert_eq!(pose.sphere_count(), 4);
    }
}
