//! Property-based tests for kinematics invariants.

use copred_kinematics::{csp_order, presets, Config, Motion, Robot};
use proptest::prelude::*;

fn config7() -> impl Strategy<Value = Config> {
    prop::collection::vec(-1.5..1.5f64, 7).prop_map(Config::new)
}

proptest! {
    #[test]
    fn fk_is_deterministic(q in config7()) {
        let arm = presets::kuka_iiwa();
        prop_assert_eq!(arm.fk(&q), arm.fk(&q));
    }

    #[test]
    fn link_centers_within_workspace(q in config7()) {
        for robot in [Robot::from(presets::jaco2()), Robot::from(presets::kuka_iiwa())] {
            let ws = robot.workspace();
            for link in robot.fk(&q).links {
                prop_assert!(ws.contains(link.center));
            }
        }
    }

    #[test]
    fn chain_is_connected(q in config7()) {
        // Consecutive link OBBs meet: the distal end of link i equals the
        // proximal end of link i+1, so both OBBs contain that joint point.
        let arm = presets::baxter_arm();
        let ts = arm.link_transforms(&q);
        let pose = arm.fk(&q);
        for i in 0..pose.links.len() - 1 {
            let joint = ts[i + 1].trans;
            prop_assert!(pose.links[i].obb.contains(joint));
            prop_assert!(pose.links[i + 1].obb.contains(joint));
        }
    }

    #[test]
    fn small_config_change_moves_links_little(q in config7(), eps in 1e-6..1e-3f64) {
        // Physical spatial locality (the paper's key insight): nearby poses
        // have nearby link centers. FK is Lipschitz with constant bounded by
        // the total reach.
        let arm = presets::kuka_iiwa();
        let mut q2 = q.clone();
        q2.values_mut()[3] += eps;
        let a = arm.fk(&q);
        let b = arm.fk(&q2);
        let reach = arm.reach();
        for (la, lb) in a.links.iter().zip(&b.links) {
            prop_assert!(la.center.distance(lb.center) <= reach * eps * 2.0 + 1e-9);
        }
    }

    #[test]
    fn motion_discretization_monotone_along_line(n in 2usize..40) {
        let m = Motion::new(Config::zeros(3), Config::new(vec![1.0, -2.0, 0.5]));
        let ps = m.discretize(n);
        prop_assert_eq!(ps.len(), n);
        // Distances from start are nondecreasing.
        let mut prev = -1.0;
        for p in &ps {
            let d = m.from.distance(p);
            prop_assert!(d >= prev - 1e-12);
            prev = d;
        }
    }

    #[test]
    fn csp_is_permutation(n in 0usize..200, step in 0usize..250) {
        // `step` deliberately covers the degenerate 0, strides larger than
        // `n`, and everything between: every case must visit each pose
        // exactly once.
        let mut order = csp_order(n, step);
        order.sort_unstable();
        prop_assert_eq!(order, (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn csp_degenerate_strides_are_identity(n in 0usize..64) {
        let identity: Vec<usize> = (0..n).collect();
        prop_assert_eq!(csp_order(n, 0), identity.clone(), "step 0");
        prop_assert_eq!(csp_order(n, 1), identity, "step 1");
    }

    #[test]
    fn sphere_set_encloses_obb_center(q in config7()) {
        let arm = presets::jaco2();
        for link in arm.fk(&q).links {
            prop_assert!(link.spheres.iter().any(|s| s.contains(link.center)));
        }
    }
}
