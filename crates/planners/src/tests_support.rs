//! Shared fixtures for planner unit tests.

use copred_collision::Environment;
use copred_geometry::{Aabb, Vec3};
use copred_kinematics::Robot;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A small tabletop-like scene for arm planner tests.
pub fn arm_tabletop(robot: &Robot, seed: u64) -> Environment {
    let ws = robot.workspace();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut obs = Vec::new();
    for _ in 0..4 {
        let half = Vec3::new(
            rng.gen_range(0.04..0.10),
            rng.gen_range(0.04..0.10),
            rng.gen_range(0.05..0.15),
        );
        let c = Vec3::new(
            rng.gen_range(0.3..0.7),
            rng.gen_range(-0.5..0.5),
            rng.gen_range(0.1..0.5),
        );
        obs.push(Aabb::from_center_half_extents(c, half));
    }
    Environment::new(ws, obs)
}
