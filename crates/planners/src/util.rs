//! Shared planner utilities.

use copred_kinematics::Config;
use rand::Rng;

/// Standard normal sample via Box–Muller (rand's core crate has no normal
/// distribution; this keeps the dependency set minimal).
pub fn gaussian<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Moves from `from` toward `to` by at most `eps` in C-space distance.
/// Returns `to` itself when it is closer than `eps`.
pub fn steer(from: &Config, to: &Config, eps: f64) -> Config {
    let d = from.distance(to);
    if d <= eps {
        to.clone()
    } else {
        from.lerp(to, eps / d)
    }
}

/// Index of the configuration in `nodes` closest to `q`.
///
/// # Panics
///
/// Panics when `nodes` is empty.
pub fn nearest(nodes: &[Config], q: &Config) -> usize {
    assert!(!nodes.is_empty(), "nearest() needs at least one node");
    let mut best = 0;
    let mut best_d = f64::INFINITY;
    for (i, n) in nodes.iter().enumerate() {
        let d = n.distance(q);
        if d < best_d {
            best_d = d;
            best = i;
        }
    }
    best
}

/// Reconstructs a root-to-node path from a parent-pointer tree.
pub fn trace_path(parents: &[Option<usize>], nodes: &[Config], mut idx: usize) -> Vec<Config> {
    let mut rev = vec![nodes[idx].clone()];
    while let Some(p) = parents[idx] {
        rev.push(nodes[p].clone());
        idx = p;
    }
    rev.reverse();
    rev
}

/// Total C-space length of a path.
pub fn path_length(path: &[Config]) -> f64 {
    path.windows(2).map(|w| w[0].distance(&w[1])).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn gaussian_moments() {
        let mut rng = StdRng::seed_from_u64(8);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| gaussian(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn steer_caps_distance() {
        let a = Config::new(vec![0.0, 0.0]);
        let b = Config::new(vec![3.0, 4.0]);
        let s = steer(&a, &b, 1.0);
        assert!((a.distance(&s) - 1.0).abs() < 1e-12);
        // Within eps: returns target exactly.
        assert_eq!(steer(&a, &b, 10.0), b);
    }

    #[test]
    fn nearest_finds_closest() {
        let nodes = vec![
            Config::new(vec![0.0, 0.0]),
            Config::new(vec![1.0, 0.0]),
            Config::new(vec![0.0, 2.0]),
        ];
        assert_eq!(nearest(&nodes, &Config::new(vec![0.9, 0.1])), 1);
        assert_eq!(nearest(&nodes, &Config::new(vec![0.1, 1.8])), 2);
    }

    #[test]
    fn trace_path_walks_parents() {
        let nodes = vec![
            Config::new(vec![0.0]),
            Config::new(vec![1.0]),
            Config::new(vec![2.0]),
        ];
        let parents = vec![None, Some(0), Some(1)];
        let path = trace_path(&parents, &nodes, 2);
        assert_eq!(path.len(), 3);
        assert_eq!(path[0], nodes[0]);
        assert_eq!(path[2], nodes[2]);
    }

    #[test]
    fn path_length_sums_segments() {
        let path = vec![
            Config::new(vec![0.0, 0.0]),
            Config::new(vec![3.0, 0.0]),
            Config::new(vec![3.0, 4.0]),
        ];
        assert!((path_length(&path) - 7.0).abs() < 1e-12);
    }
}
