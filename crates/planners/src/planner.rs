//! The planner interface.

use crate::context::PlanContext;
use copred_kinematics::Config;
use rand::rngs::StdRng;

/// Outcome of a planning query.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanResult {
    /// The found path (start..=goal), or `None` on failure.
    pub path: Option<Vec<Config>>,
    /// Planner iterations consumed.
    pub iterations: usize,
}

impl PlanResult {
    /// A successful result.
    pub fn success(path: Vec<Config>, iterations: usize) -> Self {
        PlanResult {
            path: Some(path),
            iterations,
        }
    }

    /// A failed result.
    pub fn failure(iterations: usize) -> Self {
        PlanResult {
            path: None,
            iterations,
        }
    }

    /// Whether a path was found.
    pub fn solved(&self) -> bool {
        self.path.is_some()
    }
}

/// A sampling-based motion planner.
///
/// Planners issue every collision check through the [`PlanContext`] so the
/// full CDQ workload is recorded for trace-driven evaluation.
pub trait Planner {
    /// Short identifier (e.g. `"mpnet"`).
    fn name(&self) -> &'static str;

    /// Plans from `start` to `goal`.
    fn plan(
        &self,
        ctx: &mut PlanContext<'_>,
        start: &Config,
        goal: &Config,
        rng: &mut StdRng,
    ) -> PlanResult;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn result_constructors() {
        let ok = PlanResult::success(vec![Config::zeros(2)], 5);
        assert!(ok.solved());
        assert_eq!(ok.iterations, 5);
        let bad = PlanResult::failure(10);
        assert!(!bad.solved());
        assert_eq!(bad.iterations, 10);
    }
}
