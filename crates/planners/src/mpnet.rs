//! MPNet-style neural motion planner (emulated sampler).
//!
//! MPNet (ref. \[41\]) grows two paths — from the start and from the goal — by
//! repeatedly asking a neural network for the next state toward the other
//! end and collision-checking the connecting motion; dropout noise makes
//! retries explore around obstacles, and the resulting trajectory is finally
//! checked for feasibility. The original network weights are unavailable, so
//! [`MpnetEmulator`] reproduces the *workload signature* the predictor
//! consumes (see DESIGN.md): greedy goal-directed steps whose connecting
//! motions mostly collide near obstacles (the paper's 52%–93% colliding
//! checks in exploration), followed by a mostly-free validation stage (S2).

use crate::context::{PlanContext, Stage};
use crate::planner::{PlanResult, Planner};
use crate::rrt::validate_path;
use crate::util::gaussian;
use copred_kinematics::Config;
use rand::rngs::StdRng;
use rand::Rng;

/// The MPNet-like planner.
#[derive(Debug, Clone)]
pub struct MpnetEmulator {
    /// Maximum bidirectional growth iterations.
    pub max_iters: usize,
    /// Proposal retries per growth step before the step is skipped.
    pub step_attempts: usize,
    /// Step length as a fraction of the remaining gap (the network proposes
    /// aggressive jumps toward the goal).
    pub step_fraction: f64,
    /// Base proposal noise (per-DOF standard deviation, scaled by the step
    /// length); grows with failed attempts like MPNet's dropout sampling.
    pub noise_scale: f64,
}

impl Default for MpnetEmulator {
    fn default() -> Self {
        MpnetEmulator {
            max_iters: 60,
            step_attempts: 8,
            step_fraction: 0.6,
            noise_scale: 0.35,
        }
    }
}

impl MpnetEmulator {
    /// One "network" proposal: a jump from `from` toward `to` with
    /// attempt-scaled dropout noise.
    fn propose(
        &self,
        ctx: &PlanContext<'_>,
        from: &Config,
        to: &Config,
        attempt: usize,
        rng: &mut StdRng,
    ) -> Config {
        let gap = from.distance(to);
        let step = self.step_fraction * gap;
        let towards = from.lerp(to, (step / gap.max(1e-9)).min(1.0));
        let spread = self.noise_scale * step * (1.0 + attempt as f64 * 0.5);
        ctx.robot().clamp(
            towards
                .values()
                .iter()
                .map(|&v| v + gaussian(rng) * spread)
                .collect(),
        )
    }
}

impl Planner for MpnetEmulator {
    fn name(&self) -> &'static str {
        "mpnet"
    }

    fn plan(
        &self,
        ctx: &mut PlanContext<'_>,
        start: &Config,
        goal: &Config,
        rng: &mut StdRng,
    ) -> PlanResult {
        ctx.set_stage(Stage::Explore);
        if !ctx.pose_free(start) || !ctx.pose_free(goal) {
            return PlanResult::failure(0);
        }
        let mut path_a = vec![start.clone()];
        let mut path_b = vec![goal.clone()];
        let mut a_is_start = true;
        for iter in 0..self.max_iters {
            let a_end = path_a.last().expect("non-empty").clone();
            let b_end = path_b.last().expect("non-empty").clone();
            // Try to join the two paths directly (MPNet's steerTo).
            if ctx.motion_free(&a_end, &b_end) {
                path_b.reverse();
                path_a.extend(path_b);
                if !a_is_start {
                    path_a.reverse();
                }
                validate_path(ctx, &path_a);
                return PlanResult::success(path_a, iter + 1);
            }
            // Grow path A toward path B with noisy proposals. Each failed
            // advance is a (usually colliding) motion check — the workload
            // the predictor accelerates.
            for attempt in 0..self.step_attempts {
                // Early attempts aim straight at the other path; late
                // attempts explore wide (MPNet's dropout produces diverse
                // detour proposals once the greedy direction keeps failing).
                let target = if attempt < self.step_attempts / 2 {
                    b_end.clone()
                } else {
                    ctx.robot().sample_uniform(rng)
                };
                let cand = self.propose(ctx, &a_end, &target, attempt, rng);
                if !ctx.pose_free(&cand) {
                    continue;
                }
                if ctx.motion_free(&a_end, &cand) {
                    path_a.push(cand);
                    break;
                }
            }
            // Occasionally backtrack when stuck (MPNet replans from an
            // earlier state).
            if path_a.len() > 2 && rng.gen::<f64>() < 0.15 {
                path_a.pop();
            }
            std::mem::swap(&mut path_a, &mut path_b);
            a_is_start = !a_is_start;
        }
        PlanResult::failure(self.max_iters)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use copred_collision::Environment;
    use copred_geometry::{Aabb, Vec3};
    use copred_kinematics::{presets, Robot};
    use rand::SeedableRng;

    fn gap_world() -> (Robot, Environment) {
        let robot: Robot = presets::planar_2d().into();
        let env = Environment::new(
            robot.workspace(),
            vec![Aabb::new(
                Vec3::new(-0.05, -1.0, -0.1),
                Vec3::new(0.05, 0.5, 0.1),
            )],
        );
        (robot, env)
    }

    #[test]
    fn solves_gap_world_and_path_is_valid() {
        let (robot, env) = gap_world();
        let mut ctx = PlanContext::new(&robot, &env, 0.05);
        let mut rng = StdRng::seed_from_u64(21);
        let start = Config::new(vec![-0.6, 0.0]);
        let goal = Config::new(vec![0.6, 0.0]);
        let result = MpnetEmulator::default().plan(&mut ctx, &start, &goal, &mut rng);
        assert!(result.solved(), "mpnet failed gap world");
        let path = result.path.unwrap();
        assert_eq!(path[0], start);
        assert_eq!(*path.last().unwrap(), goal);
        for w in path.windows(2) {
            let poses =
                copred_kinematics::Motion::new(w[0].clone(), w[1].clone()).discretize_by_step(0.05);
            assert!(!copred_collision::motion_collides(&robot, &env, &poses));
        }
    }

    #[test]
    fn exploration_stage_is_collision_heavy() {
        // The paper's premise: in S1 "the majority of the motions checked
        // are colliding", while S2 is mostly free.
        let (robot, env) = gap_world();
        let mut ctx = PlanContext::new(&robot, &env, 0.05);
        let mut rng = StdRng::seed_from_u64(22);
        let planner = MpnetEmulator {
            max_iters: 300,
            ..Default::default()
        };
        let result = planner.plan(
            &mut ctx,
            &Config::new(vec![-0.6, -0.2]),
            &Config::new(vec![0.6, -0.2]),
            &mut rng,
        );
        assert!(result.solved());
        let log = ctx.into_log();
        let s1: Vec<_> = log.stage_records(Stage::Explore).collect();
        let s2: Vec<_> = log.stage_records(Stage::Validate).collect();
        let s1_coll = s1.iter().filter(|r| r.colliding).count() as f64 / s1.len() as f64;
        let s2_coll = s2.iter().filter(|r| r.colliding).count() as f64 / s2.len().max(1) as f64;
        assert!(s1_coll > s2_coll, "S1 {s1_coll} vs S2 {s2_coll}");
        assert_eq!(s2_coll, 0.0, "validated path must be free");
    }

    #[test]
    fn trivial_query_checks_one_motion() {
        let robot: Robot = presets::planar_2d().into();
        let env = Environment::empty(robot.workspace());
        let mut ctx = PlanContext::new(&robot, &env, 0.05);
        let mut rng = StdRng::seed_from_u64(23);
        let result = MpnetEmulator::default().plan(
            &mut ctx,
            &Config::new(vec![-0.3, 0.0]),
            &Config::new(vec![0.3, 0.0]),
            &mut rng,
        );
        assert!(result.solved());
        assert_eq!(result.path.unwrap().len(), 2);
    }

    #[test]
    fn impossible_query_fails() {
        let robot: Robot = presets::planar_2d().into();
        let env = Environment::new(
            robot.workspace(),
            vec![Aabb::new(
                Vec3::new(-0.05, -1.1, -0.1),
                Vec3::new(0.05, 1.1, 0.1),
            )],
        );
        let mut ctx = PlanContext::new(&robot, &env, 0.05);
        let mut rng = StdRng::seed_from_u64(24);
        let planner = MpnetEmulator {
            max_iters: 25,
            ..Default::default()
        };
        let result = planner.plan(
            &mut ctx,
            &Config::new(vec![-0.6, 0.0]),
            &Config::new(vec![0.6, 0.0]),
            &mut rng,
        );
        assert!(!result.solved());
        // A blocked query produces a collision-heavy log.
        let log = ctx.into_log();
        assert!(
            log.colliding_fraction() > 0.3,
            "fraction {}",
            log.colliding_fraction()
        );
    }

    #[test]
    fn works_on_seven_dof_arm() {
        let robot: Robot = presets::baxter_arm().into();
        let env = crate::tests_support::arm_tabletop(&robot, 31);
        let mut ctx = PlanContext::new(&robot, &env, 0.2);
        let mut rng = StdRng::seed_from_u64(25);
        let start = Config::new(vec![0.3, -0.6, 0.0, 0.8, 0.0, 0.5, 0.0]);
        let goal = Config::new(vec![-0.4, -0.4, 0.2, 1.0, -0.2, 0.3, 0.1]);
        if copred_collision::check_pose(&robot, &env, &start).0
            || copred_collision::check_pose(&robot, &env, &goal).0
        {
            return; // scene blocks endpoints for this seed; nothing to test
        }
        let result = MpnetEmulator::default().plan(&mut ctx, &start, &goal, &mut rng);
        assert!(ctx.stats().total_checks() > 0 || result.solved());
    }
}
