//! Rapidly-exploring Random Trees (RRT and RRT-Connect).
//!
//! Classic sampling-based baselines (ref. \[26\]). They are not headline benchmarks
//! in the paper but serve as additional CDQ-workload generators and as the
//! reference planners for the integration tests.

use crate::context::{PlanContext, Stage};
use crate::planner::{PlanResult, Planner};
use crate::util::{nearest, steer, trace_path};
use copred_kinematics::Config;
use rand::rngs::StdRng;
use rand::Rng;

/// Single-tree RRT with goal biasing.
#[derive(Debug, Clone)]
pub struct Rrt {
    /// Maximum tree-growth iterations.
    pub max_iters: usize,
    /// Extension step in C-space distance.
    pub eps: f64,
    /// Probability of sampling the goal instead of a random config.
    pub goal_bias: f64,
}

impl Default for Rrt {
    fn default() -> Self {
        Rrt {
            max_iters: 2000,
            eps: 0.35,
            goal_bias: 0.1,
        }
    }
}

impl Planner for Rrt {
    fn name(&self) -> &'static str {
        "rrt"
    }

    fn plan(
        &self,
        ctx: &mut PlanContext<'_>,
        start: &Config,
        goal: &Config,
        rng: &mut StdRng,
    ) -> PlanResult {
        ctx.set_stage(Stage::Explore);
        if !ctx.pose_free(start) {
            return PlanResult::failure(0);
        }
        let mut nodes = vec![start.clone()];
        let mut parents: Vec<Option<usize>> = vec![None];
        for iter in 0..self.max_iters {
            let target = if rng.gen::<f64>() < self.goal_bias {
                goal.clone()
            } else {
                ctx.robot().sample_uniform(rng)
            };
            let near = nearest(&nodes, &target);
            let new = steer(&nodes[near], &target, self.eps);
            if !ctx.motion_free(&nodes[near], &new) {
                continue;
            }
            nodes.push(new.clone());
            parents.push(Some(near));
            // Try to connect to the goal.
            if new.distance(goal) <= self.eps && ctx.motion_free(&new, goal) {
                let mut path = trace_path(&parents, &nodes, nodes.len() - 1);
                path.push(goal.clone());
                validate_path(ctx, &path);
                return PlanResult::success(path, iter + 1);
            }
        }
        PlanResult::failure(self.max_iters)
    }
}

/// Bidirectional RRT-Connect.
#[derive(Debug, Clone)]
pub struct RrtConnect {
    /// Maximum iterations.
    pub max_iters: usize,
    /// Extension step.
    pub eps: f64,
}

impl Default for RrtConnect {
    fn default() -> Self {
        RrtConnect {
            max_iters: 2000,
            eps: 0.35,
        }
    }
}

struct Tree {
    nodes: Vec<Config>,
    parents: Vec<Option<usize>>,
}

impl Tree {
    fn new(root: Config) -> Self {
        Tree {
            nodes: vec![root],
            parents: vec![None],
        }
    }

    fn add(&mut self, q: Config, parent: usize) -> usize {
        self.nodes.push(q);
        self.parents.push(Some(parent));
        self.nodes.len() - 1
    }
}

impl Planner for RrtConnect {
    fn name(&self) -> &'static str {
        "rrt-connect"
    }

    fn plan(
        &self,
        ctx: &mut PlanContext<'_>,
        start: &Config,
        goal: &Config,
        rng: &mut StdRng,
    ) -> PlanResult {
        ctx.set_stage(Stage::Explore);
        if !ctx.pose_free(start) || !ctx.pose_free(goal) {
            return PlanResult::failure(0);
        }
        let mut ta = Tree::new(start.clone());
        let mut tb = Tree::new(goal.clone());
        let mut a_is_start = true;
        for iter in 0..self.max_iters {
            let target = ctx.robot().sample_uniform(rng);
            // Extend tree A toward the sample.
            let na = nearest(&ta.nodes, &target);
            let qa = steer(&ta.nodes[na], &target, self.eps);
            if ctx.motion_free(&ta.nodes[na], &qa) {
                let ia = ta.add(qa.clone(), na);
                // Greedily connect tree B toward the new node.
                let mut nb = nearest(&tb.nodes, &qa);
                loop {
                    let qb = steer(&tb.nodes[nb], &qa, self.eps);
                    if !ctx.motion_free(&tb.nodes[nb], &qb) {
                        break;
                    }
                    nb = tb.add(qb.clone(), nb);
                    if qb.distance(&qa) < 1e-9 {
                        // Trees met: stitch the two half-paths.
                        let pa = trace_path(&ta.parents, &ta.nodes, ia);
                        let mut pb = trace_path(&tb.parents, &tb.nodes, nb);
                        pb.reverse();
                        // pa runs root_a -> meeting point, pb runs meeting
                        // point -> root_b; join and orient start -> goal.
                        let mut path: Vec<Config> =
                            pa.into_iter().chain(pb.into_iter().skip(1)).collect();
                        if !a_is_start {
                            path.reverse();
                        }
                        validate_path(ctx, &path);
                        return PlanResult::success(path, iter + 1);
                    }
                }
            }
            std::mem::swap(&mut ta, &mut tb);
            a_is_start = !a_is_start;
        }
        PlanResult::failure(self.max_iters)
    }
}

/// The S2 stage: re-checks the final trajectory's segments for feasibility
/// (mostly collision-free checks, per the paper's Fig. 6 observation).
pub(crate) fn validate_path(ctx: &mut PlanContext<'_>, path: &[Config]) {
    ctx.set_stage(Stage::Validate);
    for w in path.windows(2) {
        ctx.motion_free(&w[0], &w[1]);
    }
    ctx.set_stage(Stage::Explore);
}

#[cfg(test)]
mod tests {
    use super::*;
    use copred_collision::Environment;
    use copred_geometry::{Aabb, Vec3};
    use copred_kinematics::{presets, Robot};
    use rand::SeedableRng;

    fn gap_world() -> (Robot, Environment) {
        let robot: Robot = presets::planar_2d().into();
        // Wall with a gap at the top.
        let env = Environment::new(
            robot.workspace(),
            vec![Aabb::new(
                Vec3::new(-0.05, -1.0, -0.1),
                Vec3::new(0.05, 0.55, 0.1),
            )],
        );
        (robot, env)
    }

    fn check_found_path(
        robot: &Robot,
        env: &Environment,
        result: &PlanResult,
        start: &Config,
        goal: &Config,
    ) {
        let path = result.path.as_ref().expect("path found");
        assert_eq!(&path[0], start);
        assert_eq!(path.last().unwrap(), goal);
        // The reported path must be genuinely collision-free.
        for w in path.windows(2) {
            let poses =
                copred_kinematics::Motion::new(w[0].clone(), w[1].clone()).discretize_by_step(0.05);
            assert!(!copred_collision::motion_collides(robot, env, &poses));
        }
    }

    #[test]
    fn rrt_solves_gap_world() {
        let (robot, env) = gap_world();
        let mut ctx = PlanContext::new(&robot, &env, 0.05);
        let mut rng = StdRng::seed_from_u64(5);
        let start = Config::new(vec![-0.6, 0.0]);
        let goal = Config::new(vec![0.6, 0.0]);
        let result = Rrt::default().plan(&mut ctx, &start, &goal, &mut rng);
        assert!(result.solved());
        check_found_path(&robot, &env, &result, &start, &goal);
        // The log must contain both stages.
        let log = ctx.into_log();
        assert!(log.stage_records(Stage::Validate).count() > 0);
        assert!(log.stage_records(Stage::Explore).count() > 0);
    }

    #[test]
    fn rrt_connect_solves_gap_world() {
        let (robot, env) = gap_world();
        let mut ctx = PlanContext::new(&robot, &env, 0.05);
        let mut rng = StdRng::seed_from_u64(6);
        let start = Config::new(vec![-0.6, -0.4]);
        let goal = Config::new(vec![0.6, -0.4]);
        let result = RrtConnect::default().plan(&mut ctx, &start, &goal, &mut rng);
        assert!(result.solved());
        check_found_path(&robot, &env, &result, &start, &goal);
    }

    #[test]
    fn blocked_start_fails_fast() {
        let (robot, env) = gap_world();
        let mut ctx = PlanContext::new(&robot, &env, 0.05);
        let mut rng = StdRng::seed_from_u64(7);
        let start = Config::new(vec![0.0, 0.0]); // inside the wall
        let goal = Config::new(vec![0.6, 0.0]);
        let result = Rrt::default().plan(&mut ctx, &start, &goal, &mut rng);
        assert!(!result.solved());
        assert_eq!(result.iterations, 0);
    }

    #[test]
    fn trivial_straight_line() {
        let robot: Robot = presets::planar_2d().into();
        let env = Environment::empty(robot.workspace());
        let mut ctx = PlanContext::new(&robot, &env, 0.05);
        let mut rng = StdRng::seed_from_u64(8);
        let start = Config::new(vec![-0.5, 0.0]);
        let goal = Config::new(vec![-0.4, 0.0]);
        let result = Rrt::default().plan(&mut ctx, &start, &goal, &mut rng);
        assert!(result.solved());
    }

    #[test]
    fn unreachable_goal_exhausts_iterations() {
        let robot: Robot = presets::planar_2d().into();
        // Fully separated halves: no gap at all.
        let env = Environment::new(
            robot.workspace(),
            vec![Aabb::new(
                Vec3::new(-0.05, -1.1, -0.1),
                Vec3::new(0.05, 1.1, 0.1),
            )],
        );
        let mut ctx = PlanContext::new(&robot, &env, 0.05);
        let mut rng = StdRng::seed_from_u64(9);
        let planner = Rrt {
            max_iters: 150,
            ..Rrt::default()
        };
        let result = planner.plan(
            &mut ctx,
            &Config::new(vec![-0.6, 0.0]),
            &Config::new(vec![0.6, 0.0]),
            &mut rng,
        );
        assert!(!result.solved());
        assert_eq!(result.iterations, 150);
        // Exploration against a full wall produces many colliding checks —
        // the workload property collision prediction exploits.
        let log = ctx.into_log();
        assert!(log.colliding_fraction() > 0.1);
    }
}
