//! GNNMP-style graph planner (emulated edge scorer).
//!
//! GNNMP (ref. \[50\]) samples the C-space, uses a graph neural network to decide
//! which edges of the resulting random geometric graph to collision-check,
//! and smooths the found path. The GNN is emulated by a clearance-informed
//! edge prior (see DESIGN.md): edges through low-clearance space are
//! deprioritized, so the lazy search checks fewer colliding edges than a
//! naive lazy planner — the workload the paper evaluates.

use crate::context::{PlanContext, Stage};
use crate::planner::{PlanResult, Planner};
use crate::util::path_length;
use copred_kinematics::Config;
use rand::rngs::StdRng;
use rand::Rng;
use std::collections::{BinaryHeap, HashMap, HashSet};

/// The GNNMP-like planner.
#[derive(Debug, Clone)]
pub struct GnnmpEmulator {
    /// C-space samples in the graph (plus start and goal).
    pub n_samples: usize,
    /// Neighbors per node in the geometric graph.
    pub k_neighbors: usize,
    /// Shortcut-smoothing attempts after a path is found (the S2 stage).
    pub smoothing_rounds: usize,
    /// Maximum lazy-search repair iterations.
    pub max_repairs: usize,
}

impl Default for GnnmpEmulator {
    fn default() -> Self {
        GnnmpEmulator {
            n_samples: 150,
            k_neighbors: 8,
            smoothing_rounds: 12,
            max_repairs: 400,
        }
    }
}

#[derive(PartialEq)]
struct QueueItem {
    cost: f64,
    node: usize,
}

impl Eq for QueueItem {}
impl PartialOrd for QueueItem {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for QueueItem {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Min-heap on cost.
        other.cost.total_cmp(&self.cost)
    }
}

impl GnnmpEmulator {
    /// "GNN" edge prior: geometric length inflated by a clearance penalty at
    /// the edge midpoint, so the search prefers edges through open space.
    fn edge_prior(&self, ctx: &PlanContext<'_>, a: &Config, b: &Config) -> f64 {
        let mid = a.lerp(b, 0.5);
        let pose = ctx.robot().fk(&mid);
        let clearance = pose
            .links
            .iter()
            .map(|l| ctx.env().clearance(l.center))
            .fold(f64::INFINITY, f64::min);
        a.distance(b) * (1.0 + 0.5 / (clearance + 0.05))
    }

    fn shortest_path(
        &self,
        nodes: &[Config],
        adj: &[Vec<(usize, f64)>],
        invalid: &HashSet<(usize, usize)>,
        start: usize,
        goal: usize,
    ) -> Option<Vec<usize>> {
        let mut dist: HashMap<usize, f64> = HashMap::new();
        let mut prev: HashMap<usize, usize> = HashMap::new();
        let mut heap = BinaryHeap::new();
        dist.insert(start, 0.0);
        heap.push(QueueItem {
            cost: nodes[start].distance(&nodes[goal]),
            node: start,
        });
        while let Some(QueueItem { node, .. }) = heap.pop() {
            if node == goal {
                let mut path = vec![goal];
                let mut cur = goal;
                while let Some(&p) = prev.get(&cur) {
                    path.push(p);
                    cur = p;
                }
                path.reverse();
                return Some(path);
            }
            let d = dist[&node];
            for &(next, w) in &adj[node] {
                if invalid.contains(&key(node, next)) {
                    continue;
                }
                let nd = d + w;
                if nd < *dist.get(&next).unwrap_or(&f64::INFINITY) {
                    dist.insert(next, nd);
                    prev.insert(next, node);
                    heap.push(QueueItem {
                        cost: nd + nodes[next].distance(&nodes[goal]),
                        node: next,
                    });
                }
            }
        }
        None
    }
}

fn key(a: usize, b: usize) -> (usize, usize) {
    if a < b {
        (a, b)
    } else {
        (b, a)
    }
}

impl Planner for GnnmpEmulator {
    fn name(&self) -> &'static str {
        "gnnmp"
    }

    fn plan(
        &self,
        ctx: &mut PlanContext<'_>,
        start: &Config,
        goal: &Config,
        rng: &mut StdRng,
    ) -> PlanResult {
        ctx.set_stage(Stage::Explore);
        if !ctx.pose_free(start) || !ctx.pose_free(goal) {
            return PlanResult::failure(0);
        }
        // Sample graph nodes (pose checks are part of the recorded workload).
        let mut nodes = vec![start.clone(), goal.clone()];
        let mut guard = 0;
        while nodes.len() < self.n_samples + 2 && guard < self.n_samples * 20 {
            guard += 1;
            let q = ctx.robot().sample_uniform(rng);
            if ctx.pose_free(&q) {
                nodes.push(q);
            }
        }
        // k-nearest-neighbor graph with GNN-prior edge weights.
        let mut adj: Vec<Vec<(usize, f64)>> = vec![Vec::new(); nodes.len()];
        for i in 0..nodes.len() {
            let mut dists: Vec<(usize, f64)> = (0..nodes.len())
                .filter(|&j| j != i)
                .map(|j| (j, nodes[i].distance(&nodes[j])))
                .collect();
            dists.sort_by(|a, b| a.1.total_cmp(&b.1));
            for &(j, _) in dists.iter().take(self.k_neighbors) {
                let w = self.edge_prior(ctx, &nodes[i], &nodes[j]);
                adj[i].push((j, w));
                adj[j].push((i, w));
            }
        }
        // Lazy search: shortest path on presumed-valid edges, validate edges
        // in order, knock out the first colliding edge, repeat.
        let mut invalid: HashSet<(usize, usize)> = HashSet::new();
        let mut valid: HashSet<(usize, usize)> = HashSet::new();
        let mut iterations = 0;
        for _ in 0..self.max_repairs {
            iterations += 1;
            let Some(path) = self.shortest_path(&nodes, &adj, &invalid, 0, 1) else {
                return PlanResult::failure(iterations);
            };
            let mut broken = false;
            for w in path.windows(2) {
                let e = key(w[0], w[1]);
                if valid.contains(&e) {
                    continue;
                }
                if ctx.motion_free(&nodes[w[0]], &nodes[w[1]]) {
                    valid.insert(e);
                } else {
                    invalid.insert(e);
                    broken = true;
                    break;
                }
            }
            if !broken {
                let mut cfg_path: Vec<Config> = path.iter().map(|&i| nodes[i].clone()).collect();
                // Shortcut smoothing still explores (its checks often
                // collide); only the final trajectory validation is S2.
                for _ in 0..self.smoothing_rounds {
                    if cfg_path.len() < 3 {
                        break;
                    }
                    let i = rng.gen_range(0..cfg_path.len() - 2);
                    let j = rng.gen_range(i + 2..cfg_path.len());
                    if ctx.motion_free(&cfg_path[i], &cfg_path[j]) {
                        cfg_path.drain(i + 1..j);
                    }
                }
                ctx.set_stage(Stage::Validate);
                for w in cfg_path.windows(2) {
                    ctx.motion_free(&w[0], &w[1]);
                }
                debug_assert!(path_length(&cfg_path) > 0.0 || cfg_path.len() <= 1);
                return PlanResult::success(cfg_path, iterations);
            }
        }
        PlanResult::failure(iterations)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use copred_collision::Environment;
    use copred_geometry::{Aabb, Vec3};
    use copred_kinematics::{presets, Robot};
    use rand::SeedableRng;

    fn gap_world() -> (Robot, Environment) {
        let robot: Robot = presets::planar_2d().into();
        let env = Environment::new(
            robot.workspace(),
            vec![Aabb::new(
                Vec3::new(-0.05, -1.0, -0.1),
                Vec3::new(0.05, 0.5, 0.1),
            )],
        );
        (robot, env)
    }

    #[test]
    fn solves_gap_world_with_valid_path() {
        let (robot, env) = gap_world();
        let mut ctx = PlanContext::new(&robot, &env, 0.05);
        let mut rng = StdRng::seed_from_u64(41);
        let start = Config::new(vec![-0.6, 0.0]);
        let goal = Config::new(vec![0.6, 0.0]);
        let result = GnnmpEmulator::default().plan(&mut ctx, &start, &goal, &mut rng);
        assert!(result.solved(), "gnnmp failed gap world");
        let path = result.path.unwrap();
        assert_eq!(path[0], start);
        assert_eq!(*path.last().unwrap(), goal);
        for w in path.windows(2) {
            let poses =
                copred_kinematics::Motion::new(w[0].clone(), w[1].clone()).discretize_by_step(0.05);
            assert!(!copred_collision::motion_collides(&robot, &env, &poses));
        }
    }

    #[test]
    fn produces_both_stages() {
        let (robot, env) = gap_world();
        let mut ctx = PlanContext::new(&robot, &env, 0.05);
        let mut rng = StdRng::seed_from_u64(42);
        let result = GnnmpEmulator::default().plan(
            &mut ctx,
            &Config::new(vec![-0.6, -0.3]),
            &Config::new(vec![0.6, -0.3]),
            &mut rng,
        );
        assert!(result.solved());
        let log = ctx.into_log();
        assert!(log.stage_records(Stage::Explore).count() > 0);
        assert!(log.stage_records(Stage::Validate).count() > 0);
    }

    #[test]
    fn smoothing_shortens_paths() {
        let (robot, env) = gap_world();
        let mut rng = StdRng::seed_from_u64(43);
        let start = Config::new(vec![-0.6, 0.7]);
        let goal = Config::new(vec![0.6, 0.7]);
        // With heavy smoothing.
        let mut ctx = PlanContext::new(&robot, &env, 0.05);
        let smooth = GnnmpEmulator {
            smoothing_rounds: 30,
            ..Default::default()
        }
        .plan(&mut ctx, &start, &goal, &mut rng);
        // Without smoothing.
        let mut ctx2 = PlanContext::new(&robot, &env, 0.05);
        let mut rng2 = StdRng::seed_from_u64(43);
        let rough = GnnmpEmulator {
            smoothing_rounds: 0,
            ..Default::default()
        }
        .plan(&mut ctx2, &start, &goal, &mut rng2);
        if let (Some(a), Some(b)) = (&smooth.path, &rough.path) {
            assert!(path_length(a) <= path_length(b) + 1e-9);
        }
    }

    #[test]
    fn disconnected_world_fails() {
        let robot: Robot = presets::planar_2d().into();
        let env = Environment::new(
            robot.workspace(),
            vec![Aabb::new(
                Vec3::new(-0.05, -1.1, -0.1),
                Vec3::new(0.05, 1.1, 0.1),
            )],
        );
        let mut ctx = PlanContext::new(&robot, &env, 0.05);
        let mut rng = StdRng::seed_from_u64(44);
        let planner = GnnmpEmulator {
            n_samples: 60,
            ..Default::default()
        };
        let result = planner.plan(
            &mut ctx,
            &Config::new(vec![-0.6, 0.0]),
            &Config::new(vec![0.6, 0.0]),
            &mut rng,
        );
        assert!(!result.solved());
    }
}
