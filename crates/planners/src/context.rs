//! Planning context: routes and records every collision check a planner
//! performs.
//!
//! The paper's evaluation is trace-driven: planners are run once, the
//! sequence of pose/motion checks they issue is recorded, and predictors/
//! accelerators are evaluated by replaying those sequences under different
//! CDQ schedules. [`PlanContext`] is the recording harness: planners call
//! [`PlanContext::motion_free`] / [`PlanContext::pose_free`] for control
//! flow, and every call is appended to the query's [`PlanLog`] with its
//! stage tag (S1 exploration vs S2 trajectory validation, Fig. 6).

use copred_collision::{check_pose, motion_collides, CdqStats, Environment};
use copred_kinematics::{Config, Motion, Robot};

/// Motion-planning stages from the paper's Fig. 6.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// S1: exploration — "different motions are checked for collision to
    /// find a suitable and short path"; most checked motions collide.
    Explore,
    /// S2: validation — "the trajectory determined by S1 is checked for
    /// feasibility"; most checked motions are collision-free.
    Validate,
}

impl Stage {
    /// Display label (`"S1"` / `"S2"`).
    pub fn label(&self) -> &'static str {
        match self {
            Stage::Explore => "S1",
            Stage::Validate => "S2",
        }
    }
}

/// One recorded motion-environment check.
#[derive(Debug, Clone, PartialEq)]
pub struct MotionRecord {
    /// The discretized sample poses of the motion (a single pose for pose
    /// checks).
    pub poses: Vec<Config>,
    /// The stage that issued the check.
    pub stage: Stage,
    /// Ground-truth outcome.
    pub colliding: bool,
}

/// The ordered log of all checks one planning query issued.
#[derive(Debug, Clone, Default)]
pub struct PlanLog {
    /// Checks in issue order.
    pub records: Vec<MotionRecord>,
}

impl PlanLog {
    /// Number of recorded checks.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Records issued by a given stage.
    pub fn stage_records(&self, stage: Stage) -> impl Iterator<Item = &MotionRecord> {
        self.records.iter().filter(move |r| r.stage == stage)
    }

    /// Fraction of checks that collided (paper: 52%–93% across planner
    /// workloads).
    pub fn colliding_fraction(&self) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        self.records.iter().filter(|r| r.colliding).count() as f64 / self.records.len() as f64
    }
}

/// The check-issuing context a planner runs inside.
#[derive(Debug)]
pub struct PlanContext<'a> {
    robot: &'a Robot,
    env: &'a Environment,
    /// Maximum C-space distance between consecutive motion samples.
    step: f64,
    stage: Stage,
    log: PlanLog,
    stats: CdqStats,
}

impl<'a> PlanContext<'a> {
    /// Creates a context with discretization step `step` (C-space distance
    /// between consecutive sample poses).
    ///
    /// # Panics
    ///
    /// Panics when `step` is not positive.
    pub fn new(robot: &'a Robot, env: &'a Environment, step: f64) -> Self {
        assert!(step > 0.0, "discretization step must be positive");
        PlanContext {
            robot,
            env,
            step,
            stage: Stage::Explore,
            log: PlanLog::default(),
            stats: CdqStats::new(),
        }
    }

    /// The robot under plan.
    pub fn robot(&self) -> &Robot {
        self.robot
    }

    /// The environment under plan.
    pub fn env(&self) -> &Environment {
        self.env
    }

    /// The discretization step.
    pub fn step(&self) -> f64 {
        self.step
    }

    /// Switches the stage tag for subsequent checks.
    pub fn set_stage(&mut self, stage: Stage) {
        self.stage = stage;
    }

    /// Checks whether the pose is collision-free, recording the check.
    pub fn pose_free(&mut self, q: &Config) -> bool {
        let (colliding, cdqs) = check_pose(self.robot, self.env, q);
        self.stats.record_check(colliding, cdqs);
        self.log.records.push(MotionRecord {
            poses: vec![q.clone()],
            stage: self.stage,
            colliding,
        });
        !colliding
    }

    /// Checks whether the straight-line motion is collision-free, recording
    /// the check.
    pub fn motion_free(&mut self, from: &Config, to: &Config) -> bool {
        let motion = Motion::new(from.clone(), to.clone());
        let poses = motion.discretize_by_step(self.step);
        let colliding = motion_collides(self.robot, self.env, &poses);
        self.stats
            .record_check(colliding, poses.len() * self.robot.link_count());
        self.log.records.push(MotionRecord {
            poses,
            stage: self.stage,
            colliding,
        });
        !colliding
    }

    /// Aggregate ground-truth statistics.
    pub fn stats(&self) -> &CdqStats {
        &self.stats
    }

    /// Consumes the context, returning the query's check log.
    pub fn into_log(self) -> PlanLog {
        self.log
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use copred_geometry::{Aabb, Vec3};
    use copred_kinematics::presets;

    fn setup() -> (Robot, Environment) {
        let robot: Robot = presets::planar_2d().into();
        let env = Environment::new(
            robot.workspace(),
            vec![Aabb::new(
                Vec3::new(-0.1, -1.0, -0.1),
                Vec3::new(0.1, 1.0, 0.1),
            )],
        );
        (robot, env)
    }

    #[test]
    fn records_pose_and_motion_checks_in_order() {
        let (robot, env) = setup();
        let mut ctx = PlanContext::new(&robot, &env, 0.05);
        assert!(ctx.pose_free(&Config::new(vec![-0.5, 0.0])));
        assert!(!ctx.motion_free(&Config::new(vec![-0.5, 0.0]), &Config::new(vec![0.5, 0.0])));
        let log = ctx.into_log();
        assert_eq!(log.len(), 2);
        assert!(!log.records[0].colliding);
        assert!(log.records[1].colliding);
        assert_eq!(log.records[0].poses.len(), 1);
        assert!(log.records[1].poses.len() > 2);
    }

    #[test]
    fn stage_tags_apply_to_subsequent_checks() {
        let (robot, env) = setup();
        let mut ctx = PlanContext::new(&robot, &env, 0.05);
        ctx.pose_free(&Config::new(vec![-0.5, 0.0]));
        ctx.set_stage(Stage::Validate);
        ctx.pose_free(&Config::new(vec![-0.6, 0.0]));
        let log = ctx.into_log();
        assert_eq!(log.records[0].stage, Stage::Explore);
        assert_eq!(log.records[1].stage, Stage::Validate);
        assert_eq!(log.stage_records(Stage::Validate).count(), 1);
    }

    #[test]
    fn stats_track_checks() {
        let (robot, env) = setup();
        let mut ctx = PlanContext::new(&robot, &env, 0.05);
        ctx.pose_free(&Config::new(vec![0.0, 0.0])); // colliding (inside wall)
        ctx.pose_free(&Config::new(vec![-0.5, 0.0]));
        assert_eq!(ctx.stats().total_checks(), 2);
        assert_eq!(ctx.stats().colliding_checks, 1);
    }

    #[test]
    fn colliding_fraction_over_log() {
        let (robot, env) = setup();
        let mut ctx = PlanContext::new(&robot, &env, 0.05);
        ctx.pose_free(&Config::new(vec![0.0, 0.0]));
        ctx.pose_free(&Config::new(vec![-0.5, 0.0]));
        let log = ctx.into_log();
        assert!((log.colliding_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn stage_labels() {
        assert_eq!(Stage::Explore.label(), "S1");
        assert_eq!(Stage::Validate.label(), "S2");
    }
}
