//! Batch Informed Trees (BIT*), simplified.
//!
//! BIT* (ref. \[14\]) grows a tree over batches of informed samples, processing an
//! edge queue ordered by estimated solution cost and collision-checking
//! edges lazily. This implementation keeps the algorithm's essential
//! structure — batched informed sampling, best-first lazy edge evaluation,
//! informed pruning — while simplifying the queue bookkeeping (the queue is
//! rebuilt per batch).

use crate::context::{PlanContext, Stage};
use crate::planner::{PlanResult, Planner};
use copred_kinematics::Config;
use rand::rngs::StdRng;

/// The BIT* planner.
#[derive(Debug, Clone)]
pub struct BitStar {
    /// Samples added per batch.
    pub batch_size: usize,
    /// Maximum batches.
    pub max_batches: usize,
    /// Connection radius in C-space.
    pub radius: f64,
    /// Stop at the first solution (anytime refinement off). The paper's
    /// workloads measure per-query collision checking, so first-solution is
    /// the relevant mode.
    pub first_solution: bool,
}

impl Default for BitStar {
    fn default() -> Self {
        BitStar {
            batch_size: 60,
            max_batches: 8,
            radius: 0.8,
            first_solution: true,
        }
    }
}

struct State {
    nodes: Vec<Config>,
    // Tree data: cost-to-come and parent; INFINITY = not in tree.
    g: Vec<f64>,
    parent: Vec<usize>,
}

impl State {
    fn heuristic(&self, i: usize, goal: usize) -> f64 {
        self.nodes[i].distance(&self.nodes[goal])
    }
}

impl Planner for BitStar {
    fn name(&self) -> &'static str {
        "bit*"
    }

    fn plan(
        &self,
        ctx: &mut PlanContext<'_>,
        start: &Config,
        goal: &Config,
        rng: &mut StdRng,
    ) -> PlanResult {
        ctx.set_stage(Stage::Explore);
        if !ctx.pose_free(start) || !ctx.pose_free(goal) {
            return PlanResult::failure(0);
        }
        let mut st = State {
            nodes: vec![start.clone(), goal.clone()],
            g: vec![0.0, f64::INFINITY],
            parent: vec![usize::MAX, usize::MAX],
        };
        const GOAL: usize = 1;
        let mut c_best = f64::INFINITY;
        let mut iterations = 0;

        for _batch in 0..self.max_batches {
            // --- Informed sampling: draw batch_size free samples whose
            // heuristic total cost can improve the incumbent solution.
            let mut added = 0;
            let mut guard = 0;
            while added < self.batch_size && guard < self.batch_size * 40 {
                guard += 1;
                let q = ctx.robot().sample_uniform(rng);
                let f_est = start.distance(&q) + q.distance(goal);
                if f_est >= c_best {
                    continue; // informed rejection (ellipsoid prune)
                }
                if ctx.pose_free(&q) {
                    st.nodes.push(q);
                    st.g.push(f64::INFINITY);
                    st.parent.push(usize::MAX);
                    added += 1;
                }
            }

            // --- Build the edge queue: tree vertices to nearby states,
            // ordered by estimated solution cost through the edge.
            let n = st.nodes.len();
            let mut queue: Vec<(f64, usize, usize)> = Vec::new();
            for v in 0..n {
                if st.g[v].is_finite() {
                    for x in 0..n {
                        if x == v {
                            continue;
                        }
                        let d = st.nodes[v].distance(&st.nodes[x]);
                        if d <= self.radius {
                            let est = st.g[v] + d + st.heuristic(x, GOAL);
                            if est < c_best {
                                queue.push((est, v, x));
                            }
                        }
                    }
                }
            }
            queue.sort_by(|a, b| a.0.total_cmp(&b.0));

            // --- Process edges best-first with lazy collision checking.
            for (est, v, x) in queue {
                iterations += 1;
                if est >= c_best {
                    break; // no remaining edge can improve the solution
                }
                let d = st.nodes[v].distance(&st.nodes[x]);
                if st.g[v] + d >= st.g[x] {
                    continue; // does not improve cost-to-come
                }
                if !ctx.motion_free(&st.nodes[v], &st.nodes[x]) {
                    continue;
                }
                st.g[x] = st.g[v] + d;
                st.parent[x] = v;
                if x == GOAL {
                    c_best = st.g[GOAL];
                    if self.first_solution {
                        break;
                    }
                }
            }
            if c_best.is_finite() && self.first_solution {
                break;
            }
        }

        if !st.g[GOAL].is_finite() {
            return PlanResult::failure(iterations);
        }
        // Reconstruct and validate (S2).
        let mut rev = vec![GOAL];
        let mut cur = GOAL;
        while st.parent[cur] != usize::MAX {
            cur = st.parent[cur];
            rev.push(cur);
        }
        rev.reverse();
        let path: Vec<Config> = rev.into_iter().map(|i| st.nodes[i].clone()).collect();
        crate::rrt::validate_path(ctx, &path);
        PlanResult::success(path, iterations)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use copred_collision::Environment;
    use copred_geometry::{Aabb, Vec3};
    use copred_kinematics::{presets, Robot};
    use rand::SeedableRng;

    fn gap_world() -> (Robot, Environment) {
        let robot: Robot = presets::planar_2d().into();
        let env = Environment::new(
            robot.workspace(),
            vec![Aabb::new(
                Vec3::new(-0.05, -1.0, -0.1),
                Vec3::new(0.05, 0.5, 0.1),
            )],
        );
        (robot, env)
    }

    #[test]
    fn bitstar_solves_gap_world() {
        let (robot, env) = gap_world();
        let mut ctx = PlanContext::new(&robot, &env, 0.05);
        let mut rng = StdRng::seed_from_u64(61);
        let start = Config::new(vec![-0.6, 0.0]);
        let goal = Config::new(vec![0.6, 0.0]);
        let result = BitStar::default().plan(&mut ctx, &start, &goal, &mut rng);
        assert!(result.solved(), "bit* failed gap world");
        let path = result.path.unwrap();
        assert_eq!(path[0], start);
        assert_eq!(*path.last().unwrap(), goal);
        for w in path.windows(2) {
            let poses =
                copred_kinematics::Motion::new(w[0].clone(), w[1].clone()).discretize_by_step(0.05);
            assert!(!copred_collision::motion_collides(&robot, &env, &poses));
        }
    }

    #[test]
    fn empty_world_solves_in_one_batch() {
        let robot: Robot = presets::planar_2d().into();
        let env = Environment::empty(robot.workspace());
        let mut ctx = PlanContext::new(&robot, &env, 0.05);
        let mut rng = StdRng::seed_from_u64(62);
        let result = BitStar::default().plan(
            &mut ctx,
            &Config::new(vec![-0.5, -0.5]),
            &Config::new(vec![0.5, 0.5]),
            &mut rng,
        );
        assert!(result.solved());
    }

    #[test]
    fn informed_sampling_prunes_after_solution() {
        // In anytime mode, later batches should only draw samples inside the
        // solution ellipsoid: total checks stay bounded.
        let robot: Robot = presets::planar_2d().into();
        let env = Environment::empty(robot.workspace());
        let mut ctx = PlanContext::new(&robot, &env, 0.05);
        let mut rng = StdRng::seed_from_u64(63);
        let planner = BitStar {
            first_solution: false,
            max_batches: 3,
            ..Default::default()
        };
        let result = planner.plan(
            &mut ctx,
            &Config::new(vec![-0.1, 0.0]),
            &Config::new(vec![0.1, 0.0]),
            &mut rng,
        );
        assert!(result.solved());
        // A very short query gives a tiny ellipsoid: few samples pass the
        // informed filter, so the recorded workload stays small.
        assert!(ctx.stats().total_checks() < 4000);
    }

    #[test]
    fn disconnected_world_fails() {
        let robot: Robot = presets::planar_2d().into();
        let env = Environment::new(
            robot.workspace(),
            vec![Aabb::new(
                Vec3::new(-0.05, -1.1, -0.1),
                Vec3::new(0.05, 1.1, 0.1),
            )],
        );
        let mut ctx = PlanContext::new(&robot, &env, 0.05);
        let mut rng = StdRng::seed_from_u64(64);
        let planner = BitStar {
            max_batches: 2,
            batch_size: 30,
            ..Default::default()
        };
        let result = planner.plan(
            &mut ctx,
            &Config::new(vec![-0.6, 0.0]),
            &Config::new(vec![0.6, 0.0]),
            &mut rng,
        );
        assert!(!result.solved());
    }
}
