//! # copred-planners
//!
//! Sampling-based motion planners that generate the CDQ workloads of the
//! paper's evaluation: an MPNet-style neural sampler emulator, a
//! GNNMP-style graph planner emulator, BIT*, plus RRT / RRT-Connect / PRM
//! substrates. Every collision check a planner issues is routed through
//! [`PlanContext`] and recorded in a [`PlanLog`] with its stage tag (S1
//! exploration vs S2 validation), enabling trace-driven evaluation of
//! predictors and accelerators.
//!
//! ## Example
//!
//! ```
//! use copred_planners::{MpnetEmulator, PlanContext, Planner};
//! use copred_collision::Environment;
//! use copred_geometry::{Aabb, Vec3};
//! use copred_kinematics::{presets, Config, Robot};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let robot: Robot = presets::planar_2d().into();
//! let env = Environment::new(
//!     robot.workspace(),
//!     vec![Aabb::new(Vec3::new(-0.05, -1.0, -0.1), Vec3::new(0.05, 0.5, 0.1))],
//! );
//! let mut ctx = PlanContext::new(&robot, &env, 0.05);
//! let mut rng = StdRng::seed_from_u64(7);
//! let result = MpnetEmulator::default().plan(
//!     &mut ctx,
//!     &Config::new(vec![-0.6, 0.0]),
//!     &Config::new(vec![0.6, 0.0]),
//!     &mut rng,
//! );
//! assert!(result.solved());
//! let log = ctx.into_log();
//! assert!(!log.is_empty());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod bit;
mod context;
mod gnn;
mod mpnet;
mod planner;
mod prm;
mod rrt;
#[cfg(test)]
pub(crate) mod tests_support;
pub mod util;

pub use bit::BitStar;
pub use context::{MotionRecord, PlanContext, PlanLog, Stage};
pub use gnn::GnnmpEmulator;
pub use mpnet::MpnetEmulator;
pub use planner::{PlanResult, Planner};
pub use prm::{Prm, Roadmap};
pub use rrt::{Rrt, RrtConnect};
