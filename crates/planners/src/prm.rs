//! Probabilistic Roadmaps (PRM).
//!
//! The classic multi-query planner (ref. \[22\]); also the algorithm family behind
//! the Dadu-P accelerator (§VII-2), which precomputes a fixed set of short
//! motions offline — [`Prm::roadmap_motions`] exposes the roadmap's edge
//! motions for that substrate.

use crate::context::{PlanContext, Stage};
use crate::planner::{PlanResult, Planner};
use copred_kinematics::{Config, Motion};
use rand::rngs::StdRng;
use std::collections::BinaryHeap;

/// An eager PRM.
#[derive(Debug, Clone)]
pub struct Prm {
    /// Roadmap size (free samples).
    pub n_samples: usize,
    /// Neighbors considered per node.
    pub k_neighbors: usize,
}

impl Default for Prm {
    fn default() -> Self {
        Prm {
            n_samples: 120,
            k_neighbors: 7,
        }
    }
}

/// A constructed roadmap: nodes and validated edges.
#[derive(Debug, Clone)]
pub struct Roadmap {
    /// Node configurations (index 0 = start, 1 = goal when built by
    /// [`Prm::plan`]).
    pub nodes: Vec<Config>,
    /// Undirected validated edges `(i, j, length)`.
    pub edges: Vec<(usize, usize, f64)>,
}

impl Roadmap {
    /// The edge motions of the roadmap — Dadu-P's "fixed set of short
    /// motions" checked against environment voxels at runtime.
    pub fn roadmap_motions(&self) -> Vec<Motion> {
        self.edges
            .iter()
            .map(|&(i, j, _)| Motion::new(self.nodes[i].clone(), self.nodes[j].clone()))
            .collect()
    }
}

impl Prm {
    /// Builds a roadmap: samples free nodes, eagerly validates k-NN edges.
    /// `extra_nodes` are inserted first (e.g. start and goal).
    pub fn build_roadmap(
        &self,
        ctx: &mut PlanContext<'_>,
        extra_nodes: &[Config],
        rng: &mut StdRng,
    ) -> Roadmap {
        let mut nodes: Vec<Config> = extra_nodes.to_vec();
        let mut guard = 0;
        while nodes.len() < self.n_samples + extra_nodes.len() && guard < self.n_samples * 30 {
            guard += 1;
            let q = ctx.robot().sample_uniform(rng);
            if ctx.pose_free(&q) {
                nodes.push(q);
            }
        }
        let mut edges = Vec::new();
        for i in 0..nodes.len() {
            let mut dists: Vec<(usize, f64)> = (0..nodes.len())
                .filter(|&j| j > i)
                .map(|j| (j, nodes[i].distance(&nodes[j])))
                .collect();
            dists.sort_by(|a, b| a.1.total_cmp(&b.1));
            for &(j, d) in dists.iter().take(self.k_neighbors) {
                if ctx.motion_free(&nodes[i], &nodes[j]) {
                    edges.push((i, j, d));
                }
            }
        }
        Roadmap { nodes, edges }
    }
}

#[derive(PartialEq)]
struct Item(f64, usize);
impl Eq for Item {}
impl PartialOrd for Item {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Item {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other.0.total_cmp(&self.0)
    }
}

fn dijkstra(
    n: usize,
    edges: &[(usize, usize, f64)],
    start: usize,
    goal: usize,
) -> Option<Vec<usize>> {
    let mut adj = vec![Vec::new(); n];
    for &(i, j, w) in edges {
        adj[i].push((j, w));
        adj[j].push((i, w));
    }
    let mut dist = vec![f64::INFINITY; n];
    let mut prev = vec![usize::MAX; n];
    let mut heap = BinaryHeap::new();
    dist[start] = 0.0;
    heap.push(Item(0.0, start));
    while let Some(Item(d, u)) = heap.pop() {
        if u == goal {
            let mut path = vec![goal];
            let mut cur = goal;
            while prev[cur] != usize::MAX {
                cur = prev[cur];
                path.push(cur);
            }
            path.reverse();
            return Some(path);
        }
        if d > dist[u] {
            continue;
        }
        for &(v, w) in &adj[u] {
            if d + w < dist[v] {
                dist[v] = d + w;
                prev[v] = u;
                heap.push(Item(dist[v], v));
            }
        }
    }
    None
}

impl Planner for Prm {
    fn name(&self) -> &'static str {
        "prm"
    }

    fn plan(
        &self,
        ctx: &mut PlanContext<'_>,
        start: &Config,
        goal: &Config,
        rng: &mut StdRng,
    ) -> PlanResult {
        ctx.set_stage(Stage::Explore);
        if !ctx.pose_free(start) || !ctx.pose_free(goal) {
            return PlanResult::failure(0);
        }
        let roadmap = self.build_roadmap(ctx, &[start.clone(), goal.clone()], rng);
        let iterations = roadmap.edges.len();
        match dijkstra(roadmap.nodes.len(), &roadmap.edges, 0, 1) {
            Some(path_idx) => {
                let path: Vec<Config> =
                    path_idx.iter().map(|&i| roadmap.nodes[i].clone()).collect();
                crate::rrt::validate_path(ctx, &path);
                PlanResult::success(path, iterations)
            }
            None => PlanResult::failure(iterations),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use copred_collision::Environment;
    use copred_geometry::{Aabb, Vec3};
    use copred_kinematics::{presets, Robot};
    use rand::SeedableRng;

    fn gap_world() -> (Robot, Environment) {
        let robot: Robot = presets::planar_2d().into();
        let env = Environment::new(
            robot.workspace(),
            vec![Aabb::new(
                Vec3::new(-0.05, -1.0, -0.1),
                Vec3::new(0.05, 0.5, 0.1),
            )],
        );
        (robot, env)
    }

    #[test]
    fn prm_solves_gap_world() {
        let (robot, env) = gap_world();
        let mut ctx = PlanContext::new(&robot, &env, 0.05);
        let mut rng = StdRng::seed_from_u64(51);
        let start = Config::new(vec![-0.6, 0.0]);
        let goal = Config::new(vec![0.6, 0.0]);
        let result = Prm::default().plan(&mut ctx, &start, &goal, &mut rng);
        assert!(result.solved());
        let path = result.path.unwrap();
        for w in path.windows(2) {
            let poses =
                copred_kinematics::Motion::new(w[0].clone(), w[1].clone()).discretize_by_step(0.05);
            assert!(!copred_collision::motion_collides(&robot, &env, &poses));
        }
    }

    #[test]
    fn roadmap_edges_are_validated() {
        let (robot, env) = gap_world();
        let mut ctx = PlanContext::new(&robot, &env, 0.05);
        let mut rng = StdRng::seed_from_u64(52);
        let rm = Prm {
            n_samples: 40,
            k_neighbors: 5,
        }
        .build_roadmap(&mut ctx, &[], &mut rng);
        assert!(!rm.nodes.is_empty());
        for &(i, j, _) in &rm.edges {
            let poses = copred_kinematics::Motion::new(rm.nodes[i].clone(), rm.nodes[j].clone())
                .discretize_by_step(0.05);
            assert!(
                !copred_collision::motion_collides(&robot, &env, &poses),
                "edge {i}-{j} collides"
            );
        }
    }

    #[test]
    fn roadmap_motions_match_edges() {
        let (robot, env) = gap_world();
        let mut ctx = PlanContext::new(&robot, &env, 0.05);
        let mut rng = StdRng::seed_from_u64(53);
        let rm = Prm {
            n_samples: 20,
            k_neighbors: 4,
        }
        .build_roadmap(&mut ctx, &[], &mut rng);
        let motions = rm.roadmap_motions();
        assert_eq!(motions.len(), rm.edges.len());
    }

    #[test]
    fn dijkstra_finds_shortest() {
        // Square with a diagonal: 0-1-3 costs 2, 0-3 direct costs 1.5.
        let edges = vec![(0, 1, 1.0), (1, 3, 1.0), (0, 3, 1.5), (0, 2, 5.0)];
        let path = dijkstra(4, &edges, 0, 3).unwrap();
        assert_eq!(path, vec![0, 3]);
        assert!(dijkstra(5, &edges, 0, 4).is_none());
    }
}
