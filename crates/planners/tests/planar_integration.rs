//! Cross-crate integration: RRT, PRM, and BIT* each solve a seeded planar
//! 2-DOF narrow-passage query end to end, and the recorded [`PlanLog`]
//! carries both pipeline stages of the paper's Fig. 6 — S1 exploration
//! checks and S2 trajectory-validation checks.

use copred_collision::check_pose;
use copred_envgen::narrow_passage_environment;
use copred_kinematics::{presets, Config, Robot};
use copred_planners::{BitStar, PlanContext, Planner, Prm, Rrt, Stage};
use rand::rngs::StdRng;
use rand::SeedableRng;

const SEED: u64 = 3;
const STEP: f64 = 0.05;

fn setup() -> (Robot, copred_collision::Environment, Config, Config) {
    let robot: Robot = presets::planar_2d().into();
    // A dividing wall with a generous gap; endpoints sit well clear of the
    // wall band (x within ±0.2 of center), so they are free by
    // construction — asserted anyway.
    let env = narrow_passage_environment(&robot, 0.25, SEED);
    let start = Config::new(vec![-0.7, 0.0]);
    let goal = Config::new(vec![0.7, 0.0]);
    assert!(!check_pose(&robot, &env, &start).0, "start must be free");
    assert!(!check_pose(&robot, &env, &goal).0, "goal must be free");
    (robot, env, start, goal)
}

fn run(planner: &dyn Planner) -> (bool, copred_planners::PlanLog) {
    let (robot, env, start, goal) = setup();
    let mut ctx = PlanContext::new(&robot, &env, STEP);
    let mut rng = StdRng::seed_from_u64(SEED);
    let result = planner.plan(&mut ctx, &start, &goal, &mut rng);
    (result.solved(), ctx.into_log())
}

fn assert_both_stages(name: &str, log: &copred_planners::PlanLog) {
    assert!(!log.is_empty(), "{name}: log must record checks");
    let s1 = log.stage_records(Stage::Explore).count();
    let s2 = log.stage_records(Stage::Validate).count();
    assert!(s1 > 0, "{name}: no S1 exploration checks recorded");
    assert!(s2 > 0, "{name}: no S2 validation checks recorded");
    // S2 re-checks the solution path, so every S2 record must be free.
    assert!(
        log.stage_records(Stage::Validate).all(|r| !r.colliding),
        "{name}: a validated path segment collided"
    );
    for r in &log.records {
        assert!(!r.poses.is_empty(), "{name}: record without poses");
    }
}

#[test]
fn rrt_solves_and_logs_both_stages() {
    let (solved, log) = run(&Rrt::default());
    assert!(solved, "RRT must solve the seeded narrow passage");
    assert_both_stages("rrt", &log);
}

#[test]
fn prm_solves_and_logs_both_stages() {
    let (solved, log) = run(&Prm::default());
    assert!(solved, "PRM must solve the seeded narrow passage");
    assert_both_stages("prm", &log);
}

#[test]
fn bitstar_solves_and_logs_both_stages() {
    let (solved, log) = run(&BitStar::default());
    assert!(solved, "BIT* must solve the seeded narrow passage");
    assert_both_stages("bit*", &log);
}

#[test]
fn identical_seeds_replay_identical_logs() {
    let (_, a) = run(&Rrt::default());
    let (_, b) = run(&Rrt::default());
    assert_eq!(a.records, b.records, "seeded planning must be reproducible");
}
