//! Always-on flight recorder: a bounded per-thread ring of recent op
//! summaries and span edges — the "black box" that survives until a
//! panic, an admin `dump` op, or a latency-threshold trip asks for it.
//!
//! Unlike the span recorder ([`crate::span`]), which is globally gated
//! and *drops* on overflow (a trace with holes is better than a trace
//! that perturbs the workload), the flight recorder is never disabled and
//! *overwrites* its oldest entries: the value of a black box is the most
//! recent history, not a complete one. Each thread owns a fixed ring
//! behind its own (uncontended) mutex; a snapshot locks each ring in turn
//! and merges by global sequence number. Rings of exited threads are
//! folded into a bounded retired buffer so their final entries stay
//! visible without growing the registry forever.

use crate::threadreg::ThreadRegistry;
use crate::tracectx;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// What a [`FlightEntry`] summarizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlightKind {
    /// A completed protocol op (`value` = session id or batch size,
    /// `dur_ns` = end-to-end latency).
    Op,
    /// A span edge mirrored from the tracing instrumentation
    /// (`ts_ns`/`dur_ns` as in [`crate::Event`]).
    Edge,
}

/// One flight-recorder entry. `Copy` and heap-free like [`crate::Event`].
#[derive(Debug, Clone, Copy)]
pub struct FlightEntry {
    /// Entry name (op verb or span name).
    pub name: &'static str,
    /// Entry kind.
    pub kind: FlightKind,
    /// Recording thread id (flight-recorder-local dense ids).
    pub tid: u32,
    /// Global sequence number (total order across threads).
    pub seq: u64,
    /// Nanoseconds on the recorder epoch clock.
    pub ts_ns: u64,
    /// Duration in nanoseconds (0 when not applicable).
    pub dur_ns: u64,
    /// Op payload: session id, batch size, or other small summary value.
    pub value: u64,
    /// Causal trace id from the thread's current-trace cell (0 = none).
    pub trace: u128,
}

/// Per-thread ring capacity (entries).
pub const FLIGHT_CAPACITY: usize = 256;

/// Retired-thread buffer capacity (entries, across all exited threads).
const RETIRED_CAPACITY: usize = 1024;

struct RingInner {
    slots: Vec<FlightEntry>,
    /// Next write position; wraps modulo `FLIGHT_CAPACITY` once full.
    head: usize,
}

/// One thread's flight ring. The mutex is only ever contended while a
/// snapshot is being taken, so the always-on write path costs an
/// uncontended lock plus a 64-byte store.
struct FlightRing {
    inner: Mutex<RingInner>,
}

impl FlightRing {
    fn new() -> Self {
        FlightRing {
            inner: Mutex::new(RingInner {
                slots: Vec::with_capacity(FLIGHT_CAPACITY),
                head: 0,
            }),
        }
    }

    fn push(&self, entry: FlightEntry) {
        let mut inner = self.inner.lock().expect("flight ring lock");
        if inner.slots.len() < FLIGHT_CAPACITY {
            inner.slots.push(entry);
        } else {
            let head = inner.head;
            inner.slots[head] = entry;
        }
        inner.head = (inner.head + 1) % FLIGHT_CAPACITY;
    }

    /// Copies the live entries oldest-first without consuming them.
    fn snapshot_into(&self, out: &mut Vec<FlightEntry>) {
        let inner = self.inner.lock().expect("flight ring lock");
        if inner.slots.len() < FLIGHT_CAPACITY {
            out.extend_from_slice(&inner.slots);
        } else {
            out.extend_from_slice(&inner.slots[inner.head..]);
            out.extend_from_slice(&inner.slots[..inner.head]);
        }
    }
}

/// Global flight-recorder state. Per-thread rings live in
/// [`FLIGHT_REG`], the shared thread registry.
struct Flight {
    retired: Mutex<Vec<FlightEntry>>,
    seq: AtomicU64,
}

static FLIGHT: Flight = Flight {
    retired: Mutex::new(Vec::new()),
    seq: AtomicU64::new(0),
};

static FLIGHT_REG: ThreadRegistry<FlightRing> = ThreadRegistry::new();

struct FlightHandle {
    ring: Arc<FlightRing>,
    tid: u32,
}

thread_local! {
    static FLIGHT_HANDLE: FlightHandle = {
        let ring = Arc::new(FlightRing::new());
        let tid = FLIGHT_REG.alloc_tid();
        FLIGHT_REG.insert(Arc::clone(&ring));
        FlightHandle { ring, tid }
    };
}

fn push_entry(mut entry: FlightEntry) {
    entry.seq = FLIGHT.seq.fetch_add(1, Ordering::Relaxed);
    entry.trace = tracectx::current_raw();
    FLIGHT_HANDLE.with(|h| {
        entry.tid = h.tid;
        h.ring.push(entry);
    });
}

/// Notes a completed protocol op in the calling thread's flight ring.
/// Always on — there is no enable gate to check.
pub fn flight_op(name: &'static str, value: u64, dur_ns: u64) {
    push_entry(FlightEntry {
        name,
        kind: FlightKind::Op,
        tid: 0,
        seq: 0,
        ts_ns: crate::span::clock_ns(),
        dur_ns,
        value,
        trace: 0,
    });
}

/// Notes a span edge (explicit start + duration) in the calling thread's
/// flight ring.
pub fn flight_edge(name: &'static str, ts_ns: u64, dur_ns: u64) {
    push_entry(FlightEntry {
        name,
        kind: FlightKind::Edge,
        tid: 0,
        seq: 0,
        ts_ns,
        dur_ns,
        value: 0,
        trace: 0,
    });
}

/// Takes a non-destructive, sequence-ordered snapshot of every thread's
/// flight ring plus the retired buffer. Rings of exited threads are
/// folded into the bounded retired buffer on the way.
pub fn flight_snapshot() -> Vec<FlightEntry> {
    let mut out = Vec::new();
    {
        let mut retired_now = Vec::new();
        FLIGHT_REG.sweep(|ring, live| {
            if live {
                ring.snapshot_into(&mut out);
            } else {
                ring.snapshot_into(&mut retired_now);
            }
        });
        let mut retired = FLIGHT.retired.lock().expect("flight retired lock");
        retired.append(&mut retired_now);
        if retired.len() > RETIRED_CAPACITY {
            // Keep the newest entries: the buffer is append-ordered per
            // fold but not globally sorted, so sort by seq before cutting.
            retired.sort_by_key(|e| e.seq);
            let cut = retired.len() - RETIRED_CAPACITY;
            retired.drain(..cut);
        }
        out.extend_from_slice(&retired);
    }
    out.sort_by_key(|e| e.seq);
    out
}

/// Renders flight entries as a JSON array (one object per entry), the
/// `/debug/flight` payload. Trace ids render as 32-digit hex strings;
/// entries without a trace carry an empty string.
pub fn flight_json(entries: &[FlightEntry]) -> String {
    let mut out = String::with_capacity(entries.len() * 96 + 16);
    out.push('[');
    for (i, e) in entries.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let kind = match e.kind {
            FlightKind::Op => "op",
            FlightKind::Edge => "edge",
        };
        let trace = match tracectx::TraceId::new(e.trace) {
            Some(id) => id.to_hex(),
            None => String::new(),
        };
        out.push_str(&format!(
            "{{\"kind\":\"{}\",\"name\":\"{}\",\"tid\":{},\"seq\":{},\"ts_ns\":{},\"dur_ns\":{},\"value\":{},\"trace\":\"{}\"}}",
            kind,
            crate::chrome::json_escape(e.name),
            e.tid,
            e.seq,
            e.ts_ns,
            e.dur_ns,
            e.value,
            trace
        ));
    }
    out.push(']');
    out
}

static PANIC_HOOK: OnceLock<()> = OnceLock::new();

/// Installs a panic hook (once per process; later calls are no-ops) that
/// dumps the flight snapshot before delegating to the previous hook. With
/// `dir` set the dump is written to `flight-panic-<pid>.json` in that
/// directory; otherwise the last few entries go to stderr.
pub fn install_flight_panic_hook(dir: Option<std::path::PathBuf>) {
    PANIC_HOOK.get_or_init(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let entries = flight_snapshot();
            let json = flight_json(&entries);
            match &dir {
                Some(d) => {
                    let path = d.join(format!("flight-panic-{}.json", std::process::id()));
                    if std::fs::write(&path, &json).is_ok() {
                        eprintln!(
                            "copred flight recorder: {} entries dumped to {}",
                            entries.len(),
                            path.display()
                        );
                    }
                }
                None => {
                    let tail_from = entries.len().saturating_sub(16);
                    eprintln!(
                        "copred flight recorder ({} entries, last {} shown): {}",
                        entries.len(),
                        entries.len() - tail_from,
                        flight_json(&entries[tail_from..])
                    );
                }
            }
            prev(info);
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraparound_keeps_the_newest_entries_in_order() {
        // Run in a dedicated thread so this test owns its ring regardless
        // of what other tests in the process have recorded.
        let entries = std::thread::spawn(|| {
            let total = FLIGHT_CAPACITY + 57;
            for i in 0..total {
                flight_op("wrap_test", i as u64, 0);
            }
            let snap: Vec<FlightEntry> = flight_snapshot()
                .into_iter()
                .filter(|e| e.name == "wrap_test")
                .collect();
            (snap, total)
        })
        .join()
        .unwrap();
        let (snap, total) = entries;
        assert_eq!(snap.len(), FLIGHT_CAPACITY, "ring holds exactly capacity");
        // The survivors are precisely the newest `FLIGHT_CAPACITY` ops,
        // oldest-first: values [total-cap, total).
        let expect_first = (total - FLIGHT_CAPACITY) as u64;
        for (i, e) in snap.iter().enumerate() {
            assert_eq!(e.value, expect_first + i as u64, "overwrite order at {i}");
            assert_eq!(e.kind, FlightKind::Op);
        }
        for w in snap.windows(2) {
            assert!(w[0].seq < w[1].seq, "snapshot must be seq-ordered");
        }
    }

    #[test]
    fn entries_capture_the_current_trace() {
        std::thread::spawn(|| {
            let id = tracectx::TraceId::new(0x51C4_F00D).unwrap();
            {
                let _t = tracectx::TraceScope::enter(Some(id));
                flight_op("traced_op", 1, 500);
                flight_edge("traced_edge", 10, 20);
            }
            flight_op("untraced_op", 2, 0);
            let snap = flight_snapshot();
            let op = snap.iter().find(|e| e.name == "traced_op").unwrap();
            assert_eq!(op.trace, id.raw());
            let edge = snap.iter().find(|e| e.name == "traced_edge").unwrap();
            assert_eq!(edge.trace, id.raw());
            assert_eq!(edge.kind, FlightKind::Edge);
            let bare = snap.iter().find(|e| e.name == "untraced_op").unwrap();
            assert_eq!(bare.trace, 0);
        })
        .join()
        .unwrap();
    }

    #[test]
    fn exited_threads_fold_into_the_retired_buffer() {
        std::thread::spawn(|| {
            flight_op("retired_op", 99, 0);
        })
        .join()
        .unwrap();
        // Two snapshots: the first folds the dead ring into the retired
        // buffer, the second must still see the entry there.
        let first = flight_snapshot();
        assert!(first
            .iter()
            .any(|e| e.name == "retired_op" && e.value == 99));
        let second = flight_snapshot();
        assert!(second
            .iter()
            .any(|e| e.name == "retired_op" && e.value == 99));
    }

    #[test]
    fn flight_json_is_parseable_shape() {
        let entries = vec![FlightEntry {
            name: "check_motion",
            kind: FlightKind::Op,
            tid: 3,
            seq: 41,
            ts_ns: 1_000,
            dur_ns: 2_000,
            value: 7,
            trace: 0xAB,
        }];
        let json = flight_json(&entries);
        assert!(json.starts_with('[') && json.ends_with(']'));
        assert!(json.contains("\"kind\":\"op\""));
        assert!(json.contains("\"name\":\"check_motion\""));
        assert!(json.contains("\"trace\":\"000000000000000000000000000000ab\""));
        assert_eq!(flight_json(&[]), "[]");
    }
}
