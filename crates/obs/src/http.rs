//! A minimal std-only HTTP/1.0 endpoint for Prometheus scrapes and debug
//! pages.
//!
//! One accept-loop thread; each connection gets its request line read,
//! its headers skipped, and a single `text/plain; version=0.0.4` response
//! rendered by the matching route's closure. Connections close after one
//! exchange (`Connection: close`), which every Prometheus scraper
//! handles.
//!
//! The endpoint is hardened against hostile or broken peers: the request
//! head (request line + headers) is bounded by [`MAX_HEAD`] and an
//! over-long request line gets a structured `400`; reads and writes carry
//! a timeout so a stalled client cannot wedge the accept loop; unknown
//! paths and non-GET methods get structured `404`/`405` responses.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Renders a page on each request.
pub type RenderFn = dyn Fn() -> String + Send + Sync;

/// A registered path → renderer pair.
type Routes = Vec<(String, Arc<RenderFn>)>;

/// A running metrics endpoint. Dropping the handle shuts it down.
pub struct MetricsServer {
    local_addr: SocketAddr,
    stopping: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for MetricsServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsServer")
            .field("local_addr", &self.local_addr)
            .finish_non_exhaustive()
    }
}

impl MetricsServer {
    /// Binds `addr` and serves `GET /metrics` with `render`'s output.
    ///
    /// # Errors
    ///
    /// Any bind failure.
    pub fn start(addr: &str, render: Arc<RenderFn>) -> io::Result<MetricsServer> {
        MetricsServer::start_with_routes(addr, vec![("/metrics".to_string(), render)])
    }

    /// Binds `addr` and serves each `(path, render)` route (exact path
    /// match, query strings ignored). Use this to expose debug pages —
    /// e.g. `/debug/flight` — next to `/metrics`. Unless the caller
    /// registers `/` itself, a plain-text discovery index listing every
    /// route is served there.
    ///
    /// # Errors
    ///
    /// Any bind failure.
    pub fn start_with_routes(addr: &str, routes: Routes) -> io::Result<MetricsServer> {
        MetricsServer::start_inner(addr, routes, Duration::from_secs(5))
    }

    fn start_inner(addr: &str, mut routes: Routes, timeout: Duration) -> io::Result<MetricsServer> {
        if !routes.iter().any(|(p, _)| p == "/") {
            let mut paths: Vec<String> = routes.iter().map(|(p, _)| p.clone()).collect();
            paths.sort();
            let index = format!("copred debug endpoints:\n{}\n", paths.join("\n"));
            routes.push((
                "/".to_string(),
                Arc::new(move || index.clone()) as Arc<RenderFn>,
            ));
        }
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let stopping = Arc::new(AtomicBool::new(false));
        let handle = {
            let stopping = Arc::clone(&stopping);
            std::thread::Builder::new()
                .name("copred-metrics-http".to_string())
                .spawn(move || accept_loop(&listener, &routes, &stopping, timeout))
                .expect("spawn metrics endpoint")
        };
        Ok(MetricsServer {
            local_addr,
            stopping,
            handle: Some(handle),
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Stops accepting and joins the accept thread.
    pub fn shutdown(&mut self) {
        if self.stopping.swap(true, Ordering::AcqRel) {
            return;
        }
        // Wake the blocking accept.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(
    listener: &TcpListener,
    routes: &Routes,
    stopping: &Arc<AtomicBool>,
    timeout: Duration,
) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if stopping.load(Ordering::Acquire) {
                    return;
                }
                // Scrapes are tiny; serve inline so a slow renderer can't
                // pile up threads. A hung peer is bounded by the timeout.
                let _ = serve_one(stream, routes, timeout);
            }
            Err(_) if stopping.load(Ordering::Acquire) => return,
            Err(_) => continue,
        }
    }
}

/// Longest request head (request line + headers) accepted.
const MAX_HEAD: usize = 8 * 1024;

fn serve_one(stream: TcpStream, routes: &Routes, timeout: Duration) -> io::Result<()> {
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut request_line = String::new();
    reader
        .by_ref()
        .take(MAX_HEAD as u64)
        .read_line(&mut request_line)?;
    let line_overflow = !request_line.ends_with('\n') && request_line.len() >= MAX_HEAD;
    // Drain headers until the blank line so well-behaved clients don't see
    // a reset, bounded by MAX_HEAD total.
    let mut seen = request_line.len();
    if !line_overflow {
        loop {
            let mut line = String::new();
            let n = reader
                .by_ref()
                .take((MAX_HEAD - seen.min(MAX_HEAD)) as u64)
                .read_line(&mut line)?;
            seen += n;
            if n == 0 || line == "\r\n" || line == "\n" || seen >= MAX_HEAD {
                break;
            }
        }
    }
    if seen >= MAX_HEAD {
        // The peer overran the head bound; whatever it already sent is
        // still queued, and closing with unread data resets the
        // connection before our response arrives. Drain a bounded amount
        // under a short timeout, then answer.
        let _ = reader
            .get_ref()
            .set_read_timeout(Some(Duration::from_millis(100)));
        let mut sink = [0u8; 4096];
        let mut budget: usize = 1 << 20;
        while budget > 0 {
            match reader.read(&mut sink) {
                Ok(0) | Err(_) => break,
                Ok(n) => budget -= n.min(budget),
            }
        }
    }
    let mut stream = reader.into_inner();
    let mut fields = request_line.split_whitespace();
    let (method, path) = (fields.next().unwrap_or(""), fields.next().unwrap_or(""));
    let path = path.split('?').next().unwrap_or("");
    let mut allow = "";
    let (status, body) = if line_overflow {
        (
            "400 Bad Request",
            format!("request head exceeds {MAX_HEAD} bytes\n"),
        )
    } else if method != "GET" {
        allow = "Allow: GET\r\n";
        ("405 Method Not Allowed", "method not allowed\n".to_string())
    } else if let Some((_, render)) = routes.iter().find(|(p, _)| p == path) {
        ("200 OK", render())
    } else {
        let known: Vec<&str> = routes.iter().map(|(p, _)| p.as_str()).collect();
        ("404 Not Found", format!("try {}\n", known.join(" or ")))
    };
    let head = format!(
        "HTTP/1.0 {status}\r\nContent-Type: text/plain; version=0.0.4; charset=utf-8\r\nContent-Length: {}\r\n{allow}Connection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// Blocking one-shot HTTP GET returning the response body — the scrape
/// half used by tests and the conformance harness.
///
/// # Errors
///
/// Connect/IO failures, or [`io::ErrorKind::InvalidData`] for non-200
/// responses and unparseable heads.
pub fn http_get(addr: impl ToSocketAddrs, path: &str) -> io::Result<String> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    stream.set_write_timeout(Some(Duration::from_secs(5)))?;
    write!(stream, "GET {path} HTTP/1.0\r\nHost: copred\r\n\r\n")?;
    stream.flush()?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    let (head, body) = response
        .split_once("\r\n\r\n")
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "no header terminator"))?;
    let status = head.lines().next().unwrap_or("");
    if !status.contains(" 200 ") {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("non-200 response: {status}"),
        ));
    }
    Ok(body.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn server() -> MetricsServer {
        MetricsServer::start("127.0.0.1:0", Arc::new(|| "copred_up 1\n".to_string())).expect("bind")
    }

    #[test]
    fn serves_metrics_page() {
        let s = server();
        let body = http_get(s.local_addr(), "/metrics").expect("scrape");
        assert_eq!(body, "copred_up 1\n");
    }

    #[test]
    fn metrics_with_query_string_ok() {
        let s = server();
        let body = http_get(s.local_addr(), "/metrics?format=prometheus").expect("scrape");
        assert_eq!(body, "copred_up 1\n");
    }

    #[test]
    fn extra_routes_are_served_and_listed_in_404() {
        let s = MetricsServer::start_with_routes(
            "127.0.0.1:0",
            vec![
                (
                    "/metrics".to_string(),
                    Arc::new(|| "copred_up 1\n".to_string()) as Arc<RenderFn>,
                ),
                (
                    "/debug/flight".to_string(),
                    Arc::new(|| "[]".to_string()) as Arc<RenderFn>,
                ),
            ],
        )
        .expect("bind");
        assert_eq!(
            http_get(s.local_addr(), "/metrics").unwrap(),
            "copred_up 1\n"
        );
        assert_eq!(http_get(s.local_addr(), "/debug/flight").unwrap(), "[]");
        assert_eq!(http_get(s.local_addr(), "/debug/flight?x=1").unwrap(), "[]");
        let mut stream = TcpStream::connect(s.local_addr()).unwrap();
        write!(stream, "GET /nope HTTP/1.0\r\n\r\n").unwrap();
        let mut resp = String::new();
        stream.read_to_string(&mut resp).unwrap();
        assert!(resp.starts_with("HTTP/1.0 404"), "{resp}");
        assert!(resp.contains("/metrics or /debug/flight"), "{resp}");
    }

    #[test]
    fn other_paths_are_404() {
        let s = server();
        let err = http_get(s.local_addr(), "/nope").expect_err("404");
        assert!(err.to_string().contains("404"), "{err}");
    }

    #[test]
    fn root_serves_a_discovery_index() {
        let s = MetricsServer::start_with_routes(
            "127.0.0.1:0",
            vec![
                (
                    "/metrics".to_string(),
                    Arc::new(|| "copred_up 1\n".to_string()) as Arc<RenderFn>,
                ),
                (
                    "/debug/flight".to_string(),
                    Arc::new(|| "[]".to_string()) as Arc<RenderFn>,
                ),
            ],
        )
        .expect("bind");
        let body = http_get(s.local_addr(), "/").expect("index");
        assert!(body.starts_with("copred debug endpoints:\n"), "{body}");
        assert!(body.contains("/metrics"), "{body}");
        assert!(body.contains("/debug/flight"), "{body}");
    }

    #[test]
    fn caller_registered_root_wins_over_the_index() {
        let s = MetricsServer::start_with_routes(
            "127.0.0.1:0",
            vec![(
                "/".to_string(),
                Arc::new(|| "custom root\n".to_string()) as Arc<RenderFn>,
            )],
        )
        .expect("bind");
        assert_eq!(http_get(s.local_addr(), "/").unwrap(), "custom root\n");
    }

    #[test]
    fn non_get_is_405_with_allow_header() {
        let s = server();
        let mut stream = TcpStream::connect(s.local_addr()).unwrap();
        write!(stream, "POST /metrics HTTP/1.0\r\n\r\n").unwrap();
        let mut resp = String::new();
        stream.read_to_string(&mut resp).unwrap();
        assert!(resp.starts_with("HTTP/1.0 405"), "{resp}");
        assert!(resp.contains("Allow: GET"), "{resp}");
    }

    #[test]
    fn oversized_request_line_is_400() {
        let s = server();
        let mut stream = TcpStream::connect(s.local_addr()).unwrap();
        // Exactly MAX_HEAD bytes with no newline: the endpoint reads the
        // whole head, sees an unterminated request line at the bound, and
        // answers with a structured 400.
        let mut long = b"GET /".to_vec();
        long.resize(MAX_HEAD, b'a');
        stream.write_all(&long).unwrap();
        let mut resp = String::new();
        stream.read_to_string(&mut resp).unwrap();
        assert!(resp.starts_with("HTTP/1.0 400"), "{resp}");
        assert!(resp.contains("request head exceeds"), "{resp}");
        // And the endpoint keeps serving.
        assert_eq!(
            http_get(s.local_addr(), "/metrics").unwrap(),
            "copred_up 1\n"
        );
    }

    #[test]
    fn oversized_headers_are_bounded() {
        let s = server();
        let mut stream = TcpStream::connect(s.local_addr()).unwrap();
        let mut req = String::from("GET /metrics HTTP/1.0\r\n");
        for i in 0..2000 {
            req.push_str(&format!("X-Pad-{i}: {}\r\n", "b".repeat(64)));
        }
        req.push_str("\r\n");
        // The endpoint stops reading at MAX_HEAD and still answers.
        stream.write_all(req.as_bytes()).ok();
        let mut resp = String::new();
        stream.read_to_string(&mut resp).unwrap();
        assert!(resp.starts_with("HTTP/1.0 200"), "{resp}");
    }

    #[test]
    fn stalled_client_cannot_wedge_the_accept_loop() {
        // Short read timeout so the test doesn't sit for the default 5s.
        let s = MetricsServer::start_inner(
            "127.0.0.1:0",
            vec![(
                "/metrics".to_string(),
                Arc::new(|| "copred_up 1\n".to_string()) as Arc<RenderFn>,
            )],
            Duration::from_millis(200),
        )
        .expect("bind");
        // Connect and send nothing: the accept loop blocks on this peer
        // for at most the read timeout, then serves the next scrape.
        let stalled = TcpStream::connect(s.local_addr()).unwrap();
        let start = std::time::Instant::now();
        let body = http_get(s.local_addr(), "/metrics").expect("served after stall");
        assert_eq!(body, "copred_up 1\n");
        assert!(
            start.elapsed() < Duration::from_secs(3),
            "stalled peer held the loop {:?}",
            start.elapsed()
        );
        drop(stalled);
    }

    #[test]
    fn garbage_request_does_not_wedge_the_endpoint() {
        let s = server();
        {
            let mut stream = TcpStream::connect(s.local_addr()).unwrap();
            stream.write_all(&[0xff; 64]).unwrap();
            // Drop without reading; the endpoint must keep serving.
        }
        let body = http_get(s.local_addr(), "/metrics").expect("still up");
        assert_eq!(body, "copred_up 1\n");
    }

    #[test]
    fn shutdown_joins_cleanly() {
        let mut s = server();
        s.shutdown();
        s.shutdown(); // idempotent
        assert!(http_get(s.local_addr(), "/metrics").is_err());
    }
}
