//! A minimal std-only HTTP/1.0 endpoint for Prometheus scrapes.
//!
//! One accept-loop thread; each connection gets its request line read,
//! its headers skipped, and a single `text/plain; version=0.0.4` response
//! rendered by the caller's closure. Connections close after one exchange
//! (`Connection: close`), which every Prometheus scraper handles.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Renders the metrics page on each scrape.
pub type RenderFn = dyn Fn() -> String + Send + Sync;

/// A running metrics endpoint. Dropping the handle shuts it down.
pub struct MetricsServer {
    local_addr: SocketAddr,
    stopping: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for MetricsServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsServer")
            .field("local_addr", &self.local_addr)
            .finish_non_exhaustive()
    }
}

impl MetricsServer {
    /// Binds `addr` and serves `GET /metrics` with `render`'s output.
    ///
    /// # Errors
    ///
    /// Any bind failure.
    pub fn start(addr: &str, render: Arc<RenderFn>) -> io::Result<MetricsServer> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let stopping = Arc::new(AtomicBool::new(false));
        let handle = {
            let stopping = Arc::clone(&stopping);
            std::thread::Builder::new()
                .name("copred-metrics-http".to_string())
                .spawn(move || accept_loop(&listener, &render, &stopping))
                .expect("spawn metrics endpoint")
        };
        Ok(MetricsServer {
            local_addr,
            stopping,
            handle: Some(handle),
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Stops accepting and joins the accept thread.
    pub fn shutdown(&mut self) {
        if self.stopping.swap(true, Ordering::AcqRel) {
            return;
        }
        // Wake the blocking accept.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: &TcpListener, render: &Arc<RenderFn>, stopping: &Arc<AtomicBool>) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if stopping.load(Ordering::Acquire) {
                    return;
                }
                // Scrapes are tiny; serve inline so a slow renderer can't
                // pile up threads. A hung peer is bounded by the timeout.
                let _ = serve_one(stream, render);
            }
            Err(_) if stopping.load(Ordering::Acquire) => return,
            Err(_) => continue,
        }
    }
}

/// Longest request head (request line + headers) accepted.
const MAX_HEAD: usize = 8 * 1024;

fn serve_one(stream: TcpStream, render: &Arc<RenderFn>) -> io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    stream.set_write_timeout(Some(Duration::from_secs(5)))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut request_line = String::new();
    reader
        .by_ref()
        .take(MAX_HEAD as u64)
        .read_line(&mut request_line)?;
    // Drain headers until the blank line so well-behaved clients don't see
    // a reset, bounded by MAX_HEAD total.
    let mut seen = request_line.len();
    loop {
        let mut line = String::new();
        let n = reader
            .by_ref()
            .take((MAX_HEAD - seen.min(MAX_HEAD)) as u64)
            .read_line(&mut line)?;
        seen += n;
        if n == 0 || line == "\r\n" || line == "\n" || seen >= MAX_HEAD {
            break;
        }
    }
    let mut stream = reader.into_inner();
    let mut fields = request_line.split_whitespace();
    let (method, path) = (fields.next().unwrap_or(""), fields.next().unwrap_or(""));
    let (status, body) = if method != "GET" {
        ("405 Method Not Allowed", "method not allowed\n".to_string())
    } else if path == "/metrics" || path.starts_with("/metrics?") {
        ("200 OK", render())
    } else {
        ("404 Not Found", "try /metrics\n".to_string())
    };
    let head = format!(
        "HTTP/1.0 {status}\r\nContent-Type: text/plain; version=0.0.4; charset=utf-8\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// Blocking one-shot HTTP GET returning the response body — the scrape
/// half used by tests and the conformance harness.
///
/// # Errors
///
/// Connect/IO failures, or [`io::ErrorKind::InvalidData`] for non-200
/// responses and unparseable heads.
pub fn http_get(addr: impl ToSocketAddrs, path: &str) -> io::Result<String> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    stream.set_write_timeout(Some(Duration::from_secs(5)))?;
    write!(stream, "GET {path} HTTP/1.0\r\nHost: copred\r\n\r\n")?;
    stream.flush()?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    let (head, body) = response
        .split_once("\r\n\r\n")
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "no header terminator"))?;
    let status = head.lines().next().unwrap_or("");
    if !status.contains(" 200 ") {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("non-200 response: {status}"),
        ));
    }
    Ok(body.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn server() -> MetricsServer {
        MetricsServer::start("127.0.0.1:0", Arc::new(|| "copred_up 1\n".to_string())).expect("bind")
    }

    #[test]
    fn serves_metrics_page() {
        let s = server();
        let body = http_get(s.local_addr(), "/metrics").expect("scrape");
        assert_eq!(body, "copred_up 1\n");
    }

    #[test]
    fn metrics_with_query_string_ok() {
        let s = server();
        let body = http_get(s.local_addr(), "/metrics?format=prometheus").expect("scrape");
        assert_eq!(body, "copred_up 1\n");
    }

    #[test]
    fn other_paths_are_404() {
        let s = server();
        let err = http_get(s.local_addr(), "/").expect_err("404");
        assert!(err.to_string().contains("404"), "{err}");
    }

    #[test]
    fn non_get_is_405() {
        let s = server();
        let mut stream = TcpStream::connect(s.local_addr()).unwrap();
        write!(stream, "POST /metrics HTTP/1.0\r\n\r\n").unwrap();
        let mut resp = String::new();
        stream.read_to_string(&mut resp).unwrap();
        assert!(resp.starts_with("HTTP/1.0 405"), "{resp}");
    }

    #[test]
    fn garbage_request_does_not_wedge_the_endpoint() {
        let s = server();
        {
            let mut stream = TcpStream::connect(s.local_addr()).unwrap();
            stream.write_all(&[0xff; 64]).unwrap();
            // Drop without reading; the endpoint must keep serving.
        }
        let body = http_get(s.local_addr(), "/metrics").expect("still up");
        assert_eq!(body, "copred_up 1\n");
    }

    #[test]
    fn shutdown_joins_cleanly() {
        let mut s = server();
        s.shutdown();
        s.shutdown(); // idempotent
        assert!(http_get(s.local_addr(), "/metrics").is_err());
    }
}
