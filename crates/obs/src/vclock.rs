//! Simulated-time tracing: a trace builder whose clock is a **virtual
//! cycle counter** instead of wall time.
//!
//! The wall-clock recorder in [`crate::span`] timestamps events with
//! `Instant`-derived nanoseconds — right for a live server, wrong for a
//! cycle-level simulator whose "time" is a loop variable. [`VirtualTrace`]
//! lets a simulator lay out named tracks (one per CDU, queue, or pipe) and
//! emit spans/instants/counters at explicit cycle timestamps. The Chrome
//! export maps one cycle to one microsecond, so `chrome://tracing` and
//! Perfetto render the pipeline schedule directly in cycles.
//!
//! Unlike the lock-free ring recorder, this builder is single-threaded and
//! allocates freely: simulators are sequential and traces are built
//! off the hot path.

use std::fmt::Write as _;

/// Handle to a named track (a Chrome `tid`) in a [`VirtualTrace`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TrackId(u32);

/// Event flavor in a virtual-clock trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VEventKind {
    /// A duration on a track: `[start, start + dur)` cycles.
    Span,
    /// A point marker at one cycle.
    Instant,
    /// A sampled value (queue depth, occupancy) at one cycle.
    Counter,
}

/// One event on a virtual-clock track.
#[derive(Debug, Clone, PartialEq)]
pub struct VEvent {
    /// Owning track.
    pub track: TrackId,
    /// Flavor.
    pub kind: VEventKind,
    /// Event name shown in the viewer.
    pub name: String,
    /// Start cycle.
    pub start_cycle: u64,
    /// Duration in cycles (0 for instants and counters).
    pub dur_cycles: u64,
    /// Counter value (0 for spans and instants).
    pub value: i64,
}

/// A simulated-time trace: named tracks plus events stamped in cycles.
///
/// Events are kept in emission order; a simulator that emits as its cycle
/// counter advances gets a per-track monotone trace for free, and tests
/// can assert it via [`VirtualTrace::is_monotone_per_track`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct VirtualTrace {
    /// Process name shown in the viewer (e.g. `AccelSim (virtual cycles)`).
    process: String,
    tracks: Vec<String>,
    events: Vec<VEvent>,
}

impl VirtualTrace {
    /// An empty trace for the named simulated process.
    pub fn new(process: &str) -> Self {
        VirtualTrace {
            process: process.to_string(),
            tracks: Vec::new(),
            events: Vec::new(),
        }
    }

    /// Registers a track and returns its handle. Track order is display
    /// order in the viewer.
    pub fn track(&mut self, name: &str) -> TrackId {
        self.tracks.push(name.to_string());
        TrackId(self.tracks.len() as u32 - 1)
    }

    /// Registered track names, in registration order.
    pub fn track_names(&self) -> &[String] {
        &self.tracks
    }

    /// A span covering `[start_cycle, start_cycle + dur_cycles)`.
    pub fn span(&mut self, track: TrackId, name: &str, start_cycle: u64, dur_cycles: u64) {
        self.events.push(VEvent {
            track,
            kind: VEventKind::Span,
            name: name.to_string(),
            start_cycle,
            dur_cycles,
            value: 0,
        });
    }

    /// A point marker at `cycle`.
    pub fn instant(&mut self, track: TrackId, name: &str, cycle: u64) {
        self.events.push(VEvent {
            track,
            kind: VEventKind::Instant,
            name: name.to_string(),
            start_cycle: cycle,
            dur_cycles: 0,
            value: 0,
        });
    }

    /// A counter sample at `cycle`.
    pub fn counter(&mut self, track: TrackId, name: &str, cycle: u64, value: i64) {
        self.events.push(VEvent {
            track,
            kind: VEventKind::Counter,
            name: name.to_string(),
            start_cycle: cycle,
            dur_cycles: 0,
            value,
        });
    }

    /// All emitted events, in emission order.
    pub fn events(&self) -> &[VEvent] {
        &self.events
    }

    /// True when every track's events carry non-decreasing start cycles —
    /// the virtual clock never runs backwards within a track.
    pub fn is_monotone_per_track(&self) -> bool {
        let mut last = vec![0u64; self.tracks.len()];
        for e in &self.events {
            let slot = &mut last[e.track.0 as usize];
            if e.start_cycle < *slot {
                return false;
            }
            *slot = e.start_cycle;
        }
        true
    }

    /// Renders the trace as Chrome trace JSON with one microsecond per
    /// cycle. Emits `process_name`/`thread_name`/`thread_sort_index`
    /// metadata so tracks appear under the process with their registered
    /// names and order.
    pub fn to_chrome_json(&self) -> String {
        let mut out = String::with_capacity(128 + self.tracks.len() * 160 + self.events.len() * 96);
        out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
        let _ = write!(
            out,
            "\n{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\"args\":{{\"name\":\"{}\"}}}}",
            crate::chrome::json_escape(&self.process)
        );
        for (i, name) in self.tracks.iter().enumerate() {
            let _ = write!(
                out,
                ",\n{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{i},\"args\":{{\"name\":\"{}\"}}}}",
                crate::chrome::json_escape(name)
            );
            let _ = write!(
                out,
                ",\n{{\"name\":\"thread_sort_index\",\"ph\":\"M\",\"pid\":1,\"tid\":{i},\"args\":{{\"sort_index\":{i}}}}}"
            );
        }
        for e in &self.events {
            let name = crate::chrome::json_escape(&e.name);
            let tid = e.track.0;
            match e.kind {
                VEventKind::Span => {
                    let _ = write!(
                        out,
                        ",\n{{\"name\":\"{name}\",\"cat\":\"sim\",\"ph\":\"X\",\"pid\":1,\"tid\":{tid},\"ts\":{},\"dur\":{}}}",
                        e.start_cycle, e.dur_cycles
                    );
                }
                VEventKind::Instant => {
                    let _ = write!(
                        out,
                        ",\n{{\"name\":\"{name}\",\"cat\":\"sim\",\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":{tid},\"ts\":{}}}",
                        e.start_cycle
                    );
                }
                VEventKind::Counter => {
                    let _ = write!(
                        out,
                        ",\n{{\"name\":\"{name}\",\"cat\":\"sim\",\"ph\":\"C\",\"pid\":1,\"tid\":{tid},\"ts\":{},\"args\":{{\"value\":{}}}}}",
                        e.start_cycle, e.value
                    );
                }
            }
        }
        out.push_str("\n]}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> VirtualTrace {
        let mut t = VirtualTrace::new("AccelSim (virtual cycles)");
        let cdu0 = t.track("cdu0");
        let qcoll = t.track("qcoll");
        t.span(cdu0, "cdq", 10, 14);
        t.counter(qcoll, "depth", 10, 3);
        t.instant(cdu0, "collision", 24);
        t.counter(qcoll, "depth", 12, 2);
        t
    }

    #[test]
    fn tracks_and_events_round_trip() {
        let t = sample();
        assert_eq!(t.track_names(), ["cdu0", "qcoll"]);
        assert_eq!(t.events().len(), 4);
        assert!(t.is_monotone_per_track());
    }

    #[test]
    fn monotonicity_is_per_track_not_global() {
        let mut t = VirtualTrace::new("p");
        let a = t.track("a");
        let b = t.track("b");
        t.span(a, "x", 100, 5);
        // Track b starting earlier than track a's last event is fine.
        t.span(b, "y", 10, 5);
        assert!(t.is_monotone_per_track());
        // But going backwards within a track is not.
        t.span(a, "z", 50, 5);
        assert!(!t.is_monotone_per_track());
    }

    #[test]
    fn chrome_export_carries_metadata_and_cycle_timestamps() {
        let json = sample().to_chrome_json();
        assert!(json.contains("\"ph\":\"M\""));
        assert!(json.contains("\"name\":\"process_name\""));
        assert!(json.contains("AccelSim (virtual cycles)"));
        assert!(json.contains("\"name\":\"cdu0\""));
        assert!(json.contains("\"sort_index\":1"));
        // Cycle 10, 14-cycle span: ts/dur are the raw cycle integers.
        assert!(json.contains("\"ts\":10,\"dur\":14"));
        assert!(json.contains("\"args\":{\"value\":3}"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn export_is_deterministic() {
        assert_eq!(sample().to_chrome_json(), sample().to_chrome_json());
    }
}
