//! The zero-alloc, lock-free span/event recorder.
//!
//! Each recording thread owns a fixed-capacity SPSC ring buffer of
//! [`Event`]s; a collector (any thread holding the registry lock, or the
//! background [`Collector`] thread) drains every ring and merges the
//! events by global sequence number. Recording never allocates, never
//! takes a lock, and never blocks: a full ring drops the event and bumps
//! a counter instead.
//!
//! Recording is globally gated by an [`AtomicBool`]; when disabled,
//! [`span`] and friends cost one relaxed load and a branch, so the
//! instrumentation can stay compiled into release hot paths.

use crate::threadreg::ThreadRegistry;
use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// What an [`Event`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EventKind {
    /// A completed span: `ts_ns` is the start, `dur_ns` the duration.
    #[default]
    Span,
    /// A point-in-time marker.
    Instant,
    /// A counter sample: `value` is the sampled value at `ts_ns`.
    Counter,
}

/// One recorded event. `Copy` and free of heap data so ring slots can be
/// written without allocation; names are interned `&'static str`s.
#[derive(Debug, Clone, Copy, Default)]
pub struct Event {
    /// Span/marker/counter name (e.g. `"execute"`).
    pub name: &'static str,
    /// Category (e.g. `"service"`, `"swexec"`, `"accel"`).
    pub cat: &'static str,
    /// Event kind.
    pub kind: EventKind,
    /// Recording thread id (small dense ids assigned at first record).
    pub tid: u32,
    /// Global sequence number (total order across threads).
    pub seq: u64,
    /// Nanoseconds since the recorder epoch.
    pub ts_ns: u64,
    /// Span duration (0 for instants and counters).
    pub dur_ns: u64,
    /// Counter value (0 for spans and instants).
    pub value: u64,
    /// Causal trace id stamped from the thread's current-trace cell at
    /// record time (0 = no trace). See [`crate::tracectx`].
    pub trace: u128,
}

/// Default per-thread ring capacity (events). Must be a power of two.
const RING_CAPACITY: usize = 1 << 14;

/// A single-producer single-consumer ring. The producer is the owning
/// thread (reached only through its thread-local handle); the consumer is
/// whoever holds the [`ThreadRegistry`] lock in [`drain_events`], which
/// serializes consumers.
struct Ring {
    /// `MaybeUninit` so construction never touches the slots: the OS maps
    /// the (1 MiB-scale) buffer lazily and pages fault in only as events
    /// accumulate, instead of a zero-fill burst on the first event a
    /// thread records.
    slots: Box<[UnsafeCell<MaybeUninit<Event>>]>,
    /// Next write position (producer-owned, consumer reads with Acquire).
    head: AtomicUsize,
    /// Next read position (consumer-owned, producer reads with Acquire).
    tail: AtomicUsize,
    /// Events discarded because the ring was full.
    dropped: AtomicU64,
}

// SAFETY: slot `i` is written only by the producer while `i` lies in
// `[tail, head)`'s complement and read only by the consumer after the
// producer's `head` Release-store publishes it; head/tail form the usual
// SPSC handshake. Producer exclusivity holds because `push` is reachable
// only through the owning thread's thread-local handle, and consumer
// exclusivity because draining requires the global registry lock.
unsafe impl Sync for Ring {}
unsafe impl Send for Ring {}

impl Ring {
    fn new(capacity: usize) -> Self {
        debug_assert!(capacity.is_power_of_two());
        Ring {
            slots: (0..capacity)
                .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
                .collect(),
            head: AtomicUsize::new(0),
            tail: AtomicUsize::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    #[inline]
    fn push(&self, ev: Event) {
        let head = self.head.load(Ordering::Relaxed);
        let tail = self.tail.load(Ordering::Acquire);
        if head.wrapping_sub(tail) >= self.slots.len() {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let idx = head & (self.slots.len() - 1);
        // SAFETY: the slot is outside [tail, head) so the consumer will
        // not read it until the Release store below publishes the write.
        unsafe { (*self.slots[idx].get()).write(ev) };
        self.head.store(head.wrapping_add(1), Ordering::Release);
    }

    /// Drains everything currently published. Caller must be the unique
    /// consumer (holds the registry lock).
    fn drain_into(&self, out: &mut Vec<Event>) {
        let mut tail = self.tail.load(Ordering::Relaxed);
        let head = self.head.load(Ordering::Acquire);
        while tail != head {
            let idx = tail & (self.slots.len() - 1);
            // SAFETY: [tail, head) was published by the producer's
            // Release store on `head`, and every slot in that range was
            // initialized by `push`.
            out.push(unsafe { (*self.slots[idx].get()).assume_init() });
            tail = tail.wrapping_add(1);
        }
        self.tail.store(tail, Ordering::Release);
    }
}

/// Global recorder state. Per-thread rings live in [`SPAN_REG`], the
/// shared thread registry.
struct Recorder {
    enabled: AtomicBool,
    epoch: OnceLock<Instant>,
    seq: AtomicU64,
    /// Drop counts carried over from rings of exited threads that were
    /// pruned from the registry.
    retired_dropped: AtomicU64,
}

static RECORDER: Recorder = Recorder {
    enabled: AtomicBool::new(false),
    epoch: OnceLock::new(),
    seq: AtomicU64::new(0),
    retired_dropped: AtomicU64::new(0),
};

static SPAN_REG: ThreadRegistry<Ring> = ThreadRegistry::new();

struct ThreadHandle {
    ring: Arc<Ring>,
    tid: u32,
}

thread_local! {
    static HANDLE: ThreadHandle = {
        let ring = Arc::new(Ring::new(RING_CAPACITY));
        let tid = SPAN_REG.alloc_tid();
        SPAN_REG.insert(Arc::clone(&ring));
        ThreadHandle { ring, tid }
    };
}

fn epoch() -> Instant {
    *RECORDER.epoch.get_or_init(Instant::now)
}

#[inline]
fn now_ns() -> u64 {
    u64::try_from(epoch().elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// Crate-internal clock on the recorder epoch, for subsystems (the flight
/// recorder) that must timestamp even while span recording is disabled.
/// The first call pins the epoch.
#[inline]
pub(crate) fn clock_ns() -> u64 {
    now_ns()
}

/// Turns recording on. The first call pins the trace epoch.
pub fn enable() {
    let _ = epoch();
    RECORDER.enabled.store(true, Ordering::Release);
}

/// Turns recording off. Already-buffered events stay drainable.
pub fn disable() {
    RECORDER.enabled.store(false, Ordering::Release);
}

/// Whether recording is on. One relaxed load — callers may use this to
/// skip argument computation entirely.
#[inline]
pub fn enabled() -> bool {
    RECORDER.enabled.load(Ordering::Relaxed)
}

#[inline]
fn record(mut ev: Event) {
    ev.seq = RECORDER.seq.fetch_add(1, Ordering::Relaxed);
    if ev.trace == 0 {
        ev.trace = crate::tracectx::current_raw();
    }
    HANDLE.with(|h| {
        ev.tid = h.tid;
        h.ring.push(ev);
    });
}

/// Records a point-in-time marker.
#[inline]
pub fn instant(cat: &'static str, name: &'static str) {
    if !enabled() {
        return;
    }
    record(Event {
        name,
        cat,
        kind: EventKind::Instant,
        ts_ns: now_ns(),
        ..Event::default()
    });
}

/// Records a counter sample (rendered as a Chrome counter track).
#[inline]
pub fn counter(cat: &'static str, name: &'static str, value: u64) {
    if !enabled() {
        return;
    }
    record(Event {
        name,
        cat,
        kind: EventKind::Counter,
        ts_ns: now_ns(),
        value,
        ..Event::default()
    });
}

/// Records a completed span with an explicit start and duration — used by
/// instrumentation that measures a phase itself (e.g. accumulated
/// predictor time) rather than via a guard.
#[inline]
pub fn span_at(cat: &'static str, name: &'static str, ts_ns: u64, dur_ns: u64) {
    if !enabled() {
        return;
    }
    record(Event {
        name,
        cat,
        kind: EventKind::Span,
        ts_ns,
        dur_ns,
        ..Event::default()
    });
}

/// Nanoseconds since the recorder epoch (0 until first enable). Useful
/// with [`span_at`].
#[inline]
pub fn timestamp_ns() -> u64 {
    if RECORDER.epoch.get().is_some() {
        now_ns()
    } else {
        0
    }
}

/// RAII span: created by [`span`], records a complete event on drop.
#[derive(Debug)]
#[must_use = "a span measures the scope it lives in"]
pub struct SpanGuard {
    start_ns: u64,
    name: &'static str,
    cat: &'static str,
    armed: bool,
}

impl SpanGuard {
    /// The span's start timestamp (0 when recording was off at entry).
    pub fn start_ns(&self) -> u64 {
        self.start_ns
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.armed || !enabled() {
            return;
        }
        let end = now_ns();
        record(Event {
            name: self.name,
            cat: self.cat,
            kind: EventKind::Span,
            ts_ns: self.start_ns,
            dur_ns: end.saturating_sub(self.start_ns),
            ..Event::default()
        });
    }
}

/// Opens a span covering the guard's lifetime. When recording is off this
/// is a branch and nothing else (no clock read).
#[inline]
pub fn span(cat: &'static str, name: &'static str) -> SpanGuard {
    if !enabled() {
        return SpanGuard {
            start_ns: 0,
            name,
            cat,
            armed: false,
        };
    }
    SpanGuard {
        start_ns: now_ns(),
        name,
        cat,
        armed: true,
    }
}

/// Drains every thread's ring into one sequence-ordered vector. Rings of
/// exited threads are drained one last time, their drop counts folded
/// into a retired total, and then pruned by the registry sweep.
pub fn drain_events() -> Vec<Event> {
    let mut out = Vec::new();
    SPAN_REG.sweep(|ring, live| {
        ring.drain_into(&mut out);
        if !live {
            RECORDER
                .retired_dropped
                .fetch_add(ring.dropped.load(Ordering::Relaxed), Ordering::Relaxed);
        }
    });
    out.sort_by_key(|e| e.seq);
    out
}

/// Total events dropped to full rings since process start.
pub fn dropped_events() -> u64 {
    let mut live = 0u64;
    SPAN_REG.for_each(|r| live += r.dropped.load(Ordering::Relaxed));
    live + RECORDER.retired_dropped.load(Ordering::Relaxed)
}

/// Background collector: periodically drains the rings so long traces
/// never overflow them, and hands everything back on [`Collector::stop`].
#[derive(Debug)]
pub struct Collector {
    stop: Arc<AtomicBool>,
    collected: Arc<Mutex<Vec<Event>>>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Collector {
    /// Spawns the collector thread, draining every `period`.
    pub fn start(period: std::time::Duration) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let collected = Arc::new(Mutex::new(Vec::new()));
        let handle = {
            let stop = Arc::clone(&stop);
            let collected = Arc::clone(&collected);
            std::thread::Builder::new()
                .name("copred-obs-collector".to_string())
                .spawn(move || {
                    while !stop.load(Ordering::Acquire) {
                        std::thread::sleep(period);
                        let mut batch = drain_events();
                        collected.lock().expect("collector lock").append(&mut batch);
                    }
                })
                .expect("spawn obs collector")
        };
        Collector {
            stop,
            collected,
            handle: Some(handle),
        }
    }

    /// Stops the thread, performs a final drain, and returns every event
    /// collected, sequence-ordered.
    pub fn stop(mut self) -> Vec<Event> {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
        let mut events = std::mem::take(&mut *self.collected.lock().expect("collector lock"));
        events.append(&mut drain_events());
        events.sort_by_key(|e| e.seq);
        events
    }
}

impl Drop for Collector {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The recorder is process-global; the test runner is multi-threaded.
    // Every test that records or drains takes this lock so no test steals
    // another's events or flips the enable flag under it.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn serial() -> std::sync::MutexGuard<'static, ()> {
        TEST_LOCK
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn span_records_duration() {
        let _s = serial();
        enable();
        {
            let _g = span("test", "span_records_duration");
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let evs = drain_events();
        let ev = evs
            .iter()
            .find(|e| e.name == "span_records_duration")
            .expect("span recorded");
        assert_eq!(ev.kind, EventKind::Span);
        assert!(ev.dur_ns >= 1_000_000, "dur {} too short", ev.dur_ns);
    }

    #[test]
    fn disabled_recorder_is_silent() {
        let _s = serial();
        enable();
        let _ = drain_events();
        disable();
        {
            let _g = span("test", "disabled_recorder_is_silent");
            instant("test", "disabled_recorder_is_silent");
            counter("test", "disabled_recorder_is_silent", 7);
        }
        let evs = drain_events();
        assert!(!evs.iter().any(|e| e.name == "disabled_recorder_is_silent"));
        enable();
    }

    #[test]
    fn counters_and_instants_carry_values() {
        let _s = serial();
        enable();
        counter("test", "counters_carry_values", 42);
        instant("test", "instants_carry_ts");
        let evs = drain_events();
        let c = evs
            .iter()
            .find(|e| e.name == "counters_carry_values")
            .expect("counter");
        assert_eq!(c.kind, EventKind::Counter);
        assert_eq!(c.value, 42);
        assert!(evs.iter().any(|e| e.name == "instants_carry_ts"));
    }

    #[test]
    fn multithreaded_events_are_sequence_ordered() {
        let _s = serial();
        enable();
        let threads: Vec<_> = (0..4)
            .map(|_| {
                std::thread::spawn(|| {
                    for _ in 0..500 {
                        instant("test", "mt_seq");
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let evs: Vec<Event> = drain_events()
            .into_iter()
            .filter(|e| e.name == "mt_seq")
            .collect();
        assert_eq!(evs.len(), 2000);
        for w in evs.windows(2) {
            assert!(w[0].seq < w[1].seq, "drain must be sequence-ordered");
        }
        // Distinct producer threads got distinct tids.
        let tids: std::collections::HashSet<u32> = evs.iter().map(|e| e.tid).collect();
        assert_eq!(tids.len(), 4);
    }

    #[test]
    fn full_ring_drops_instead_of_blocking() {
        let _s = serial();
        enable();
        let before = dropped_events();
        std::thread::spawn(|| {
            // Overfill one thread's ring without draining.
            for _ in 0..(RING_CAPACITY + 100) {
                instant("test", "overflow");
            }
        })
        .join()
        .unwrap();
        assert!(dropped_events() >= before + 100);
        let _ = drain_events();
    }

    #[test]
    fn events_are_stamped_with_the_current_trace() {
        let _s = serial();
        enable();
        let _ = drain_events();
        let id = crate::tracectx::TraceId::new(0xABCD_EF01).unwrap();
        {
            let _t = crate::tracectx::TraceScope::enter(Some(id));
            instant("test", "trace_stamped");
            let _g = span("test", "trace_stamped_span");
        }
        instant("test", "trace_unstamped");
        let evs = drain_events();
        let stamped = evs.iter().find(|e| e.name == "trace_stamped").unwrap();
        assert_eq!(stamped.trace, id.raw());
        let span_ev = evs.iter().find(|e| e.name == "trace_stamped_span").unwrap();
        assert_eq!(span_ev.trace, id.raw());
        let bare = evs.iter().find(|e| e.name == "trace_unstamped").unwrap();
        assert_eq!(bare.trace, 0);
    }

    #[test]
    fn collector_thread_gathers_across_drains() {
        let _s = serial();
        enable();
        let collector = Collector::start(std::time::Duration::from_millis(5));
        for _ in 0..50 {
            instant("test", "collector_gathers");
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        let evs = collector.stop();
        let n = evs.iter().filter(|e| e.name == "collector_gathers").count();
        assert_eq!(n, 50);
    }
}
