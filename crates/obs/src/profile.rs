//! `copred-profile`: always-on continuous profiling by stage sampling.
//!
//! Worker threads publish a fixed-depth stack of [`Stage`] frames into a
//! per-thread seqlock cell: a push or pop is a handful of atomic stores —
//! no locks, no allocation, no clock reads — so the instrumentation stays
//! in release hot paths permanently (the "always-on" in always-on
//! profiling). A dedicated sampler thread ([`Sampler`]) reads every
//! registered cell at a fixed interval and accumulates
//! wall-time-by-stage-path weights into a [`Profile`]; deterministic
//! drivers (AccelSim's virtual clock, tests) feed the same accumulator
//! via [`Profile::add_path`] with simulated-time weights instead.
//!
//! The cell is a seqlock because the stack spans two `AtomicU64` words
//! (16 frames × 8 bits): the version word is bumped odd before and even
//! after each update, and a reader that observes an odd or changed
//! version retries a few times then gives up, counting the tear as a
//! sampler drop rather than ever blocking the worker. All data words are
//! atomics, so a torn read yields a stale/mixed *value*, never UB.
//!
//! Exports: [`Profile::folded`] (flamegraph-compatible collapsed-stack
//! text), [`Profile::render_text`] (the `/debug/profile` payload), and
//! [`Profile::snapshot`] (fixed-order stage fractions for the
//! `copred_profile_*` Prometheus series — see `copred-service`).

use crate::threadreg::ThreadRegistry;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// A pipeline stage a thread can be in. Discriminants are the on-cell
/// frame encoding (one byte per frame, 0 = empty slot) and are stable:
/// the folded-stack labels derived from them are a contract (ROADMAP.md).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum Stage {
    /// Parsing a request frame off the wire.
    Decode = 1,
    /// Collision-outcome prediction (CHT reads, priming, COPU pipe).
    Predict = 2,
    /// Ordering CDQs (coordinate-aware scheduling, dispatch policy).
    Schedule = 3,
    /// Executing CDQs / running a check batch.
    Execute = 4,
    /// Writing a response frame.
    Encode = 5,
    /// Blocked waiting for work on a queue.
    QueueWait = 6,
    /// Software-executor (CPU path) work.
    SwExec = 7,
    /// Accelerator simulation (virtual-clock frames).
    Accel = 8,
    /// Persistence: WAL appends, snapshots, warm loads.
    Store = 9,
    /// Op-log record/replay work.
    Replay = 10,
}

impl Stage {
    /// Every stage, in fixed render order (a stability contract for the
    /// `copred_profile_stage_fraction` label set).
    pub const ALL: [Stage; 10] = [
        Stage::Decode,
        Stage::Predict,
        Stage::Schedule,
        Stage::Execute,
        Stage::Encode,
        Stage::QueueWait,
        Stage::SwExec,
        Stage::Accel,
        Stage::Store,
        Stage::Replay,
    ];

    /// The stage's folded-stack / metrics label.
    pub fn label(self) -> &'static str {
        match self {
            Stage::Decode => "decode",
            Stage::Predict => "predict",
            Stage::Schedule => "schedule",
            Stage::Execute => "execute",
            Stage::Encode => "encode",
            Stage::QueueWait => "queue_wait",
            Stage::SwExec => "swexec",
            Stage::Accel => "accel",
            Stage::Store => "store",
            Stage::Replay => "replay",
        }
    }

    fn from_u8(b: u8) -> Option<Stage> {
        Stage::ALL.into_iter().find(|s| *s as u8 == b)
    }
}

/// Maximum published stack depth; deeper frames are truncated (pushes
/// past the limit count depth but write nothing, so the matching pops
/// stay balanced).
pub const MAX_STAGE_DEPTH: usize = 16;

/// Bounded retries before a sampler read of one cell is abandoned as
/// torn (counted in [`Profile::drops`]).
const TORN_READ_RETRIES: usize = 8;

/// A sampled stage path: the cell's two stack words, frames packed one
/// byte each, innermost-first. Doubles as the (cheap, `Copy`) map key
/// for profile accumulation; decoding to labels happens only at export.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PathKey {
    w0: u64,
    w1: u64,
}

impl PathKey {
    /// The empty stack — the thread was between stages (idle).
    pub fn is_idle(&self) -> bool {
        self.w0 == 0 && self.w1 == 0
    }

    /// Encodes an explicit stage path (outermost first), truncating at
    /// [`MAX_STAGE_DEPTH`] like the live cell does.
    pub fn from_stages(stages: &[Stage]) -> PathKey {
        let mut key = PathKey::default();
        for (i, s) in stages.iter().take(MAX_STAGE_DEPTH).enumerate() {
            let byte = (*s as u64) << ((i % 8) * 8);
            if i < 8 {
                key.w0 |= byte;
            } else {
                key.w1 |= byte;
            }
        }
        key
    }

    /// Decodes the frames outermost-first. Stops at the first empty or
    /// unknown byte, so a stale torn read can shorten a path but never
    /// fabricate an unknown stage.
    pub fn frames(&self) -> Vec<Stage> {
        let mut out = Vec::new();
        for i in 0..MAX_STAGE_DEPTH {
            let w = if i < 8 { self.w0 } else { self.w1 };
            let byte = ((w >> ((i % 8) * 8)) & 0xFF) as u8;
            match Stage::from_u8(byte) {
                Some(s) => out.push(s),
                None => break,
            }
        }
        out
    }

    /// The innermost (currently executing) stage, if any.
    pub fn leaf(&self) -> Option<Stage> {
        self.frames().pop()
    }

    /// The folded-stack label: frames joined with `;`, outermost first
    /// (`"execute;predict"`); the empty stack renders as `"idle"`.
    pub fn label(&self) -> String {
        let frames = self.frames();
        if frames.is_empty() {
            return "idle".to_string();
        }
        frames
            .iter()
            .map(|s| s.label())
            .collect::<Vec<_>>()
            .join(";")
    }
}

/// One thread's seqlock-published stage stack.
///
/// Single writer (the owning thread, via its thread-local handle), any
/// number of readers (the sampler). `SeqCst` on the version/word stores
/// keeps the odd→data→even protocol ordered on every architecture; the
/// cost is a few fenced stores per push/pop, which the `ab=1` overhead
/// gate budgets.
#[derive(Debug)]
pub struct StageCell {
    /// Sampler-facing dense thread id.
    tid: AtomicU32,
    /// Seqlock version: odd while an update is in flight.
    version: AtomicU64,
    /// The packed stack (see [`PathKey`]).
    words: [AtomicU64; 2],
    /// Logical depth including truncated frames. Writer-private; atomic
    /// only for interior mutability without `unsafe`.
    depth: AtomicU32,
}

impl StageCell {
    fn new() -> Self {
        StageCell {
            tid: AtomicU32::new(0),
            version: AtomicU64::new(0),
            words: [AtomicU64::new(0), AtomicU64::new(0)],
            depth: AtomicU32::new(0),
        }
    }

    fn write_frame(&self, slot: usize, byte: u64) {
        let v = self.version.load(Ordering::Relaxed);
        self.version.store(v.wrapping_add(1), Ordering::SeqCst); // odd
        let word = &self.words[slot / 8];
        let shift = (slot % 8) * 8;
        let cleared = word.load(Ordering::Relaxed) & !(0xFFu64 << shift);
        word.store(cleared | (byte << shift), Ordering::SeqCst);
        self.version.store(v.wrapping_add(2), Ordering::SeqCst); // even
    }

    fn push(&self, stage: Stage) {
        let depth = self.depth.load(Ordering::Relaxed);
        self.depth.store(depth + 1, Ordering::Relaxed);
        let slot = depth as usize;
        if slot >= MAX_STAGE_DEPTH {
            return; // truncated: deeper frames are invisible to samples
        }
        self.write_frame(slot, stage as u64);
    }

    fn pop(&self) {
        let depth = self.depth.load(Ordering::Relaxed);
        debug_assert!(depth > 0, "stage pop without matching push");
        let depth = depth.saturating_sub(1);
        self.depth.store(depth, Ordering::Relaxed);
        let slot = depth as usize;
        if slot >= MAX_STAGE_DEPTH {
            return; // popping a truncated frame: nothing was written
        }
        self.write_frame(slot, 0);
    }

    /// Seqlock read with bounded retry; `None` means every attempt raced
    /// a writer (a torn read, counted as a sampler drop by callers).
    pub fn sample(&self) -> Option<PathKey> {
        for _ in 0..TORN_READ_RETRIES {
            let v1 = self.version.load(Ordering::SeqCst);
            if v1 & 1 == 1 {
                std::hint::spin_loop();
                continue;
            }
            let w0 = self.words[0].load(Ordering::SeqCst);
            let w1 = self.words[1].load(Ordering::SeqCst);
            let v2 = self.version.load(Ordering::SeqCst);
            if v1 == v2 {
                return Some(PathKey { w0, w1 });
            }
            std::hint::spin_loop();
        }
        None
    }
}

static PROFILE_REG: ThreadRegistry<StageCell> = ThreadRegistry::new();

struct ProfileHandle {
    cell: Arc<StageCell>,
}

thread_local! {
    static PROFILE_HANDLE: ProfileHandle = {
        let cell = Arc::new(StageCell::new());
        let tid = PROFILE_REG.alloc_tid();
        cell.tid.store(tid, Ordering::Relaxed);
        PROFILE_REG.insert(Arc::clone(&cell));
        ProfileHandle { cell }
    };
}

/// RAII stage frame: pushed on creation, popped on drop. Frames nest
/// (`execute` → `predict`) up to [`MAX_STAGE_DEPTH`]; deeper nesting
/// truncates instead of corrupting the stack.
#[derive(Debug)]
#[must_use = "a stage frame covers the scope it lives in"]
pub struct StageGuard {
    _not_send: std::marker::PhantomData<*const ()>,
}

impl Drop for StageGuard {
    fn drop(&mut self) {
        // try_with: a guard dropped during thread teardown (TLS already
        // destroyed) must not abort the process.
        let _ = PROFILE_HANDLE.try_with(|h| h.cell.pop());
    }
}

/// Enters `stage` on the calling thread's published stack for the
/// guard's lifetime. Always on — there is no enable gate; the cost is a
/// few atomic stores each way.
#[inline]
pub fn stage(stage: Stage) -> StageGuard {
    PROFILE_HANDLE.with(|h| h.cell.push(stage));
    StageGuard {
        _not_send: std::marker::PhantomData,
    }
}

/// Samples every registered thread's cell once into `profile` with the
/// given weight per thread, pruning cells of exited threads. This is one
/// sampler tick; deterministic drivers call it (or [`Profile::add_path`])
/// directly instead of running a [`Sampler`].
pub fn sample_once(profile: &mut Profile, weight: u64) {
    PROFILE_REG.sweep(|cell, live| {
        // A dead cell's stack is empty by construction (guards cannot
        // outlive their thread): skip it and let the sweep prune it.
        if !live {
            return;
        }
        match cell.sample() {
            Some(path) => profile.add(cell.tid.load(Ordering::Relaxed), path, weight),
            None => profile.drops += 1,
        }
    });
}

/// One [`Profile::thread_fractions`] row:
/// `(tid, total_weight, [(path_label, fraction)])`.
pub type ThreadFractions = (u32, u64, Vec<(String, f64)>);

/// Accumulated stage-path weights: samples for the wall-clock sampler,
/// cycles for virtual-clock drivers. Everything derived from it
/// (folded text, fractions, snapshots) is deterministic in its contents.
#[derive(Debug, Clone, Default)]
pub struct Profile {
    /// Weight per (thread, stage path), idle samples included.
    counts: BTreeMap<(u32, PathKey), u64>,
    /// Torn-read drops (seqlock retries exhausted).
    pub drops: u64,
    /// Sampler interval overruns (ticks delivered late by a full period).
    pub skews: u64,
}

impl Profile {
    /// Adds `weight` to one thread's stage path.
    pub fn add(&mut self, tid: u32, path: PathKey, weight: u64) {
        *self.counts.entry((tid, path)).or_insert(0) += weight;
    }

    /// Adds `weight` to an explicit path (outermost first) — the
    /// deterministic virtual-clock entry point.
    pub fn add_path(&mut self, tid: u32, stages: &[Stage], weight: u64) {
        self.add(tid, PathKey::from_stages(stages), weight);
    }

    /// Merges another profile into this one.
    pub fn merge(&mut self, other: &Profile) {
        for (&key, &w) in &other.counts {
            *self.counts.entry(key).or_insert(0) += w;
        }
        self.drops += other.drops;
        self.skews += other.skews;
    }

    /// Total accumulated weight, idle included.
    pub fn samples(&self) -> u64 {
        self.counts.values().sum()
    }

    /// Threads that contributed at least one sample.
    pub fn threads(&self) -> u64 {
        let tids: std::collections::BTreeSet<u32> =
            self.counts.keys().map(|(tid, _)| *tid).collect();
        tids.len() as u64
    }

    /// Per-thread `(tid, total_weight, [(path_label, fraction)])` rows,
    /// fractions of that thread's total (idle included in the total, so
    /// the non-idle fractions sum to ≤ 1.0 per thread).
    pub fn thread_fractions(&self) -> Vec<ThreadFractions> {
        let mut totals: BTreeMap<u32, u64> = BTreeMap::new();
        for (&(tid, _), &w) in &self.counts {
            *totals.entry(tid).or_insert(0) += w;
        }
        totals
            .into_iter()
            .map(|(tid, total)| {
                let mut rows: Vec<(String, f64)> = self
                    .counts
                    .iter()
                    .filter(|((t, _), _)| *t == tid)
                    .map(|((_, path), &w)| (path.label(), w as f64 / total.max(1) as f64))
                    .collect();
                rows.sort_by(|a, b| a.0.cmp(&b.0));
                (tid, total, rows)
            })
            .collect()
    }

    /// Weight fraction whose *leaf* frame is each stage, across all
    /// threads, in [`Stage::ALL`] order (0.0 for unseen stages). The
    /// denominator includes idle weight, so fractions sum to ≤ 1.0.
    pub fn stage_fractions(&self) -> Vec<(&'static str, f64)> {
        let total = self.samples().max(1) as f64;
        let mut by_stage: BTreeMap<Stage, u64> = BTreeMap::new();
        for (&(_, path), &w) in &self.counts {
            if let Some(leaf) = path.leaf() {
                *by_stage.entry(leaf).or_insert(0) += w;
            }
        }
        Stage::ALL
            .into_iter()
            .map(|s| {
                (
                    s.label(),
                    by_stage.get(&s).copied().unwrap_or(0) as f64 / total,
                )
            })
            .collect()
    }

    /// Fraction of total weight spent blocked on queues (leaf =
    /// [`Stage::QueueWait`]).
    pub fn queue_wait_fraction(&self) -> f64 {
        self.stage_fractions()
            .into_iter()
            .find(|(label, _)| *label == Stage::QueueWait.label())
            .map_or(0.0, |(_, f)| f)
    }

    /// Collapsed/folded-stack text, flamegraph-compatible: one
    /// `path;leaf weight` line per distinct non-idle path, aggregated
    /// across threads and sorted by label (deterministic for identical
    /// contents). Feed it straight to `flamegraph.pl` / `inferno`.
    pub fn folded(&self) -> String {
        let mut by_label: BTreeMap<String, u64> = BTreeMap::new();
        for (&(_, path), &w) in &self.counts {
            if path.is_idle() {
                continue;
            }
            *by_label.entry(path.label()).or_insert(0) += w;
        }
        let mut out = String::new();
        for (label, w) in by_label {
            out.push_str(&label);
            out.push(' ');
            out.push_str(&w.to_string());
            out.push('\n');
        }
        out
    }

    /// Fixed-order summary for metrics rendering; see [`ProfileSnapshot`].
    pub fn snapshot(&self) -> ProfileSnapshot {
        ProfileSnapshot {
            samples: self.samples(),
            drops: self.drops,
            skews: self.skews,
            threads: self.threads(),
            stage_fractions: self.stage_fractions(),
            queue_wait_fraction: self.queue_wait_fraction(),
        }
    }

    /// The `GET /debug/profile` payload: a stats header, per-thread
    /// stage fractions, then the folded-stack section.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "copred-profile\nsamples {}\nthreads {}\ndrops {}\nskews {}\n",
            self.samples(),
            self.threads(),
            self.drops,
            self.skews
        ));
        out.push_str("\nper-thread stage fractions (of sampled time, incl. idle):\n");
        for (tid, total, rows) in self.thread_fractions() {
            out.push_str(&format!("thread {tid} ({total} samples)\n"));
            for (label, frac) in rows {
                out.push_str(&format!("  {label:<24} {frac:.4}\n"));
            }
        }
        out.push_str("\nfolded stacks (flamegraph-compatible):\n");
        out.push_str(&self.folded());
        out
    }
}

/// Summary of a [`Profile`] in fixed render order, for the
/// `copred_profile_*` Prometheus series. With no sampler data every
/// fraction is 0.0 and every stage label still appears, so the metrics
/// page shape is independent of load (golden-file pinned).
#[derive(Debug, Clone)]
pub struct ProfileSnapshot {
    /// Total accumulated weight (idle included).
    pub samples: u64,
    /// Torn-read drops.
    pub drops: u64,
    /// Sampler interval overruns.
    pub skews: u64,
    /// Threads that contributed samples.
    pub threads: u64,
    /// Per-stage leaf-weight fraction in [`Stage::ALL`] order.
    pub stage_fractions: Vec<(&'static str, f64)>,
    /// Fraction of weight spent blocked on queues.
    pub queue_wait_fraction: f64,
}

impl Default for ProfileSnapshot {
    fn default() -> Self {
        ProfileSnapshot {
            samples: 0,
            drops: 0,
            skews: 0,
            threads: 0,
            stage_fractions: Stage::ALL.into_iter().map(|s| (s.label(), 0.0)).collect(),
            queue_wait_fraction: 0.0,
        }
    }
}

/// The dedicated wall-clock sampler thread. One tick per interval reads
/// every registered [`StageCell`] (weight 1 per thread per tick) into a
/// shared [`Profile`]; ticks that land more than a full interval late
/// are counted as skews instead of being made up, so a stalled host
/// never manufactures samples.
#[derive(Debug)]
pub struct Sampler {
    stop: Arc<AtomicBool>,
    shared: Arc<Mutex<Profile>>,
    handle: Option<std::thread::JoinHandle<()>>,
}

/// Default sampling interval: ~1ms, deliberately off any round number so
/// periodic workload phases don't alias with the sampler.
pub const DEFAULT_SAMPLE_INTERVAL: Duration = Duration::from_micros(997);

impl Sampler {
    /// Spawns the `copred-profiler` thread sampling every `interval`.
    pub fn start(interval: Duration) -> Sampler {
        let stop = Arc::new(AtomicBool::new(false));
        let shared = Arc::new(Mutex::new(Profile::default()));
        let handle = {
            let stop = Arc::clone(&stop);
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("copred-profiler".to_string())
                .spawn(move || {
                    let mut next = Instant::now() + interval;
                    while !stop.load(Ordering::Acquire) {
                        let now = Instant::now();
                        if now < next {
                            std::thread::sleep(next - now);
                        }
                        {
                            let mut profile = shared.lock().expect("profile lock");
                            sample_once(&mut profile, 1);
                            let after = Instant::now();
                            if after > next + interval {
                                // Late by a full period or more: count
                                // the skew and resynchronize.
                                profile.skews += 1;
                                next = after + interval;
                            } else {
                                next += interval;
                            }
                        }
                    }
                })
                .expect("spawn copred-profiler")
        };
        Sampler {
            stop,
            shared,
            handle: Some(handle),
        }
    }

    /// A copy of everything accumulated so far (the sampler keeps going).
    pub fn snapshot(&self) -> Profile {
        self.shared.lock().expect("profile lock").clone()
    }

    /// Stops the thread and returns the final profile.
    pub fn stop(mut self) -> Profile {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
        std::mem::take(&mut *self.shared.lock().expect("profile lock"))
    }
}

impl Drop for Sampler {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_key_round_trips_and_labels() {
        let key = PathKey::from_stages(&[Stage::Execute, Stage::Predict]);
        assert_eq!(key.frames(), vec![Stage::Execute, Stage::Predict]);
        assert_eq!(key.leaf(), Some(Stage::Predict));
        assert_eq!(key.label(), "execute;predict");
        assert!(PathKey::default().is_idle());
        assert_eq!(PathKey::default().label(), "idle");
        // Depth > 8 crosses the word boundary and still round-trips.
        let deep: Vec<Stage> = (0..12).map(|i| Stage::ALL[i % Stage::ALL.len()]).collect();
        assert_eq!(PathKey::from_stages(&deep).frames(), deep);
    }

    #[test]
    fn cell_pushes_pop_and_truncate_at_max_depth() {
        let cell = StageCell::new();
        // Push well past the limit: frames beyond MAX_STAGE_DEPTH are
        // truncated, and the sampled path holds exactly the cap.
        for _ in 0..(MAX_STAGE_DEPTH + 5) {
            cell.push(Stage::Execute);
        }
        let path = cell.sample().expect("uncontended sample");
        assert_eq!(path.frames().len(), MAX_STAGE_DEPTH);
        // Pops unwind cleanly through the truncated region back to idle.
        for _ in 0..(MAX_STAGE_DEPTH + 5) {
            cell.pop();
        }
        assert!(cell.sample().expect("uncontended sample").is_idle());
    }

    #[test]
    fn torn_reads_retry_then_give_up() {
        let cell = StageCell::new();
        cell.push(Stage::Decode);
        // Force a mid-write version (odd): every bounded retry must fail
        // and the sampler reports a torn read instead of spinning.
        cell.version.fetch_add(1, Ordering::SeqCst);
        assert_eq!(cell.sample(), None, "odd version must read as torn");
        // Restore to even: the read succeeds again.
        cell.version.fetch_add(1, Ordering::SeqCst);
        assert_eq!(
            cell.sample().expect("even version reads clean").leaf(),
            Some(Stage::Decode)
        );
    }

    #[test]
    fn sampler_sees_live_stage_stacks() {
        use std::sync::atomic::AtomicBool;
        static HOLD: AtomicBool = AtomicBool::new(true);
        let worker = std::thread::spawn(|| {
            let _outer = stage(Stage::Execute);
            let _inner = stage(Stage::Predict);
            while HOLD.load(Ordering::Acquire) {
                std::thread::sleep(Duration::from_micros(200));
            }
        });
        let sampler = Sampler::start(Duration::from_micros(200));
        std::thread::sleep(Duration::from_millis(20));
        HOLD.store(false, Ordering::Release);
        worker.join().unwrap();
        let profile = sampler.stop();
        assert!(profile.samples() > 0, "sampler must have ticked");
        let folded = profile.folded();
        assert!(
            folded.contains("execute;predict "),
            "expected the worker's stack in {folded:?}"
        );
        // Per-thread fractions sum to ≤ 1.0 (idle is in the denominator).
        for (tid, _total, rows) in profile.thread_fractions() {
            let sum: f64 = rows.iter().map(|(_, f)| f).sum();
            assert!(sum <= 1.0 + 1e-9, "thread {tid} fractions sum {sum}");
        }
    }

    #[test]
    fn sampler_survives_thread_churn() {
        // Threads register, push frames, and exit while the sampler runs
        // flat out — the register/retire race must neither panic nor
        // leak registry slots (the sweep prunes dead cells).
        let sampler = Sampler::start(Duration::from_micros(50));
        for wave in 0..8 {
            let threads: Vec<_> = (0..4)
                .map(|_| {
                    std::thread::spawn(move || {
                        for _ in 0..50 {
                            let _g = stage(Stage::SwExec);
                            if wave % 2 == 0 {
                                let _inner = stage(Stage::Predict);
                            }
                        }
                    })
                })
                .collect();
            for t in threads {
                t.join().unwrap();
            }
        }
        let profile = sampler.stop();
        // No invalid stages can appear: decoding stops at unknown bytes.
        for line in profile.folded().lines() {
            let path = line.rsplit_once(' ').expect("folded line shape").0;
            for frame in path.split(';') {
                assert!(
                    Stage::ALL.iter().any(|s| s.label() == frame),
                    "unknown frame {frame:?} in folded output"
                );
            }
        }
    }

    #[test]
    fn deterministic_folded_output_under_a_virtual_clock() {
        // Two identical virtual-clock accumulations produce byte-equal
        // folded text and snapshots — no wall clock anywhere.
        let build = || {
            let mut p = Profile::default();
            p.add_path(0, &[Stage::Accel, Stage::Execute], 700);
            p.add_path(0, &[Stage::Accel, Stage::QueueWait], 200);
            p.add_path(1, &[Stage::Accel, Stage::Predict], 80);
            p.add_path(1, &[], 20); // idle on simulated time
            p
        };
        let (a, b) = (build(), build());
        assert_eq!(a.folded(), b.folded());
        assert_eq!(a.render_text(), b.render_text());
        assert_eq!(
            a.folded(),
            "accel;execute 700\naccel;predict 80\naccel;queue_wait 200\n"
        );
        assert_eq!(a.samples(), 1000);
        let snap = a.snapshot();
        assert_eq!(snap.threads, 2);
        let frac: f64 = snap.stage_fractions.iter().map(|(_, f)| f).sum();
        assert!(frac <= 1.0 + 1e-9, "stage fractions sum {frac}");
        assert!((snap.queue_wait_fraction - 0.2).abs() < 1e-12);
    }

    #[test]
    fn merge_and_empty_snapshot_shapes() {
        let mut a = Profile::default();
        a.add_path(0, &[Stage::Store], 5);
        a.drops = 2;
        let mut b = Profile::default();
        b.add_path(0, &[Stage::Store], 3);
        b.skews = 1;
        a.merge(&b);
        assert_eq!(a.samples(), 8);
        assert_eq!((a.drops, a.skews), (2, 1));
        assert_eq!(a.folded(), "store 8\n");
        // The empty snapshot still names every stage (golden shape).
        let empty = ProfileSnapshot::default();
        assert_eq!(empty.stage_fractions.len(), Stage::ALL.len());
        assert!(empty.stage_fractions.iter().all(|(_, f)| *f == 0.0));
    }
}
