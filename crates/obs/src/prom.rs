//! Prometheus text-exposition (version 0.0.4) rendering and a small
//! parser for round-trip testing and scrape-based conformance checks.
//!
//! The renderer is deliberately dumb: callers declare a metric family
//! (`# HELP` / `# TYPE` header) then emit samples. The parser understands
//! exactly what the renderer produces plus arbitrary label order, which is
//! all the conformance scraper needs.

use std::fmt::Write as _;

/// Builder for a text-exposition page.
#[derive(Debug, Default)]
pub struct PromBuf {
    out: String,
}

impl PromBuf {
    /// An empty page.
    pub fn new() -> Self {
        PromBuf::default()
    }

    /// Declares a metric family. Call once per family, before its samples.
    pub fn family(&mut self, name: &str, kind: &str, help: &str) {
        let _ = writeln!(self.out, "# HELP {name} {help}");
        let _ = writeln!(self.out, "# TYPE {name} {kind}");
    }

    /// Emits an unlabeled sample.
    pub fn sample(&mut self, name: &str, value: f64) {
        let _ = writeln!(self.out, "{name} {}", fmt_value(value));
    }

    /// Emits a labeled sample. Label values are escaped per the format
    /// spec (backslash, quote, newline).
    pub fn sample_labeled(&mut self, name: &str, labels: &[(&str, &str)], value: f64) {
        let _ = write!(self.out, "{name}{{");
        for (i, (k, v)) in labels.iter().enumerate() {
            if i > 0 {
                self.out.push(',');
            }
            let _ = write!(self.out, "{k}=\"{}\"", escape_label(v));
        }
        let _ = writeln!(self.out, "}} {}", fmt_value(value));
    }

    /// Emits a labeled sample with an OpenMetrics-style exemplar suffix:
    /// `name{labels} value # {ex_labels} ex_value`. Classic Prometheus
    /// scrapers that split on the first `#`-free token pair still read
    /// the sample; OpenMetrics-aware ones pick up the exemplar.
    pub fn sample_labeled_exemplar(
        &mut self,
        name: &str,
        labels: &[(&str, &str)],
        value: f64,
        ex_labels: &[(&str, &str)],
        ex_value: f64,
    ) {
        let _ = write!(self.out, "{name}{{");
        for (i, (k, v)) in labels.iter().enumerate() {
            if i > 0 {
                self.out.push(',');
            }
            let _ = write!(self.out, "{k}=\"{}\"", escape_label(v));
        }
        let _ = write!(self.out, "}} {} # {{", fmt_value(value));
        for (i, (k, v)) in ex_labels.iter().enumerate() {
            if i > 0 {
                self.out.push(',');
            }
            let _ = write!(self.out, "{k}=\"{}\"", escape_label(v));
        }
        let _ = writeln!(self.out, "}} {}", fmt_value(ex_value));
    }

    /// The rendered page.
    pub fn finish(self) -> String {
        self.out
    }
}

fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Prometheus value formatting: integers without a fraction, specials as
/// `NaN`/`+Inf`/`-Inf`.
fn fmt_value(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v.is_infinite() {
        if v > 0.0 { "+Inf" } else { "-Inf" }.to_string()
    } else if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// One parsed sample line.
#[derive(Debug, Clone, PartialEq)]
pub struct PromSample {
    /// Metric name.
    pub name: String,
    /// Label pairs in appearance order.
    pub labels: Vec<(String, String)>,
    /// Sample value (`NaN` parses to a NaN).
    pub value: f64,
    /// Attached OpenMetrics exemplar (label pairs + value), if the line
    /// carried a `# {...} v` suffix.
    pub exemplar: Option<(Vec<(String, String)>, f64)>,
}

impl PromSample {
    /// The value of label `key`, if present.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// Parses a text-exposition page into samples, skipping comments and
/// blank lines.
///
/// # Errors
///
/// Returns a located reason for lines that are neither comments nor
/// well-formed samples.
pub fn parse_prometheus(text: &str) -> Result<Vec<PromSample>, String> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let ln = i + 1;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        out.push(parse_sample(line).map_err(|e| format!("line {ln}: {e}"))?);
    }
    Ok(out)
}

fn parse_sample(line: &str) -> Result<PromSample, String> {
    // Split off an OpenMetrics exemplar suffix (` # {labels} value`)
    // first: the value parse below grabs the last space-separated token,
    // which would otherwise be the exemplar's value. A ` # ` inside a
    // label value is disambiguated by requiring the suffix to actually
    // parse as an exemplar.
    let (line, exemplar) = match line.rsplit_once(" # ") {
        Some((main, suffix)) => match parse_exemplar(suffix) {
            Some(ex) => (main, Some(ex)),
            None => (line, None),
        },
        None => (line, None),
    };
    let (head, value) = line
        .rsplit_once(' ')
        .ok_or_else(|| format!("no value separator in {line:?}"))?;
    let value: f64 = match value {
        "NaN" => f64::NAN,
        "+Inf" => f64::INFINITY,
        "-Inf" => f64::NEG_INFINITY,
        v => v.parse().map_err(|_| format!("bad value {v:?}"))?,
    };
    let (name, labels) = match head.split_once('{') {
        None => (head.to_string(), Vec::new()),
        Some((name, rest)) => {
            let body = rest
                .strip_suffix('}')
                .ok_or_else(|| format!("unterminated label set in {head:?}"))?;
            (name.to_string(), parse_labels(body)?)
        }
    };
    if name.is_empty()
        || !name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
    {
        return Err(format!("bad metric name {name:?}"));
    }
    Ok(PromSample {
        name,
        labels,
        value,
        exemplar,
    })
}

/// Parses an exemplar suffix body: `{k="v",...} value`. Returns `None`
/// when the text is not a well-formed exemplar (caller falls back to
/// treating the whole line as a plain sample).
fn parse_exemplar(suffix: &str) -> Option<(Vec<(String, String)>, f64)> {
    let (labels, value) = suffix.rsplit_once(' ')?;
    let body = labels.strip_prefix('{')?.strip_suffix('}')?;
    let labels = parse_labels(body).ok()?;
    let value: f64 = match value {
        "NaN" => f64::NAN,
        "+Inf" => f64::INFINITY,
        "-Inf" => f64::NEG_INFINITY,
        v => v.parse().ok()?,
    };
    Some((labels, value))
}

fn parse_labels(body: &str) -> Result<Vec<(String, String)>, String> {
    let mut labels = Vec::new();
    let mut chars = body.chars().peekable();
    loop {
        // key
        let mut key = String::new();
        while let Some(&c) = chars.peek() {
            if c == '=' {
                break;
            }
            key.push(c);
            chars.next();
        }
        if chars.next() != Some('=') || chars.next() != Some('"') {
            return Err(format!("expected key=\"value\" in {body:?}"));
        }
        // quoted value with escapes
        let mut value = String::new();
        loop {
            match chars.next() {
                Some('\\') => match chars.next() {
                    Some('n') => value.push('\n'),
                    Some(c) => value.push(c),
                    None => return Err("dangling escape".to_string()),
                },
                Some('"') => break,
                Some(c) => value.push(c),
                None => return Err(format!("unterminated label value in {body:?}")),
            }
        }
        labels.push((key.trim().to_string(), value));
        match chars.next() {
            Some(',') => continue,
            None => return Ok(labels),
            Some(c) => return Err(format!("unexpected {c:?} after label")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_parse_roundtrip() {
        let mut b = PromBuf::new();
        b.family("copred_checks_total", "counter", "Motion checks completed.");
        b.sample("copred_checks_total", 1234.0);
        b.family("copred_session_precision", "gauge", "Predictor precision.");
        b.sample_labeled(
            "copred_session_precision",
            &[("session", "3"), ("mode", "coord")],
            0.9375,
        );
        b.sample_labeled(
            "copred_session_precision",
            &[("session", "4"), ("mode", "naive")],
            f64::NAN,
        );
        let page = b.finish();
        let samples = parse_prometheus(&page).expect("parse");
        assert_eq!(samples.len(), 3);
        assert_eq!(samples[0].name, "copred_checks_total");
        assert_eq!(samples[0].value, 1234.0);
        assert!(samples[0].labels.is_empty());
        assert_eq!(samples[1].label("session"), Some("3"));
        assert_eq!(samples[1].label("mode"), Some("coord"));
        assert_eq!(samples[1].value, 0.9375);
        assert!(samples[2].value.is_nan());
    }

    #[test]
    fn integer_values_have_no_fraction() {
        assert_eq!(fmt_value(17.0), "17");
        assert_eq!(fmt_value(0.0), "0");
        assert_eq!(fmt_value(0.5), "0.5");
        assert_eq!(fmt_value(f64::INFINITY), "+Inf");
        assert_eq!(fmt_value(1e18), "1000000000000000000");
    }

    #[test]
    fn label_values_escape_and_unescape() {
        let mut b = PromBuf::new();
        b.sample_labeled("m", &[("k", "a\"b\\c\nd")], 1.0);
        let page = b.finish();
        let s = parse_prometheus(&page).expect("parse");
        assert_eq!(s[0].label("k"), Some("a\"b\\c\nd"));
    }

    #[test]
    fn malformed_lines_are_rejected() {
        for bad in [
            "no_value",
            "bad name 1",
            "m{unterminated 1",
            "m{k=\"v\" 1",
            "m{k=v\"} 1",
            "{} 1",
        ] {
            assert!(parse_prometheus(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn exemplar_renders_and_round_trips() {
        let mut b = PromBuf::new();
        b.sample_labeled_exemplar(
            "copred_check_latency_ns",
            &[("quantile", "0.99")],
            1_000_000.0,
            &[("trace_id", "00000000000000000000000000c0ffee")],
            1_250_000.0,
        );
        let page = b.finish();
        assert!(
            page.contains("} 1000000 # {trace_id=\"00000000000000000000000000c0ffee\"} 1250000"),
            "{page}"
        );
        let s = parse_prometheus(&page).expect("parse");
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].value, 1_000_000.0);
        assert_eq!(s[0].label("quantile"), Some("0.99"));
        let (ex_labels, ex_value) = s[0].exemplar.as_ref().expect("exemplar");
        assert_eq!(ex_labels[0].0, "trace_id");
        assert_eq!(ex_labels[0].1, "00000000000000000000000000c0ffee");
        assert_eq!(*ex_value, 1_250_000.0);
    }

    #[test]
    fn plain_samples_have_no_exemplar_and_hash_in_label_survives() {
        let s = parse_prometheus("m{k=\"v\"} 1\n").expect("parse");
        assert!(s[0].exemplar.is_none());
        // A ` # ` inside a label value is not mistaken for an exemplar.
        let mut b = PromBuf::new();
        b.sample_labeled("m", &[("k", "a # b")], 2.0);
        let s = parse_prometheus(&b.finish()).expect("parse");
        assert_eq!(s[0].label("k"), Some("a # b"));
        assert!(s[0].exemplar.is_none());
    }

    #[test]
    fn comments_and_blanks_are_skipped() {
        let page = "# HELP x y\n# TYPE x counter\n\nx 1\n";
        let s = parse_prometheus(page).expect("parse");
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].name, "x");
    }
}
