//! Wire-level trace context: 128-bit causal trace ids and the per-thread
//! current-trace cell.
//!
//! A [`TraceId`] is a nonzero 128-bit identifier minted once per request
//! at the client (loadgen, replay engine) and carried across the wire as
//! an optional `trace <hex32>` token. Inside a process the id lives in a
//! thread-local cell ([`set_current`]/[`current`]/[`TraceScope`]); the
//! span recorder stamps the cell's value into every [`crate::Event`]
//! recorded while the scope is active, so one request's
//! decode→predict→schedule→execute→encode spans share one id even though
//! they run on different threads (the server forwards the id with the
//! job).
//!
//! The zero id is reserved as "no trace": it never round-trips through
//! the codec and the thread cell stores it to mean "unset". That keeps
//! the stamped field in `Event` a plain `u128` with a free sentinel.

use std::cell::Cell;

/// A nonzero 128-bit causal trace identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TraceId(u128);

impl TraceId {
    /// Wraps a raw id; `None` for the reserved zero value.
    pub fn new(raw: u128) -> Option<TraceId> {
        if raw == 0 {
            None
        } else {
            Some(TraceId(raw))
        }
    }

    /// The raw 128-bit value (never zero).
    pub fn raw(self) -> u128 {
        self.0
    }

    /// Renders the id as exactly 32 lowercase hex digits — the wire form
    /// of the `trace` token.
    pub fn to_hex(self) -> String {
        format!("{:032x}", self.0)
    }

    /// Parses the wire form: exactly 32 hex digits (either case), nonzero.
    pub fn from_hex(s: &str) -> Option<TraceId> {
        if s.len() != 32 || !s.bytes().all(|b| b.is_ascii_hexdigit()) {
            return None;
        }
        u128::from_str_radix(s, 16).ok().and_then(TraceId::new)
    }

    /// Derives a deterministic trace id from a seed and a counter, for
    /// seeded load generators and replay. Two independent splitmix64
    /// streams form the halves; the zero id is remapped so the result is
    /// always valid.
    pub fn derive(seed: u64, counter: u64) -> TraceId {
        let hi = splitmix64(seed ^ 0x9E37_79B9_7F4A_7C15, counter);
        let lo = splitmix64(seed ^ 0xD1B5_4A32_D192_ED03, counter);
        let raw = ((hi as u128) << 64) | lo as u128;
        TraceId(if raw == 0 { 1 } else { raw })
    }
}

impl std::fmt::Display for TraceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

fn splitmix64(seed: u64, counter: u64) -> u64 {
    let mut z = seed
        .wrapping_add(counter.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

thread_local! {
    /// The thread's current trace id (0 = none). Read by the span
    /// recorder on every recorded event.
    static CURRENT: Cell<u128> = const { Cell::new(0) };
}

/// The raw value of the thread's current trace cell (0 when unset). This
/// is the recorder's stamping read: a thread-local load, no branch on the
/// global enable flag.
#[inline]
pub(crate) fn current_raw() -> u128 {
    CURRENT.with(|c| c.get())
}

/// The thread's current trace id, if one is set.
pub fn current_trace() -> Option<TraceId> {
    TraceId::new(current_raw())
}

/// Sets (or with `None` clears) the thread's current trace id, returning
/// the previous value. Prefer [`TraceScope`] which restores on drop.
pub fn set_current_trace(id: Option<TraceId>) -> Option<TraceId> {
    let prev = CURRENT.with(|c| c.replace(id.map_or(0, TraceId::raw)));
    TraceId::new(prev)
}

/// RAII guard: installs a trace id (or explicitly none) for the guard's
/// lifetime and restores the previous value on drop, so scopes nest.
#[derive(Debug)]
#[must_use = "a trace scope covers the region it lives in"]
pub struct TraceScope {
    prev: u128,
}

impl TraceScope {
    /// Enters a scope with the given trace id (`None` masks any outer
    /// scope's id for the duration).
    pub fn enter(id: Option<TraceId>) -> TraceScope {
        let prev = CURRENT.with(|c| c.replace(id.map_or(0, TraceId::raw)));
        TraceScope { prev }
    }
}

impl Drop for TraceScope {
    fn drop(&mut self) {
        CURRENT.with(|c| c.set(self.prev));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_is_not_a_trace_id() {
        assert!(TraceId::new(0).is_none());
        assert!(TraceId::from_hex("00000000000000000000000000000000").is_none());
    }

    #[test]
    fn hex_codec_is_canonical() {
        let id = TraceId::new(0xDEAD_BEEF).unwrap();
        assert_eq!(id.to_hex(), "000000000000000000000000deadbeef");
        assert_eq!(TraceId::from_hex(&id.to_hex()), Some(id));
        // Either case parses, short or long or non-hex does not.
        assert_eq!(
            TraceId::from_hex("000000000000000000000000DEADBEEF"),
            Some(id)
        );
        assert!(TraceId::from_hex("deadbeef").is_none());
        assert!(TraceId::from_hex(&"f".repeat(33)).is_none());
        assert!(TraceId::from_hex("0000000000000000000000000000000g").is_none());
    }

    #[test]
    fn codec_round_trips_arbitrary_ids() {
        // Property: for arbitrary nonzero 128-bit values (driven by a
        // seeded generator covering both halves and edge patterns),
        // to_hex → from_hex is the identity.
        let mut edge = vec![1u128, u128::MAX, 1 << 64, (1 << 64) - 1, u128::MAX - 1];
        let mut s = 0x1234_5678u64;
        for i in 0..2000u64 {
            let hi = splitmix64(s, i);
            let lo = splitmix64(s ^ 0xABCD, i);
            s = s.wrapping_add(lo | 1);
            let raw = ((hi as u128) << 64) | lo as u128;
            if raw != 0 {
                edge.push(raw);
            }
        }
        for raw in edge {
            let id = TraceId::new(raw).unwrap();
            let hex = id.to_hex();
            assert_eq!(hex.len(), 32);
            assert!(hex.bytes().all(|b| b.is_ascii_hexdigit()));
            assert_eq!(TraceId::from_hex(&hex), Some(id), "raw {raw:#x}");
        }
    }

    #[test]
    fn derive_is_deterministic_and_spread() {
        let a = TraceId::derive(42, 0);
        let b = TraceId::derive(42, 0);
        let c = TraceId::derive(42, 1);
        let d = TraceId::derive(43, 0);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
    }

    #[test]
    fn scope_nests_and_restores() {
        assert_eq!(current_trace(), None);
        let outer = TraceId::new(7).unwrap();
        let inner = TraceId::new(9).unwrap();
        {
            let _o = TraceScope::enter(Some(outer));
            assert_eq!(current_trace(), Some(outer));
            {
                let _i = TraceScope::enter(Some(inner));
                assert_eq!(current_trace(), Some(inner));
                {
                    let _m = TraceScope::enter(None);
                    assert_eq!(current_trace(), None);
                }
                assert_eq!(current_trace(), Some(inner));
            }
            assert_eq!(current_trace(), Some(outer));
        }
        assert_eq!(current_trace(), None);
    }

    #[test]
    fn set_current_returns_previous() {
        let a = TraceId::new(11).unwrap();
        assert_eq!(set_current_trace(Some(a)), None);
        assert_eq!(set_current_trace(None), Some(a));
        assert_eq!(current_trace(), None);
    }
}
