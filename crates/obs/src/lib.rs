//! `copred-obs`: observability for the COORD reproduction.
//!
//! Three std-only pieces, designed to be cheap enough to leave compiled
//! into release hot paths:
//!
//! * [`span`]/[`instant`]/[`counter`] — a zero-alloc, lock-free recorder.
//!   Each thread writes into its own SPSC ring; a drain merges rings by
//!   global sequence number. When recording is disabled (the default) an
//!   instrumentation site costs one relaxed atomic load and a branch.
//! * [`chrome_trace_json`]/[`events_jsonl`] — exporters for the drained
//!   events. The Chrome form loads directly into `chrome://tracing` or
//!   Perfetto.
//! * [`PromBuf`]/[`parse_prometheus`]/[`MetricsServer`] — Prometheus
//!   text-exposition (0.0.4) rendering, a parser for round-trip and
//!   scrape-based conformance tests, and a plain `std::net` HTTP endpoint
//!   serving `GET /metrics`.
//! * [`stage`]/[`Sampler`]/[`Profile`] — `copred-profile`, the always-on
//!   continuous profiler: threads publish a fixed-depth stage stack into
//!   per-thread seqlock cells; a dedicated sampler (or a deterministic
//!   virtual-clock driver) accumulates wall-time-by-stage-path profiles
//!   exported as folded stacks, `/debug/profile` text, and
//!   `copred_profile_*` metrics.
//!
//! The crate deliberately knows nothing about collision prediction: the
//! service, software executor, and accelerator simulator each decide what
//! to record and how to name it.

#![forbid(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]

mod bench;
mod chrome;
mod flight;
mod http;
mod profile;
mod prom;
mod span;
mod threadreg;
mod tracectx;
mod vclock;

pub use bench::{
    check_against_baseline, BenchRecord, BenchReport, BenchWriter, Better, CheckConfig, MetricKind,
    Regression, BENCH_SCHEMA_VERSION,
};
pub use chrome::{chrome_trace_json, chrome_trace_json_with_profile, events_jsonl};
pub use flight::{
    flight_edge, flight_json, flight_op, flight_snapshot, install_flight_panic_hook, FlightEntry,
    FlightKind, FLIGHT_CAPACITY,
};
pub use http::{http_get, MetricsServer, RenderFn};
pub use profile::{
    sample_once, stage, PathKey, Profile, ProfileSnapshot, Sampler, Stage, StageCell, StageGuard,
    ThreadFractions, DEFAULT_SAMPLE_INTERVAL, MAX_STAGE_DEPTH,
};
pub use prom::{parse_prometheus, PromBuf, PromSample};
pub use span::{
    counter, disable, drain_events, dropped_events, enable, enabled, instant, span, span_at,
    timestamp_ns, Collector, Event, EventKind, SpanGuard,
};
pub use tracectx::{current_trace, set_current_trace, TraceId, TraceScope};
pub use vclock::{TrackId, VEvent, VEventKind, VirtualTrace};
