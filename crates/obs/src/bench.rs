//! The machine-readable benchmark trajectory: a versioned, hand-rolled
//! (std-only) JSON schema for `BENCH_<label>.json` files, a streaming
//! writer with the op-log's flush-on-drop contract, and a noise-aware
//! baseline checker that turns a committed `BENCH_*.json` into a CI
//! perf-regression gate.
//!
//! One file is one [`BenchReport`]: a header (schema version, label, git
//! SHA, seed, scale) plus flat [`BenchRecord`] rows
//! (`{suite, metric, value, unit, reps, mean, stddev, kind, better}`).
//! Deterministic metrics (CDQ counts, simulated cycles, modeled energy)
//! carry `stddev = 0` and are gated tightly; timing metrics (wall-clock
//! latency, throughput) carry their cross-repetition spread and are gated
//! with generous thresholds so the gate catches gross regressions without
//! flaking on scheduler noise.

use std::fmt::Write as _;
use std::io;
use std::path::{Path, PathBuf};

/// Version of the `BENCH_*.json` schema. Bump on any breaking change to
/// the field set and note it in ROADMAP.md (the schema is a stability
/// contract, like the `/metrics` page).
pub const BENCH_SCHEMA_VERSION: u64 = 1;

/// Whether a metric's value is reproducible bit-for-bit under a fixed
/// seed, or a wall-clock measurement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Same seed ⇒ same value (counts, simulated cycles, modeled energy).
    Deterministic,
    /// Wall-clock measurement; varies run to run and machine to machine.
    Timing,
}

impl MetricKind {
    fn as_str(self) -> &'static str {
        match self {
            MetricKind::Deterministic => "deterministic",
            MetricKind::Timing => "timing",
        }
    }

    fn parse(s: &str) -> Result<Self, String> {
        match s {
            "deterministic" => Ok(MetricKind::Deterministic),
            "timing" => Ok(MetricKind::Timing),
            other => Err(format!("bad metric kind {other:?}")),
        }
    }
}

/// Which direction of change is an improvement for a metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Better {
    /// Larger is better (throughput, reduction fractions, perf/watt).
    Higher,
    /// Smaller is better (latency, cycles, energy).
    Lower,
}

impl Better {
    fn as_str(self) -> &'static str {
        match self {
            Better::Higher => "higher",
            Better::Lower => "lower",
        }
    }

    fn parse(s: &str) -> Result<Self, String> {
        match s {
            "higher" => Ok(Better::Higher),
            "lower" => Ok(Better::Lower),
            other => Err(format!("bad better direction {other:?}")),
        }
    }
}

/// One benchmark measurement row.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRecord {
    /// Suite the metric belongs to (`schedule`, `swexec`, `service`,
    /// `accel`, `loadgen`, ...).
    pub suite: String,
    /// Metric name, unique within the suite.
    pub metric: String,
    /// The reported value (median across repetitions for timing metrics).
    pub value: f64,
    /// Unit string (`cdqs`, `cycles`, `pj`, `ns`, `checks_per_s`,
    /// `fraction`, `ratio`, ...).
    pub unit: String,
    /// Repetitions that produced `mean`/`stddev`.
    pub reps: u64,
    /// Mean across repetitions.
    pub mean: f64,
    /// Population standard deviation across repetitions.
    pub stddev: f64,
    /// Deterministic or timing.
    pub kind: MetricKind,
    /// Improvement direction, used by the baseline checker.
    pub better: Better,
}

impl BenchRecord {
    /// A seeded, reproducible metric: one repetition, zero spread.
    pub fn deterministic(
        suite: &str,
        metric: &str,
        value: f64,
        unit: &str,
        better: Better,
    ) -> Self {
        BenchRecord {
            suite: suite.to_string(),
            metric: metric.to_string(),
            value,
            unit: unit.to_string(),
            reps: 1,
            mean: value,
            stddev: 0.0,
            kind: MetricKind::Deterministic,
            better,
        }
    }

    /// A wall-clock metric summarized over repetitions: the reported value
    /// is the median (robust to a single noisy rep), `mean`/`stddev` keep
    /// the full spread.
    ///
    /// # Panics
    ///
    /// Panics when `samples` is empty.
    pub fn timing(suite: &str, metric: &str, samples: &[f64], unit: &str, better: Better) -> Self {
        assert!(!samples.is_empty(), "timing metric needs >= 1 sample");
        let mut sorted = samples.to_vec();
        sorted.sort_by(f64::total_cmp);
        let median = sorted[sorted.len() / 2];
        let mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
        let var = sorted.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / sorted.len() as f64;
        BenchRecord {
            suite: suite.to_string(),
            metric: metric.to_string(),
            value: median,
            unit: unit.to_string(),
            reps: sorted.len() as u64,
            mean,
            stddev: var.sqrt(),
            kind: MetricKind::Timing,
            better,
        }
    }
}

/// A full `BENCH_<label>.json` document.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// Schema version ([`BENCH_SCHEMA_VERSION`] when written by this code).
    pub schema_version: u64,
    /// Run label (`quick`, `full`, a PR tag, ...).
    pub label: String,
    /// Git commit the run was taken at (`unknown` outside a checkout).
    pub git_sha: String,
    /// Workload seed.
    pub seed: u64,
    /// Workload scale name (`quick`/`full`/`tiny`).
    pub scale: String,
    /// The measurement rows.
    pub records: Vec<BenchRecord>,
}

impl BenchReport {
    /// An empty report with the given header.
    pub fn new(label: &str, git_sha: &str, seed: u64, scale: &str) -> Self {
        BenchReport {
            schema_version: BENCH_SCHEMA_VERSION,
            label: label.to_string(),
            git_sha: git_sha.to_string(),
            seed,
            scale: scale.to_string(),
            records: Vec::new(),
        }
    }

    /// Looks up a record by suite and metric name.
    pub fn record(&self, suite: &str, metric: &str) -> Option<&BenchRecord> {
        self.records
            .iter()
            .find(|r| r.suite == suite && r.metric == metric)
    }

    /// Renders the report as pretty-printed JSON. Field order is fixed, so
    /// same-seed runs of deterministic suites produce byte-identical
    /// documents (modulo timing values and the git SHA).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256 + self.records.len() * 192);
        out.push_str("{\n");
        let _ = writeln!(out, "  \"schema_version\": {},", self.schema_version);
        let _ = writeln!(out, "  \"label\": \"{}\",", escape_json(&self.label));
        let _ = writeln!(out, "  \"git_sha\": \"{}\",", escape_json(&self.git_sha));
        let _ = writeln!(out, "  \"seed\": {},", self.seed);
        let _ = writeln!(out, "  \"scale\": \"{}\",", escape_json(&self.scale));
        out.push_str("  \"records\": [\n");
        for (i, r) in self.records.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"suite\": \"{}\", \"metric\": \"{}\", \"value\": {}, \"unit\": \"{}\", \
                 \"reps\": {}, \"mean\": {}, \"stddev\": {}, \"kind\": \"{}\", \"better\": \"{}\"}}",
                escape_json(&r.suite),
                escape_json(&r.metric),
                fmt_num(r.value),
                escape_json(&r.unit),
                r.reps,
                fmt_num(r.mean),
                fmt_num(r.stddev),
                r.kind.as_str(),
                r.better.as_str(),
            );
            out.push_str(if i + 1 < self.records.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Parses a report from JSON text (anything `to_json` emits, plus
    /// arbitrary whitespace and key order).
    ///
    /// # Errors
    ///
    /// Malformed JSON, missing fields, wrong field types, or an unknown
    /// `kind`/`better` value.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let root = Json::parse(text)?;
        let obj = root.as_obj("report")?;
        let schema_version = get_num(obj, "schema_version")? as u64;
        if schema_version > BENCH_SCHEMA_VERSION {
            return Err(format!(
                "bench schema version {schema_version} is newer than supported {BENCH_SCHEMA_VERSION}"
            ));
        }
        let mut records = Vec::new();
        for (i, item) in get(obj, "records")?.as_arr("records")?.iter().enumerate() {
            let r = item.as_obj(&format!("records[{i}]"))?;
            records.push(BenchRecord {
                suite: get_str(r, "suite")?,
                metric: get_str(r, "metric")?,
                value: get_num(r, "value")?,
                unit: get_str(r, "unit")?,
                reps: get_num(r, "reps")? as u64,
                mean: get_num(r, "mean")?,
                stddev: get_num(r, "stddev")?,
                kind: MetricKind::parse(&get_str(r, "kind")?)?,
                better: Better::parse(&get_str(r, "better")?)?,
            });
        }
        Ok(BenchReport {
            schema_version,
            label: get_str(obj, "label")?,
            git_sha: get_str(obj, "git_sha")?,
            seed: get_num(obj, "seed")? as u64,
            scale: get_str(obj, "scale")?,
            records,
        })
    }
}

/// Streaming report writer with the op-log's flush-on-drop contract: push
/// records as suites finish; the file is written on [`BenchWriter::finish`]
/// or, failing that, on drop — an interrupted run still leaves the
/// completed suites on disk as a parseable document.
#[derive(Debug)]
pub struct BenchWriter {
    path: PathBuf,
    report: BenchReport,
    written: bool,
}

impl BenchWriter {
    /// A writer targeting `path` with the given report header.
    pub fn new(path: &Path, report: BenchReport) -> Self {
        BenchWriter {
            path: path.to_path_buf(),
            report,
            written: false,
        }
    }

    /// Appends one record.
    pub fn push(&mut self, record: BenchRecord) {
        self.report.records.push(record);
        self.written = false;
    }

    /// Records pushed so far.
    pub fn records(&self) -> usize {
        self.report.records.len()
    }

    /// The report as accumulated so far.
    pub fn report(&self) -> &BenchReport {
        &self.report
    }

    /// Writes the document to disk.
    ///
    /// # Errors
    ///
    /// Any filesystem write failure.
    pub fn finish(&mut self) -> io::Result<()> {
        std::fs::write(&self.path, self.report.to_json())?;
        self.written = true;
        Ok(())
    }
}

impl Drop for BenchWriter {
    fn drop(&mut self) {
        if !self.written {
            let _ = std::fs::write(&self.path, self.report.to_json());
        }
    }
}

/// Thresholds for the baseline gate, relative to the baseline value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CheckConfig {
    /// Allowed relative regression for deterministic metrics. Seeded
    /// counts are reproducible, but libm differences across platforms can
    /// nudge workload generation, so the default is the ISSUE's generous
    /// 25% rather than exact equality.
    pub max_rel_deterministic: f64,
    /// Allowed relative regression for timing metrics. Wall-clock numbers
    /// move with the host, so the default only catches gross (4×)
    /// regressions.
    pub max_rel_timing: f64,
}

impl Default for CheckConfig {
    fn default() -> Self {
        CheckConfig {
            max_rel_deterministic: 0.25,
            max_rel_timing: 4.0,
        }
    }
}

/// One detected regression (or coverage loss) against the baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct Regression {
    /// Suite of the offending metric.
    pub suite: String,
    /// Metric name.
    pub metric: String,
    /// Human-readable reason including values and the threshold.
    pub reason: String,
}

impl std::fmt::Display for Regression {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}: {}", self.suite, self.metric, self.reason)
    }
}

/// Diffs `current` against `baseline` and returns every regression:
/// a metric moving in its bad direction by more than the kind's relative
/// threshold, or a baseline metric missing from the current run (coverage
/// loss). Improvements and new metrics pass.
pub fn check_against_baseline(
    current: &BenchReport,
    baseline: &BenchReport,
    cfg: &CheckConfig,
) -> Vec<Regression> {
    let mut out = Vec::new();
    for base in &baseline.records {
        let Some(cur) = current.record(&base.suite, &base.metric) else {
            out.push(Regression {
                suite: base.suite.clone(),
                metric: base.metric.clone(),
                reason: "metric present in baseline but missing from this run".to_string(),
            });
            continue;
        };
        let threshold = match base.kind {
            MetricKind::Deterministic => cfg.max_rel_deterministic,
            MetricKind::Timing => cfg.max_rel_timing,
        };
        // Relative change in the *bad* direction, normalized by the
        // baseline magnitude (a zero baseline gates on absolute change).
        let scale = base.value.abs().max(f64::MIN_POSITIVE);
        let worsening = match base.better {
            Better::Higher => (base.value - cur.value) / scale,
            Better::Lower => (cur.value - base.value) / scale,
        };
        if !worsening.is_finite() || worsening > threshold {
            out.push(Regression {
                suite: base.suite.clone(),
                metric: base.metric.clone(),
                reason: format!(
                    "regressed: baseline {} -> current {} ({} is better; {:+.1}% worse, \
                     threshold {:.1}%)",
                    fmt_num(base.value),
                    fmt_num(cur.value),
                    base.better.as_str(),
                    worsening * 100.0,
                    threshold * 100.0
                ),
            });
        }
    }
    out
}

/// JSON number formatting: finite shortest-round-trip floats; non-finite
/// values (never produced by a sane run) degrade to `null`-safe 0.
fn fmt_num(v: f64) -> String {
    if !v.is_finite() {
        return "0".to_string();
    }
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

// ---------------------------------------------------------------------
// Minimal JSON value parser — exactly what the bench schema needs, plus
// tolerance for arbitrary whitespace, key order, and nesting, so a
// hand-edited baseline still parses.

#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            chars: text.chars().collect(),
            pos: 0,
        };
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.chars.len() {
            return Err(format!("trailing content at offset {}", p.pos));
        }
        Ok(v)
    }

    fn as_obj(&self, what: &str) -> Result<&[(String, Json)], String> {
        match self {
            Json::Obj(o) => Ok(o),
            other => Err(format!("{what}: expected object, got {other:?}")),
        }
    }

    fn as_arr(&self, what: &str) -> Result<&[Json], String> {
        match self {
            Json::Arr(a) => Ok(a),
            other => Err(format!("{what}: expected array, got {other:?}")),
        }
    }
}

fn get<'a>(obj: &'a [(String, Json)], key: &str) -> Result<&'a Json, String> {
    obj.iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| format!("missing field {key:?}"))
}

fn get_str(obj: &[(String, Json)], key: &str) -> Result<String, String> {
    match get(obj, key)? {
        Json::Str(s) => Ok(s.clone()),
        other => Err(format!("field {key:?}: expected string, got {other:?}")),
    }
}

fn get_num(obj: &[(String, Json)], key: &str) -> Result<f64, String> {
    match get(obj, key)? {
        Json::Num(n) => Ok(*n),
        other => Err(format!("field {key:?}: expected number, got {other:?}")),
    }
}

struct Parser {
    chars: Vec<char>,
    pos: usize,
}

impl Parser {
    fn skip_ws(&mut self) {
        while self
            .chars
            .get(self.pos)
            .is_some_and(|c| c.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn expect(&mut self, c: char) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {c:?} at offset {}, got {:?}",
                self.pos,
                self.peek()
            ))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some('{') => self.object(),
            Some('[') => self.array(),
            Some('"') => Ok(Json::Str(self.string()?)),
            Some('t') => self.literal("true", Json::Bool(true)),
            Some('f') => self.literal("false", Json::Bool(false)),
            Some('n') => self.literal("null", Json::Null),
            Some(c) if c == '-' || c.is_ascii_digit() => self.number(),
            other => Err(format!("unexpected {other:?} at offset {}", self.pos)),
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, String> {
        for c in lit.chars() {
            self.expect(c)?;
        }
        Ok(v)
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect('{')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some('}') {
            self.pos += 1;
            return Ok(Json::Obj(out));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(':')?;
            out.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(',') => self.pos += 1,
                Some('}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(out));
                }
                other => return Err(format!("expected ',' or '}}', got {other:?}")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect('[')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(']') {
            self.pos += 1;
            return Ok(Json::Arr(out));
        }
        loop {
            out.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(',') => self.pos += 1,
                Some(']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(out));
                }
                other => return Err(format!("expected ',' or ']', got {other:?}")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect('"')?;
        let mut out = String::new();
        loop {
            match self.chars.get(self.pos).copied() {
                Some('"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some('\\') => {
                    self.pos += 1;
                    match self.chars.get(self.pos).copied() {
                        Some('n') => out.push('\n'),
                        Some('r') => out.push('\r'),
                        Some('t') => out.push('\t'),
                        Some('u') => {
                            let hex: String =
                                self.chars.iter().skip(self.pos + 1).take(4).collect();
                            let code = u32::from_str_radix(&hex, 16)
                                .map_err(|_| format!("bad \\u escape {hex:?}"))?;
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        Some(c) => out.push(c),
                        None => return Err("dangling escape".to_string()),
                    }
                    self.pos += 1;
                }
                Some(c) => {
                    out.push(c);
                    self.pos += 1;
                }
                None => return Err("unterminated string".to_string()),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while self
            .peek()
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, '-' | '+' | '.' | 'e' | 'E'))
        {
            self.pos += 1;
        }
        let text: String = self.chars[start..self.pos].iter().collect();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number {text:?}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> BenchReport {
        let mut r = BenchReport::new("quick", "abc1234", 42, "quick");
        r.records.push(BenchRecord::deterministic(
            "schedule",
            "cdqs_coord",
            1234.0,
            "cdqs",
            Better::Lower,
        ));
        r.records.push(BenchRecord::timing(
            "service",
            "loopback_p99_ns",
            &[900_000.0, 1_000_000.0, 1_100_000.0],
            "ns",
            Better::Lower,
        ));
        r
    }

    #[test]
    fn json_roundtrip_preserves_report() {
        let r = sample_report();
        let text = r.to_json();
        let parsed = BenchReport::from_json(&text).expect("parse");
        assert_eq!(parsed, r);
        // Rendering is stable: render → parse → render is a fixpoint.
        assert_eq!(parsed.to_json(), text);
    }

    #[test]
    fn timing_summary_is_median_mean_stddev() {
        let r = BenchRecord::timing("s", "m", &[3.0, 1.0, 2.0], "ns", Better::Lower);
        assert_eq!(r.value, 2.0);
        assert_eq!(r.mean, 2.0);
        assert!((r.stddev - (2.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert_eq!(r.reps, 3);
        assert_eq!(r.kind, MetricKind::Timing);
    }

    #[test]
    fn parser_tolerates_whitespace_and_key_order() {
        let text = r#"
        { "records": [ {"metric":"m","suite":"s","value":2,"unit":"x",
            "reps":1,"mean":2,"stddev":0,"better":"lower","kind":"deterministic"} ],
          "seed": 7, "scale": "tiny", "git_sha": "deadbee", "label": "t",
          "schema_version": 1 }
        "#;
        let r = BenchReport::from_json(text).expect("parse");
        assert_eq!(r.seed, 7);
        assert_eq!(r.records.len(), 1);
        assert_eq!(r.record("s", "m").unwrap().value, 2.0);
    }

    #[test]
    fn malformed_documents_are_rejected() {
        for bad in [
            "",
            "{",
            "[1,2",
            "{\"schema_version\": 1}",
            "{\"schema_version\": 99, \"label\": \"x\", \"git_sha\": \"y\", \
             \"seed\": 1, \"scale\": \"q\", \"records\": []}",
            "{\"x\": 1} trailing",
        ] {
            assert!(BenchReport::from_json(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn checker_flags_regressions_by_direction() {
        let base = sample_report();
        let cfg = CheckConfig::default();
        // Identical run: clean.
        assert!(check_against_baseline(&base, &base, &cfg).is_empty());

        // Deterministic lower-is-better metric grows 2×: regression.
        let mut worse = base.clone();
        worse.records[0].value = 2468.0;
        let regs = check_against_baseline(&worse, &base, &cfg);
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].metric, "cdqs_coord");
        assert!(regs[0].reason.contains("regressed"));

        // Improvement in the good direction passes.
        let mut better = base.clone();
        better.records[0].value = 600.0;
        assert!(check_against_baseline(&better, &base, &cfg).is_empty());

        // Timing metric within its generous threshold passes...
        let mut noisy = base.clone();
        noisy.records[1].value *= 2.0;
        assert!(check_against_baseline(&noisy, &base, &cfg).is_empty());
        // ...but a gross (>4×) timing regression fails.
        let mut slow = base.clone();
        slow.records[1].value *= 6.0;
        assert_eq!(check_against_baseline(&slow, &base, &cfg).len(), 1);
    }

    #[test]
    fn checker_flags_missing_metrics() {
        let base = sample_report();
        let mut current = base.clone();
        current.records.remove(0);
        let regs = check_against_baseline(&current, &base, &CheckConfig::default());
        assert_eq!(regs.len(), 1);
        assert!(regs[0].reason.contains("missing"));
        // Extra metrics in the current run are not an error.
        let mut extended = base.clone();
        extended.records.push(BenchRecord::deterministic(
            "new",
            "metric",
            1.0,
            "x",
            Better::Higher,
        ));
        assert!(check_against_baseline(&extended, &base, &CheckConfig::default()).is_empty());
    }

    #[test]
    fn writer_flushes_on_drop() {
        let dir = std::env::temp_dir().join(format!("copred_bench_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let path = dir.join("BENCH_droptest.json");
        {
            let mut w = BenchWriter::new(&path, BenchReport::new("t", "sha", 1, "tiny"));
            w.push(BenchRecord::deterministic(
                "s",
                "m",
                5.0,
                "x",
                Better::Lower,
            ));
            assert_eq!(w.records(), 1);
            // No finish(): drop must still write a parseable document.
        }
        let text = std::fs::read_to_string(&path).expect("file written on drop");
        let r = BenchReport::from_json(&text).expect("parse");
        assert_eq!(r.record("s", "m").unwrap().value, 5.0);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
