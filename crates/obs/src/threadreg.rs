//! One thread-registration helper shared by every per-thread
//! observability registry in this crate: the span recorder's SPSC rings
//! ([`crate::span`]), the flight recorder's rings ([`crate::flight`]),
//! and the profiler's stage cells ([`crate::profile`]).
//!
//! Each feature used to carry its own copy of the same pattern — a
//! `Mutex<Vec<Arc<T>>>` plus a dense-tid counter, with dead threads
//! detected by `Arc::strong_count == 1` (the owning thread's
//! thread-local handle dropped, so the registry holds the only
//! reference) and pruned on the next sweep. Centralizing it here gives
//! dead-thread parking/pruning a single tested code path.
//!
//! Holding the registry lock also serializes consumers: whoever is
//! inside [`ThreadRegistry::sweep`] or [`ThreadRegistry::for_each`] is
//! the unique consumer of consumer-side state (e.g. SPSC ring tails),
//! which the span recorder's safety argument relies on.

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, Mutex};

/// A process-global registry of per-thread slots of type `T`.
pub(crate) struct ThreadRegistry<T> {
    slots: Mutex<Vec<Arc<T>>>,
    next_tid: AtomicU32,
}

impl<T> ThreadRegistry<T> {
    /// An empty registry, usable in `static` position.
    pub(crate) const fn new() -> Self {
        ThreadRegistry {
            slots: Mutex::new(Vec::new()),
            next_tid: AtomicU32::new(0),
        }
    }

    /// Allocates the next dense thread id. Call before [`Self::insert`]
    /// so the slot can carry its id prior to becoming visible to sweeps.
    pub(crate) fn alloc_tid(&self) -> u32 {
        self.next_tid.fetch_add(1, Ordering::Relaxed)
    }

    /// Publishes a thread's slot to the registry.
    pub(crate) fn insert(&self, slot: Arc<T>) {
        self.slots.lock().expect("thread registry lock").push(slot);
    }

    /// Visits every registered slot (live and dead alike) under the
    /// registry lock.
    pub(crate) fn for_each(&self, mut f: impl FnMut(&Arc<T>)) {
        for slot in self.slots.lock().expect("thread registry lock").iter() {
            f(slot);
        }
    }

    /// Visits every slot and prunes the dead ones in a single pass.
    /// `visit(slot, live)` runs once per slot: `live` is false when the
    /// owning thread exited — the registry holds the only remaining
    /// reference — in which case the slot is seen for the last time
    /// (retired) and then dropped, so short-lived threads never grow the
    /// registry forever.
    pub(crate) fn sweep(&self, mut visit: impl FnMut(&Arc<T>, bool)) {
        self.slots
            .lock()
            .expect("thread registry lock")
            .retain(|slot| {
                let live = Arc::strong_count(slot) > 1;
                visit(slot, live);
                live
            });
    }

    /// Registered slots not yet pruned (dead-but-unswept included).
    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.slots.lock().expect("thread registry lock").len()
    }
}

impl<T> std::fmt::Debug for ThreadRegistry<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadRegistry")
            .field("next_tid", &self.next_tid.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tids_are_dense_and_unique() {
        let reg: ThreadRegistry<u32> = ThreadRegistry::new();
        let a = reg.alloc_tid();
        let b = reg.alloc_tid();
        let c = reg.alloc_tid();
        assert_eq!((b - a, c - b), (1, 1), "dense ids");
    }

    #[test]
    fn sweep_retires_dead_slots_exactly_once() {
        let reg: ThreadRegistry<u32> = ThreadRegistry::new();
        let live_slot = Arc::new(7u32); // caller keeps a handle: live
        reg.insert(Arc::clone(&live_slot));
        reg.insert(Arc::new(99u32)); // registry-only reference: dead
        assert_eq!(reg.len(), 2);

        let (mut lives, mut retired) = (Vec::new(), Vec::new());
        reg.sweep(|s, live| {
            if live {
                lives.push(**s);
            } else {
                retired.push(**s);
            }
        });
        assert_eq!(lives, vec![7]);
        assert_eq!(retired, vec![99]);
        assert_eq!(reg.len(), 1, "dead slot pruned");

        // A second sweep must not retire the same slot again.
        retired.clear();
        reg.sweep(|s, live| {
            if !live {
                retired.push(**s);
            }
        });
        assert!(retired.is_empty(), "retire callback is once-ever");
    }

    #[test]
    fn churn_with_concurrent_sweeps_loses_no_live_slot() {
        // Threads register and exit while a sweeper prunes concurrently —
        // the register/retire race from the satellite checklist. Every
        // slot must be retired exactly once and none double-counted.
        use std::sync::atomic::AtomicU64;
        static REG: ThreadRegistry<u64> = ThreadRegistry::new();
        static RETIRED_SUM: AtomicU64 = AtomicU64::new(0);

        let workers: Vec<_> = (1..=32u64)
            .map(|i| {
                std::thread::spawn(move || {
                    let tid = REG.alloc_tid();
                    REG.insert(Arc::new(i));
                    // The slot dies when this thread's Arc drops here.
                    tid
                })
            })
            .collect();
        let sweeper = std::thread::spawn(|| {
            for _ in 0..200 {
                REG.sweep(|s, live| {
                    if !live {
                        RETIRED_SUM.fetch_add(**s, Ordering::Relaxed);
                    }
                });
                std::thread::yield_now();
            }
        });
        let tids: std::collections::HashSet<u32> =
            workers.into_iter().map(|t| t.join().unwrap()).collect();
        sweeper.join().unwrap();
        assert_eq!(tids.len(), 32, "every registrant got a distinct tid");
        // Final sweep collects whatever the racing sweeps missed.
        REG.sweep(|s, live| {
            if !live {
                RETIRED_SUM.fetch_add(**s, Ordering::Relaxed);
            }
        });
        assert_eq!(
            RETIRED_SUM.load(Ordering::Relaxed),
            (1..=32u64).sum::<u64>(),
            "each dead slot retired exactly once"
        );
        assert_eq!(REG.len(), 0);
    }
}
