//! Exporters for drained event buffers: Chrome `chrome://tracing` /
//! Perfetto JSON, and line-delimited JSON for ad-hoc tooling.
//!
//! Spans are emitted as complete (`"ph":"X"`) events, markers as instants
//! (`"ph":"i"`), counter samples as `"ph":"C"` — load the file straight
//! into `chrome://tracing` or <https://ui.perfetto.dev>.

use crate::span::{Event, EventKind};
use std::fmt::Write as _;

/// Escapes a string for a JSON string literal. Names are `&'static str`
/// instrumentation constants, but escaping keeps the exporter total.
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn write_event_json(out: &mut String, e: &Event) {
    // Chrome traces use microsecond floats; keep ns precision in the
    // fraction.
    let ts_us = e.ts_ns as f64 / 1000.0;
    let name = json_escape(e.name);
    let cat = json_escape(e.cat);
    match e.kind {
        EventKind::Span => {
            let dur_us = e.dur_ns as f64 / 1000.0;
            let _ = write!(
                out,
                "{{\"name\":\"{name}\",\"cat\":\"{cat}\",\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{ts_us:.3},\"dur\":{dur_us:.3}}}",
                e.tid
            );
        }
        EventKind::Instant => {
            let _ = write!(
                out,
                "{{\"name\":\"{name}\",\"cat\":\"{cat}\",\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":{},\"ts\":{ts_us:.3}}}",
                e.tid
            );
        }
        EventKind::Counter => {
            let _ = write!(
                out,
                "{{\"name\":\"{name}\",\"cat\":\"{cat}\",\"ph\":\"C\",\"pid\":1,\"tid\":{},\"ts\":{ts_us:.3},\"args\":{{\"value\":{}}}}}",
                e.tid, e.value
            );
        }
    }
}

/// Renders events as a Chrome trace (`{"traceEvents": [...]}`).
pub fn chrome_trace_json(events: &[Event]) -> String {
    let mut out = String::with_capacity(events.len() * 96 + 32);
    out.push_str("{\"traceEvents\":[");
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('\n');
        write_event_json(&mut out, e);
    }
    out.push_str("\n]}\n");
    out
}

/// Renders events as JSONL: one raw event object per line, with the full
/// recorder fields (seq, exact nanoseconds) that the Chrome form rounds.
pub fn events_jsonl(events: &[Event]) -> String {
    let mut out = String::with_capacity(events.len() * 112);
    for e in events {
        let kind = match e.kind {
            EventKind::Span => "span",
            EventKind::Instant => "instant",
            EventKind::Counter => "counter",
        };
        let _ = writeln!(
            out,
            "{{\"kind\":\"{kind}\",\"cat\":\"{}\",\"name\":\"{}\",\"tid\":{},\"seq\":{},\"ts_ns\":{},\"dur_ns\":{},\"value\":{}}}",
            json_escape(e.cat),
            json_escape(e.name),
            e.tid,
            e.seq,
            e.ts_ns,
            e.dur_ns,
            e.value
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Event> {
        vec![
            Event {
                name: "decode",
                cat: "service",
                kind: EventKind::Span,
                tid: 2,
                seq: 0,
                ts_ns: 1_500,
                dur_ns: 2_250,
                value: 0,
            },
            Event {
                name: "queue_depth",
                cat: "service",
                kind: EventKind::Counter,
                tid: 2,
                seq: 1,
                ts_ns: 4_000,
                dur_ns: 0,
                value: 17,
            },
            Event {
                name: "evicted",
                cat: "service",
                kind: EventKind::Instant,
                tid: 3,
                seq: 2,
                ts_ns: 9_000,
                dur_ns: 0,
                value: 0,
            },
        ]
    }

    #[test]
    fn chrome_json_has_all_phases() {
        let json = chrome_trace_json(&sample());
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ph\":\"C\""));
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("\"ts\":1.500"));
        assert!(json.contains("\"dur\":2.250"));
        assert!(json.contains("\"value\":17"));
        // Balanced braces/brackets — a cheap well-formedness check.
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced braces"
        );
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn jsonl_is_one_object_per_line() {
        let text = events_jsonl(&sample());
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        for line in &lines {
            assert!(line.starts_with('{') && line.ends_with('}'));
        }
        assert!(lines[0].contains("\"kind\":\"span\""));
        assert!(lines[1].contains("\"value\":17"));
        assert!(lines[2].contains("\"kind\":\"instant\""));
    }

    #[test]
    fn names_are_escaped() {
        let ev = Event {
            name: "weird\"name\\with\ncontrol",
            cat: "c",
            ..Event::default()
        };
        let json = chrome_trace_json(&[ev]);
        assert!(json.contains("weird\\\"name\\\\with\\ncontrol"));
    }

    #[test]
    fn empty_trace_is_valid() {
        assert_eq!(chrome_trace_json(&[]), "{\"traceEvents\":[\n]}\n");
        assert_eq!(events_jsonl(&[]), "");
    }
}
