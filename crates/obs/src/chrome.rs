//! Exporters for drained event buffers: Chrome `chrome://tracing` /
//! Perfetto JSON, and line-delimited JSON for ad-hoc tooling.
//!
//! Spans are emitted as complete (`"ph":"X"`) events, markers as instants
//! (`"ph":"i"`), counter samples as `"ph":"C"` — load the file straight
//! into `chrome://tracing` or <https://ui.perfetto.dev>.

use crate::span::{Event, EventKind};
use std::fmt::Write as _;

/// Escapes a string for a JSON string literal. Names are `&'static str`
/// instrumentation constants, but escaping keeps the exporter total for
/// hostile inputs: quotes, backslashes, every C0 control character, DEL,
/// and the U+2028/U+2029 line separators (legal in JSON strings but
/// hostile to log pipelines that treat output as line-oriented JS) are
/// escaped; all other non-ASCII passes through as raw UTF-8, which JSON
/// permits.
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 || c == '\u{7f}' || c == '\u{2028}' || c == '\u{2029}' => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders the trace-id args suffix (`,"args":{"trace":"<hex32>"}`) for
/// events stamped with a causal trace; empty for untraced events so
/// traceless exports are byte-identical to the pre-trace format.
fn trace_args(e: &Event) -> String {
    match crate::tracectx::TraceId::new(e.trace) {
        Some(id) => format!(",\"args\":{{\"trace\":\"{}\"}}", id.to_hex()),
        None => String::new(),
    }
}

fn write_event_json(out: &mut String, e: &Event) {
    // Chrome traces use microsecond floats; keep ns precision in the
    // fraction.
    let ts_us = e.ts_ns as f64 / 1000.0;
    let name = json_escape(e.name);
    let cat = json_escape(e.cat);
    match e.kind {
        EventKind::Span => {
            let dur_us = e.dur_ns as f64 / 1000.0;
            let _ = write!(
                out,
                "{{\"name\":\"{name}\",\"cat\":\"{cat}\",\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{ts_us:.3},\"dur\":{dur_us:.3}{}}}",
                e.tid,
                trace_args(e)
            );
        }
        EventKind::Instant => {
            let _ = write!(
                out,
                "{{\"name\":\"{name}\",\"cat\":\"{cat}\",\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":{},\"ts\":{ts_us:.3}{}}}",
                e.tid,
                trace_args(e)
            );
        }
        EventKind::Counter => {
            let trace = match crate::tracectx::TraceId::new(e.trace) {
                Some(id) => format!(",\"trace\":\"{}\"", id.to_hex()),
                None => String::new(),
            };
            let _ = write!(
                out,
                "{{\"name\":\"{name}\",\"cat\":\"{cat}\",\"ph\":\"C\",\"pid\":1,\"tid\":{},\"ts\":{ts_us:.3},\"args\":{{\"value\":{}{}}}}}",
                e.tid, e.value, trace
            );
        }
    }
}

/// Renders events as a Chrome trace (`{"traceEvents": [...]}`).
pub fn chrome_trace_json(events: &[Event]) -> String {
    let mut out = String::with_capacity(events.len() * 96 + 32);
    out.push_str("{\"traceEvents\":[");
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('\n');
        write_event_json(&mut out, e);
    }
    out.push_str("\n]}\n");
    out
}

/// Renders events as a Chrome trace with a `copredProfile` self-profile
/// section: the sampler's folded stacks and stats ride along as an extra
/// top-level key, which `chrome://tracing`/Perfetto ignore but tooling
/// can extract. The `traceEvents` array is byte-identical to
/// [`chrome_trace_json`]'s.
pub fn chrome_trace_json_with_profile(events: &[Event], profile: &crate::Profile) -> String {
    let plain = chrome_trace_json(events);
    let body = plain
        .strip_suffix("}\n")
        .expect("chrome_trace_json ends the object");
    let snap = profile.snapshot();
    format!(
        "{body},\"copredProfile\":{{\"samples\":{},\"threads\":{},\"drops\":{},\"skews\":{},\"folded\":\"{}\"}}}}\n",
        snap.samples,
        snap.threads,
        snap.drops,
        snap.skews,
        json_escape(&profile.folded())
    )
}

/// Renders events as JSONL: one raw event object per line, with the full
/// recorder fields (seq, exact nanoseconds) that the Chrome form rounds.
pub fn events_jsonl(events: &[Event]) -> String {
    let mut out = String::with_capacity(events.len() * 112);
    for e in events {
        let kind = match e.kind {
            EventKind::Span => "span",
            EventKind::Instant => "instant",
            EventKind::Counter => "counter",
        };
        let trace = match crate::tracectx::TraceId::new(e.trace) {
            Some(id) => format!(",\"trace\":\"{}\"", id.to_hex()),
            None => String::new(),
        };
        let _ = writeln!(
            out,
            "{{\"kind\":\"{kind}\",\"cat\":\"{}\",\"name\":\"{}\",\"tid\":{},\"seq\":{},\"ts_ns\":{},\"dur_ns\":{},\"value\":{}{}}}",
            json_escape(e.cat),
            json_escape(e.name),
            e.tid,
            e.seq,
            e.ts_ns,
            e.dur_ns,
            e.value,
            trace
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Event> {
        vec![
            Event {
                name: "decode",
                cat: "service",
                kind: EventKind::Span,
                tid: 2,
                seq: 0,
                ts_ns: 1_500,
                dur_ns: 2_250,
                value: 0,
                trace: 0,
            },
            Event {
                name: "queue_depth",
                cat: "service",
                kind: EventKind::Counter,
                tid: 2,
                seq: 1,
                ts_ns: 4_000,
                dur_ns: 0,
                value: 17,
                trace: 0,
            },
            Event {
                name: "evicted",
                cat: "service",
                kind: EventKind::Instant,
                tid: 3,
                seq: 2,
                ts_ns: 9_000,
                dur_ns: 0,
                value: 0,
                trace: 0,
            },
        ]
    }

    #[test]
    fn chrome_json_has_all_phases() {
        let json = chrome_trace_json(&sample());
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ph\":\"C\""));
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("\"ts\":1.500"));
        assert!(json.contains("\"dur\":2.250"));
        assert!(json.contains("\"value\":17"));
        // Balanced braces/brackets — a cheap well-formedness check.
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced braces"
        );
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn jsonl_is_one_object_per_line() {
        let text = events_jsonl(&sample());
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        for line in &lines {
            assert!(line.starts_with('{') && line.ends_with('}'));
        }
        assert!(lines[0].contains("\"kind\":\"span\""));
        assert!(lines[1].contains("\"value\":17"));
        assert!(lines[2].contains("\"kind\":\"instant\""));
    }

    #[test]
    fn names_are_escaped() {
        let ev = Event {
            name: "weird\"name\\with\ncontrol",
            cat: "c",
            ..Event::default()
        };
        let json = chrome_trace_json(&[ev]);
        assert!(json.contains("weird\\\"name\\\\with\\ncontrol"));
    }

    #[test]
    fn empty_trace_is_valid() {
        assert_eq!(chrome_trace_json(&[]), "{\"traceEvents\":[\n]}\n");
        assert_eq!(events_jsonl(&[]), "");
    }

    #[test]
    fn self_profile_section_rides_along_without_touching_events() {
        use crate::{Profile, Stage};
        let mut profile = Profile::default();
        profile.add_path(0, &[Stage::Execute, Stage::Predict], 3);
        profile.drops = 1;
        let with = chrome_trace_json_with_profile(&sample(), &profile);
        let plain = chrome_trace_json(&sample());
        // The traceEvents array is byte-identical; the profile section is
        // a sibling top-level key viewers ignore.
        let events_part = plain.strip_suffix("}\n").unwrap();
        assert!(with.starts_with(events_part), "{with}");
        assert!(with.contains("\"copredProfile\":{"), "{with}");
        assert!(with.contains("\"samples\":3"), "{with}");
        assert!(with.contains("\"drops\":1"), "{with}");
        assert!(with.contains("execute;predict 3\\n"), "{with}");
        assert_eq!(with.matches('{').count(), with.matches('}').count());
    }

    #[test]
    fn traced_events_carry_trace_args_untraced_stay_identical() {
        let mut evs = sample();
        let before = (chrome_trace_json(&evs), events_jsonl(&evs));
        evs[0].trace = 0xFEED;
        evs[1].trace = 0xFEED;
        let json = chrome_trace_json(&evs);
        let hex = "0000000000000000000000000000feed";
        assert!(json.contains(&format!("\"args\":{{\"trace\":\"{hex}\"}}")));
        assert!(json.contains(&format!("\"value\":17,\"trace\":\"{hex}\"")));
        let jsonl = events_jsonl(&evs);
        assert_eq!(jsonl.matches(hex).count(), 2);
        // The untraced instant line is byte-identical to the old format.
        evs[0].trace = 0;
        evs[1].trace = 0;
        assert_eq!(chrome_trace_json(&evs), before.0);
        assert_eq!(events_jsonl(&evs), before.1);
    }

    /// A strict JSON string-literal parser: consumes `"..."` from the
    /// front of `s`, returning the decoded string and the rest. Rejects
    /// raw control characters, bad escapes, and bad `\uXXXX` forms — the
    /// verifier half of the escaping property test.
    fn parse_json_string(s: &str) -> Option<(String, &str)> {
        let mut chars = s.char_indices();
        match chars.next() {
            Some((_, '"')) => {}
            _ => return None,
        }
        let mut out = String::new();
        while let Some((i, c)) = chars.next() {
            match c {
                '"' => return Some((out, &s[i + 1..])),
                '\\' => match chars.next()?.1 {
                    '"' => out.push('"'),
                    '\\' => out.push('\\'),
                    '/' => out.push('/'),
                    'n' => out.push('\n'),
                    'r' => out.push('\r'),
                    't' => out.push('\t'),
                    'b' => out.push('\u{8}'),
                    'f' => out.push('\u{c}'),
                    'u' => {
                        let mut v = 0u32;
                        for _ in 0..4 {
                            let d = chars.next()?.1.to_digit(16)?;
                            v = v * 16 + d;
                        }
                        // Surrogate pairs never occur: the escaper only
                        // \u-escapes BMP scalars below U+2030.
                        out.push(char::from_u32(v)?);
                    }
                    _ => return None,
                },
                c if (c as u32) < 0x20 => return None,
                c => out.push(c),
            }
        }
        None
    }

    #[test]
    fn escaping_round_trips_hostile_strings() {
        // Property: for arbitrary strings — quotes, backslashes, every
        // control character, DEL, line separators, multi-byte UTF-8 —
        // json_escape produces a literal the strict parser decodes back
        // to the original.
        let mut cases: Vec<String> = vec![
            String::new(),
            "plain".into(),
            "\"quoted\" and \\back\\slashed\\".into(),
            "tabs\tand\nnewlines\rand\u{7f}del".into(),
            "línea…ユニコード🎯".into(),
            "line\u{2028}sep\u{2029}para".into(),
            "\\u0041 literal backslash-u".into(),
        ];
        for b in 0u8..0x20 {
            cases.push(format!("ctl<{}>", b as char));
        }
        // Seeded pseudo-random strings mixing all the above classes.
        let alphabet: Vec<char> = ('\u{0}'..='\u{2f}')
            .chain(['"', '\\', '\u{7f}', '\u{2028}', '\u{2029}', 'é', '中', '🚀'])
            .collect();
        let mut state = 0x5EED_1234_u64;
        for _ in 0..500 {
            let mut s = String::new();
            for _ in 0..(state % 24) {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                s.push(alphabet[(state >> 33) as usize % alphabet.len()]);
            }
            cases.push(s);
        }
        for case in &cases {
            let escaped = json_escape(case);
            // No raw control chars or unescaped quotes survive.
            assert!(
                escaped.chars().all(|c| (c as u32) >= 0x20),
                "raw control in {escaped:?}"
            );
            let literal = format!("\"{escaped}\"");
            let (decoded, rest) =
                parse_json_string(&literal).unwrap_or_else(|| panic!("unparseable: {literal:?}"));
            assert_eq!(&decoded, case);
            assert!(rest.is_empty());
        }
    }

    #[test]
    fn exporters_round_trip_hostile_names() {
        // Run a hostile name through the full Chrome + JSONL exporters
        // and re-extract it with the strict parser.
        let name: &'static str = "h0stile \"name\"\\\n\t\u{7f}\u{2028}日本語";
        let ev = Event {
            name,
            cat: "cat\"egory\\",
            kind: EventKind::Span,
            ..Event::default()
        };
        for rendered in [chrome_trace_json(&[ev]), events_jsonl(&[ev])] {
            let at = rendered.find("\"name\":").expect("name key") + "\"name\":".len();
            let (decoded, _) = parse_json_string(&rendered[at..]).expect("strict parse");
            assert_eq!(decoded, name);
            let at = rendered.find("\"cat\":").expect("cat key") + "\"cat\":".len();
            let (decoded, _) = parse_json_string(&rendered[at..]).expect("strict parse");
            assert_eq!(decoded, "cat\"egory\\");
        }
    }
}
