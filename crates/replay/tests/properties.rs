//! Property tests for the CPRDLOG container and the replay engine
//! (ISSUE 6 satellites): round-trips are bit-exact for any record count
//! and hostile payloads, a tail torn at *every* byte offset yields the
//! clean prefix, replay of one log is deterministic down to the metrics
//! ledger, and scaled mode preserves op order at every speed factor.

use copred_geometry::Vec3;
use copred_kinematics::Config;
use copred_replay::format::{crc32, encode_header, encode_record, read_log, write_log};
use copred_replay::{
    run_replay, Clock, InProcessBackend, LogMeta, LogRecord, ReplayLog, ReplayLogError, ReplayMode,
    ReplayOptions,
};
use copred_service::protocol::{Request, Response, SchedMode};
use copred_trace::{MotionTrace, Stage, TraceCdq};
use proptest::prelude::*;

/// Characters chosen to stress the string encoding: ASCII, the TSV
/// escapes, multi-byte UTF-8, and quotes.
const PALETTE: &[char] = &[
    'a', 'Z', '0', ' ', '\t', '\n', '\r', '\\', '"', '=', 'é', '日', '🦀',
];

fn hostile_string() -> impl Strategy<Value = String> {
    prop::collection::vec(0usize..PALETTE.len(), 0..24)
        .prop_map(|idxs| idxs.into_iter().map(|i| PALETTE[i]).collect())
}

fn arb_record() -> impl Strategy<Value = LogRecord> {
    (
        (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()),
        (hostile_string(), hostile_string(), hostile_string()),
        (hostile_string(), hostile_string()),
    )
        .prop_map(
            |((idx, session, start_ns, duration_ns), (verb, status, tag), (request, response))| {
                LogRecord {
                    idx,
                    session,
                    start_ns,
                    duration_ns,
                    verb,
                    status,
                    tag,
                    request,
                    response,
                }
            },
        )
}

fn arb_meta() -> impl Strategy<Value = LogMeta> {
    (
        any::<u64>(),
        any::<u64>(),
        hostile_string(),
        hostile_string(),
        hostile_string(),
    )
        .prop_map(|(seed, fingerprint, robot, workload, scale)| LogMeta {
            seed,
            fingerprint,
            robot,
            workload,
            scale,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn log_roundtrip_bit_exact_any_record_count(
        meta in arb_meta(),
        records in prop::collection::vec(arb_record(), 0..10),
    ) {
        let bytes = write_log(&meta, &records);
        let back = read_log(&bytes).expect("own encoding must decode");
        prop_assert!(back.complete);
        prop_assert_eq!(&back.meta, &meta);
        prop_assert_eq!(&back.records, &records);
        // Bit-exact: re-encoding the parse reproduces the input bytes.
        prop_assert_eq!(write_log(&back.meta, &back.records), bytes);
    }

    #[test]
    fn torn_tail_at_every_byte_offset_yields_clean_prefix(
        meta in arb_meta(),
        records in prop::collection::vec(arb_record(), 1..6),
    ) {
        let bytes = write_log(&meta, &records);
        // Record boundaries: header end, then each record's end.
        let mut boundaries = vec![encode_header(&meta).len()];
        for rec in &records {
            boundaries.push(boundaries.last().unwrap() + encode_record(rec).len());
        }
        let header_end = boundaries[0];
        for cut in 0..bytes.len() {
            let truncated = &bytes[..cut];
            if cut < header_end {
                // No complete header: a structured error, never a panic.
                prop_assert!(read_log(truncated).is_err(), "cut at {}", cut);
                continue;
            }
            let log = match read_log(truncated) {
                Ok(log) => log,
                Err(e) => panic!("cut at {cut}: torn tail must parse, got {e}"),
            };
            prop_assert!(!log.complete, "cut at {} claims a sealed log", cut);
            // The clean prefix: every record whose bytes fully precede
            // the cut.
            let whole = boundaries.iter().filter(|&&b| b <= cut).count() - 1;
            let expect = whole.min(records.len());
            prop_assert_eq!(log.records.len(), expect, "cut at {}", cut);
            prop_assert_eq!(&log.records[..], &records[..expect], "cut at {}", cut);
        }
        // And the untruncated log is complete.
        prop_assert!(read_log(&bytes).expect("full log").complete);
    }

    #[test]
    fn incremental_crc_matches_store_crc(
        data in prop::collection::vec(any::<u8>(), 0..200),
    ) {
        prop_assert_eq!(crc32(&data), copred_store::crc::crc32(&data));
    }

    #[test]
    fn version_bump_is_rejected_not_misread(version in 2u32..=u32::MAX) {
        let mut bytes = write_log(&LogMeta::default(), &[]);
        bytes[8..12].copy_from_slice(&version.to_le_bytes());
        prop_assert_eq!(
            read_log(&bytes).unwrap_err(),
            ReplayLogError::VersionMismatch { found: version }
        );
    }
}

/// A deterministic synthetic motion: `salt` varies poses, CDQ centers,
/// and ground truth so distinct motions exercise distinct CHT entries.
fn synthetic_motion(salt: u64) -> MotionTrace {
    let f = |k: u64| ((salt.wrapping_mul(31).wrapping_add(k) % 200) as f64 - 100.0) / 100.0;
    let poses: Vec<Config> = (0..3)
        .map(|p| Config::new(vec![f(p * 2), f(p * 2 + 1)]))
        .collect();
    let mut cdqs = Vec::new();
    for pose_idx in 0..poses.len() as u32 {
        for link_idx in 0..2u32 {
            let k = u64::from(pose_idx * 2 + link_idx);
            cdqs.push(TraceCdq {
                pose_idx,
                link_idx,
                center: Vec3::new(f(k + 10), f(k + 20), 0.0),
                colliding: (salt + k).is_multiple_of(3),
                obstacle_tests: 1 + (k % 4) as u32,
            });
        }
    }
    MotionTrace {
        stage: if salt.is_multiple_of(2) {
            Stage::Explore
        } else {
            Stage::Validate
        },
        poses,
        cdqs,
    }
}

/// Builds a replayable log the way the recorder would, without a live
/// server: synthesize the requests, replay them once (comparison off)
/// against a default in-process backend, and write the harvested
/// responses back as the "recording".
fn recorded_log(seed: u64) -> ReplayLog {
    let mut requests: Vec<(u64, &'static str, Request)> = Vec::new();
    for trace in 0..2u64 {
        // Recorded session tokens are arbitrary; the engine remaps them.
        let token = 70 + trace;
        requests.push((
            token,
            "open",
            Request::Open {
                robot: "planar-2d".to_string(),
                link_count: 2,
                mode: SchedMode::Coord,
                seed: seed ^ trace,
                fp: None,
            },
        ));
        for batch in 0..2u64 {
            let motions: Vec<MotionTrace> = (0..2)
                .map(|m| synthetic_motion(seed + trace * 100 + batch * 10 + m))
                .collect();
            requests.push((
                token,
                "check_motion",
                Request::CheckMotion {
                    session: token,
                    motions,
                    trace: None,
                },
            ));
        }
        requests.push((token, "close", Request::Close { session: token }));
    }
    let mut log = ReplayLog {
        meta: LogMeta {
            seed,
            fingerprint: 0,
            robot: "planar-2d".to_string(),
            workload: "synthetic".to_string(),
            scale: format!("ops={}", requests.len()),
        },
        records: requests
            .into_iter()
            .enumerate()
            .map(|(i, (token, verb, req))| LogRecord {
                idx: i as u64,
                session: token,
                start_ns: i as u64 * 1_000,
                duration_ns: 0,
                verb: verb.to_string(),
                status: "ok".to_string(),
                tag: format!("trace{token}"),
                request: req.to_text(),
                response: String::new(),
            })
            .collect(),
        complete: true,
    };
    let mut backend = InProcessBackend::with_server_defaults();
    let opts = ReplayOptions {
        mode: ReplayMode::Sequential,
        compare: false,
        trace_seed: None,
    };
    let harvest = run_replay(&log, &mut backend, &opts).expect("harvest replay");
    assert_eq!(harvest.backend_errors, 0, "harvest must succeed cleanly");
    for (rec, resp) in log.records.iter_mut().zip(&harvest.responses) {
        rec.response.clone_from(resp);
    }
    log
}

/// One session's metrics ledger, snapshot for comparison.
fn ledger(backend: &InProcessBackend) -> Vec<(u64, u64, u64, u64)> {
    use std::sync::atomic::Ordering;
    backend
        .opened()
        .iter()
        .map(|s| {
            (
                s.metrics.checks.load(Ordering::Relaxed),
                s.metrics.cdqs_issued.load(Ordering::Relaxed),
                s.metrics.cdqs_total.load(Ordering::Relaxed),
                s.metrics.collisions.load(Ordering::Relaxed),
            )
        })
        .collect()
}

#[test]
fn replay_is_deterministic_down_to_the_ledger() {
    let log = recorded_log(0xD5EED);
    // The log itself round-trips through bytes first: determinism must
    // hold for the *serialized* artifact, not the in-memory value.
    let log = read_log(&write_log(&log.meta, &log.records)).expect("roundtrip");

    let opts = ReplayOptions::default();
    let mut first = InProcessBackend::with_server_defaults();
    let mut second = InProcessBackend::with_server_defaults();
    let out1 = run_replay(&log, &mut first, &opts).expect("replay 1");
    let out2 = run_replay(&log, &mut second, &opts).expect("replay 2");

    // Bit-identical to the recording, both times.
    assert!(out1.is_identical(), "mismatches: {:?}", out1.mismatches);
    assert!(out2.is_identical(), "mismatches: {:?}", out2.mismatches);
    assert_eq!(out1.responses, out2.responses);
    assert_eq!(
        (
            out1.checks,
            out1.collisions,
            out1.cdqs_issued,
            out1.cdqs_total
        ),
        (
            out2.checks,
            out2.collisions,
            out2.cdqs_issued,
            out2.cdqs_total
        )
    );
    // And the per-session metrics ledgers agree entry for entry.
    let l1 = ledger(&first);
    assert_eq!(l1, ledger(&second));
    assert!(!l1.is_empty() && l1.iter().any(|&(checks, ..)| checks > 0));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn scaled_mode_preserves_op_order_at_every_speed_factor(
        exp in -2i32..7,
        seed in any::<u64>(),
    ) {
        let factor = 10f64.powi(exp);
        let log = recorded_log(seed);
        let baseline = {
            let mut b = InProcessBackend::with_server_defaults();
            run_replay(&log, &mut b, &ReplayOptions::default()).expect("sequential")
        };
        let mut b = InProcessBackend::with_server_defaults();
        let opts = ReplayOptions {
            mode: ReplayMode::Scaled { factor },
            compare: true,
            trace_seed: None,
        };
        let scaled = run_replay(&log, &mut b, &opts).expect("scaled");
        // Order preserved ⇒ the same answers in the same positions, and
        // no divergence from the recording.
        prop_assert!(scaled.is_identical(), "factor {}: {:?}", factor, scaled.mismatches);
        prop_assert_eq!(&scaled.responses, &baseline.responses);
    }

    #[test]
    fn timing_virtual_replay_matches_sequential(seed in any::<u64>()) {
        let log = recorded_log(seed);
        let mut seq = InProcessBackend::with_server_defaults();
        let mut vt = InProcessBackend::with_server_defaults();
        let a = run_replay(&log, &mut seq, &ReplayOptions::default()).expect("sequential");
        let opts = ReplayOptions {
            mode: ReplayMode::Timing { clock: Clock::Virtual },
            compare: true,
            trace_seed: None,
        };
        let b = run_replay(&log, &mut vt, &opts).expect("virtual");
        prop_assert!(b.is_identical());
        prop_assert_eq!(b.lag_ns, 0);
        prop_assert_eq!(&a.responses, &b.responses);
    }
}

#[test]
fn responses_survive_the_wire_format() {
    // Harvested responses are genuine wire payloads; spot-check one
    // parses as a Results frame with per-check counters.
    let log = recorded_log(7);
    let check = log
        .records
        .iter()
        .find(|r| r.verb == "check_motion")
        .expect("a check op");
    match Response::from_text(&check.response) {
        Ok(Response::Results { results: rs, .. }) => {
            assert_eq!(rs.len(), 2);
            assert!(rs.iter().all(|r| r.cdqs_total > 0));
        }
        other => panic!("want results, got {other:?}"),
    }
}
