//! Record/replay driver for CPRDLOG op-logs.
//!
//! ```text
//! copred_replay <command> [key=value ...]
//!
//! info        log=FILE
//!     Print the log's metadata and record summary.
//!
//! run         log=FILE [backend=inproc] [mode=sequential] [speed=2.0]
//!             [compare=1] [bench_json=PATH] [trace_seed=SEED]
//!     Replay the log against one backend and print the outcome.
//!       backend = inproc | loopback | addr:HOST:PORT
//!       mode    = sequential | timing | timing-virtual | scaled
//!                 (scaled divides recorded gaps by speed=K)
//!       trace_seed attaches fresh causal trace ids (derived from the
//!       seed and record index) to every replayed check
//!
//! verify      log=FILE [skip_loopback=0]
//!     The CI replay gate: the log must replay bit-identically against a
//!     default in-process backend AND a loopback server, and two
//!     in-process replays must answer identically (determinism). Exits
//!     non-zero on any divergence.
//!
//! ab          log=FILE [a=inproc] [b=loopback] [mode=sequential]
//!             [speed=2.0] [bench_json=PATH]
//!     Replay one log against two backends and report the diff.
//!
//! export-tsv  log=FILE tsv=FILE
//!     Convert a CPRDLOG to the legacy self-describing TSV op-log.
//!
//! import-tsv  tsv=FILE log=FILE [robot=NAME] [fp=HEX]
//!     Convert a legacy TSV op-log to CPRDLOG (the TSV carries no robot
//!     or fingerprint, so supply them).
//!
//! sanitize    log=FILE out=FILE [gap_ns=1000000]
//!     Normalize timestamps for committing: start_ns becomes
//!     idx * gap_ns and durations zero, so the log is byte-stable across
//!     machines while timing-mode replays still have faithful gaps.
//! ```

use copred_replay::{
    ab_report, read_log_file, run_ab, run_replay, Clock, InProcessBackend, LogMeta, LogWriter,
    LoopbackBackend, ReplayBackend, ReplayLog, ReplayMode, ReplayOptions, ReplayOutcome,
};
use copred_service::{parse_oplog, write_oplog, OplogMeta, ServerConfig};
use std::collections::BTreeMap;
use std::io::Write as _;
use std::path::Path;
use std::process::ExitCode;

/// Parsed `key=value` arguments for one subcommand, validated against its
/// flag table.
#[derive(Debug)]
struct Flags {
    values: BTreeMap<String, String>,
}

impl Flags {
    /// Parses `args`, rejecting keys outside `valid` with an error that
    /// lists every flag the subcommand accepts.
    fn parse(command: &str, args: &[String], valid: &[&str]) -> Result<Self, String> {
        let mut values = BTreeMap::new();
        for arg in args {
            let (key, value) = arg
                .split_once('=')
                .ok_or_else(|| format!("expected key=value, got '{arg}'"))?;
            if !valid.contains(&key) {
                return Err(format!(
                    "unknown flag '{key}' for '{command}' (valid flags: {})",
                    valid.join(", ")
                ));
            }
            values.insert(key.to_string(), value.to_string());
        }
        Ok(Flags { values })
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.values.get(key).map(String::as_str)
    }

    fn require(&self, key: &str) -> Result<&str, String> {
        self.get(key).ok_or_else(|| format!("missing {key}=..."))
    }

    fn u64_or(&self, key: &str, default: u64) -> Result<u64, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("bad number for {key}: '{v}'")),
        }
    }

    fn bool_or(&self, key: &str, default: bool) -> bool {
        match self.get(key) {
            None => default,
            Some(v) => v == "1" || v == "true",
        }
    }
}

fn parse_mode(flags: &Flags) -> Result<ReplayMode, String> {
    Ok(match flags.get("mode").unwrap_or("sequential") {
        "sequential" => ReplayMode::Sequential,
        "timing" => ReplayMode::Timing { clock: Clock::Wall },
        "timing-virtual" => ReplayMode::Timing {
            clock: Clock::Virtual,
        },
        "scaled" => {
            let speed = flags.get("speed").unwrap_or("2.0");
            let factor: f64 = speed
                .parse()
                .map_err(|_| format!("bad speed factor '{speed}'"))?;
            if !factor.is_finite() || factor <= 0.0 {
                return Err(format!("speed factor must be positive, got '{speed}'"));
            }
            ReplayMode::Scaled { factor }
        }
        other => {
            return Err(format!(
                "unknown mode '{other}' (sequential|timing|timing-virtual|scaled)"
            ))
        }
    })
}

/// Builds a backend from its spec: `inproc`, `loopback` (owned fresh
/// server), or `addr:HOST:PORT` (external server).
fn make_backend(spec: &str) -> Result<Box<dyn ReplayBackend>, String> {
    match spec {
        "inproc" => Ok(Box::new(InProcessBackend::with_server_defaults())),
        "loopback" => {
            let cfg = ServerConfig {
                addr: "127.0.0.1:0".to_string(),
                ..ServerConfig::default()
            };
            Ok(Box::new(
                LoopbackBackend::start(cfg).map_err(|e| format!("starting loopback: {e}"))?,
            ))
        }
        other => match other.strip_prefix("addr:") {
            Some(addr) => Ok(Box::new(
                LoopbackBackend::connect(addr)
                    .map_err(|e| format!("connecting to {addr}: {e}"))?
                    .labeled("remote"),
            )),
            None => Err(format!(
                "unknown backend '{other}' (inproc|loopback|addr:HOST:PORT)"
            )),
        },
    }
}

fn load(flags: &Flags) -> Result<ReplayLog, String> {
    let path = flags.require("log")?;
    let log = read_log_file(Path::new(path)).map_err(|e| format!("reading {path}: {e}"))?;
    if !log.complete {
        eprintln!(
            "copred_replay: note: {path} has a torn tail; replaying the clean prefix ({} records)",
            log.records.len()
        );
    }
    Ok(log)
}

fn print_outcome(label: &str, out: &ReplayOutcome) {
    println!("backend        {label}");
    println!("ops            {}", out.ops);
    println!("checks         {}", out.checks);
    println!("collisions     {}", out.collisions);
    println!("cdqs_issued    {}", out.cdqs_issued);
    println!("cdqs_total     {}", out.cdqs_total);
    println!("mismatches     {}", out.mismatches.len());
    println!("backend_errors {}", out.backend_errors);
    println!("wall_s         {:.3}", out.wall_ns as f64 / 1e9);
    println!("lag_ms         {:.3}", out.lag_ns as f64 / 1e6);
    println!("checks_per_s   {:.1}", out.checks_per_sec());
    for d in out.mismatches.iter().take(5) {
        eprintln!(
            "mismatch at op {} ({} {}): expected {:?}, got {:?}",
            d.idx, d.verb, d.tag, d.expected, d.actual
        );
    }
    if out.mismatches.len() > 5 {
        eprintln!("... and {} more mismatches", out.mismatches.len() - 5);
    }
}

fn cmd_info(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse("info", args, &["log"])?;
    let log = load(&flags)?;
    println!("format         CPRDLOG v{}", copred_replay::LOG_VERSION);
    println!("seed           {}", log.meta.seed);
    println!("fingerprint    {:#018x}", log.meta.fingerprint);
    println!("robot          {}", log.meta.robot);
    println!("workload       {}", log.meta.workload);
    println!("scale          {}", log.meta.scale);
    println!("records        {}", log.records.len());
    println!("complete       {}", log.complete);
    let mut verbs: BTreeMap<&str, u64> = BTreeMap::new();
    for r in &log.records {
        *verbs.entry(r.verb.as_str()).or_default() += 1;
    }
    for (verb, n) in verbs {
        println!("  {verb:<12} {n}");
    }
    if let (Some(first), Some(last)) = (log.records.first(), log.records.last()) {
        println!(
            "span_ms        {:.3}",
            last.start_ns.saturating_sub(first.start_ns) as f64 / 1e6
        );
    }
    Ok(())
}

fn cmd_run(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(
        "run",
        args,
        &[
            "log",
            "backend",
            "mode",
            "speed",
            "compare",
            "bench_json",
            "trace_seed",
        ],
    )?;
    let log = load(&flags)?;
    let trace_seed = match flags.get("trace_seed") {
        None => None,
        Some(_) => Some(flags.u64_or("trace_seed", 0)?),
    };
    let opts = ReplayOptions {
        mode: parse_mode(&flags)?,
        compare: flags.bool_or("compare", true),
        trace_seed,
    };
    let mut backend = make_backend(flags.get("backend").unwrap_or("inproc"))?;
    let out = run_replay(&log, backend.as_mut(), &opts).map_err(|e| e.to_string())?;
    println!("mode           {}", opts.mode.label());
    print_outcome(backend.label(), &out);
    if let Some(path) = flags.get("bench_json") {
        let report = run_report(&log, &opts, backend.label(), &out);
        std::fs::write(path, report.to_json()).map_err(|e| format!("writing {path}: {e}"))?;
        println!("bench_json     {path}");
    }
    if opts.compare && !out.is_identical() {
        return Err(format!(
            "{} of {} compared ops diverged from the recording",
            out.mismatches.len(),
            out.ops
        ));
    }
    Ok(())
}

/// Single-backend `bench_json` report for `run` (the A/B path has its
/// own richer report).
fn run_report(
    log: &ReplayLog,
    opts: &ReplayOptions,
    backend: &str,
    out: &ReplayOutcome,
) -> copred_obs::BenchReport {
    use copred_obs::{BenchRecord, BenchReport, Better};
    let mut report = BenchReport::new(
        &format!("replay_{}_{}", backend, opts.mode.label()),
        "unknown",
        log.meta.seed,
        &format!("{} [{}]", log.meta.scale, log.meta.workload),
    );
    let suite = "replay";
    for (metric, value, unit, better) in [
        ("ops", out.ops as f64, "ops", Better::Higher),
        ("checks", out.checks as f64, "checks", Better::Higher),
        ("cdqs_issued", out.cdqs_issued as f64, "cdqs", Better::Lower),
        (
            "mismatches",
            out.mismatches.len() as f64,
            "ops",
            Better::Lower,
        ),
        ("lag_ns", out.lag_ns as f64, "ns", Better::Lower),
    ] {
        report.records.push(BenchRecord::deterministic(
            suite, metric, value, unit, better,
        ));
    }
    report.records.push(BenchRecord::timing(
        suite,
        "checks_per_s",
        &[out.checks_per_sec()],
        "checks/s",
        Better::Higher,
    ));
    report
}

fn cmd_verify(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse("verify", args, &["log", "skip_loopback"])?;
    let log = load(&flags)?;
    if !log.complete {
        return Err("refusing to verify a torn log".to_string());
    }
    let opts = ReplayOptions::default(); // sequential, compare on

    // Pass 1: bit-identity against a default in-process backend.
    let mut inproc = InProcessBackend::with_server_defaults();
    let first = run_replay(&log, &mut inproc, &opts).map_err(|e| e.to_string())?;
    if !first.is_identical() {
        print_outcome("inproc", &first);
        return Err(format!(
            "in-process replay diverged from the recording ({} mismatches)",
            first.mismatches.len()
        ));
    }
    println!(
        "inproc         identical ({} ops, {} checks)",
        first.ops, first.checks
    );

    // Pass 2: determinism — a second fresh in-process replay must answer
    // exactly like the first.
    let mut inproc2 = InProcessBackend::with_server_defaults();
    let second = run_replay(&log, &mut inproc2, &opts).map_err(|e| e.to_string())?;
    if second.responses != first.responses {
        return Err("two in-process replays of the same log diverged".to_string());
    }
    println!("determinism    identical (double replay)");

    // Pass 3: bit-identity over the wire.
    if flags.bool_or("skip_loopback", false) {
        println!("loopback       skipped");
    } else {
        let cfg = ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            ..ServerConfig::default()
        };
        let mut loopback = LoopbackBackend::start(cfg).map_err(|e| e.to_string())?;
        let wire = run_replay(&log, &mut loopback, &opts).map_err(|e| e.to_string())?;
        if !wire.is_identical() {
            print_outcome("loopback", &wire);
            return Err(format!(
                "loopback replay diverged from the recording ({} mismatches)",
                wire.mismatches.len()
            ));
        }
        println!(
            "loopback       identical ({} ops, {} checks)",
            wire.ops, wire.checks
        );
    }
    println!("verify         PASS");
    Ok(())
}

fn cmd_ab(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(
        "ab",
        args,
        &["log", "a", "b", "mode", "speed", "bench_json"],
    )?;
    let log = load(&flags)?;
    let opts = ReplayOptions {
        mode: parse_mode(&flags)?,
        compare: true,
        trace_seed: None,
    };
    let mut a = make_backend(flags.get("a").unwrap_or("inproc"))?;
    let mut b = make_backend(flags.get("b").unwrap_or("loopback"))?;
    let ab = run_ab(&log, a.as_mut(), b.as_mut(), &opts).map_err(|e| e.to_string())?;
    println!("=== A ===");
    print_outcome(&ab.label_a, &ab.a);
    println!("=== B ===");
    print_outcome(&ab.label_b, &ab.b);
    let diverging = ab.diverging_ops();
    println!("=== diff ===");
    println!("responses_identical {}", ab.responses_identical());
    println!("diverging_ops       {}", diverging.len());
    if ab.a.wall_ns > 0 {
        println!(
            "wall_b_over_a       {:.3}",
            ab.b.wall_ns as f64 / ab.a.wall_ns as f64
        );
    }
    if let Some(path) = flags.get("bench_json") {
        let report = ab_report(&log, &ab, "replay_ab");
        std::fs::write(path, report.to_json()).map_err(|e| format!("writing {path}: {e}"))?;
        println!("bench_json          {path}");
    }
    Ok(())
}

fn cmd_export_tsv(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse("export-tsv", args, &["log", "tsv"])?;
    let log = load(&flags)?;
    let tsv = flags.require("tsv")?;
    let ops: Vec<_> = log.records.iter().map(|r| r.to_op_record()).collect();
    let text = write_oplog(&log.meta.to_oplog_meta(), &ops);
    std::fs::write(tsv, text).map_err(|e| format!("writing {tsv}: {e}"))?;
    println!("exported       {} records -> {tsv}", ops.len());
    Ok(())
}

fn cmd_import_tsv(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse("import-tsv", args, &["tsv", "log", "robot", "fp"])?;
    let tsv_path = flags.require("tsv")?;
    let out_path = flags.require("log")?;
    let text = std::fs::read_to_string(tsv_path).map_err(|e| format!("reading {tsv_path}: {e}"))?;
    let (meta, ops): (OplogMeta, Vec<_>) = parse_oplog(&text).map_err(|e| e.to_string())?;
    let fp = match flags.get("fp") {
        None => 0,
        Some(hex) => u64::from_str_radix(hex.trim_start_matches("0x"), 16)
            .map_err(|_| format!("bad fingerprint hex '{hex}'"))?,
    };
    let log_meta = LogMeta::from_oplog_meta(&meta, flags.get("robot").unwrap_or(""), fp);
    let file = std::fs::File::create(out_path).map_err(|e| format!("creating {out_path}: {e}"))?;
    let mut w = LogWriter::new(std::io::BufWriter::new(file), &log_meta)
        .map_err(|e| format!("writing {out_path}: {e}"))?;
    for op in &ops {
        w.append(&copred_replay::LogRecord::from_op_record(op))
            .map_err(|e| format!("writing {out_path}: {e}"))?;
    }
    let n = w.count();
    w.finish().map_err(|e| format!("sealing {out_path}: {e}"))?;
    println!("imported       {n} records -> {out_path}");
    Ok(())
}

fn cmd_sanitize(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse("sanitize", args, &["log", "out", "gap_ns"])?;
    let log = load(&flags)?;
    let out_path = flags.require("out")?;
    let gap_ns = flags.u64_or("gap_ns", 1_000_000)?;
    let file = std::fs::File::create(out_path).map_err(|e| format!("creating {out_path}: {e}"))?;
    let mut w = LogWriter::new(std::io::BufWriter::new(file), &log.meta)
        .map_err(|e| format!("writing {out_path}: {e}"))?;
    for (i, rec) in log.records.iter().enumerate() {
        let mut rec = rec.clone();
        rec.idx = i as u64;
        rec.start_ns = i as u64 * gap_ns;
        rec.duration_ns = 0;
        w.append(&rec)
            .map_err(|e| format!("writing {out_path}: {e}"))?;
    }
    let n = w.count();
    w.finish().map_err(|e| format!("sealing {out_path}: {e}"))?;
    println!("sanitized      {n} records -> {out_path} (gap {gap_ns} ns)");
    Ok(())
}

const USAGE: &str =
    "usage: copred_replay <info|run|verify|ab|export-tsv|import-tsv|sanitize> [key=value ...]";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    let result = match command.as_str() {
        "info" => cmd_info(rest),
        "run" => cmd_run(rest),
        "verify" => cmd_verify(rest),
        "ab" => cmd_ab(rest),
        "export-tsv" => cmd_export_tsv(rest),
        "import-tsv" => cmd_import_tsv(rest),
        "sanitize" => cmd_sanitize(rest),
        other => {
            eprintln!("copred_replay: unknown command '{other}'\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("copred_replay: {e}");
            let _ = std::io::stderr().flush();
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(argv: &[&str]) -> Vec<String> {
        argv.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn unknown_flag_fails_fast_and_lists_valid_flags() {
        let valid = &["log", "backend", "mode"];
        let err =
            Flags::parse("run", &strs(&["log=a.cprlog", "bakend=inproc"]), valid).unwrap_err();
        assert!(err.contains("unknown flag 'bakend' for 'run'"), "{err}");
        for flag in valid {
            assert!(err.contains(flag), "error should list {flag}: {err}");
        }
    }

    #[test]
    fn known_flags_parse() {
        let flags = Flags::parse(
            "run",
            &strs(&["log=a.cprlog", "mode=scaled", "speed=4"]),
            &["log", "mode", "speed"],
        )
        .unwrap();
        assert_eq!(flags.get("log"), Some("a.cprlog"));
        assert!(matches!(
            parse_mode(&flags),
            Ok(ReplayMode::Scaled { factor }) if factor == 4.0
        ));
    }

    #[test]
    fn bare_word_is_an_error() {
        let err = Flags::parse("info", &strs(&["log"]), &["log"]).unwrap_err();
        assert!(err.contains("expected key=value"), "{err}");
    }
}
