//! Pluggable replay targets.
//!
//! A [`ReplayBackend`] is anything that answers wire [`Request`]s with
//! wire [`Response`]s: the in-process [`SessionRegistry`] (fastest, and
//! the one whose per-session metrics ledger the conformance harness
//! audits), a loopback `copred_server` over TCP (exercises the full
//! frame/queue/worker path), and — through the same trait — a future
//! fleet of remote servers.

use copred_core::ChtParams;
use copred_service::protocol::{Request, Response, ServiceError};
use copred_service::{
    execute_batch, Server, ServerConfig, ServiceClient, SessionRegistry, SessionState,
};
use std::io;
use std::net::ToSocketAddrs;
use std::sync::Arc;

/// A target that can answer recorded requests. Implementations absorb
/// their own transient backpressure (`retry_after`) so the engine sees
/// only final answers, exactly like the recorder did.
pub trait ReplayBackend {
    /// Human-readable backend label for reports (`inproc`, `loopback`, ...).
    fn label(&self) -> &str;

    /// Answers one request.
    ///
    /// # Errors
    ///
    /// A transport- or backend-fatal failure (I/O, retry exhaustion) as a
    /// human-readable reason. Protocol-level failures are `Ok` carrying
    /// [`Response::Error`].
    fn call(&mut self, req: &Request) -> Result<Response, String>;
}

/// Replays against an in-process [`SessionRegistry`], executing batches
/// with the same [`execute_batch`] semantics as the server's worker pool
/// — minus the wire. Keeps an [`Arc`] to every session it opens (even
/// after close) so callers can audit the full per-session metrics ledger
/// afterwards.
pub struct InProcessBackend {
    registry: SessionRegistry,
    csp_step: usize,
    opened: Vec<Arc<SessionState>>,
    label: String,
}

impl InProcessBackend {
    /// A backend over a fresh registry with explicit CHT geometry and CSP
    /// stride.
    ///
    /// # Panics
    ///
    /// Panics when `capacity` is zero or not a power of two (the shard
    /// pool invariant).
    pub fn new(params: ChtParams, capacity: usize, csp_step: usize) -> Self {
        InProcessBackend {
            registry: SessionRegistry::new(params, capacity),
            csp_step,
            opened: Vec::new(),
            label: "inproc".to_string(),
        }
    }

    /// A backend whose CHT geometry, capacity, and CSP stride match
    /// [`ServerConfig::default`] — replays of logs recorded against a
    /// default server are bit-identical through this.
    pub fn with_server_defaults() -> Self {
        let cfg = ServerConfig::default();
        Self::new(cfg.cht_params, cfg.max_sessions, cfg.csp_step)
    }

    /// Renames the backend (useful for A/B reports).
    #[must_use]
    pub fn labeled(mut self, label: &str) -> Self {
        self.label = label.to_string();
        self
    }

    /// The backing registry.
    pub fn registry(&self) -> &SessionRegistry {
        &self.registry
    }

    /// Every session this backend opened, in open order, including ones
    /// closed since — their metrics ledgers stay readable.
    pub fn opened(&self) -> &[Arc<SessionState>] {
        &self.opened
    }
}

impl ReplayBackend for InProcessBackend {
    fn label(&self) -> &str {
        &self.label
    }

    fn call(&mut self, req: &Request) -> Result<Response, String> {
        let resp = match req {
            Request::Open {
                robot,
                link_count: _,
                mode,
                seed,
                fp,
            } => match self.registry.open_full(robot, *mode, *seed, *fp) {
                Ok(o) => {
                    self.opened.push(Arc::clone(&o.session));
                    Response::Session {
                        id: o.session.id,
                        warm: o.warm,
                    }
                }
                Err(e) => Response::Error(e),
            },
            Request::CheckMotion {
                session,
                motions,
                trace,
            } => match self.registry.get(*session) {
                // Echo the trace token exactly like the server does; it
                // never influences the check itself.
                Ok(s) => Response::Results {
                    results: execute_batch(&s, motions, self.csp_step),
                    trace: *trace,
                },
                Err(e) => Response::Error(e),
            },
            Request::CheckPose {
                session,
                motion,
                trace,
            } => match self.registry.get(*session) {
                Ok(s) => Response::Results {
                    results: execute_batch(&s, std::slice::from_ref(motion), self.csp_step),
                    trace: *trace,
                },
                Err(e) => Response::Error(e),
            },
            Request::Dump => Response::DumpDone {
                entries: copred_obs::flight_snapshot().len() as u64,
            },
            Request::ResetCht { session } => match self.registry.get(*session) {
                Ok(s) => {
                    s.shard.reset();
                    // Match the server: a reset also persists the cleared
                    // table (a no-op without a store).
                    s.persist_to_store();
                    Response::ResetDone
                }
                Err(e) => Response::Error(e),
            },
            // The recorder never logs stats ops (their values are
            // non-deterministic), but answer the shape anyway.
            Request::Stats { .. } => Response::Stats(Vec::new()),
            // Fleet replication verbs, answered with single-node
            // semantics: live-session images export fine, but there is
            // no store to get from, offer against, or push into.
            Request::SnapSession { session } => match self.registry.get(*session) {
                Ok(s) => Response::Snap {
                    fp: s.store_fp().unwrap_or(0),
                    payload: copred_store::snapshot::encode(&s.table_image()),
                },
                Err(e) => Response::Error(e),
            },
            Request::SnapGet { .. } => Response::Error(ServiceError::BadRequest(
                "snap_get needs a store-enabled server".into(),
            )),
            Request::SnapOffer { fp, .. } => Response::SnapWant {
                fp: *fp,
                want: false,
            },
            Request::SnapPush { .. } => Response::Error(ServiceError::BadRequest(
                "snap_push needs a store-enabled server".into(),
            )),
            Request::Close { session } => match self.registry.close(*session) {
                Ok(()) => Response::Closed,
                Err(e) => Response::Error(e),
            },
        };
        Ok(resp)
    }
}

/// Replays over TCP against a `copred_server` — either one this backend
/// starts and owns (loopback) or an external address. Absorbs
/// `retry_after` backpressure by sleeping as told, like the recorder's
/// client did.
pub struct LoopbackBackend {
    server: Option<Server>,
    client: ServiceClient,
    max_retries: usize,
    label: String,
}

impl LoopbackBackend {
    /// Starts an owned server with `config` and connects to it. The
    /// server shuts down when the backend drops.
    ///
    /// # Errors
    ///
    /// Bind/connect failures.
    pub fn start(config: ServerConfig) -> io::Result<Self> {
        let server = Server::start(config)?;
        let client = ServiceClient::connect(server.local_addr())?;
        Ok(LoopbackBackend {
            server: Some(server),
            client,
            max_retries: 64,
            label: "loopback".to_string(),
        })
    }

    /// Connects to an already-running server.
    ///
    /// # Errors
    ///
    /// Connect failures.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        Ok(LoopbackBackend {
            server: None,
            client: ServiceClient::connect(addr)?,
            max_retries: 64,
            label: "loopback".to_string(),
        })
    }

    /// Renames the backend (useful for A/B reports).
    #[must_use]
    pub fn labeled(mut self, label: &str) -> Self {
        self.label = label.to_string();
        self
    }

    /// The owned server, when this backend started one.
    pub fn server(&self) -> Option<&Server> {
        self.server.as_ref()
    }
}

impl ReplayBackend for LoopbackBackend {
    fn label(&self) -> &str {
        &self.label
    }

    fn call(&mut self, req: &Request) -> Result<Response, String> {
        let mut retries = 0;
        loop {
            match self.client.call(req) {
                Ok(Response::Error(ServiceError::RetryAfter { ms, message })) => {
                    if retries >= self.max_retries {
                        return Err(format!("backpressured {retries} times: {message}"));
                    }
                    retries += 1;
                    std::thread::sleep(std::time::Duration::from_millis(ms.max(1)));
                }
                Ok(resp) => return Ok(resp),
                Err(e) => return Err(format!("transport error: {e}")),
            }
        }
    }
}

/// Exists so the doc-comment contract is testable: every built-in
/// backend answers an `open` for each of the three scheduling modes.
#[cfg(test)]
mod tests {
    use super::*;
    use copred_service::protocol::SchedMode;

    #[test]
    fn inproc_backend_answers_open_check_close() {
        let mut b = InProcessBackend::new(ChtParams::paper_2d(), 4, 5);
        let open = Request::Open {
            robot: "planar-2d".to_string(),
            link_count: 1,
            mode: SchedMode::Coord,
            seed: 7,
            fp: None,
        };
        let Response::Session { id, warm } = b.call(&open).expect("open") else {
            panic!("want session");
        };
        assert!(!warm);
        assert_eq!(b.opened().len(), 1);
        let close = Request::Close { session: id };
        assert_eq!(b.call(&close).expect("close"), Response::Closed);
        // The ledger stays readable after close.
        assert_eq!(b.opened()[0].id, id);
        // Unknown session is a protocol error, not a backend error.
        let resp = b.call(&Request::Close { session: 999 }).expect("call");
        assert!(matches!(
            resp,
            Response::Error(ServiceError::NoSession(999))
        ));
    }
}
