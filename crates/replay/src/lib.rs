//! `copred-replay`: versioned op-log record/replay — the canonical
//! workload interchange format for copred backends.
//!
//! A recorded session is a **CPRDLOG** container ([`format`]): a
//! self-describing binary log carrying a magic + schema version, the
//! workload's seed / robot model / obstacle-set fingerprint / scale,
//! and one record per wire op (monotonic timestamps, session tag, full
//! request and response payloads), sealed by a checksummed footer with
//! the record count. The reader tolerates torn tails — a log truncated
//! mid-record (crash, `kill -9`) parses to the clean prefix — while
//! anything *decodably wrong* (bad magic, unknown version, checksum
//! mismatch) is a structured [`format::ReplayLogError`].
//!
//! The engine ([`engine`]) drives a log against any
//! [`backend::ReplayBackend`] in three modes: `sequential` (as fast as
//! possible), `timing` (faithful to recorded inter-op gaps, wall or
//! virtual clock), and `scaled` (gaps divided by a speed factor).
//! Because session tokens are server-assigned, the engine remaps
//! recorded tokens to live ones on the fly; with comparison on, every
//! live answer is held against the recorded one (open responses
//! normalized to mask the token) and differences surface as
//! [`engine::OpDiff`]s — the bit-identity signal the conformance
//! harness and the CI replay gate assert on.
//!
//! [`ab`] replays one log against two backends and rolls the differences
//! into a `bench_json` report.
//!
//! ## Format stability
//!
//! `CPRDLOG` version 1 is a stability contract (like `CPRDSNAP` and
//! `bench_json`): committed logs under `workloads/` must parse forever.
//! Additive evolution bumps [`format::LOG_VERSION`]; readers reject
//! newer versions with [`format::ReplayLogError::VersionMismatch`]
//! rather than guessing.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ab;
pub mod backend;
pub mod engine;
pub mod format;

pub use ab::{ab_report, run_ab, AbOutcome};
pub use backend::{InProcessBackend, LoopbackBackend, ReplayBackend};
pub use engine::{
    normalize_response, run_replay, Clock, OpDiff, ReplayError, ReplayMode, ReplayOptions,
    ReplayOutcome,
};
pub use format::{
    read_log, read_log_file, write_log, LogMeta, LogRecord, LogWriter, ReplayLog, ReplayLogError,
    LOG_MAGIC, LOG_VERSION,
};
