//! The replay engine: drives a [`ReplayLog`] against a
//! [`ReplayBackend`] in one of three modes, remapping recorded session
//! tokens to live ones and (optionally) holding every answer against the
//! recorded one.
//!
//! Replay is single-threaded and issues ops in log order, so per-session
//! request order — the only order the predictor's state depends on, since
//! each session leases a private CHT shard — is preserved no matter how
//! the recording interleaved connections.

use crate::backend::ReplayBackend;
use crate::format::ReplayLog;
use copred_obs::TraceId;
use copred_service::protocol::{Request, Response};
use copred_service::replay_stats;
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::Ordering;
use std::time::{Duration, Instant};

/// Which clock paces a timing-faithful replay.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Clock {
    /// Sleep on the OS clock until each op's recorded offset.
    Wall,
    /// Advance a simulated clock instantly — faithful gaps with zero
    /// wall time, for deterministic CI.
    Virtual,
}

/// How replayed ops are paced.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ReplayMode {
    /// As fast as possible, recorded gaps ignored.
    Sequential,
    /// Faithful to the recorded inter-op gaps.
    Timing {
        /// Wall or virtual pacing.
        clock: Clock,
    },
    /// Recorded gaps compressed (k > 1) or stretched (k < 1) by a speed
    /// factor, on the wall clock.
    Scaled {
        /// Speed factor; 2.0 replays twice as fast as recorded.
        factor: f64,
    },
}

impl ReplayMode {
    /// Wire-ish label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            ReplayMode::Sequential => "sequential",
            ReplayMode::Timing { .. } => "timing",
            ReplayMode::Scaled { .. } => "scaled",
        }
    }
}

/// Engine tunables.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReplayOptions {
    /// Pacing mode.
    pub mode: ReplayMode,
    /// When set, every answer is normalized and compared against the
    /// recorded response; differences land in
    /// [`ReplayOutcome::mismatches`].
    pub compare: bool,
    /// When set, every replayed check carries a *fresh* causal trace id
    /// derived from this seed and the record index — whatever the
    /// recording carried is replaced, so a replay is traceable as its own
    /// run. `None` keeps the recorded tokens verbatim.
    pub trace_seed: Option<u64>,
}

impl Default for ReplayOptions {
    fn default() -> Self {
        ReplayOptions {
            mode: ReplayMode::Sequential,
            compare: true,
            trace_seed: None,
        }
    }
}

/// One compared op whose live answer differed from the recording.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpDiff {
    /// Record index in the log.
    pub idx: u64,
    /// Wire verb.
    pub verb: String,
    /// Recorder session tag.
    pub tag: String,
    /// Normalized recorded response.
    pub expected: String,
    /// Normalized live response.
    pub actual: String,
}

/// Why a replay aborted. Mismatched responses are *not* errors (they are
/// the A/B signal); these are defects in the log or the transport.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplayError {
    /// A recorded request or response failed to parse.
    Parse {
        /// Record index.
        idx: u64,
        /// Which payload (`request` or `response`).
        what: &'static str,
        /// Parser's reason.
        reason: String,
    },
    /// A non-open op referenced a recorded session with no live mapping
    /// (its open failed, was never logged, or came after a close).
    UnknownSession {
        /// Record index.
        idx: u64,
        /// The recorded token.
        session: u64,
    },
    /// The backend failed fatally (transport error, retry exhaustion).
    Backend {
        /// Record index.
        idx: u64,
        /// Backend's reason.
        reason: String,
    },
}

impl fmt::Display for ReplayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplayError::Parse { idx, what, reason } => {
                write!(f, "record {idx}: unparseable {what}: {reason}")
            }
            ReplayError::UnknownSession { idx, session } => {
                write!(
                    f,
                    "record {idx}: no live session for recorded token {session}"
                )
            }
            ReplayError::Backend { idx, reason } => {
                write!(f, "record {idx}: backend failed: {reason}")
            }
        }
    }
}

impl std::error::Error for ReplayError {}

/// What one replay pass produced.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ReplayOutcome {
    /// Ops issued.
    pub ops: u64,
    /// Motion checks completed.
    pub checks: u64,
    /// Checks that reported a collision.
    pub collisions: u64,
    /// CDQs the backend executed (client-side sum over results).
    pub cdqs_issued: u64,
    /// CDQs the replayed motions declared.
    pub cdqs_total: u64,
    /// Normalized live response per op, in log order — two replays of the
    /// same log are deterministic exactly when these vectors are equal.
    pub responses: Vec<String>,
    /// Compared ops whose live answer differed from the recording (empty
    /// unless [`ReplayOptions::compare`]).
    pub mismatches: Vec<OpDiff>,
    /// Protocol-level errors the backend answered with (`err …`), which
    /// the recording did not have (recorded error ops compare equal
    /// instead).
    pub backend_errors: u64,
    /// Wall time of the pass.
    pub wall_ns: u64,
    /// Cumulative nanoseconds the replay ran behind the recorded
    /// schedule (timing/scaled wall modes; 0 for sequential/virtual).
    pub lag_ns: u64,
}

impl ReplayOutcome {
    /// Whether every compared answer matched the recording and no
    /// backend error surfaced.
    pub fn is_identical(&self) -> bool {
        self.mismatches.is_empty() && self.backend_errors == 0
    }

    /// Checks per second over the pass's wall time.
    pub fn checks_per_sec(&self) -> f64 {
        if self.wall_ns == 0 {
            return 0.0;
        }
        self.checks as f64 * 1e9 / self.wall_ns as f64
    }
}

/// Normalizes a response payload for comparison: session tokens are
/// server-assigned, so `ok session <id> …` masks the id (`warm` is kept —
/// a replay warm-starting differently from the recording is a real
/// difference), and the `trace` echo on results is stripped (the replay
/// deliberately attaches fresh ids, so echoes differ run to run without
/// the payload differing). Everything else compares byte-for-byte.
pub fn normalize_response(text: &str) -> String {
    match Response::from_text(text) {
        Ok(Response::Session { id: _, warm }) => {
            format!("ok session _ warm {}\n", u8::from(warm))
        }
        Ok(Response::Results {
            results,
            trace: Some(_),
        }) => Response::Results {
            results,
            trace: None,
        }
        .to_text(),
        _ => text.to_string(),
    }
}

fn rewrite_session(req: &mut Request, live: u64) {
    match req {
        Request::Open { .. }
        | Request::Dump
        | Request::SnapGet { .. }
        | Request::SnapOffer { .. }
        | Request::SnapPush { .. } => {}
        Request::CheckMotion { session, .. }
        | Request::CheckPose { session, .. }
        | Request::ResetCht { session }
        | Request::Close { session }
        | Request::SnapSession { session } => *session = live,
        Request::Stats { session } => {
            if session.is_some() {
                *session = Some(live);
            }
        }
    }
}

/// Replaces the request's trace token (if the verb carries one) with a
/// fresh id derived from the replay's trace seed and the record index.
fn rewrite_trace(req: &mut Request, seed: u64, idx: u64) {
    if let Request::CheckMotion { trace, .. } | Request::CheckPose { trace, .. } = req {
        *trace = Some(TraceId::derive(seed, idx));
    }
}

/// Replays `log` against `backend` per `opts`.
///
/// Side effects on the process-wide replay counters
/// ([`copred_service::replay_stats`]): `replays_run` once per pass,
/// `backend_errors` per error answer, and `timing_lag_ns` by the pass's
/// cumulative lag.
///
/// # Errors
///
/// See [`ReplayError`]. Response mismatches are not errors — they come
/// back in [`ReplayOutcome::mismatches`].
pub fn run_replay(
    log: &ReplayLog,
    backend: &mut dyn ReplayBackend,
    opts: &ReplayOptions,
) -> Result<ReplayOutcome, ReplayError> {
    // The whole pass is replay work on this thread; backend stages
    // (schedule/execute/predict) nest under this frame in profiles.
    let _replay_stage = copred_obs::stage(copred_obs::Stage::Replay);
    let epoch = Instant::now();
    let first_ns = log.records.first().map_or(0, |r| r.start_ns);
    let mut sessions: HashMap<u64, u64> = HashMap::new();
    let mut out = ReplayOutcome::default();

    for rec in &log.records {
        // Pacing first: the recorded offset is the op's issue time.
        let scheduled_ns = match opts.mode {
            ReplayMode::Sequential => None,
            ReplayMode::Timing { clock: Clock::Wall } => {
                Some(rec.start_ns.saturating_sub(first_ns))
            }
            ReplayMode::Timing {
                clock: Clock::Virtual,
            } => None, // virtual time advances instantly, lag is 0
            ReplayMode::Scaled { factor } => {
                assert!(
                    factor.is_finite() && factor > 0.0,
                    "scaled mode needs a positive finite factor"
                );
                Some((rec.start_ns.saturating_sub(first_ns) as f64 / factor) as u64)
            }
        };
        if let Some(target_ns) = scheduled_ns {
            let now_ns = epoch.elapsed().as_nanos() as u64;
            if target_ns > now_ns {
                std::thread::sleep(Duration::from_nanos(target_ns - now_ns));
            } else {
                out.lag_ns += now_ns - target_ns;
            }
        }

        let mut req = Request::from_text(&rec.request).map_err(|reason| ReplayError::Parse {
            idx: rec.idx,
            what: "request",
            reason,
        })?;
        if !matches!(
            req,
            Request::Open { .. }
                | Request::Stats { session: None }
                | Request::Dump
                | Request::SnapGet { .. }
                | Request::SnapOffer { .. }
                | Request::SnapPush { .. }
        ) {
            let live = *sessions
                .get(&rec.session)
                .ok_or(ReplayError::UnknownSession {
                    idx: rec.idx,
                    session: rec.session,
                })?;
            rewrite_session(&mut req, live);
        }
        if let Some(seed) = opts.trace_seed {
            rewrite_trace(&mut req, seed, rec.idx);
        }

        let resp = backend.call(&req).map_err(|reason| ReplayError::Backend {
            idx: rec.idx,
            reason,
        })?;
        out.ops += 1;

        match &resp {
            Response::Session { id, warm: _ } => {
                sessions.insert(rec.session, *id);
            }
            Response::Results { results: rs, .. } => {
                for r in rs {
                    out.checks += 1;
                    out.collisions += u64::from(r.colliding);
                    out.cdqs_issued += r.cdqs_executed;
                    out.cdqs_total += r.cdqs_total;
                }
            }
            Response::Closed => {
                sessions.remove(&rec.session);
            }
            Response::Error(_) => {
                out.backend_errors += 1;
            }
            Response::ResetDone
            | Response::Stats(_)
            | Response::DumpDone { .. }
            | Response::Snap { .. }
            | Response::SnapNone { .. }
            | Response::SnapWant { .. }
            | Response::SnapApplied { .. } => {}
        }

        let actual = normalize_response(&resp.to_text());
        if opts.compare && rec.verb != "stats" {
            // Stats values (latency quantiles) are non-deterministic by
            // construction; everything else must answer bit-identically.
            let expected = normalize_response(&rec.response);
            if expected != actual {
                out.mismatches.push(OpDiff {
                    idx: rec.idx,
                    verb: rec.verb.clone(),
                    tag: rec.tag.clone(),
                    expected,
                    actual: actual.clone(),
                });
            }
        }
        out.responses.push(actual);
    }

    out.wall_ns = epoch.elapsed().as_nanos() as u64;
    let stats = replay_stats();
    stats.replays_run.fetch_add(1, Ordering::Relaxed);
    stats
        .backend_errors
        .fetch_add(out.backend_errors, Ordering::Relaxed);
    stats.timing_lag_ns.fetch_add(out.lag_ns, Ordering::Relaxed);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::{LogMeta, LogRecord};

    /// A backend that answers every request successfully and records the
    /// order it saw ops in.
    struct MockBackend {
        seen: Vec<(String, u64)>,
        next_id: u64,
    }

    impl MockBackend {
        fn new() -> Self {
            MockBackend {
                seen: Vec::new(),
                next_id: 100,
            }
        }
    }

    impl ReplayBackend for MockBackend {
        fn label(&self) -> &str {
            "mock"
        }
        fn call(&mut self, req: &Request) -> Result<Response, String> {
            Ok(match req {
                Request::Open { seed, .. } => {
                    self.seen.push(("open".to_string(), *seed));
                    self.next_id += 1;
                    Response::Session {
                        id: self.next_id,
                        warm: false,
                    }
                }
                Request::Close { session } => {
                    self.seen.push(("close".to_string(), *session));
                    Response::Closed
                }
                Request::ResetCht { session } => {
                    self.seen.push(("reset".to_string(), *session));
                    Response::ResetDone
                }
                other => return Err(format!("mock cannot answer {other:?}")),
            })
        }
    }

    fn mini_log() -> ReplayLog {
        // Two interleaved sessions: open A, open B, reset A, close A,
        // close B — with recorded tokens distinct from mock-assigned ones.
        let ops = [
            (
                0u64,
                7u64,
                "open",
                "open planar-2d 1 coord 11\n",
                "ok session 7 warm 0\n",
            ),
            (
                1,
                9,
                "open",
                "open planar-2d 1 coord 12\n",
                "ok session 9 warm 0\n",
            ),
            (2, 7, "reset", "reset 7\n", "ok reset\n"),
            (3, 7, "close", "close 7\n", "ok closed\n"),
            (4, 9, "close", "close 9\n", "ok closed\n"),
        ];
        ReplayLog {
            meta: LogMeta::default(),
            records: ops
                .iter()
                .map(|&(idx, session, verb, req, resp)| LogRecord {
                    idx,
                    session,
                    start_ns: idx * 50_000,
                    duration_ns: 0,
                    verb: verb.to_string(),
                    status: "ok".to_string(),
                    tag: format!("conn0/trace{session}"),
                    request: req.to_string(),
                    response: resp.to_string(),
                })
                .collect(),
            complete: true,
        }
    }

    #[test]
    fn sessions_are_remapped_and_open_responses_normalized() {
        let log = mini_log();
        let mut backend = MockBackend::new();
        let out = run_replay(&log, &mut backend, &ReplayOptions::default()).expect("replay");
        assert!(out.is_identical(), "mismatches: {:?}", out.mismatches);
        // The mock assigned 101 and 102; the recorded tokens 7 and 9 were
        // rewritten on every subsequent op.
        assert_eq!(
            backend.seen,
            vec![
                ("open".to_string(), 11),
                ("open".to_string(), 12),
                ("reset".to_string(), 101),
                ("close".to_string(), 101),
                ("close".to_string(), 102),
            ]
        );
        assert_eq!(out.responses[0], "ok session _ warm 0\n");
    }

    #[test]
    fn scaled_mode_preserves_op_order_at_every_factor() {
        for factor in [0.5f64, 1.0, 3.0, 64.0, 1e9] {
            let log = mini_log();
            let mut backend = MockBackend::new();
            let opts = ReplayOptions {
                mode: ReplayMode::Scaled { factor },
                compare: true,
                trace_seed: None,
            };
            let out = run_replay(&log, &mut backend, &opts).expect("replay");
            assert!(out.is_identical(), "factor {factor}");
            let verbs: Vec<&str> = backend.seen.iter().map(|(v, _)| v.as_str()).collect();
            assert_eq!(
                verbs,
                vec!["open", "open", "reset", "close", "close"],
                "factor {factor} reordered ops"
            );
        }
    }

    #[test]
    fn timing_virtual_mode_is_instant_and_lag_free() {
        let mut log = mini_log();
        // Recorded gaps of a minute each: wall replay would take minutes.
        for (i, r) in log.records.iter_mut().enumerate() {
            r.start_ns = i as u64 * 60_000_000_000;
        }
        let mut backend = MockBackend::new();
        let opts = ReplayOptions {
            mode: ReplayMode::Timing {
                clock: Clock::Virtual,
            },
            compare: true,
            trace_seed: None,
        };
        let out = run_replay(&log, &mut backend, &opts).expect("replay");
        assert!(out.is_identical());
        assert_eq!(out.lag_ns, 0);
        assert!(
            out.wall_ns < 5_000_000_000,
            "virtual clock must not sleep recorded gaps"
        );
    }

    #[test]
    fn unknown_session_and_unparseable_request_are_errors() {
        let mut log = mini_log();
        // Drop session 7's open: its reset now targets an unmapped token.
        log.records.remove(0);
        let err = run_replay(&log, &mut MockBackend::new(), &ReplayOptions::default()).unwrap_err();
        assert!(matches!(
            err,
            ReplayError::UnknownSession { session: 7, .. }
        ));

        let mut log = mini_log();
        log.records[0].request = "warp 9\n".to_string();
        let err = run_replay(&log, &mut MockBackend::new(), &ReplayOptions::default()).unwrap_err();
        assert!(matches!(
            err,
            ReplayError::Parse {
                what: "request",
                ..
            }
        ));
    }

    #[test]
    fn mismatch_is_collected_not_fatal() {
        let mut log = mini_log();
        log.records[2].response = "ok closed\n".to_string(); // recorded lie
        let out =
            run_replay(&log, &mut MockBackend::new(), &ReplayOptions::default()).expect("replay");
        assert_eq!(out.mismatches.len(), 1);
        assert_eq!(out.mismatches[0].idx, 2);
        assert_eq!(out.mismatches[0].expected, "ok closed\n");
        assert_eq!(out.mismatches[0].actual, "ok reset\n");
    }
}
