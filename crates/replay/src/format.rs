//! The `CPRDLOG` container: a versioned, self-describing binary op-log.
//!
//! Layout, all integers little-endian:
//!
//! ```text
//! header   magic "CPRDLOG\0" (8) | version u32 | seed u64 | fingerprint u64
//!          | robot str | workload str | scale str
//! record   kind 0x01 | idx u64 | session u64 | start_ns u64 | duration_ns u64
//!          | verb str | status str | tag str | request str | response str
//! footer   kind 0x02 | record_count u64 | crc32 u32      (crc of all prior bytes)
//! str      len u32 | UTF-8 bytes (len <= MAX_PAYLOAD)
//! ```
//!
//! The reader is torn-tail tolerant: a log whose tail was cut mid-record
//! (crash, `kill -9` before the footer) parses to the clean record prefix
//! with [`ReplayLog::complete`] `== false`. Truncation is the *only*
//! defect that degrades silently; everything decodable but wrong — bad
//! magic, unknown version, an invalid kind byte, an oversized length, a
//! footer whose count or checksum disagrees — is a structured
//! [`ReplayLogError`], never a panic.

use copred_service::{OpRecord, OplogMeta};
use std::fmt;
use std::io::{self, Write};

/// First 8 bytes of every log.
pub const LOG_MAGIC: [u8; 8] = *b"CPRDLOG\0";

/// Container version this crate writes. Readers reject other versions;
/// see ROADMAP.md's op-log stability contract for the bump rules.
pub const LOG_VERSION: u32 = 1;

/// Largest accepted string field (matches the wire protocol's
/// `MAX_FRAME_LEN`): a length above this is corruption, not an
/// allocation request.
pub const MAX_PAYLOAD: usize = 16 << 20;

const KIND_RECORD: u8 = 0x01;
const KIND_FOOTER: u8 = 0x02;

/// Run provenance embedded in the log header — everything a replay needs
/// to know it is driving the workload the log came from.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LogMeta {
    /// Base seed of the recorded run (per-session seeds derive from it).
    pub seed: u64,
    /// Obstacle-set fingerprint (`copred_store::environment_fingerprint`
    /// folded over the run's environments; 0 when unknown).
    pub fingerprint: u64,
    /// Robot model name, e.g. `planar-2d` (empty when the run mixed
    /// robots).
    pub robot: String,
    /// Workload label, e.g. a combo label like `MPNet-2D`.
    pub workload: String,
    /// Scale description, e.g. `queries=3 connections=1 mode=coord`.
    pub scale: String,
}

impl LogMeta {
    /// Projects onto the legacy TSV op-log metadata (drops the robot and
    /// fingerprint fields, which the TSV format predates).
    pub fn to_oplog_meta(&self) -> OplogMeta {
        OplogMeta {
            seed: self.seed,
            workload: self.workload.clone(),
            scale: self.scale.clone(),
        }
    }

    /// Lifts TSV op-log metadata, supplying the fields the TSV lacks.
    pub fn from_oplog_meta(m: &OplogMeta, robot: &str, fingerprint: u64) -> Self {
        LogMeta {
            seed: m.seed,
            fingerprint,
            robot: robot.to_string(),
            workload: m.workload.clone(),
            scale: m.scale.clone(),
        }
    }
}

/// One recorded wire operation: the full request and (final) response
/// payload text plus the timing envelope — everything needed to re-issue
/// the op and check the answer bit-for-bit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogRecord {
    /// Global operation index in recorded completion order.
    pub idx: u64,
    /// Session token the recording run saw (replays remap it).
    pub session: u64,
    /// Start time as nanoseconds since the run epoch; monotonically
    /// non-decreasing across the log.
    pub start_ns: u64,
    /// Wall time from write to parsed reply.
    pub duration_ns: u64,
    /// Wire verb (`open`, `check_motion`, `close`, ...).
    pub verb: String,
    /// Recorded outcome (`ok`, `retry_after`, `err`).
    pub status: String,
    /// Recorder session tag, e.g. `conn0/trace2` — stable across replays
    /// where the server-assigned token is not.
    pub tag: String,
    /// Request payload text as sent on the wire.
    pub request: String,
    /// Response payload text as received (final reply after any
    /// `retry_after` rounds).
    pub response: String,
}

impl LogRecord {
    /// Lifts a TSV [`OpRecord`] (lossless: the TSV carries every field).
    pub fn from_op_record(op: &OpRecord) -> Self {
        LogRecord {
            idx: op.idx,
            session: op.session,
            start_ns: op.start_ns,
            duration_ns: op.duration_ns,
            verb: op.verb.clone(),
            status: op.status.clone(),
            tag: op.tag.clone(),
            request: op.request.clone(),
            response: op.response.clone(),
        }
    }

    /// Projects onto a TSV [`OpRecord`] (`bytes` is recomputed from the
    /// request payload, exactly as the recorder computes it).
    pub fn to_op_record(&self) -> OpRecord {
        OpRecord {
            idx: self.idx,
            session: self.session,
            verb: self.verb.clone(),
            bytes: self.request.len() as u64,
            start_ns: self.start_ns,
            duration_ns: self.duration_ns,
            status: self.status.clone(),
            tag: self.tag.clone(),
            request: self.request.clone(),
            response: self.response.clone(),
        }
    }
}

/// Why a log failed to read. Truncation is *not* here — a torn tail
/// yields an `Ok` prefix with [`ReplayLog::complete`] `== false`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplayLogError {
    /// The first 8 bytes are not [`LOG_MAGIC`] — not a CPRDLOG file.
    BadMagic,
    /// The container version is not [`LOG_VERSION`].
    VersionMismatch {
        /// Version found in the header.
        found: u32,
    },
    /// The input ends inside the header — before the metadata is even
    /// readable there is no usable prefix to degrade to.
    TruncatedHeader,
    /// Decodable but invalid bytes: a bad kind byte, a length above
    /// [`MAX_PAYLOAD`], non-UTF-8 string bytes, or content after the
    /// footer.
    Corrupt {
        /// Byte offset of the defect.
        offset: usize,
        /// Human-readable reason.
        reason: String,
    },
    /// A complete footer disagrees with the body (record count or
    /// checksum) — silent corruption, not truncation.
    FooterMismatch {
        /// Human-readable reason.
        reason: String,
    },
}

impl fmt::Display for ReplayLogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplayLogError::BadMagic => write!(f, "not a CPRDLOG file (bad magic)"),
            ReplayLogError::VersionMismatch { found } => {
                write!(
                    f,
                    "CPRDLOG version mismatch: want {LOG_VERSION}, found {found}"
                )
            }
            ReplayLogError::TruncatedHeader => write!(f, "log truncated inside the header"),
            ReplayLogError::Corrupt { offset, reason } => {
                write!(f, "log corrupt at byte {offset}: {reason}")
            }
            ReplayLogError::FooterMismatch { reason } => {
                write!(f, "log footer mismatch: {reason}")
            }
        }
    }
}

impl std::error::Error for ReplayLogError {}

/// A fully-read log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplayLog {
    /// Header metadata.
    pub meta: LogMeta,
    /// The clean record prefix (everything, when `complete`).
    pub records: Vec<LogRecord>,
    /// Whether the checksummed footer was present and verified. `false`
    /// means the tail was torn: `records` is the longest clean prefix.
    pub complete: bool,
}

/// Incremental CRC-32 (IEEE 802.3, reflected 0xEDB88320) — bit-identical
/// to `copred_store::crc::crc32` but streamable, so the writer checksums
/// as it goes instead of buffering the whole log.
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    /// A fresh checksum.
    pub fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Folds `bytes` into the checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut c = self.state;
        for &b in bytes {
            c ^= u32::from(b);
            for _ in 0..8 {
                let mask = (c & 1).wrapping_neg();
                c = (c >> 1) ^ (0xEDB8_8320 & mask);
            }
        }
        self.state = c;
    }

    /// The checksum of everything folded so far.
    pub fn finish(&self) -> u32 {
        !self.state
    }
}

/// One-shot convenience over [`Crc32`].
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(bytes);
    c.finish()
}

fn push_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

/// Encodes the header block for `meta`.
pub fn encode_header(meta: &LogMeta) -> Vec<u8> {
    let mut out = Vec::with_capacity(64 + meta.robot.len() + meta.workload.len());
    out.extend_from_slice(&LOG_MAGIC);
    out.extend_from_slice(&LOG_VERSION.to_le_bytes());
    out.extend_from_slice(&meta.seed.to_le_bytes());
    out.extend_from_slice(&meta.fingerprint.to_le_bytes());
    push_str(&mut out, &meta.robot);
    push_str(&mut out, &meta.workload);
    push_str(&mut out, &meta.scale);
    out
}

/// Encodes one record block.
pub fn encode_record(rec: &LogRecord) -> Vec<u8> {
    let mut out = Vec::with_capacity(64 + rec.request.len() + rec.response.len());
    out.push(KIND_RECORD);
    out.extend_from_slice(&rec.idx.to_le_bytes());
    out.extend_from_slice(&rec.session.to_le_bytes());
    out.extend_from_slice(&rec.start_ns.to_le_bytes());
    out.extend_from_slice(&rec.duration_ns.to_le_bytes());
    push_str(&mut out, &rec.verb);
    push_str(&mut out, &rec.status);
    push_str(&mut out, &rec.tag);
    push_str(&mut out, &rec.request);
    push_str(&mut out, &rec.response);
    out
}

fn encode_footer(count: u64, crc: u32) -> Vec<u8> {
    let mut out = Vec::with_capacity(13);
    out.push(KIND_FOOTER);
    out.extend_from_slice(&count.to_le_bytes());
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

/// Streaming log writer: header up front, one block per record, and a
/// checksummed footer from [`LogWriter::finish`] — or, best-effort, on
/// drop. A process killed mid-write leaves a torn tail the reader
/// degrades through; a process that drops the writer cleanly leaves a
/// complete, verifiable log.
#[derive(Debug)]
pub struct LogWriter<W: Write> {
    out: io::BufWriter<W>,
    crc: Crc32,
    count: u64,
    finished: bool,
}

impl<W: Write> LogWriter<W> {
    /// Wraps `sink` and writes the header for `meta`.
    ///
    /// # Errors
    ///
    /// Any write failure.
    pub fn new(sink: W, meta: &LogMeta) -> io::Result<Self> {
        let header = encode_header(meta);
        let mut crc = Crc32::new();
        crc.update(&header);
        let mut out = io::BufWriter::new(sink);
        out.write_all(&header)?;
        Ok(LogWriter {
            out,
            crc,
            count: 0,
            finished: false,
        })
    }

    /// Appends one record.
    ///
    /// # Errors
    ///
    /// Any write failure, or [`io::ErrorKind::InvalidInput`] for a string
    /// field above [`MAX_PAYLOAD`].
    pub fn append(&mut self, rec: &LogRecord) -> io::Result<()> {
        for (what, s) in [
            ("verb", &rec.verb),
            ("status", &rec.status),
            ("tag", &rec.tag),
            ("request", &rec.request),
            ("response", &rec.response),
        ] {
            if s.len() > MAX_PAYLOAD {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    format!("{what} of {} bytes exceeds MAX_PAYLOAD", s.len()),
                ));
            }
        }
        let block = encode_record(rec);
        self.crc.update(&block);
        self.out.write_all(&block)?;
        self.count += 1;
        Ok(())
    }

    /// Records appended so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Writes the checksummed footer and flushes.
    ///
    /// # Errors
    ///
    /// Any write or flush failure.
    pub fn finish(mut self) -> io::Result<()> {
        self.write_footer()
    }

    fn write_footer(&mut self) -> io::Result<()> {
        if self.finished {
            return Ok(());
        }
        let footer = encode_footer(self.count, self.crc.finish());
        self.out.write_all(&footer)?;
        self.out.flush()?;
        self.finished = true;
        Ok(())
    }
}

impl<W: Write> Drop for LogWriter<W> {
    fn drop(&mut self) {
        let _ = self.write_footer();
    }
}

/// Encodes a whole log (header, records, footer) in one buffer.
pub fn write_log(meta: &LogMeta, records: &[LogRecord]) -> Vec<u8> {
    let mut out = encode_header(meta);
    for rec in records {
        out.extend_from_slice(&encode_record(rec));
    }
    let crc = crc32(&out);
    out.extend_from_slice(&encode_footer(records.len() as u64, crc));
    out
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// What a bounded read attempt produced: the value, a clean end of
/// input, or corruption.
enum Take<T> {
    Got(T),
    Torn,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Take<&'a [u8]> {
        if self.bytes.len() - self.pos < n {
            return Take::Torn;
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Take::Got(s)
    }

    fn take_u32(&mut self) -> Take<u32> {
        match self.take(4) {
            Take::Got(b) => Take::Got(u32::from_le_bytes(b.try_into().expect("4 bytes"))),
            Take::Torn => Take::Torn,
        }
    }

    fn take_u64(&mut self) -> Take<u64> {
        match self.take(8) {
            Take::Got(b) => Take::Got(u64::from_le_bytes(b.try_into().expect("8 bytes"))),
            Take::Torn => Take::Torn,
        }
    }

    fn take_str(&mut self) -> Result<Take<String>, ReplayLogError> {
        let at = self.pos;
        let len = match self.take_u32() {
            Take::Got(n) => n as usize,
            Take::Torn => return Ok(Take::Torn),
        };
        if len > MAX_PAYLOAD {
            return Err(ReplayLogError::Corrupt {
                offset: at,
                reason: format!("string length {len} exceeds MAX_PAYLOAD"),
            });
        }
        let at = self.pos;
        match self.take(len) {
            Take::Torn => Ok(Take::Torn),
            Take::Got(b) => match std::str::from_utf8(b) {
                Ok(s) => Ok(Take::Got(s.to_string())),
                Err(_) => Err(ReplayLogError::Corrupt {
                    offset: at,
                    reason: "string is not UTF-8".to_string(),
                }),
            },
        }
    }
}

macro_rules! take_or_torn {
    ($expr:expr) => {
        match $expr {
            Take::Got(v) => v,
            Take::Torn => return Ok(None),
        }
    };
}

fn read_record(c: &mut Cursor<'_>) -> Result<Option<LogRecord>, ReplayLogError> {
    let idx = take_or_torn!(c.take_u64());
    let session = take_or_torn!(c.take_u64());
    let start_ns = take_or_torn!(c.take_u64());
    let duration_ns = take_or_torn!(c.take_u64());
    let verb = take_or_torn!(c.take_str()?);
    let status = take_or_torn!(c.take_str()?);
    let tag = take_or_torn!(c.take_str()?);
    let request = take_or_torn!(c.take_str()?);
    let response = take_or_torn!(c.take_str()?);
    Ok(Some(LogRecord {
        idx,
        session,
        start_ns,
        duration_ns,
        verb,
        status,
        tag,
        request,
        response,
    }))
}

/// Reads a log from bytes, tolerating a torn tail.
///
/// # Errors
///
/// [`ReplayLogError::BadMagic`] / [`ReplayLogError::VersionMismatch`] /
/// [`ReplayLogError::TruncatedHeader`] when the header is unusable,
/// [`ReplayLogError::Corrupt`] for invalid (not merely missing) bytes,
/// and [`ReplayLogError::FooterMismatch`] when a present footer
/// contradicts the body. Truncation anywhere after the header is not an
/// error: the result carries the clean record prefix with
/// [`ReplayLog::complete`] `== false`.
pub fn read_log(bytes: &[u8]) -> Result<ReplayLog, ReplayLogError> {
    let mut c = Cursor { bytes, pos: 0 };
    match c.take(8) {
        Take::Got(m) if m == LOG_MAGIC => {}
        Take::Got(_) => return Err(ReplayLogError::BadMagic),
        Take::Torn => {
            // Even a whole-file prefix of the magic is "not a CPRDLOG
            // file" if it can't prove otherwise — except the empty file,
            // which is unambiguously a truncated header.
            if bytes.is_empty() || LOG_MAGIC.starts_with(bytes) {
                return Err(ReplayLogError::TruncatedHeader);
            }
            return Err(ReplayLogError::BadMagic);
        }
    }
    let version = match c.take_u32() {
        Take::Got(v) => v,
        Take::Torn => return Err(ReplayLogError::TruncatedHeader),
    };
    if version != LOG_VERSION {
        return Err(ReplayLogError::VersionMismatch { found: version });
    }
    fn header_u64(c: &mut Cursor<'_>) -> Result<u64, ReplayLogError> {
        match c.take_u64() {
            Take::Got(v) => Ok(v),
            Take::Torn => Err(ReplayLogError::TruncatedHeader),
        }
    }
    fn header_str(c: &mut Cursor<'_>) -> Result<String, ReplayLogError> {
        match c.take_str()? {
            Take::Got(s) => Ok(s),
            Take::Torn => Err(ReplayLogError::TruncatedHeader),
        }
    }
    let seed = header_u64(&mut c)?;
    let fingerprint = header_u64(&mut c)?;
    let robot = header_str(&mut c)?;
    let workload = header_str(&mut c)?;
    let scale = header_str(&mut c)?;
    let meta = LogMeta {
        seed,
        fingerprint,
        robot,
        workload,
        scale,
    };

    let mut records = Vec::new();
    let mut complete = false;
    loop {
        if c.pos == bytes.len() {
            break; // torn tail: ended cleanly after a record, no footer
        }
        let at = c.pos;
        let kind = bytes[c.pos];
        c.pos += 1;
        match kind {
            KIND_RECORD => match read_record(&mut c)? {
                Some(rec) => records.push(rec),
                None => break, // torn mid-record: keep the prefix
            },
            KIND_FOOTER => {
                let count = match c.take_u64() {
                    Take::Got(v) => v,
                    Take::Torn => break, // torn mid-footer
                };
                let crc = match c.take_u32() {
                    Take::Got(v) => v,
                    Take::Torn => break,
                };
                if c.pos != bytes.len() {
                    return Err(ReplayLogError::Corrupt {
                        offset: c.pos,
                        reason: format!("{} trailing bytes after footer", bytes.len() - c.pos),
                    });
                }
                if count != records.len() as u64 {
                    return Err(ReplayLogError::FooterMismatch {
                        reason: format!(
                            "footer declares {count} records, body has {}",
                            records.len()
                        ),
                    });
                }
                let body_crc = crc32(&bytes[..at]);
                if crc != body_crc {
                    return Err(ReplayLogError::FooterMismatch {
                        reason: format!("footer crc {crc:08x} != body crc {body_crc:08x}"),
                    });
                }
                complete = true;
                break;
            }
            other => {
                return Err(ReplayLogError::Corrupt {
                    offset: at,
                    reason: format!("bad block kind 0x{other:02x}"),
                })
            }
        }
    }
    copred_service::replay_stats()
        .records_read
        .fetch_add(records.len() as u64, std::sync::atomic::Ordering::Relaxed);
    Ok(ReplayLog {
        meta,
        records,
        complete,
    })
}

/// Reads a log from a file.
///
/// # Errors
///
/// I/O failures as [`io::Error`]; format defects are wrapped as
/// [`io::ErrorKind::InvalidData`] carrying the [`ReplayLogError`] text.
pub fn read_log_file(path: &std::path::Path) -> io::Result<ReplayLog> {
    let bytes = std::fs::read(path)?;
    read_log(&bytes).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta() -> LogMeta {
        LogMeta {
            seed: 42,
            fingerprint: 0xFEED_F00D,
            robot: "planar-2d".to_string(),
            workload: "MPNet-2D".to_string(),
            scale: "queries=3 connections=1".to_string(),
        }
    }

    fn records(n: usize) -> Vec<LogRecord> {
        (0..n)
            .map(|i| LogRecord {
                idx: i as u64,
                session: 1 + (i as u64 % 3),
                start_ns: i as u64 * 1_000,
                duration_ns: 500,
                verb: if i == 0 { "open" } else { "check_motion" }.to_string(),
                status: "ok".to_string(),
                tag: format!("conn0/trace{}", i % 3),
                request: format!("check_motion {} 1\nmotion M0 2 1\n", 1 + i % 3),
                response: "ok results 1\nresult 0 1 2 8\n".to_string(),
            })
            .collect()
    }

    #[test]
    fn roundtrip_bit_exact() {
        let recs = records(5);
        let bytes = write_log(&meta(), &recs);
        let log = read_log(&bytes).expect("read");
        assert_eq!(log.meta, meta());
        assert_eq!(log.records, recs);
        assert!(log.complete);
        // Writing the parsed log back is byte-identical.
        assert_eq!(write_log(&log.meta, &log.records), bytes);
    }

    #[test]
    fn streaming_writer_matches_one_shot_and_seals_on_drop() {
        let recs = records(4);
        let mut buf: Vec<u8> = Vec::new();
        {
            let mut w = LogWriter::new(&mut buf, &meta()).expect("header");
            for r in &recs {
                w.append(r).expect("append");
            }
            assert_eq!(w.count(), 4);
            // No finish(): drop must seal the footer.
        }
        assert_eq!(buf, write_log(&meta(), &recs));
        assert!(read_log(&buf).expect("read").complete);
    }

    #[test]
    fn empty_log_roundtrips() {
        let bytes = write_log(&meta(), &[]);
        let log = read_log(&bytes).expect("read");
        assert!(log.records.is_empty());
        assert!(log.complete);
    }

    #[test]
    fn torn_tail_degrades_to_clean_prefix() {
        let recs = records(3);
        let bytes = write_log(&meta(), &recs);
        let header_len = encode_header(&meta()).len();
        // Cut right after the second record: two clean records, no footer.
        let cut = header_len + encode_record(&recs[0]).len() + encode_record(&recs[1]).len();
        let log = read_log(&bytes[..cut]).expect("read");
        assert_eq!(log.records, recs[..2]);
        assert!(!log.complete);
        // Cut mid-record: one clean record.
        let log = read_log(&bytes[..cut - 3]).expect("read");
        assert_eq!(log.records, recs[..1]);
        assert!(!log.complete);
    }

    #[test]
    fn header_truncation_and_bad_magic_are_errors() {
        let bytes = write_log(&meta(), &records(1));
        assert_eq!(read_log(&[]).unwrap_err(), ReplayLogError::TruncatedHeader);
        assert_eq!(
            read_log(&bytes[..5]).unwrap_err(),
            ReplayLogError::TruncatedHeader
        );
        assert_eq!(
            read_log(&bytes[..20]).unwrap_err(),
            ReplayLogError::TruncatedHeader
        );
        assert_eq!(read_log(b"NOTALOG!").unwrap_err(), ReplayLogError::BadMagic);
    }

    #[test]
    fn version_mismatch_is_structured() {
        let mut bytes = write_log(&meta(), &[]);
        bytes[8] = 99;
        assert_eq!(
            read_log(&bytes).unwrap_err(),
            ReplayLogError::VersionMismatch { found: 99 }
        );
    }

    #[test]
    fn corrupt_footer_and_bad_kind_are_hard_errors() {
        let recs = records(2);
        let good = write_log(&meta(), &recs);
        // Flip a byte in the first record's payload: the footer crc
        // catches it.
        let mut bad = good.clone();
        let off = encode_header(&meta()).len() + 40;
        bad[off] ^= 0x40;
        assert!(matches!(
            read_log(&bad).unwrap_err(),
            ReplayLogError::FooterMismatch { .. } | ReplayLogError::Corrupt { .. }
        ));
        // A wrong count in the footer.
        let mut bad = good.clone();
        let footer_at = good.len() - 12;
        bad[footer_at] = bad[footer_at].wrapping_add(1);
        assert!(matches!(
            read_log(&bad).unwrap_err(),
            ReplayLogError::FooterMismatch { .. }
        ));
        // An invalid kind byte where a block should start.
        let mut bad = good.clone();
        bad[encode_header(&meta()).len()] = 0x7F;
        assert!(matches!(
            read_log(&bad).unwrap_err(),
            ReplayLogError::Corrupt { .. }
        ));
        // Trailing bytes after a valid footer.
        let mut bad = good.clone();
        bad.push(0);
        assert!(matches!(
            read_log(&bad).unwrap_err(),
            ReplayLogError::Corrupt { .. }
        ));
        // An absurd string length is corruption, not an allocation.
        let mut bad = good;
        let len_at = encode_header(&meta()).len() + 1 + 32; // verb length field
        bad[len_at..len_at + 4].copy_from_slice(&(u32::MAX).to_le_bytes());
        assert!(matches!(
            read_log(&bad).unwrap_err(),
            ReplayLogError::Corrupt { .. } | ReplayLogError::FooterMismatch { .. }
        ));
    }

    #[test]
    fn op_record_conversion_is_lossless() {
        let rec = records(2).pop().unwrap();
        let back = LogRecord::from_op_record(&rec.to_op_record());
        assert_eq!(back, rec);
        let m = meta();
        let lifted = LogMeta::from_oplog_meta(&m.to_oplog_meta(), &m.robot, m.fingerprint);
        assert_eq!(lifted, m);
    }
}
