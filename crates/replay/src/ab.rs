//! A/B replay: the same log driven against two backends, with the
//! differences rolled into a machine-readable `bench_json` report (the
//! same schema `copred-perfwatch` tracks over time).

use crate::backend::ReplayBackend;
use crate::engine::{run_replay, ReplayError, ReplayOptions, ReplayOutcome};
use crate::format::ReplayLog;
use copred_obs::{BenchRecord, BenchReport, Better};

/// Both passes of one A/B run, labeled by backend.
#[derive(Debug, Clone)]
pub struct AbOutcome {
    /// Backend A's label.
    pub label_a: String,
    /// Backend A's pass.
    pub a: ReplayOutcome,
    /// Backend B's label.
    pub label_b: String,
    /// Backend B's pass.
    pub b: ReplayOutcome,
}

impl AbOutcome {
    /// Whether the two backends answered every op identically (after
    /// session-id normalization).
    pub fn responses_identical(&self) -> bool {
        self.a.responses == self.b.responses
    }

    /// Indices of ops the two backends answered differently.
    pub fn diverging_ops(&self) -> Vec<usize> {
        self.a
            .responses
            .iter()
            .zip(&self.b.responses)
            .enumerate()
            .filter(|(_, (ra, rb))| ra != rb)
            .map(|(i, _)| i)
            .collect()
    }
}

/// Replays `log` against both backends in turn (A first), with the same
/// options.
///
/// # Errors
///
/// The first [`ReplayError`] either pass hits; mismatches against the
/// *recording* are not errors and land in each side's outcome.
pub fn run_ab(
    log: &ReplayLog,
    a: &mut dyn ReplayBackend,
    b: &mut dyn ReplayBackend,
    opts: &ReplayOptions,
) -> Result<AbOutcome, ReplayError> {
    let label_a = a.label().to_string();
    let label_b = b.label().to_string();
    let out_a = run_replay(log, a, opts)?;
    let out_b = run_replay(log, b, opts)?;
    Ok(AbOutcome {
        label_a,
        a: out_a,
        label_b,
        b: out_b,
    })
}

fn side_records(out: &ReplayOutcome, suite: &str) -> Vec<BenchRecord> {
    vec![
        BenchRecord::deterministic(suite, "ops", out.ops as f64, "ops", Better::Higher),
        BenchRecord::deterministic(suite, "checks", out.checks as f64, "checks", Better::Higher),
        BenchRecord::deterministic(
            suite,
            "collisions",
            out.collisions as f64,
            "checks",
            Better::Lower,
        ),
        BenchRecord::deterministic(
            suite,
            "cdqs_issued",
            out.cdqs_issued as f64,
            "cdqs",
            Better::Lower,
        ),
        BenchRecord::deterministic(
            suite,
            "mismatches",
            out.mismatches.len() as f64,
            "ops",
            Better::Lower,
        ),
        BenchRecord::deterministic(
            suite,
            "backend_errors",
            out.backend_errors as f64,
            "ops",
            Better::Lower,
        ),
        BenchRecord::deterministic(suite, "wall_ns", out.wall_ns as f64, "ns", Better::Lower),
        BenchRecord::deterministic(
            suite,
            "checks_per_s",
            out.checks_per_sec(),
            "checks/s",
            Better::Higher,
        ),
    ]
}

/// Rolls an [`AbOutcome`] into a `bench_json` report: one suite per
/// backend plus a `replay_ab` diff suite
/// (`responses_identical`, per-side mismatch counts, and the wall-time
/// ratio `wall_b_over_a`).
pub fn ab_report(log: &ReplayLog, ab: &AbOutcome, label: &str) -> BenchReport {
    let mut report = BenchReport::new(
        label,
        "unknown",
        log.meta.seed,
        &format!("{} [{}]", log.meta.scale, log.meta.workload),
    );
    let suite_a = format!("replay_{}", ab.label_a);
    let suite_b = format!("replay_{}", ab.label_b);
    report.records.extend(side_records(&ab.a, &suite_a));
    report.records.extend(side_records(&ab.b, &suite_b));
    report.records.push(BenchRecord::deterministic(
        "replay_ab",
        "responses_identical",
        f64::from(u8::from(ab.responses_identical())),
        "bool",
        Better::Higher,
    ));
    report.records.push(BenchRecord::deterministic(
        "replay_ab",
        "diverging_ops",
        ab.diverging_ops().len() as f64,
        "ops",
        Better::Lower,
    ));
    let ratio = if ab.a.wall_ns == 0 {
        0.0
    } else {
        ab.b.wall_ns as f64 / ab.a.wall_ns as f64
    };
    report.records.push(BenchRecord::deterministic(
        "replay_ab",
        "wall_b_over_a",
        ratio,
        "ratio",
        Better::Lower,
    ));
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::InProcessBackend;
    use crate::format::{LogMeta, LogRecord};
    use copred_core::ChtParams;

    fn open_close_log() -> ReplayLog {
        let ops = [
            (
                0u64,
                1u64,
                "open",
                "open planar-2d 1 naive 5\n",
                "ok session 1 warm 0\n",
            ),
            (1, 1, "close", "close 1\n", "ok closed\n"),
        ];
        ReplayLog {
            meta: LogMeta {
                seed: 5,
                fingerprint: 0,
                robot: "planar-2d".to_string(),
                workload: "synthetic".to_string(),
                scale: "ops=2".to_string(),
            },
            records: ops
                .iter()
                .map(|&(idx, session, verb, req, resp)| LogRecord {
                    idx,
                    session,
                    start_ns: idx * 1000,
                    duration_ns: 0,
                    verb: verb.to_string(),
                    status: "ok".to_string(),
                    tag: "t".to_string(),
                    request: req.to_string(),
                    response: resp.to_string(),
                })
                .collect(),
            complete: true,
        }
    }

    #[test]
    fn identical_backends_produce_identical_sides() {
        let log = open_close_log();
        let mut a = InProcessBackend::new(ChtParams::paper_2d(), 4, 5).labeled("left");
        let mut b = InProcessBackend::new(ChtParams::paper_2d(), 4, 5).labeled("right");
        let ab = run_ab(&log, &mut a, &mut b, &ReplayOptions::default()).expect("ab");
        assert!(ab.responses_identical());
        assert!(ab.diverging_ops().is_empty());
        let report = ab_report(&log, &ab, "test_ab");
        assert_eq!(report.seed, 5);
        let ident = report
            .records
            .iter()
            .find(|r| r.suite == "replay_ab" && r.metric == "responses_identical")
            .expect("diff record");
        assert_eq!(ident.value, 1.0);
        assert!(report
            .records
            .iter()
            .any(|r| r.suite == "replay_left" && r.metric == "ops" && r.value == 2.0));
    }
}
