//! Property-based tests for the software execution models.

use copred_core::ChtParams;
use copred_geometry::Vec3;
use copred_kinematics::Config;
use copred_planners::Stage;
use copred_swexec::{gpu_sweep, run_gpu_model, ConcurrentCht, GpuModelParams, MOTION_LANES};
use copred_trace::{MotionTrace, TraceCdq};
use proptest::prelude::*;

fn motions() -> impl Strategy<Value = Vec<MotionTrace>> {
    prop::collection::vec(
        (2usize..30).prop_flat_map(|n| {
            (
                prop::collection::vec(any::<bool>(), n),
                prop::collection::vec((-1.2..1.2f64, -1.2..1.2f64), n),
            )
                .prop_map(move |(outcomes, centers)| MotionTrace {
                    stage: Stage::Explore,
                    poses: vec![Config::zeros(2); n],
                    cdqs: (0..n)
                        .map(|i| TraceCdq {
                            pose_idx: i as u32,
                            link_idx: 0,
                            center: Vec3::new(centers[i].0, centers[i].1, 0.0),
                            colliding: outcomes[i],
                            obstacle_tests: 3,
                        })
                        .collect(),
                })
        }),
        1..20,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn gpu_cdqs_monotone_in_width(ms in motions()) {
        // Wider per-motion parallelism can only add redundant in-flight
        // work, never remove it (baseline, no prediction).
        let p = GpuModelParams::default();
        let mut prev = 0u64;
        for threads in [64usize, 128, 256, 1024, 4096] {
            let r = run_gpu_model(&ms, threads, false, &p, ChtParams::paper_2d(), 1);
            prop_assert!(r.cdqs >= prev, "width shrank CDQs: {} < {prev}", r.cdqs);
            prev = r.cdqs;
        }
    }

    #[test]
    fn gpu_executed_bounded_by_decomposition(ms in motions(), threads_pow in 0u32..7) {
        let threads = MOTION_LANES << threads_pow;
        let total: u64 = ms.iter().map(|m| m.cdq_count() as u64).sum();
        for pred in [false, true] {
            let r = run_gpu_model(&ms, threads, pred, &GpuModelParams::default(), ChtParams::paper_2d(), 1);
            prop_assert!(r.cdqs <= total);
            prop_assert!(r.time >= 0.0);
        }
    }

    #[test]
    fn gpu_prediction_never_increases_cdqs(ms in motions(), threads_pow in 0u32..7) {
        let threads = MOTION_LANES << threads_pow;
        let p = GpuModelParams::default();
        let base = run_gpu_model(&ms, threads, false, &p, ChtParams::paper_2d(), 1);
        let pred = run_gpu_model(&ms, threads, true, &p, ChtParams::paper_2d(), 1);
        // Prediction reorders within each motion and early-exits between
        // waves; on identical traces it can only match or beat the baseline
        // per motion in expectation — allow per-wave granularity slack.
        let slack: u64 = ms.len() as u64 * (threads / MOTION_LANES) as u64;
        prop_assert!(pred.cdqs <= base.cdqs + slack);
    }

    #[test]
    fn gpu_model_is_deterministic(ms in motions()) {
        let p = GpuModelParams::default();
        let a = run_gpu_model(&ms, 512, true, &p, ChtParams::paper_2d(), 9);
        let b = run_gpu_model(&ms, 512, true, &p, ChtParams::paper_2d(), 9);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn concurrent_gang_probe_matches_scalar(
        observes in prop::collection::vec((0u64..64, any::<bool>(), 0.0..1.0f64), 0..120),
        probes in prop::collection::vec(0u64..64, 1..40),
        counter_bits in 1u32..=8,
        s_idx in 0usize..4,
    ) {
        // The SWAR gang probe (and its scalar fallback for non-SWAR
        // strategies) must agree with per-code predicts at every counter
        // width 1..=8 — including the u64-packed-lane widths the SWAR
        // compare handles directly (S = 0 and S = 1).
        let s = [0.0, 0.5, 1.0, 2.0][s_idx];
        let cht = ConcurrentCht::new(ChtParams {
            bits: 6,
            counter_bits,
            strategy: copred_core::Strategy::new(s),
            update_fraction: 1.0,
        });
        for &(code, colliding, u) in &observes {
            cht.observe(code, colliding, u);
        }
        let mut batch = vec![false; probes.len()];
        cht.predict_batch(&probes, &mut batch);
        for (i, &code) in probes.iter().enumerate() {
            prop_assert_eq!(
                batch[i],
                cht.predict(code),
                "probe {} diverged (S={}, counter_bits={})", i, s, counter_bits
            );
        }
    }

    #[test]
    fn sweep_rows_match_single_runs(ms in motions()) {
        let p = GpuModelParams::default();
        let rows = gpu_sweep(&ms, &[64, 256], &p, ChtParams::paper_2d(), 2);
        prop_assert_eq!(rows.len(), 2);
        prop_assert!((rows[0].cdqs_base - 1.0).abs() < 1e-12);
        for r in &rows {
            prop_assert!(r.cdqs_pred.is_finite() && r.time_pred.is_finite());
        }
    }
}
