//! # copred-swexec
//!
//! Software (CPU and GPU) execution models for collision prediction
//! (paper §III-E and Fig. 11): a real multi-threaded CPU implementation
//! with a lock-free shared Collision History Table, and a calibrated
//! bulk-parallel GPU model capturing redundant-work growth, warp
//! divergence, and shared-table memory stalls.
//!
//! ## Example
//!
//! ```
//! use copred_swexec::{run_cpu, CpuExecConfig};
//! use copred_collision::Environment;
//! use copred_geometry::{Aabb, Vec3};
//! use copred_kinematics::{presets, Config, Motion, Robot};
//!
//! let robot: Robot = presets::planar_2d().into();
//! let env = Environment::new(
//!     robot.workspace(),
//!     vec![Aabb::new(Vec3::new(0.1, -1.0, -0.1), Vec3::new(0.5, 1.0, 0.1))],
//! );
//! let motions = vec![
//!     Motion::new(Config::new(vec![-0.8, 0.0]), Config::new(vec![0.8, 0.0])).discretize(16),
//! ];
//! let result = run_cpu(&robot, &env, &motions, &CpuExecConfig::default());
//! assert_eq!(result.colliding_motions, 1);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod concurrent_cht;
mod cpu;
mod gpu;
mod shard;

pub use concurrent_cht::ConcurrentCht;
pub use cpu::{run_cpu, run_cpu_batched, CpuExecConfig, CpuExecResult};
pub use gpu::{gpu_sweep, run_gpu_model, GpuModelParams, GpuRun, GpuSweepRow, MOTION_LANES};
pub use shard::ShardedCht;
