//! Multi-threaded CPU collision detection with a shared predictor
//! (paper §III-E).
//!
//! Each worker thread executes Algorithm 1 over a group of motions; the
//! Collision History Table is shared between all threads. The run measures
//! both the executed CDQ count (computation) and wall-clock time, matching
//! the paper's CPU experiment (25.3% CDQ reduction, 13.8% runtime reduction
//! on a Cortex A57 — the absolute split depends on the host, the *gap*
//! between computation and runtime reduction comes from CHT cache traffic).

use crate::concurrent_cht::ConcurrentCht;
use copred_collision::Environment;
use copred_core::hash::CollisionHash;
use copred_core::HashInput;
use copred_core::{ChtParams, CoordHash};
use copred_geometry::{BatchObb, OBB_LANES};
use copred_kinematics::{Config, Robot};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// Configuration of a CPU software collision-detection run.
#[derive(Debug, Clone)]
pub struct CpuExecConfig {
    /// Worker threads (the paper uses 64).
    pub n_threads: usize,
    /// Whether collision prediction is enabled.
    pub with_prediction: bool,
    /// CHT parameters (ignored without prediction).
    pub cht_params: ChtParams,
    /// Seed for the per-thread `U`-policy streams.
    pub seed: u64,
}

impl Default for CpuExecConfig {
    fn default() -> Self {
        CpuExecConfig {
            n_threads: 8,
            with_prediction: true,
            cht_params: ChtParams::paper_arm(),
            seed: 1,
        }
    }
}

/// Result of a CPU run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CpuExecResult {
    /// Total CDQs executed across all motions.
    pub cdqs_executed: u64,
    /// Number of motions found colliding.
    pub colliding_motions: u64,
    /// Wall-clock time of the parallel section.
    pub wall_time: Duration,
}

/// Runs motion-environment collision detection for `motions` (each already
/// discretized into sample poses) across `cfg.n_threads` threads.
///
/// # Panics
///
/// Panics when `cfg.n_threads` is zero.
pub fn run_cpu(
    robot: &Robot,
    env: &Environment,
    motions: &[Vec<Config>],
    cfg: &CpuExecConfig,
) -> CpuExecResult {
    assert!(cfg.n_threads > 0, "need at least one worker thread");
    let cht = ConcurrentCht::new(cfg.cht_params);
    let hash = CoordHash::paper_default(robot);
    let cdqs = AtomicU64::new(0);
    let colliding = AtomicU64::new(0);
    let next = AtomicUsize::new(0);

    let run_span = copred_obs::span("swexec", "run_cpu");
    let start = Instant::now();
    std::thread::scope(|scope| {
        for t in 0..cfg.n_threads {
            let cht = &cht;
            let hash = &hash;
            let cdqs = &cdqs;
            let colliding = &colliding;
            let next = &next;
            let thread_seed = cfg.seed ^ ((t as u64 + 1) * 0x9E37_79B9);
            scope.spawn(move || {
                // The whole worker lifetime is swexec work; predict and
                // execute frames nest under it below.
                let _swexec_stage = copred_obs::stage(copred_obs::Stage::SwExec);
                // Cheap per-thread xorshift stream for the U policy.
                let mut state = thread_seed | 1;
                let mut rand01 = move || {
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    (state >> 11) as f64 / (1u64 << 53) as f64
                };
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= motions.len() {
                        break;
                    }
                    let poses = &motions[i];
                    let mut executed = 0u64;
                    let mut hit = false;
                    if cfg.with_prediction {
                        // Algorithm 1: predicted CDQs first, queue the rest.
                        let predict_span = copred_obs::span("swexec", "predict");
                        let predict_stage = copred_obs::stage(copred_obs::Stage::Predict);
                        let mut queue: Vec<(usize, copred_geometry::Vec3, copred_geometry::Obb)> =
                            Vec::new();
                        'outer: for (pi, q) in poses.iter().enumerate() {
                            let pose = robot.fk(q);
                            for link in &pose.links {
                                let input = HashInput {
                                    config: q,
                                    center: link.center,
                                };
                                let code = hash.code(&input);
                                if cht.predict(code) {
                                    executed += 1;
                                    let c = env.obb_collides(&link.obb);
                                    cht.observe(code, c, rand01());
                                    if c {
                                        hit = true;
                                        break 'outer;
                                    }
                                } else {
                                    queue.push((pi, link.center, link.obb));
                                }
                            }
                        }
                        drop(predict_stage);
                        drop(predict_span);
                        if !hit {
                            let _execute_span = copred_obs::span("swexec", "execute");
                            let _execute_stage = copred_obs::stage(copred_obs::Stage::Execute);
                            for (pi, center, obb) in queue {
                                executed += 1;
                                let c = env.obb_collides(&obb);
                                let input = HashInput {
                                    config: &poses[pi],
                                    center,
                                };
                                cht.observe(hash.code(&input), c, rand01());
                                if c {
                                    hit = true;
                                    break;
                                }
                            }
                        }
                    } else {
                        // Naive sequential checking with early exit.
                        let _execute_span = copred_obs::span("swexec", "execute");
                        let _execute_stage = copred_obs::stage(copred_obs::Stage::Execute);
                        'outer2: for q in poses {
                            let pose = robot.fk(q);
                            for link in &pose.links {
                                executed += 1;
                                if env.obb_collides(&link.obb) {
                                    hit = true;
                                    break 'outer2;
                                }
                            }
                        }
                    }
                    cdqs.fetch_add(executed, Ordering::Relaxed);
                    if hit {
                        colliding.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
    });
    drop(run_span);
    if copred_obs::enabled() {
        // CHT health at end of run, as Chrome counter tracks.
        copred_obs::counter("swexec", "cht_occupancy", cht.occupancy() as u64);
        copred_obs::counter("swexec", "cht_saturated", cht.saturated_entries() as u64);
        copred_obs::counter("swexec", "cht_writes", cht.writes());
        copred_obs::counter("swexec", "cht_alias_events", cht.alias_events());
    }
    CpuExecResult {
        cdqs_executed: cdqs.load(Ordering::Relaxed),
        colliding_motions: colliding.load(Ordering::Relaxed),
        wall_time: start.elapsed(),
    }
}

/// Poses per precompute block in [`run_cpu_batched`]. Eight poses keep the
/// flattened CDQ count a multiple of the SAT lane width for single-link
/// planar robots and several full batches for arms.
const POSE_BLOCK: usize = 8;

/// Batched variant of [`run_cpu`]: identical Algorithm 1 semantics, SoA
/// collision hot path.
///
/// Per motion, poses are processed in blocks of [`POSE_BLOCK`]: forward
/// kinematics runs for the block, the link OBBs are packed
/// [`copred_geometry::OBB_LANES`] wide and their environment verdicts
/// precomputed with the lane-parallel SAT, and their COORD codes computed
/// with the batched hash. Algorithm 1 then *replays* over the cached codes
/// and verdicts in the exact scalar order — predict, execute-if-predicted,
/// observe with the same per-thread `U`-draw stream, queue-and-drain
/// otherwise — so `cdqs_executed`, `colliding_motions`, and the CHT state
/// trajectory are bit-identical to [`run_cpu`] at every thread count. (CHT
/// predictions must stay sequential here: each observe can flip a later
/// prediction. Gang-probing is only sound when all predicts precede all
/// observes, as in the GPU model.) The only extra work is physical: SAT
/// verdicts for at most one block past an early exit are computed and
/// discarded, never counted.
///
/// # Panics
///
/// Panics when `cfg.n_threads` is zero.
pub fn run_cpu_batched(
    robot: &Robot,
    env: &Environment,
    motions: &[Vec<Config>],
    cfg: &CpuExecConfig,
) -> CpuExecResult {
    assert!(cfg.n_threads > 0, "need at least one worker thread");
    let cht = ConcurrentCht::new(cfg.cht_params);
    let hash = CoordHash::paper_default(robot);
    let cdqs = AtomicU64::new(0);
    let colliding = AtomicU64::new(0);
    let next = AtomicUsize::new(0);

    let run_span = copred_obs::span("swexec", "run_cpu_batched");
    let start = Instant::now();
    std::thread::scope(|scope| {
        for t in 0..cfg.n_threads {
            let cht = &cht;
            let hash = &hash;
            let cdqs = &cdqs;
            let colliding = &colliding;
            let next = &next;
            let thread_seed = cfg.seed ^ ((t as u64 + 1) * 0x9E37_79B9);
            scope.spawn(move || {
                // Batched replayer workers publish the same swexec frame
                // as the scalar path so profiles compare like-for-like.
                let _swexec_stage = copred_obs::stage(copred_obs::Stage::SwExec);
                // Same per-thread xorshift stream as the scalar path.
                let mut state = thread_seed | 1;
                let mut rand01 = move || {
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    (state >> 11) as f64 / (1u64 << 53) as f64
                };
                // Per-block scratch, reused across motions.
                let mut centers: Vec<copred_geometry::Vec3> = Vec::new();
                let mut obbs: Vec<copred_geometry::Obb> = Vec::new();
                let mut codes: Vec<u64> = Vec::new();
                let mut verdicts: Vec<bool> = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= motions.len() {
                        break;
                    }
                    let poses = &motions[i];
                    let mut executed = 0u64;
                    let mut hit = false;
                    let mut queue: Vec<(u64, bool)> = Vec::new();
                    'blocks: for block in poses.chunks(POSE_BLOCK) {
                        centers.clear();
                        obbs.clear();
                        for q in block {
                            let pose = robot.fk(q);
                            for link in &pose.links {
                                centers.push(link.center);
                                obbs.push(link.obb);
                            }
                        }
                        codes.resize(centers.len(), 0);
                        hash.code_batch(&centers, &mut codes);
                        verdicts.clear();
                        for chunk in obbs.chunks(OBB_LANES) {
                            let batch = BatchObb::from_obbs(chunk);
                            let (hits, _) = env.obb_collides_batch_with_cost(&batch);
                            verdicts.extend_from_slice(&hits[..chunk.len()]);
                        }
                        if cfg.with_prediction {
                            // Replay Algorithm 1 over the cached values.
                            for (&code, &c) in codes.iter().zip(&verdicts) {
                                if cht.predict(code) {
                                    executed += 1;
                                    cht.observe(code, c, rand01());
                                    if c {
                                        hit = true;
                                        break 'blocks;
                                    }
                                } else {
                                    queue.push((code, c));
                                }
                            }
                        } else {
                            for &c in &verdicts {
                                executed += 1;
                                if c {
                                    hit = true;
                                    break 'blocks;
                                }
                            }
                        }
                    }
                    if cfg.with_prediction && !hit {
                        for (code, c) in queue.drain(..) {
                            executed += 1;
                            cht.observe(code, c, rand01());
                            if c {
                                hit = true;
                                break;
                            }
                        }
                    }
                    cdqs.fetch_add(executed, Ordering::Relaxed);
                    if hit {
                        colliding.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
    });
    drop(run_span);
    if copred_obs::enabled() {
        copred_obs::counter("swexec", "cht_occupancy", cht.occupancy() as u64);
        copred_obs::counter("swexec", "cht_saturated", cht.saturated_entries() as u64);
        copred_obs::counter("swexec", "cht_writes", cht.writes());
        copred_obs::counter("swexec", "cht_alias_events", cht.alias_events());
    }
    CpuExecResult {
        cdqs_executed: cdqs.load(Ordering::Relaxed),
        colliding_motions: colliding.load(Ordering::Relaxed),
        wall_time: start.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use copred_geometry::{Aabb, Vec3};
    use copred_kinematics::{presets, Motion};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn workload() -> (Robot, Environment, Vec<Vec<Config>>) {
        let robot: Robot = presets::planar_2d().into();
        let env = Environment::new(
            robot.workspace(),
            vec![Aabb::new(
                Vec3::new(0.1, -1.0, -0.1),
                Vec3::new(0.5, 1.0, 0.1),
            )],
        );
        let mut rng = StdRng::seed_from_u64(17);
        let motions: Vec<Vec<Config>> = (0..120)
            .map(|_| {
                Motion::new(
                    robot.sample_uniform(&mut rng),
                    robot.sample_uniform(&mut rng),
                )
                .discretize(20)
            })
            .collect();
        (robot, env, motions)
    }

    #[test]
    fn prediction_reduces_cdqs() {
        let (robot, env, motions) = workload();
        let base = run_cpu(
            &robot,
            &env,
            &motions,
            &CpuExecConfig {
                with_prediction: false,
                n_threads: 4,
                ..Default::default()
            },
        );
        let pred = run_cpu(
            &robot,
            &env,
            &motions,
            &CpuExecConfig {
                with_prediction: true,
                n_threads: 4,
                cht_params: ChtParams::paper_2d(),
                ..Default::default()
            },
        );
        // Same answers.
        assert_eq!(base.colliding_motions, pred.colliding_motions);
        // Less computation.
        assert!(
            pred.cdqs_executed < base.cdqs_executed,
            "pred {} !< base {}",
            pred.cdqs_executed,
            base.cdqs_executed
        );
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let (robot, env, motions) = workload();
        let one = run_cpu(
            &robot,
            &env,
            &motions,
            &CpuExecConfig {
                with_prediction: false,
                n_threads: 1,
                ..Default::default()
            },
        );
        let eight = run_cpu(
            &robot,
            &env,
            &motions,
            &CpuExecConfig {
                with_prediction: false,
                n_threads: 8,
                ..Default::default()
            },
        );
        assert_eq!(one.colliding_motions, eight.colliding_motions);
        assert_eq!(one.cdqs_executed, eight.cdqs_executed);
    }

    #[test]
    fn batched_replayer_is_bit_identical_to_scalar() {
        // The core contract of the SoA hot path: at one thread (the
        // deterministic configuration perfwatch pins), the batched replayer
        // must reproduce the scalar path's executed-CDQ count and colliding
        // set exactly — prediction on and off, planar and arm.
        let (robot, env, motions) = workload();
        for with_prediction in [false, true] {
            let cfg = CpuExecConfig {
                n_threads: 1,
                with_prediction,
                cht_params: ChtParams::paper_2d(),
                seed: 9,
            };
            let scalar = run_cpu(&robot, &env, &motions, &cfg);
            let batched = run_cpu_batched(&robot, &env, &motions, &cfg);
            assert_eq!(
                scalar.cdqs_executed, batched.cdqs_executed,
                "prediction={with_prediction}"
            );
            assert_eq!(scalar.colliding_motions, batched.colliding_motions);
        }
        let arm: Robot = presets::kuka_iiwa().into();
        let arm_env = Environment::new(
            arm.workspace(),
            vec![Aabb::from_center_half_extents(
                Vec3::new(0.5, 0.0, 0.4),
                Vec3::splat(0.2),
            )],
        );
        let mut rng = StdRng::seed_from_u64(3);
        let arm_motions: Vec<Vec<Config>> = (0..20)
            .map(|_| {
                Motion::new(arm.sample_uniform(&mut rng), arm.sample_uniform(&mut rng))
                    .discretize(10)
            })
            .collect();
        let cfg = CpuExecConfig {
            n_threads: 1,
            ..Default::default()
        };
        let scalar = run_cpu(&arm, &arm_env, &arm_motions, &cfg);
        let batched = run_cpu_batched(&arm, &arm_env, &arm_motions, &cfg);
        assert_eq!(scalar.cdqs_executed, batched.cdqs_executed);
        assert_eq!(scalar.colliding_motions, batched.colliding_motions);
    }

    #[test]
    fn batched_thread_count_does_not_change_results() {
        let (robot, env, motions) = workload();
        let one = run_cpu_batched(
            &robot,
            &env,
            &motions,
            &CpuExecConfig {
                with_prediction: false,
                n_threads: 1,
                ..Default::default()
            },
        );
        let eight = run_cpu_batched(
            &robot,
            &env,
            &motions,
            &CpuExecConfig {
                with_prediction: false,
                n_threads: 8,
                ..Default::default()
            },
        );
        assert_eq!(one.colliding_motions, eight.colliding_motions);
        assert_eq!(one.cdqs_executed, eight.cdqs_executed);
    }

    #[test]
    fn works_on_arm_robot() {
        let robot: Robot = presets::kuka_iiwa().into();
        let env = Environment::new(
            robot.workspace(),
            vec![Aabb::from_center_half_extents(
                Vec3::new(0.5, 0.0, 0.4),
                Vec3::splat(0.2),
            )],
        );
        let mut rng = StdRng::seed_from_u64(3);
        let motions: Vec<Vec<Config>> = (0..20)
            .map(|_| {
                Motion::new(
                    robot.sample_uniform(&mut rng),
                    robot.sample_uniform(&mut rng),
                )
                .discretize(10)
            })
            .collect();
        let r = run_cpu(&robot, &env, &motions, &CpuExecConfig::default());
        assert!(r.cdqs_executed > 0);
        assert!(r.wall_time > Duration::ZERO);
    }

    #[test]
    #[should_panic(expected = "worker thread")]
    fn zero_threads_rejected() {
        let (robot, env, motions) = workload();
        let _ = run_cpu(
            &robot,
            &env,
            &motions,
            &CpuExecConfig {
                n_threads: 0,
                ..Default::default()
            },
        );
    }
}
