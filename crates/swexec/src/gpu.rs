//! GPU-like bulk-parallel execution model (paper Fig. 11).
//!
//! On a GPU, the poses of one motion are checked by many threads in
//! parallel. Early exit cannot cancel work that is already in flight, so the
//! wider the per-motion parallelism, the more *redundant* CDQs execute
//! beyond the first collision. Collision prediction counteracts this by
//! ordering predicted-colliding CDQs into the earliest wavefronts — but
//! software prediction adds warp divergence and shared-hash-table memory
//! stalls that grow with thread count, which is why the paper measures a
//! runtime *increase* at 2048–4096 threads despite fewer CDQs.
//!
//! The model executes trace CDQs in wavefronts of width `threads /
//! MOTION_LANES` and charges calibrated per-wavefront and per-access costs
//! (DESIGN.md substitution: Titan V measurements → parameterized model; the
//! shape, not absolute nanoseconds, is the reproduction target).

use copred_core::{Cht, ChtParams};
use copred_trace::MotionTrace;

/// Concurrent motion lanes: the baseline 64-thread configuration processes
/// 64 motions with one thread each, so per-motion width is `threads / 64`.
pub const MOTION_LANES: usize = 64;

/// Cost parameters of the GPU model (arbitrary time units; only ratios
/// matter).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpuModelParams {
    /// Cost of one CDQ wavefront (narrow-phase tests run in lockstep).
    pub wave_cost: f64,
    /// Memory-system cost per executed CDQ: wide execution is bandwidth
    /// bound, so per-motion time is floored at `executed × mem_bw_cost`
    /// (real GPUs stop scaling once the memory system saturates).
    pub mem_bw_cost: f64,
    /// Per-CDQ cost of hashing + CHT lookup when prediction is on (lookups
    /// run in parallel across lanes but contend on the shared table).
    pub cht_access_cost: f64,
    /// Extra per-lookup contention cost, multiplied by log2(threads):
    /// shared-table memory stalls grow with parallelism.
    pub contention_coeff: f64,
    /// Per-wavefront divergence penalty when prediction reorders CDQs
    /// (skipped lanes idle in lockstep).
    pub divergence_coeff: f64,
}

impl Default for GpuModelParams {
    fn default() -> Self {
        GpuModelParams {
            wave_cost: 1.0,
            mem_bw_cost: 0.12,
            cht_access_cost: 0.020,
            contention_coeff: 0.004,
            divergence_coeff: 0.25,
        }
    }
}

/// Result of one modeled GPU run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpuRun {
    /// Total thread count modeled.
    pub threads: usize,
    /// CDQs executed (including redundant in-flight work).
    pub cdqs: u64,
    /// Modeled execution time (arbitrary units).
    pub time: f64,
}

/// Runs the GPU model over a motion workload.
///
/// # Panics
///
/// Panics when `threads` is smaller than [`MOTION_LANES`].
pub fn run_gpu_model(
    motions: &[MotionTrace],
    threads: usize,
    with_prediction: bool,
    params: &GpuModelParams,
    cht_params: ChtParams,
    seed: u64,
) -> GpuRun {
    assert!(
        threads >= MOTION_LANES,
        "model needs at least {MOTION_LANES} threads (one per motion lane)"
    );
    let width = threads / MOTION_LANES;
    let mut cht = Cht::new(cht_params, seed);
    let mut total_cdqs = 0u64;
    let mut total_time = 0.0f64;
    // Per-lookup cost including shared-table contention.
    let lookup_cost = params.cht_access_cost + params.contention_coeff * (threads as f64).log2();

    for m in motions {
        // Build the execution order over CDQ indices.
        let n = m.cdqs.len();
        let mut pred_time = 0.0f64;
        let order: Vec<usize> = if with_prediction {
            // Hash + predict each CDQ (one CHT read per CDQ); lookups run in
            // parallel across the motion's lanes but contend on the table.
            let codes: Vec<u64> = m
                .cdqs
                .iter()
                .map(|c| coord_code(c.center, cht.params().bits))
                .collect();
            // Gang-probe the whole motion in one pass: every predict
            // happens before any observe for this motion, so the batched
            // lookup is bit-identical to the sequential predict loop.
            let mut preds = vec![false; n];
            cht.predict_batch(&codes, &mut preds);
            let mut predicted = Vec::with_capacity(n);
            let mut rest = Vec::with_capacity(n);
            for (i, &p) in preds.iter().enumerate() {
                if p {
                    predicted.push(i);
                } else {
                    rest.push(i);
                }
            }
            pred_time += n as f64 * lookup_cost;
            // Divergence penalty: mixed predicted/unpredicted waves leave
            // lanes idle in lockstep.
            if width > 1 && !predicted.is_empty() && !rest.is_empty() {
                pred_time +=
                    params.divergence_coeff * params.wave_cost * (n as f64 / width as f64).ceil();
            }
            predicted.into_iter().chain(rest).collect()
        } else {
            (0..n).collect()
        };

        // Execute in wavefronts of `width`; early exit only between waves.
        let mut executed = 0usize;
        let mut waves = 0usize;
        for wave in order.chunks(width.max(1)) {
            waves += 1;
            executed += wave.len();
            let mut wave_hit = false;
            for &i in wave {
                let c = &m.cdqs[i];
                if with_prediction {
                    cht.observe(coord_code(c.center, cht.params().bits), c.colliding);
                }
                if c.colliding {
                    wave_hit = true;
                }
            }
            if wave_hit {
                break;
            }
        }
        total_cdqs += executed as u64;
        // Compute-bound (lockstep waves) or bandwidth-bound, whichever
        // dominates, plus the prediction bookkeeping.
        let exec_time = (waves as f64 * params.wave_cost).max(executed as f64 * params.mem_bw_cost);
        total_time += exec_time + pred_time;
    }

    // 64 concurrent lanes share the wall clock.
    GpuRun {
        threads,
        cdqs: total_cdqs,
        time: total_time / MOTION_LANES as f64,
    }
}

/// COORD-style code over raw centers: quantizes each coordinate to
/// `bits/3`-bit bins over a fixed ±1.5 m workspace. The trace does not carry
/// the robot's workspace, so the GPU model (which only needs *relative*
/// behaviour) uses this fixed extent.
fn coord_code(center: copred_geometry::Vec3, bits: u32) -> u64 {
    let k = bits / 3;
    let quant = |v: f64| -> u64 {
        let t = ((v + 1.5) / 3.0).clamp(0.0, 1.0);
        let max = (1u64 << k) - 1;
        (t * max as f64).round() as u64
    };
    (quant(center.x) << (2 * k)) | (quant(center.y) << k) | quant(center.z)
}

/// The Fig. 11 sweep: thread counts from 64 to 4096, with and without
/// prediction, normalized to the 64-thread no-prediction baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuSweepRow {
    /// Thread count.
    pub threads: usize,
    /// CDQs without prediction, normalized.
    pub cdqs_base: f64,
    /// CDQs with prediction, normalized.
    pub cdqs_pred: f64,
    /// Runtime without prediction, normalized.
    pub time_base: f64,
    /// Runtime with prediction, normalized.
    pub time_pred: f64,
}

/// Runs the full parallelism sweep of Fig. 11.
pub fn gpu_sweep(
    motions: &[MotionTrace],
    thread_counts: &[usize],
    params: &GpuModelParams,
    cht_params: ChtParams,
    seed: u64,
) -> Vec<GpuSweepRow> {
    let base64 = run_gpu_model(motions, MOTION_LANES, false, params, cht_params, seed);
    thread_counts
        .iter()
        .map(|&t| {
            let b = run_gpu_model(motions, t, false, params, cht_params, seed);
            let p = run_gpu_model(motions, t, true, params, cht_params, seed);
            GpuSweepRow {
                threads: t,
                cdqs_base: b.cdqs as f64 / base64.cdqs as f64,
                cdqs_pred: p.cdqs as f64 / base64.cdqs as f64,
                time_base: b.time / base64.time,
                time_pred: p.time / base64.time,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use copred_collision::Environment;
    use copred_geometry::{Aabb, Vec3};
    use copred_kinematics::{presets, Motion, Robot};
    use copred_planners::{MotionRecord, PlanLog, Stage};
    use copred_trace::QueryTrace;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn workload() -> Vec<MotionTrace> {
        let robot: Robot = presets::planar_2d().into();
        let env = Environment::new(
            robot.workspace(),
            vec![Aabb::new(
                Vec3::new(0.1, -1.0, -0.1),
                Vec3::new(0.5, 1.0, 0.1),
            )],
        );
        let mut rng = StdRng::seed_from_u64(5);
        let records: Vec<MotionRecord> = (0..150)
            .map(|_| {
                let poses = Motion::new(
                    robot.sample_uniform(&mut rng),
                    robot.sample_uniform(&mut rng),
                )
                .discretize(32);
                let colliding = copred_collision::motion_collides(&robot, &env, &poses);
                MotionRecord {
                    poses,
                    stage: Stage::Explore,
                    colliding,
                }
            })
            .collect();
        QueryTrace::from_log(&robot, &env, &PlanLog { records }).motions
    }

    #[test]
    fn wider_parallelism_executes_more_cdqs() {
        let motions = workload();
        let p = GpuModelParams::default();
        let narrow = run_gpu_model(&motions, 64, false, &p, ChtParams::paper_2d(), 1);
        let wide = run_gpu_model(&motions, 2048, false, &p, ChtParams::paper_2d(), 1);
        assert!(
            wide.cdqs > narrow.cdqs,
            "wide {} !> narrow {} (redundant work should grow)",
            wide.cdqs,
            narrow.cdqs
        );
    }

    #[test]
    fn prediction_reduces_cdqs_at_all_widths() {
        let motions = workload();
        let p = GpuModelParams::default();
        for threads in [64, 512, 2048, 4096] {
            let b = run_gpu_model(&motions, threads, false, &p, ChtParams::paper_2d(), 1);
            let pr = run_gpu_model(&motions, threads, true, &p, ChtParams::paper_2d(), 1);
            assert!(
                pr.cdqs <= b.cdqs,
                "threads={threads}: pred {} > base {}",
                pr.cdqs,
                b.cdqs
            );
        }
    }

    #[test]
    fn prediction_slows_down_very_wide_execution() {
        // The paper's observation: software prediction increases runtime by
        // 30%-70% at 2048-4096 threads despite the CDQ reduction.
        let motions = workload();
        let p = GpuModelParams::default();
        let rows = gpu_sweep(&motions, &[64, 4096], &p, ChtParams::paper_2d(), 1);
        let narrow = &rows[0];
        let wide = &rows[1];
        assert!(
            narrow.time_pred <= narrow.time_base * 1.1,
            "narrow: pred {} vs base {}",
            narrow.time_pred,
            narrow.time_base
        );
        assert!(
            wide.time_pred > wide.time_base,
            "wide: pred {} !> base {}",
            wide.time_pred,
            wide.time_base
        );
    }

    #[test]
    fn sweep_is_normalized_to_first_baseline() {
        let motions = workload();
        let rows = gpu_sweep(
            &motions,
            &[64, 128],
            &GpuModelParams::default(),
            ChtParams::paper_2d(),
            1,
        );
        assert!((rows[0].cdqs_base - 1.0).abs() < 1e-12);
        assert!((rows[0].time_base - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least")]
    fn too_few_threads_rejected() {
        let motions = workload();
        let _ = run_gpu_model(
            &motions,
            8,
            false,
            &GpuModelParams::default(),
            ChtParams::paper_2d(),
            1,
        );
    }
}
