//! Sharding the shared Collision History Table.
//!
//! The paper's software integration (§III-E) shares one CHT between all
//! threads of a single planning query. A *server* runs many concurrent
//! planning queries, and the paper's dynamic-obstacle semantics reset the
//! table per query — so queries must not share prediction state. A
//! [`ShardedCht`] is a pool of independent [`ConcurrentCht`] shards:
//!
//! * **session sharding** — each planning session leases one shard for
//!   exclusive use ([`ShardedCht::shard`]), giving per-query reset
//!   isolation with zero cross-session contention;
//! * **flat sharded table** — a single logical table routed by the high
//!   bits of the hash code ([`ShardedCht::predict`]/[`observe`]), which
//!   spreads atomic traffic across shards for workloads that do want one
//!   shared predictor.
//!
//! [`observe`]: ShardedCht::observe

use crate::concurrent_cht::ConcurrentCht;
use copred_core::ChtParams;
use std::sync::Arc;

/// A pool of independent shared CHT shards.
#[derive(Debug)]
pub struct ShardedCht {
    shards: Vec<Arc<ConcurrentCht>>,
    /// log2(shards), for high-bit routing in the flat view.
    shard_bits: u32,
    /// Bits of the per-shard table index (`params.bits`).
    table_bits: u32,
}

impl ShardedCht {
    /// Creates `n_shards` empty shards, each a full table of `params`.
    ///
    /// # Panics
    ///
    /// Panics when `n_shards` is zero or not a power of two, or when
    /// `params.bits` exceeds the dense-table limit of [`ConcurrentCht`].
    pub fn new(params: ChtParams, n_shards: usize) -> Self {
        assert!(
            n_shards.is_power_of_two(),
            "shard count must be a nonzero power of two, got {n_shards}"
        );
        ShardedCht {
            shards: (0..n_shards)
                .map(|_| Arc::new(ConcurrentCht::new(params)))
                .collect(),
            shard_bits: n_shards.trailing_zeros(),
            table_bits: params.bits,
        }
    }

    /// Number of shards in the pool.
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// A handle to shard `i` for exclusive session use. Cloning the `Arc`
    /// is how a session registry leases the shard to a planning query.
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of range.
    pub fn shard(&self, i: usize) -> Arc<ConcurrentCht> {
        Arc::clone(&self.shards[i])
    }

    /// The shard index the flat view routes `code` to: the bits directly
    /// above the per-shard table index, so sharding never changes which
    /// table entry a code maps to.
    #[inline]
    pub fn shard_index(&self, code: u64) -> usize {
        ((code >> self.table_bits) & ((1 << self.shard_bits) - 1)) as usize
    }

    /// Flat-view prediction lookup (routes by the code's high bits).
    pub fn predict(&self, code: u64) -> bool {
        self.shards[self.shard_index(code)].predict(code)
    }

    /// Flat-view outcome recording. `u_draw` feeds the `U` update policy,
    /// as in [`ConcurrentCht::observe`].
    pub fn observe(&self, code: u64, colliding: bool, u_draw: f64) {
        self.shards[self.shard_index(code)].observe(code, colliding, u_draw);
    }

    /// Clears every shard (obstacle remap across all sessions).
    pub fn reset_all(&self) {
        for s in &self.shards {
            s.reset();
        }
    }

    /// Total nonzero entries across all shards.
    pub fn occupancy(&self) -> usize {
        self.shards.iter().map(|s| s.occupancy()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use copred_core::Strategy;

    fn params() -> ChtParams {
        ChtParams {
            bits: 8,
            counter_bits: 4,
            strategy: Strategy::new(1.0),
            update_fraction: 1.0,
        }
    }

    #[test]
    fn shards_are_independent() {
        let pool = ShardedCht::new(params(), 4);
        let a = pool.shard(0);
        let b = pool.shard(1);
        a.observe(17, true, 0.0);
        assert!(a.predict(17));
        assert!(!b.predict(17), "session shards must not share state");
        a.reset();
        assert!(!a.predict(17));
    }

    #[test]
    fn flat_view_routes_by_high_bits() {
        let pool = ShardedCht::new(params(), 4);
        // Same table index, different shard bits.
        let code_a = 0b00_0000_0101u64;
        let code_b = code_a | (1 << 8);
        assert_eq!(pool.shard_index(code_a), 0);
        assert_eq!(pool.shard_index(code_b), 1);
        pool.observe(code_a, true, 0.0);
        assert!(pool.predict(code_a));
        assert!(!pool.predict(code_b), "different shard, independent entry");
    }

    #[test]
    fn reset_all_and_occupancy() {
        let pool = ShardedCht::new(params(), 2);
        assert_eq!(pool.occupancy(), 0);
        pool.observe(3, true, 0.0);
        pool.observe(3 | (1 << 8), false, 0.0);
        assert_eq!(pool.occupancy(), 2);
        pool.reset_all();
        assert_eq!(pool.occupancy(), 0);
    }

    #[test]
    fn single_shard_pool_is_the_plain_table() {
        let pool = ShardedCht::new(params(), 1);
        assert_eq!(pool.n_shards(), 1);
        for code in [0u64, 1 << 8, 1 << 20] {
            assert_eq!(pool.shard_index(code), 0);
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two() {
        let _ = ShardedCht::new(params(), 3);
    }

    #[test]
    fn concurrent_sessions_on_distinct_shards() {
        let pool = Arc::new(ShardedCht::new(params(), 8));
        let handles: Vec<_> = (0..8)
            .map(|i| {
                let pool = Arc::clone(&pool);
                std::thread::spawn(move || {
                    let shard = pool.shard(i);
                    for code in 0..64u64 {
                        shard.observe(code, code % 2 == 0, 0.0);
                    }
                    shard.occupancy()
                })
            })
            .collect();
        for h in handles {
            assert!(h.join().expect("worker") > 0);
        }
        assert_eq!(pool.occupancy(), 8 * 64);
    }
}
