//! A lock-free shared Collision History Table for multi-threaded software
//! collision detection (paper §III-E: "The hash table is shared between all
//! threads").
//!
//! Counters are relaxed atomics: like the hardware table, racy increments
//! may occasionally lose an update, which is harmless for a predictor (the
//! paper's software implementation makes the same trade).

use copred_core::{ChtParams, Strategy};
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};

/// A thread-safe CHT with the same prediction semantics as
/// [`copred_core::Cht`].
#[derive(Debug)]
pub struct ConcurrentCht {
    coll: Vec<AtomicU8>,
    noncoll: Vec<AtomicU8>,
    /// 8-bit fingerprint of the last code written to each entry, used to
    /// estimate hash aliasing (distinct codes sharing an entry). Purely
    /// telemetry: predictions never read it.
    fingerprint: Vec<AtomicU8>,
    /// Applied observe() writes.
    writes: AtomicU64,
    /// Writes that hit an occupied entry whose fingerprint changed —
    /// i.e. a different code aliased onto the same entry.
    alias_events: AtomicU64,
    params: ChtParams,
    strategy: Strategy,
    counter_max: u8,
    update_fraction: f64,
    mask: u64,
}

/// Fingerprint of a CDQ code for alias detection: top byte of a Fibonacci
/// hash, so codes differing only in low (index) bits still separate.
#[inline]
fn fingerprint_of(code: u64) -> u8 {
    (code.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 56) as u8
}

/// Bytewise `x > y` over eight u8 lanes packed into two u64 words, one
/// result bit per lane (bit `k` for byte `k`).
///
/// SWAR: each word's bytes are widened into u16 lanes (even bytes in one
/// word, odd bytes in the other) and compared with the biased-subtract
/// trick — `0x8000 + y - x` stays inside a u16 lane because both operands
/// are at most 255, so its high bit is exactly `y >= x` and no borrow can
/// cross lanes. `x > y` is then the complement of `y >= x`.
#[inline]
fn swar_gt_bytes(x: u64, y: u64) -> u8 {
    const EVEN: u64 = 0x00FF_00FF_00FF_00FF;
    const BIAS: u64 = 0x8000_8000_8000_8000;
    let (xe, xo) = (x & EVEN, (x >> 8) & EVEN);
    let (ye, yo) = (y & EVEN, (y >> 8) & EVEN);
    // High bit per u16 lane: y >= x.
    let ge_e = ((ye | BIAS) - xe) & BIAS;
    let ge_o = ((yo | BIAS) - xo) & BIAS;
    let mut ge = 0u8;
    for k in 0..4 {
        ge |= (((ge_e >> (16 * k + 15)) & 1) as u8) << (2 * k);
        ge |= (((ge_o >> (16 * k + 15)) & 1) as u8) << (2 * k + 1);
    }
    !ge
}

impl ConcurrentCht {
    /// Creates an empty shared table.
    ///
    /// # Panics
    ///
    /// Panics when `params.bits` exceeds 24 (software tables are dense).
    pub fn new(params: ChtParams) -> Self {
        assert!(params.bits <= 24, "shared CHT must be dense (<= 24 bits)");
        let n = params.entries();
        ConcurrentCht {
            coll: (0..n).map(|_| AtomicU8::new(0)).collect(),
            noncoll: (0..n).map(|_| AtomicU8::new(0)).collect(),
            fingerprint: (0..n).map(|_| AtomicU8::new(0)).collect(),
            writes: AtomicU64::new(0),
            alias_events: AtomicU64::new(0),
            strategy: params.strategy,
            counter_max: ((1u32 << params.counter_bits) - 1) as u8,
            update_fraction: params.update_fraction,
            mask: (1u64 << params.bits) - 1,
            params,
        }
    }

    /// The parameters the table was built with.
    pub fn params(&self) -> &ChtParams {
        &self.params
    }

    /// Number of table entries.
    pub fn entries(&self) -> usize {
        self.coll.len()
    }

    /// Entries with at least one nonzero counter — a warm-up/contention
    /// proxy exposed through the service STATS verb.
    pub fn occupancy(&self) -> usize {
        (0..self.coll.len())
            .filter(|&i| {
                self.coll[i].load(Ordering::Relaxed) != 0
                    || self.noncoll[i].load(Ordering::Relaxed) != 0
            })
            .count()
    }

    /// Entries with at least one counter pinned at its saturating maximum.
    pub fn saturated_entries(&self) -> usize {
        (0..self.coll.len())
            .filter(|&i| {
                self.coll[i].load(Ordering::Relaxed) == self.counter_max
                    || self.noncoll[i].load(Ordering::Relaxed) == self.counter_max
            })
            .count()
    }

    /// Fraction of entries with a saturated counter, in `[0, 1]`.
    pub fn saturation_fraction(&self) -> f64 {
        self.saturated_entries() as f64 / self.coll.len() as f64
    }

    /// Applied `observe` writes since construction or [`reset`](Self::reset).
    pub fn writes(&self) -> u64 {
        self.writes.load(Ordering::Relaxed)
    }

    /// Writes that landed on an occupied entry last written by a different
    /// code (fingerprint mismatch).
    pub fn alias_events(&self) -> u64 {
        self.alias_events.load(Ordering::Relaxed)
    }

    /// Estimated fraction of writes that aliased with a different code,
    /// in `[0, 1]` (0 when nothing was written). Fingerprints are 8 bits,
    /// so ~1/256 of true aliases go uncounted — fine for a health gauge.
    pub fn aliasing_estimate(&self) -> f64 {
        let w = self.writes();
        if w == 0 {
            0.0
        } else {
            self.alias_events() as f64 / w as f64
        }
    }

    #[inline]
    fn idx(&self, code: u64) -> usize {
        (code & self.mask) as usize
    }

    /// Telemetry bookkeeping for an applied write: count it, and count an
    /// alias event when the entry was occupied by a different code. Races
    /// between the occupancy check and the swap can miscount by a write or
    /// two under contention, matching the table's relaxed-counter trade.
    #[inline]
    fn note_write(&self, i: usize, code: u64) {
        self.writes.fetch_add(1, Ordering::Relaxed);
        let occupied = self.coll[i].load(Ordering::Relaxed) != 0
            || self.noncoll[i].load(Ordering::Relaxed) != 0;
        let fp = fingerprint_of(code);
        let prev = self.fingerprint[i].swap(fp, Ordering::Relaxed);
        if occupied && prev != fp {
            self.alias_events.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Prediction lookup.
    pub fn predict(&self, code: u64) -> bool {
        let i = self.idx(code);
        let c = self.coll[i].load(Ordering::Relaxed);
        let n = self.noncoll[i].load(Ordering::Relaxed);
        self.strategy.predicts(c, n)
    }

    /// Gang-probed prediction lookup: one verdict per code, in order.
    ///
    /// Result-identical to calling [`Self::predict`] per code. Counters for
    /// up to eight codes are gathered into packed u64 words and compared
    /// with byte-lane SWAR for the paper's prediction strategies (`S = 1`:
    /// `COLL > NONCOLL`; `S = 0` / 1-bit mode: `COLL > 0`) — exact because
    /// u8 counters convert to f64 losslessly, so the float comparison in
    /// [`Strategy::predicts`] reduces to the integer one. Other `S` values
    /// fall back to the scalar strategy per lane.
    ///
    /// Under concurrent writers each lane is an independent relaxed load,
    /// exactly like eight scalar `predict` calls.
    ///
    /// # Panics
    ///
    /// Panics when `out` is shorter than `codes`.
    pub fn predict_batch(&self, codes: &[u64], out: &mut [bool]) {
        assert!(out.len() >= codes.len(), "output buffer too short");
        let s = self.strategy.s();
        for (cs, os) in codes.chunks(8).zip(out.chunks_mut(8)) {
            let mut coll8 = 0u64;
            let mut non8 = 0u64;
            for (k, &code) in cs.iter().enumerate() {
                let i = self.idx(code);
                coll8 |= u64::from(self.coll[i].load(Ordering::Relaxed)) << (8 * k);
                non8 |= u64::from(self.noncoll[i].load(Ordering::Relaxed)) << (8 * k);
            }
            let verdicts = if s == 1.0 {
                swar_gt_bytes(coll8, non8)
            } else if s == 0.0 {
                swar_gt_bytes(coll8, 0)
            } else {
                let mut m = 0u8;
                for k in 0..cs.len() {
                    let c = (coll8 >> (8 * k)) as u8;
                    let n = (non8 >> (8 * k)) as u8;
                    m |= u8::from(self.strategy.predicts(c, n)) << k;
                }
                m
            };
            for (k, o) in os.iter_mut().enumerate() {
                *o = (verdicts >> k) & 1 == 1;
            }
        }
    }

    /// Records an executed CDQ's outcome. `u_draw` is a uniform [0,1) draw
    /// used for the `U` update policy (passed in so callers control their
    /// own RNG streams). Returns `true` when the write was applied to the
    /// table, `false` when the `U` policy (or 1-bit mode) skipped it — the
    /// discriminator `copred-store` uses to write an RNG-free WAL: only
    /// applied writes are logged, so replay is a pure saturating increment.
    pub fn observe(&self, code: u64, colliding: bool, u_draw: f64) -> bool {
        let i = self.idx(code);
        let cell = if colliding {
            &self.coll[i]
        } else {
            // 1-bit entries store only the collision bit; free outcomes
            // are never recorded, matching `copred_core::Cht` (which a
            // NONCOLL write here would diverge from: with S ≤ 1 an entry
            // that saw both outcomes would flip its prediction to free).
            if self.params.counter_bits == 1 || u_draw >= self.update_fraction {
                return false;
            }
            &self.noncoll[i]
        };
        self.note_write(i, code);
        // Saturating increment via CAS loop.
        let mut cur = cell.load(Ordering::Relaxed);
        while cur < self.counter_max {
            match cell.compare_exchange_weak(cur, cur + 1, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => break,
                Err(v) => cur = v,
            }
        }
        true
    }

    /// Copies the raw `(COLL, NONCOLL)` counters of every entry, in entry
    /// order — the export hook `copred-store` snapshots from. Relaxed loads:
    /// callers snapshot quiescent (leased-out or drained) shards.
    pub fn export_cells(&self) -> Vec<(u8, u8)> {
        (0..self.coll.len())
            .map(|i| {
                (
                    self.coll[i].load(Ordering::Relaxed),
                    self.noncoll[i].load(Ordering::Relaxed),
                )
            })
            .collect()
    }

    /// Overwrites every entry's counters from `cells` (values clamped to the
    /// counter width), clearing the telemetry the way [`reset`](Self::reset)
    /// does — the warm-start import hook for `copred-store`.
    ///
    /// # Panics
    ///
    /// Panics when `cells.len()` differs from [`entries`](Self::entries).
    pub fn load_cells(&self, cells: &[(u8, u8)]) {
        assert_eq!(
            cells.len(),
            self.coll.len(),
            "cell image size must match the table"
        );
        for (i, &(c, n)) in cells.iter().enumerate() {
            self.coll[i].store(c.min(self.counter_max), Ordering::Relaxed);
            self.noncoll[i].store(n.min(self.counter_max), Ordering::Relaxed);
            self.fingerprint[i].store(0, Ordering::Relaxed);
        }
        self.writes.store(0, Ordering::Relaxed);
        self.alias_events.store(0, Ordering::Relaxed);
    }

    /// Clears the table (new planning query).
    pub fn reset(&self) {
        for c in &self.coll {
            c.store(0, Ordering::Relaxed);
        }
        for n in &self.noncoll {
            n.store(0, Ordering::Relaxed);
        }
        for f in &self.fingerprint {
            f.store(0, Ordering::Relaxed);
        }
        self.writes.store(0, Ordering::Relaxed);
        self.alias_events.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn params() -> ChtParams {
        ChtParams {
            bits: 10,
            counter_bits: 4,
            strategy: Strategy::new(1.0),
            update_fraction: 1.0,
        }
    }

    #[test]
    fn predict_observe_roundtrip() {
        let cht = ConcurrentCht::new(params());
        assert!(!cht.predict(7));
        cht.observe(7, true, 0.0);
        assert!(cht.predict(7));
        cht.observe(7, false, 0.0);
        assert!(!cht.predict(7)); // S=1: 1 > 1 is false
    }

    #[test]
    fn update_fraction_skips_free_updates() {
        let p = ChtParams {
            update_fraction: 0.25,
            ..params()
        };
        let cht = ConcurrentCht::new(p);
        cht.observe(3, false, 0.9); // 0.9 >= 0.25: skipped
        cht.observe(3, false, 0.1); // 0.1 < 0.25: applied
        cht.observe(3, true, 0.0);
        // COLL=1, NONCOLL=1 -> S=1 predicts false; a second collision flips.
        assert!(!cht.predict(3));
        cht.observe(3, true, 0.0);
        assert!(cht.predict(3));
    }

    #[test]
    fn single_bit_mode_matches_core_cht() {
        // Regression: 1-bit tables used to record NONCOLL for free
        // outcomes, which `copred_core::Cht` never does. With S = 1 that
        // made COLL=1/NONCOLL=1 predict free where the reference predicts
        // colliding.
        let p = ChtParams {
            counter_bits: 1,
            ..params()
        };
        let cht = ConcurrentCht::new(p);
        cht.observe(9, true, 0.0);
        assert!(cht.predict(9));
        // A free outcome with a "record it" draw must still be a no-op.
        cht.observe(9, false, 0.0);
        assert!(
            cht.predict(9),
            "free outcome must not be stored in 1-bit mode"
        );
        assert_eq!(cht.occupancy(), 1);
        // And it must not create occupancy on untouched codes either.
        cht.observe(10, false, 0.0);
        assert_eq!(cht.occupancy(), 1);
    }

    #[test]
    fn reset_clears() {
        let cht = ConcurrentCht::new(params());
        cht.observe(1, true, 0.0);
        cht.reset();
        assert!(!cht.predict(1));
    }

    #[test]
    fn concurrent_updates_saturate() {
        let cht = Arc::new(ConcurrentCht::new(params()));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let c = Arc::clone(&cht);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        c.observe(5, true, 0.0);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        // Saturated at the 4-bit max; prediction holds.
        assert!(cht.predict(5));
    }

    #[test]
    fn aliasing_estimator_separates_clean_and_colliding_streams() {
        let cht = ConcurrentCht::new(params()); // 10-bit table
                                                // Distinct entries, one code each: no aliasing.
        for code in 0..64u64 {
            cht.observe(code, true, 0.0);
            cht.observe(code, true, 0.0);
        }
        assert_eq!(cht.alias_events(), 0);
        assert_eq!(cht.aliasing_estimate(), 0.0);
        assert_eq!(cht.writes(), 128);
        // Two codes that share entry 5 (differ above the 10 index bits):
        // every write after the first alternates the fingerprint.
        let (a, b) = (5u64, 5u64 | (1 << 20));
        assert_ne!(fingerprint_of(a), fingerprint_of(b));
        for _ in 0..10 {
            cht.observe(a, true, 0.0);
            cht.observe(b, true, 0.0);
        }
        assert!(cht.alias_events() >= 19, "got {}", cht.alias_events());
        assert!(cht.aliasing_estimate() > 0.0);
    }

    #[test]
    fn skipped_updates_are_not_counted_as_writes() {
        let p = ChtParams {
            update_fraction: 0.25,
            ..params()
        };
        let cht = ConcurrentCht::new(p);
        cht.observe(3, false, 0.9); // gated out: not a write
        assert_eq!(cht.writes(), 0);
        cht.observe(3, false, 0.1);
        cht.observe(3, true, 0.0);
        assert_eq!(cht.writes(), 2);
    }

    #[test]
    fn saturation_fraction_tracks_pinned_counters() {
        let cht = ConcurrentCht::new(params()); // 4-bit counters: max 15
        assert_eq!(cht.saturated_entries(), 0);
        for _ in 0..20 {
            cht.observe(7, true, 0.0);
        }
        assert_eq!(cht.saturated_entries(), 1);
        let expect = 1.0 / cht.entries() as f64;
        assert!((cht.saturation_fraction() - expect).abs() < 1e-12);
        cht.reset();
        assert_eq!(cht.saturated_entries(), 0);
        assert_eq!(cht.writes(), 0);
        assert_eq!(cht.alias_events(), 0);
    }

    #[test]
    fn observe_reports_applied_writes() {
        let p = ChtParams {
            update_fraction: 0.25,
            ..params()
        };
        let cht = ConcurrentCht::new(p);
        assert!(cht.observe(3, true, 0.9), "collisions always apply");
        assert!(!cht.observe(3, false, 0.9), "gated free outcome skipped");
        assert!(cht.observe(3, false, 0.1), "lucky free outcome applied");
        let one_bit = ConcurrentCht::new(ChtParams {
            counter_bits: 1,
            ..params()
        });
        assert!(!one_bit.observe(3, false, 0.0), "1-bit never stores free");
    }

    #[test]
    fn export_load_roundtrip_is_bit_exact() {
        let a = ConcurrentCht::new(params());
        for code in 0..100u64 {
            a.observe(code * 17, code % 3 == 0, 0.0);
        }
        let cells = a.export_cells();
        let b = ConcurrentCht::new(params());
        b.load_cells(&cells);
        assert_eq!(b.export_cells(), cells);
        assert_eq!(b.occupancy(), a.occupancy());
        for code in 0..2048u64 {
            assert_eq!(a.predict(code), b.predict(code));
        }
        // Out-of-range counters clamp to the width instead of wedging the
        // saturating CAS loop (`cur < max` would never stop at 200).
        let c = ConcurrentCht::new(params());
        let mut wild = cells;
        wild[0] = (200, 200);
        c.load_cells(&wild);
        assert_eq!(c.export_cells()[0], (15, 15));
    }

    #[test]
    fn swar_byte_compare_is_exact() {
        // Exhaustive over one interesting lane plus patterned other lanes.
        for x in 0..=255u64 {
            for y in [0u64, 1, 2, 127, 128, 200, 254, 255] {
                let xs = x | (0xFF << 8) | (0x80 << 24) | (0x01 << 48);
                let ys = y | (0xFE << 8) | (0x80 << 24) | (0x02 << 48);
                let m = swar_gt_bytes(xs, ys);
                assert_eq!((m & 1) == 1, x > y, "lane 0: {x} > {y}");
                assert_eq!((m >> 1) & 1, 1, "lane 1: 255 > 254");
                assert_eq!((m >> 3) & 1, 0, "lane 3: 128 > 128 is false");
                assert_eq!((m >> 6) & 1, 0, "lane 6: 1 > 2 is false");
                assert_eq!((m >> 2) & 1, 0, "lane 2: 0 > 0 is false");
            }
        }
    }

    #[test]
    fn gang_probe_matches_scalar_for_every_strategy() {
        for (s, counter_bits) in [
            (0.0, 1u32),
            (0.0, 4),
            (1.0, 4),
            (1.0, 8),
            (0.5, 4),
            (2.0, 3),
        ] {
            let p = ChtParams {
                bits: 10,
                counter_bits,
                strategy: Strategy::new(s),
                update_fraction: 1.0,
            };
            let cht = ConcurrentCht::new(p);
            // Scatter a deterministic mix of outcomes.
            let mut state = 0x1234_5678_u64;
            let mut next = move || {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state
            };
            for _ in 0..600 {
                let r = next();
                cht.observe(r >> 16, r & 1 == 0, 0.0);
            }
            // Gang-probe every batch size 1..=8 plus a long ragged batch.
            let codes: Vec<u64> = (0..37).map(|_| next() >> 13).collect();
            for n in 1..=codes.len() {
                let mut out = vec![false; n];
                cht.predict_batch(&codes[..n], &mut out);
                for (k, &code) in codes[..n].iter().enumerate() {
                    assert_eq!(
                        out[k],
                        cht.predict(code),
                        "lane {k}/{n}, S={s}, width={counter_bits}"
                    );
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "dense")]
    fn oversized_table_rejected() {
        let p = ChtParams {
            bits: 30,
            ..params()
        };
        let _ = ConcurrentCht::new(p);
    }
}
