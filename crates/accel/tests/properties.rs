//! Property-based tests for the accelerator simulator.

use copred_accel::{AccelConfig, AccelSim};
use copred_core::{ChtParams, CoordHash};
use copred_geometry::{Aabb, Vec3};
use copred_kinematics::Config;
use copred_planners::Stage;
use copred_trace::{MotionTrace, TraceCdq};
use proptest::prelude::*;

fn hash() -> CoordHash {
    CoordHash::new(Aabb::new(Vec3::splat(-1.5), Vec3::splat(1.5)), 4, false)
}

/// Strategy for a synthetic motion trace: random CDQ count, outcomes,
/// obstacle costs, and centers, pose-major.
fn motion_trace() -> impl Strategy<Value = MotionTrace> {
    (1usize..8, 1usize..6).prop_flat_map(|(n_poses, links)| {
        let n = n_poses * links;
        (
            prop::collection::vec(any::<bool>(), n),
            prop::collection::vec(1u32..12, n),
            prop::collection::vec((-1.4..1.4f64, -1.4..1.4f64, -1.4..1.4f64), n),
        )
            .prop_map(move |(outcomes, costs, centers)| {
                let cdqs = (0..n)
                    .map(|i| TraceCdq {
                        pose_idx: (i / links) as u32,
                        link_idx: (i % links) as u32,
                        center: Vec3::new(centers[i].0, centers[i].1, centers[i].2),
                        colliding: outcomes[i],
                        obstacle_tests: costs[i],
                    })
                    .collect();
                MotionTrace {
                    stage: Stage::Explore,
                    poses: vec![Config::zeros(2); n_poses],
                    cdqs,
                }
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn simulator_outcome_matches_ground_truth(m in motion_trace(), n_cdus in 1usize..6) {
        for cfg in [
            AccelConfig::baseline(n_cdus),
            AccelConfig::copu(n_cdus, ChtParams::paper_arm()),
            AccelConfig::oracle(n_cdus),
        ] {
            let mut sim = AccelSim::new(cfg, hash());
            let r = sim.run_motion(&m);
            prop_assert_eq!(r.colliding, m.colliding());
            prop_assert!(r.events.cdqs <= m.cdq_count() as u64);
        }
    }

    #[test]
    fn free_motion_executes_everything(m in motion_trace(), n_cdus in 1usize..6) {
        let all_free: Vec<_> = m
            .cdqs
            .iter()
            .map(|c| TraceCdq { colliding: false, ..*c })
            .collect();
        let free = MotionTrace { cdqs: all_free, ..m.clone() };
        let mut sim = AccelSim::new(AccelConfig::copu(n_cdus, ChtParams::paper_arm()), hash());
        let r = sim.run_motion(&free);
        prop_assert!(!r.colliding);
        prop_assert_eq!(r.events.cdqs, free.cdq_count() as u64);
    }

    #[test]
    fn oracle_is_optimal_on_single_cdu(m in motion_trace()) {
        // With one CDU (strictly serial execution), the oracle dispatches a
        // known-colliding CDQ first, so no configuration can execute fewer.
        let mut oracle = AccelSim::new(AccelConfig::oracle(1), hash());
        let mut base = AccelSim::new(AccelConfig::baseline(1), hash());
        let ro = oracle.run_motion(&m);
        let rb = base.run_motion(&m);
        prop_assert!(ro.events.cdqs <= rb.events.cdqs);
        if m.colliding() {
            prop_assert_eq!(ro.events.cdqs, 1);
        }
    }

    #[test]
    fn simulation_is_deterministic(m in motion_trace()) {
        let run = || {
            let mut sim = AccelSim::new(AccelConfig::copu(3, ChtParams::paper_arm()), hash());
            let r = sim.run_motion(&m);
            (r.colliding, r.latency_cycles, r.events)
        };
        prop_assert_eq!(run(), run());
    }

    #[test]
    fn latency_covers_all_dispatched_work_on_one_cdu(m in motion_trace()) {
        // Serial lower bound: each executed CDQ occupies the single CDU for
        // at least base + per_obstacle * tests cycles.
        let cfg = AccelConfig::baseline(1);
        let (base, per) = (cfg.cdu_base_cycles, cfg.cdu_per_obstacle);
        let mut sim = AccelSim::new(cfg, hash());
        let r = sim.run_motion(&m);
        let lower: u64 = r.events.cdqs * base + r.events.obstacle_tests * per;
        prop_assert!(r.latency_cycles >= lower.saturating_sub(base));
    }
}
