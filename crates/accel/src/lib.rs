//! # copred-accel
//!
//! Cycle-level microarchitectural simulator for the Collision Prediction
//! Unit (COPU) integrated with a collision-detection accelerator (paper
//! §IV, Fig. 12), plus the calibrated area/energy models (§VI-B1), the
//! sphere-CDU variant (§VII-1), and a Dadu-P-style octree-voxel accelerator
//! with environment-space hashing (§VII-2).
//!
//! ## Example
//!
//! ```
//! use copred_accel::{AccelConfig, AccelSim};
//! use copred_core::{ChtParams, CoordHash};
//! use copred_kinematics::{presets, Robot};
//!
//! let robot: Robot = presets::planar_2d().into();
//! let baseline = AccelSim::new(AccelConfig::baseline(4), CoordHash::paper_default(&robot));
//! let copu = AccelSim::new(
//!     AccelConfig::copu(4, ChtParams::paper_2d()),
//!     CoordHash::paper_default(&robot),
//! );
//! assert!(copu.config().with_copu && !baseline.config().with_copu);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod dadup;
mod energy;
mod observe;
mod perf;
mod sphere;
mod system;

pub use dadup::{
    precompute_motion, DadupConfig, DadupMode, DadupMotionResult, DadupSim, PrecomputedMotion,
};
pub use energy::{
    mpaccel_overheads, AreaModel, EnergyBreakdown, EnergyModel, OverheadReport, SramModel,
};
pub use observe::{accel_prom_page, stall_profile, AccelObserver, OccupancyHist, StallBreakdown};
pub use perf::{perf_report, PerfReport};
pub use sphere::{SphereRunResult, SphereSim};
pub use system::{AccelConfig, AccelEvents, AccelRunResult, AccelSim, MotionSimResult};
